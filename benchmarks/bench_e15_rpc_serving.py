"""E15 — Wire-level RPC serving: tcp/inproc equivalence and load envelope.

Claim: turning the in-process platform into a real service topology —
every hospital site a separate OS process serving framed JSON-RPC over
TCP, the global query service dispatching to them through a socket
gateway — changes *nothing* about the answers (bit-identical composed
result hashes vs the in-process transport) while serving concurrent load
with bounded latency and explicit backpressure.

Workload:

1. **Equivalence** — boot one server process per site (each independently
   reconstructs the same deterministic demo network from the shared seed),
   run the E10 query suite through a ``TcpGateway`` and through an
   ``InprocGateway``, and compare composed result hashes pairwise.
2. **Serving envelope** — ``rpc.echo`` load sweeps over payload size ×
   client concurrency against one site process: throughput plus
   p50/p95/p99 latency per combination.
3. **Cross-process tracing** — the tcp run executes under a tracer; the
   benchmark checks that spans recorded *inside the server processes*
   arrive re-parented under this process's client spans.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import subprocess
import sys
from time import perf_counter

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, emit_json, format_table, human_bytes

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
sys.path.insert(0, SRC)

from repro.obs.tracer import Tracer, tracer_override, trace_span
from repro.query.parser import parse_query
from repro.rpc.client import ConnectionPool
from repro.rpc.demo import build_demo_network, build_inproc_gateway
from repro.rpc.gateway import TcpGateway

QUERIES = (
    "how many patients have diabetes",
    "prevalence of stroke among smokers",
    "average systolic blood pressure for women over 50",
    "histogram of bmi between 15 and 55 with 8 bins",
)
SEED = 2026
SITES = 3
RECORDS_PER_SITE = 120
PAYLOAD_BYTES = (64, 4096, 65536)
CONCURRENCY = (1, 8, 32)
REQUESTS_PER_COMBO = 240

FAST_SITES = 2
FAST_RECORDS = 60
FAST_PAYLOAD_BYTES = (64, 4096)
FAST_CONCURRENCY = (1, 8)
FAST_REQUESTS = 60


# -- site server process fleet ------------------------------------------------
def start_site_fleet(site_count, records, seed):
    """One OS process per site; returns (procs, {site: (host, port)})."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    procs = []
    for index in range(site_count):
        procs.append(
            subprocess.Popen(
                [
                    sys.executable, "-m", "repro.rpc.site_server",
                    "--site", f"hospital-{index}",
                    "--sites", str(site_count),
                    "--records", str(records),
                    "--seed", str(seed),
                ],
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                env=env,
                text=True,
            )
        )
    addrs = {}
    for index, proc in enumerate(procs):
        line = proc.stdout.readline().strip()
        if not line.startswith("LISTENING"):
            raise RuntimeError(f"site server {index} failed to boot: {line!r}")
        _, host, port = line.split()
        addrs[f"hospital-{index}"] = (host, int(port))
    return procs, addrs


def stop_site_fleet(procs):
    for proc in procs:
        if proc.stdin:
            proc.stdin.close()  # EOF -> graceful drain and exit
    for proc in procs:
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.terminate()
            proc.wait(timeout=10)


# -- phase 1+3: equivalence under tracing -------------------------------------
def run_equivalence(addrs, site_count, records):
    platform, _researcher = build_demo_network(
        site_count=site_count, records_per_site=records, seed=SEED
    )
    inproc = build_inproc_gateway(platform)
    tracer = Tracer()

    async def over_tcp():
        gateway = TcpGateway(addrs)
        try:
            return [await gateway.aexecute(parse_query(text)) for text in QUERIES]
        finally:
            await gateway.aclose()

    with tracer_override(tracer):
        with trace_span("e15.tcp_queries"):
            tcp_answers = asyncio.run(over_tcp())

    rows = []
    for text, tcp_answer in zip(QUERIES, tcp_answers):
        inproc_answer = inproc.execute(parse_query(text))
        rows.append(
            {
                "query": text,
                "tcp_hash": tcp_answer.result_hash,
                "inproc_hash": inproc_answer.result_hash,
                "equal": tcp_answer.result_hash == inproc_answer.result_hash,
                "tcp_latency_s": tcp_answer.latency_s,
                "bytes": tcp_answer.bytes_on_wire,
                "sites": len(tcp_answer.site_partials),
            }
        )
    inproc.close()

    me = os.getpid()
    by_id = {span.span_id: span for span in tracer.spans}
    remote = [span for span in tracer.spans if span.pid != me]
    # A remote span is correctly stitched when its parent exists in the
    # adopted tree: either a local client span (the re-parented root of a
    # server-side trace) or another remote span (handler-internal nesting).
    under_local = [
        span
        for span in remote
        if span.parent_id in by_id and by_id[span.parent_id].pid == me
    ]
    orphans = [span for span in remote if span.parent_id not in by_id]
    trace_stats = {
        "remote_spans": len(remote),
        "reparented_under_local": len(under_local),
        "orphaned": len(orphans),
        "total_spans": len(tracer.spans),
    }
    return rows, trace_stats


# -- phase 2: serving envelope ------------------------------------------------
def percentile(values, fraction):
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


def run_load(addr, payload_sizes, concurrency_levels, requests):
    host, port = addr

    async def combo(payload, concurrency):
        pool = ConnectionPool(host, port, max_connections=min(concurrency, 8))
        latencies = []
        per_worker = max(1, requests // concurrency)

        async def worker():
            for _ in range(per_worker):
                started = perf_counter()
                await pool.call("rpc.echo", {"payload": payload}, idempotent=True)
                latencies.append(perf_counter() - started)

        # Warm the pool's sockets outside the measured window.
        await pool.call("health", idempotent=True)
        wall_start = perf_counter()
        await asyncio.gather(*(worker() for _ in range(concurrency)))
        wall = perf_counter() - wall_start
        await pool.close()
        return {
            "payload_bytes": len(payload),
            "concurrency": concurrency,
            "requests": len(latencies),
            "throughput_rps": len(latencies) / wall,
            "p50_ms": percentile(latencies, 0.50) * 1e3,
            "p95_ms": percentile(latencies, 0.95) * 1e3,
            "p99_ms": percentile(latencies, 0.99) * 1e3,
        }

    rows = []
    for size in payload_sizes:
        payload = "x" * size
        for concurrency in concurrency_levels:
            rows.append(asyncio.run(combo(payload, concurrency)))
    return rows


# -- reporting ----------------------------------------------------------------
def report(equiv_rows, trace_stats, load_rows):
    table = format_table(
        "E15: tcp vs inproc gateway — composed result hashes",
        ["query", "equal?", "tcp hash (prefix)", "tcp latency (s)", "bytes", "sites"],
        [
            [r["query"][:44], r["equal"], r["tcp_hash"][:16],
             r["tcp_latency_s"], human_bytes(r["bytes"]), r["sites"]]
            for r in equiv_rows
        ],
    )
    load_table = format_table(
        "E15b: rpc.echo serving envelope (one site process)",
        ["payload", "clients", "requests", "throughput (req/s)",
         "p50 (ms)", "p95 (ms)", "p99 (ms)"],
        [
            [human_bytes(r["payload_bytes"]), r["concurrency"], r["requests"],
             r["throughput_rps"], r["p50_ms"], r["p95_ms"], r["p99_ms"]]
            for r in load_rows
        ],
    )
    trace_table = format_table(
        "E15c: cross-process trace propagation",
        ["remote spans", "re-parented under local", "orphaned", "total spans"],
        [[trace_stats["remote_spans"], trace_stats["reparented_under_local"],
          trace_stats["orphaned"], trace_stats["total_spans"]]],
    )
    emit("e15_rpc_serving", table + "\n\n" + load_table + "\n\n" + trace_table)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="small CI-smoke workload")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write a {bench, params, metrics, timestamp} "
                             "BENCH_e15.json envelope to PATH")
    args = parser.parse_args(argv)
    site_count = FAST_SITES if args.fast else SITES
    records = FAST_RECORDS if args.fast else RECORDS_PER_SITE
    payload_sizes = FAST_PAYLOAD_BYTES if args.fast else PAYLOAD_BYTES
    concurrency_levels = FAST_CONCURRENCY if args.fast else CONCURRENCY
    requests = FAST_REQUESTS if args.fast else REQUESTS_PER_COMBO

    procs, addrs = start_site_fleet(site_count, records, SEED)
    try:
        equiv_rows, trace_stats = run_equivalence(addrs, site_count, records)
        load_rows = run_load(
            addrs["hospital-0"], payload_sizes, concurrency_levels, requests
        )
    finally:
        stop_site_fleet(procs)

    report(equiv_rows, trace_stats, load_rows)
    equivalent = all(r["equal"] for r in equiv_rows)
    traced = (
        trace_stats["remote_spans"] > 0
        and trace_stats["reparented_under_local"] > 0
        and trace_stats["orphaned"] == 0
    )
    emit_json(
        args.json, "e15_rpc_serving",
        {
            "sites": site_count,
            "records_per_site": records,
            "seed": SEED,
            "queries": len(QUERIES),
            "payload_bytes": list(payload_sizes),
            "concurrency": list(concurrency_levels),
            "requests_per_combo": requests,
        },
        {
            "equivalent": equivalent,
            "trace_propagated": traced,
            "equivalence": equiv_rows,
            "trace": trace_stats,
            "load": load_rows,
        },
    )
    if not equivalent:
        print("E15 FAIL: tcp and inproc gateways composed different results",
              file=sys.stderr)
        return 1
    if not traced:
        print("E15 FAIL: remote spans missing or not re-parented",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
