"""E20 — Erasure-coded data availability: throughput, recovery, audits.

Exercises the full ``repro.da`` stack and gates its load-bearing claims:

- **coding throughput**: NumPy-vectorized vs pure-python reference
  encode/decode MB/s over one large blob, with the two implementations
  asserted byte-for-byte identical on every measured run;
- **round-trip**: disperse → retrieve latency across chunk size × (k, n)
  geometries, every reconstruction asserted bit-identical to the source;
- **recovery**: retrieval and repair after losing exactly ``n − k`` whole
  sites — the worst loss the code guarantees to survive — plus the loud
  failure one further loss must produce;
- **audit**: sampling-audit cost vs the analytic ``1 − (1 − f)^s``
  confidence curve for s ∈ {8..128}, and a fixed-seed s=64 audit that must
  flag a site withholding 5% of the blob's chunks (the detection gate CI
  enforces).

Timings use wall clock (this benchmark measures real coding work, not
simulated time); all randomness is seeded so the gates are deterministic.
"""

from __future__ import annotations

import argparse
import sys
import time
from itertools import combinations

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, emit_json, format_table, human_bytes

from repro.common.errors import DataAvailabilityError
from repro.da.clients import clients_for_stores
from repro.da.dispersal import Disperser, Repairer, Retriever
from repro.da.erasure import default_coder
from repro.da.gf256 import have_numpy
from repro.da.manifest import decode_blob, encode_blob
from repro.da.sampling import Sampler, confidence
from repro.da.store import ChunkStore

SEED = 20
WITHHELD_FRAC = 0.05
AUDIT_SAMPLES = 64
AUDIT_SEEDS = 40  # seeded audits per point on the detection curve


def _blob(size: int, salt: int = 0) -> bytes:
    return bytes((i * 31 + (i >> 8) * 7 + salt) % 256 for i in range(size))


# -- 1. coding throughput ----------------------------------------------------

def coding_throughput(fast: bool) -> dict:
    size = 256 * 1024 if fast else 2 * 1024 * 1024
    k, n = 4, 6
    rows = [_blob(size // k, salt=j) for j in range(k)]
    kinds = ["reference", "numpy"] if have_numpy() else ["reference"]
    out = {"rows": [], "agree": True, "size_bytes": size}
    encoded = {}
    for kind in kinds:
        coder = default_coder(k, n, kind)
        start = time.perf_counter()
        shares = coder.encode(rows)
        encode_s = time.perf_counter() - start
        encoded[kind] = shares
        held = {i: shares[i] for i in range(n - k, n)}  # force real decoding
        start = time.perf_counter()
        decoded = coder.decode(held)
        decode_s = time.perf_counter() - start
        assert decoded == rows, f"{kind} decode not bit-identical"
        out["rows"].append(
            {
                "coder": kind,
                "encode_s": encode_s,
                "decode_s": decode_s,
                "encode_mb_s": size / encode_s / 1e6,
                "decode_mb_s": size / decode_s / 1e6,
            }
        )
    if len(encoded) == 2:
        out["agree"] = encoded["reference"] == encoded["numpy"]
    if have_numpy():
        reference = next(r for r in out["rows"] if r["coder"] == "reference")
        vector = next(r for r in out["rows"] if r["coder"] == "numpy")
        out["vector_speedup"] = reference["encode_s"] / vector["encode_s"]
    return out


# -- 2. round-trip latency across geometries ---------------------------------

def round_trip(fast: bool) -> dict:
    size = 128 * 1024 if fast else 1024 * 1024
    blob = _blob(size, salt=3)
    geometries = [(2, 3), (2, 4), (4, 6), (6, 9)]
    chunk_sizes = [4 * 1024, 16 * 1024] if fast else [4 * 1024, 16 * 1024, 64 * 1024]
    rows = []
    for chunk_size in chunk_sizes:
        for k, n in geometries:
            stores = [ChunkStore(f"s{i}") for i in range(n)]
            clients = clients_for_stores(stores)
            start = time.perf_counter()
            receipt = Disperser(list(clients.values())).disperse(
                blob, k=k, n=n, chunk_size=chunk_size
            )
            disperse_s = time.perf_counter() - start
            start = time.perf_counter()
            recovered = Retriever(clients).retrieve(receipt.manifest)
            retrieve_s = time.perf_counter() - start
            assert recovered == blob, f"(k={k}, n={n}) round trip corrupted"
            rows.append(
                {
                    "chunk_size": chunk_size,
                    "k": k,
                    "n": n,
                    "stripes": receipt.manifest.stripes,
                    "overhead": n / k,
                    "disperse_s": disperse_s,
                    "retrieve_s": retrieve_s,
                }
            )
    return {"size_bytes": size, "rows": rows, "bit_identical": True}


# -- 3. recovery from n - k site loss ----------------------------------------

def site_loss_recovery(fast: bool) -> dict:
    size = 96 * 1024 if fast else 512 * 1024
    blob = _blob(size, salt=7)
    k, n, chunk_size = 3, 5, 8 * 1024
    out = {"k": k, "n": n, "subset_checks": 0, "rows": []}

    # every k-of-n share subset reconstructs bit-identically (small blob)
    small = _blob(8 * 1024, salt=11)
    manifest, shares = encode_blob(small, chunk_size=1024, k=k, n=n)
    for subset in combinations(range(n), k):
        chunks = {
            manifest.leaf_index(stripe, share): shares[share][stripe]
            for stripe in range(manifest.stripes)
            for share in subset
        }
        assert decode_blob(manifest, chunks) == small, f"subset {subset}"
        out["subset_checks"] += 1

    for lost_count in range(n - k + 1):
        stores = [ChunkStore(f"s{i}") for i in range(n)]
        clients = clients_for_stores(stores)
        receipt = Disperser(list(clients.values())).disperse(
            blob, k=k, n=n, chunk_size=chunk_size
        )
        lost_sites = [f"s{i}" for i in range(lost_count)]
        for site in lost_sites:
            stores[int(site[1:])].drop_blob(receipt.manifest.blob_id)
        survivors = {
            name: c for name, c in clients.items() if name not in lost_sites
        }
        start = time.perf_counter()
        recovered = Retriever(survivors).retrieve(receipt.manifest)
        retrieve_s = time.perf_counter() - start
        assert recovered == blob, f"lost {lost_count} sites: corrupted"
        start = time.perf_counter()
        repair = Repairer(clients).repair(receipt.manifest)
        repair_s = time.perf_counter() - start
        assert repair.fully_repaired
        out["rows"].append(
            {
                "lost_sites": lost_count,
                "retrieve_s": retrieve_s,
                "repair_s": repair_s,
                "chunks_restored": repair.restored,
                "bytes_moved": repair.bytes_moved,
            }
        )

    # one loss beyond tolerance must fail loudly, never return garbage
    stores = [ChunkStore(f"s{i}") for i in range(n)]
    clients = clients_for_stores(stores)
    receipt = Disperser(list(clients.values())).disperse(
        blob, k=k, n=n, chunk_size=chunk_size
    )
    survivors = {name: c for i, (name, c) in enumerate(clients.items()) if i >= n - k + 1}
    try:
        Retriever(survivors).retrieve(receipt.manifest)
        out["over_loss_fails_loudly"] = False
    except DataAvailabilityError:
        out["over_loss_fails_loudly"] = True
    return out


# -- 4. sampling-audit cost vs confidence ------------------------------------

def audit_curve(fast: bool) -> dict:
    size = 128 * 1024 if fast else 512 * 1024
    blob = _blob(size, salt=13)
    k, n, chunk_size = 2, 4, 1024
    stores = [ChunkStore(f"s{i}") for i in range(n)]
    clients = clients_for_stores(stores)
    receipt = Disperser(list(clients.values())).disperse(
        blob, k=k, n=n, chunk_size=chunk_size
    )
    manifest = receipt.manifest
    total = manifest.leaf_count

    # one site withholds WITHHELD_FRAC of the *blob's* chunks
    withheld = max(1, int(total * WITHHELD_FRAC))
    victim = stores[1]
    victim.drop_chunks(
        manifest.blob_id, victim.indices(manifest.blob_id)[:withheld]
    )
    actual_frac = withheld / total
    sampler = Sampler(clients)

    rows = []
    for samples in (8, 16, 32, 64, 128):
        detected = 0
        challenged = 0
        start = time.perf_counter()
        for seed in range(AUDIT_SEEDS):
            report = sampler.audit(manifest, samples=samples, seed=seed)
            challenged += report.samples
            if not report.ok:
                detected += 1
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "samples": samples,
                "predicted_confidence": confidence(actual_frac, samples),
                "empirical_detection": detected / AUDIT_SEEDS,
                "audit_cost_s": elapsed / AUDIT_SEEDS,
                "chunks_challenged": challenged // AUDIT_SEEDS,
            }
        )

    # THE gate: a fixed-seed s=64 audit flags the withholding site
    gate = sampler.audit(manifest, samples=AUDIT_SAMPLES, seed=SEED)
    return {
        "total_chunks": total,
        "withheld_chunks": withheld,
        "withheld_frac": actual_frac,
        "curve": rows,
        "gate_flagged_sites": gate.flagged_sites,
        "gate_detected": not gate.ok,
    }


# -- harness -----------------------------------------------------------------

def run_experiment(fast: bool = False) -> dict:
    return {
        "coding": coding_throughput(fast),
        "round_trip": round_trip(fast),
        "recovery": site_loss_recovery(fast),
        "audit": audit_curve(fast),
    }


def report(result: dict) -> dict:
    coding = result["coding"]
    emit(
        "e20_da_coding",
        format_table(
            f"E20a coding throughput over {human_bytes(coding['size_bytes'])}"
            " (k=4, n=6)",
            ["coder", "encode MB/s", "decode MB/s"],
            [
                [r["coder"], r["encode_mb_s"], r["decode_mb_s"]]
                for r in coding["rows"]
            ],
        ),
    )
    rt = result["round_trip"]
    emit(
        "e20_da_round_trip",
        format_table(
            f"E20b disperse/retrieve of {human_bytes(rt['size_bytes'])}",
            ["chunk", "k", "n", "stripes", "overhead", "disperse s", "retrieve s"],
            [
                [
                    human_bytes(r["chunk_size"]), r["k"], r["n"], r["stripes"],
                    r["overhead"], r["disperse_s"], r["retrieve_s"],
                ]
                for r in rt["rows"]
            ],
        ),
    )
    rec = result["recovery"]
    emit(
        "e20_da_recovery",
        format_table(
            f"E20c recovery, k={rec['k']} n={rec['n']} "
            f"({rec['subset_checks']} subsets verified)",
            ["sites lost", "retrieve s", "repair s", "chunks restored"],
            [
                [r["lost_sites"], r["retrieve_s"], r["repair_s"],
                 r["chunks_restored"]]
                for r in rec["rows"]
            ],
        ),
    )
    audit = result["audit"]
    emit(
        "e20_da_audit",
        format_table(
            f"E20d sampling audits, {audit['withheld_chunks']}/"
            f"{audit['total_chunks']} chunks withheld "
            f"(f={audit['withheld_frac']:.3f})",
            ["samples", "predicted", "empirical", "cost s/audit"],
            [
                [r["samples"], r["predicted_confidence"],
                 r["empirical_detection"], r["audit_cost_s"]]
                for r in audit["curve"]
            ],
        ),
    )
    return result


def check(result: dict) -> None:
    """The CI gate: reconstruction identity + withholding detection."""
    coding = result["coding"]
    assert coding["agree"], "NumPy and reference coders disagree"
    assert result["round_trip"]["bit_identical"]
    recovery = result["recovery"]
    assert recovery["subset_checks"] == 10, recovery["subset_checks"]
    assert recovery["over_loss_fails_loudly"], (
        "losing more than n-k sites must raise, not return garbage"
    )
    for row in recovery["rows"]:
        if row["lost_sites"]:
            assert row["chunks_restored"] > 0, row
    audit = result["audit"]
    assert audit["gate_detected"], (
        f"s={AUDIT_SAMPLES} audit missed {audit['withheld_frac']:.1%} withholding"
    )
    assert audit["gate_flagged_sites"] == ["s1"], audit["gate_flagged_sites"]
    s64 = next(r for r in audit["curve"] if r["samples"] == AUDIT_SAMPLES)
    # empirical detection within sampling noise of the analytic bound
    assert s64["empirical_detection"] >= s64["predicted_confidence"] - 0.15, s64


def test_e20_da(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment(fast=True), rounds=1, iterations=1
    )
    report(result)
    check(result)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="smaller blobs and fewer geometries")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write a {bench, params, metrics, timestamp} "
                             "envelope to PATH")
    parser.add_argument("--no-gate", action="store_true",
                        help="report without asserting the CI invariants")
    args = parser.parse_args(argv)
    result = report(run_experiment(fast=args.fast))
    emit_json(args.json, "e20_da",
              {"fast": args.fast, "seed": SEED,
               "withheld_frac": WITHHELD_FRAC,
               "audit_samples": AUDIT_SAMPLES,
               "numpy": have_numpy()},
              result)
    if not args.no_gate:
        check(result)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
