"""E14 — state-layer scaling: journaled CoW state vs seed full-copy state.

The seed implementation deep-copied values on every get/set, snapshotted by
deep-copying the *entire* state dict, and recomputed the state root by
re-serializing everything.  All three costs grow with total state size, so
per-block work grows as the ledger grows — the opposite of what a long-lived
precision-medicine chain needs.

This benchmark sweeps total state size and measures, per size:

- tx apply latency (snapshot + writes + commit, the per-transaction path),
- snapshot + rollback cost (the failed-transaction path),
- state-root time after a fixed-size write set.

With the journaled implementation all three should stay ~flat as the state
grows (cost tracks the write-set size); with ``--naive`` (an inline replica
of the seed semantics) they grow with total state size.  The run also
cross-checks root equivalence: the incremental fragment-assembled root must
equal the from-scratch full-serialization digest, and the bucketed Merkle
root must equal its reference recomputation.  CI gates on those booleans.
"""

from __future__ import annotations

import argparse
import copy
import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, emit_json, format_table

from repro.chain.state import StateDB, bucketed_root_of_dict
from repro.common.hashing import hash_value

SIZES = (1_000, 5_000, 20_000)
FAST_SIZES = (200, 1_000)
WRITES_PER_TX = 20
TXS_PER_SIZE = 10


class NaiveStateDB:
    """Inline replica of the seed state semantics (the pre-refactor baseline).

    Deep-copy on read and write, full-dict deep-copy snapshots, and a root
    recomputed from scratch by re-serializing the whole state.  Kept here —
    not in ``repro.chain`` — so the production tree carries exactly one
    state implementation.
    """

    def __init__(self, initial=None):
        self._data = dict(initial or {})
        self._snapshots = []

    def get(self, key, default=None):
        return copy.deepcopy(self._data.get(key, default))

    def set(self, key, value):
        self._data[key] = copy.deepcopy(value)

    def snapshot(self):
        self._snapshots.append(copy.deepcopy(self._data))

    def commit(self):
        self._snapshots.pop()

    def rollback(self):
        self._data = self._snapshots.pop()

    def state_root(self):
        return hash_value(self._data, allow_float=False)

    def to_dict(self):
        return copy.deepcopy(self._data)


def _base_data(size: int) -> dict:
    return {
        f"k/{i:08d}": {"v": i, "pad": "x" * 32, "tags": [i % 7, i % 11]}
        for i in range(size)
    }


def _write_keys(size: int, round_index: int) -> list:
    # Deterministic pseudo-random spread across the key space.
    stride = 7919  # prime, so keys cycle through the whole space
    return [
        f"k/{((round_index * WRITES_PER_TX + j) * stride) % size:08d}"
        for j in range(WRITES_PER_TX)
    ]


def _bench_one_size(size: int, naive: bool) -> dict:
    data = _base_data(size)
    state = NaiveStateDB(data) if naive else StateDB(data)
    # Warm the root caches so the measured root cost is the steady-state
    # incremental cost, not first-touch cache construction.
    state.state_root()
    if not naive:
        state.incremental_root()

    # Tx apply path: snapshot + writes + commit per transaction.
    start = time.perf_counter()
    for tx_index in range(TXS_PER_SIZE):
        state.snapshot()
        for key in _write_keys(size, tx_index):
            value = state.get(key)
            state.set(key, {**value, "v": value["v"] + 1})
        state.commit()
    tx_apply_ms = (time.perf_counter() - start) * 1000 / TXS_PER_SIZE

    # Failed-tx path: snapshot + writes + rollback.
    start = time.perf_counter()
    state.snapshot()
    for key in _write_keys(size, TXS_PER_SIZE):
        state.set(key, {"v": -1, "pad": "", "tags": []})
    state.rollback()
    snapshot_rollback_ms = (time.perf_counter() - start) * 1000

    # Root after a bounded write set.
    for key in _write_keys(size, TXS_PER_SIZE + 1):
        value = state.get(key)
        state.set(key, {**value, "v": value["v"] * 2})
    start = time.perf_counter()
    root = state.state_root()
    root_ms = (time.perf_counter() - start) * 1000

    row = {
        "state_size": size,
        "impl": "naive" if naive else "journaled",
        "tx_apply_ms": tx_apply_ms,
        "snapshot_rollback_ms": snapshot_rollback_ms,
        "root_ms": root_ms,
    }
    if not naive:
        # Equivalence cross-checks (the CI gate reads these).
        start = time.perf_counter()
        full = hash_value(state.to_dict(), allow_float=False)
        full_root_ms = (time.perf_counter() - start) * 1000
        row["full_root_ms"] = full_root_ms
        row["root_equivalent"] = root == full
        row["incremental_equivalent"] = (
            state.incremental_root() == state.recompute_incremental_root()
            and state.incremental_root() == bucketed_root_of_dict(state.to_dict())
        )
    return row


def run_experiment(sizes=SIZES, naive: bool = False):
    return [_bench_one_size(size, naive) for size in sizes]


def report(rows):
    impl = rows[0]["impl"]
    table = format_table(
        f"E14: state scaling — {impl} implementation, "
        f"{WRITES_PER_TX} writes/tx",
        ["state size", "tx apply (ms)", "snapshot+rollback (ms)",
         "root after writes (ms)"],
        [
            [r["state_size"], r["tx_apply_ms"], r["snapshot_rollback_ms"],
             r["root_ms"]]
            for r in rows
        ],
    )
    emit(f"e14_state_scaling_{impl}", table)
    return rows


def _metrics(rows):
    smallest, largest = rows[0], rows[-1]
    size_ratio = largest["state_size"] / smallest["state_size"]
    return {
        "rows": rows,
        "size_ratio": size_ratio,
        "tx_apply_growth": largest["tx_apply_ms"] / max(smallest["tx_apply_ms"], 1e-9),
        "snapshot_growth": largest["snapshot_rollback_ms"]
        / max(smallest["snapshot_rollback_ms"], 1e-9),
        "root_growth": largest["root_ms"] / max(smallest["root_ms"], 1e-9),
        "root_equivalent": all(r.get("root_equivalent", True) for r in rows),
        "incremental_equivalent": all(
            r.get("incremental_equivalent", True) for r in rows
        ),
    }


def test_e14_state_scaling(benchmark):
    rows = benchmark.pedantic(
        lambda: run_experiment(sizes=FAST_SIZES), rounds=1, iterations=1
    )
    report(rows)
    metrics = _metrics(rows)
    # Consensus-critical: the incremental machinery must agree with the
    # from-scratch digests, always.
    assert metrics["root_equivalent"]
    assert metrics["incremental_equivalent"]
    # Cost tracks the write set, not the state: at the largest size, the
    # incremental root must beat re-serializing the full state decisively.
    largest = rows[-1]
    assert largest["root_ms"] < largest["full_root_ms"]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--naive", action="store_true",
                        help="measure the seed-era full-copy implementation "
                             "instead of the journaled one")
    parser.add_argument("--fast", action="store_true",
                        help="small CI-smoke workload")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write a {bench, params, metrics, timestamp} "
                             "BENCH_e14.json envelope to PATH")
    args = parser.parse_args(argv)
    sizes = FAST_SIZES if args.fast else SIZES
    rows = report(run_experiment(sizes=sizes, naive=args.naive))
    metrics = _metrics(rows)
    emit_json(args.json, "e14_state_scaling",
              {"impl": rows[0]["impl"], "sizes": list(sizes),
               "writes_per_tx": WRITES_PER_TX, "txs_per_size": TXS_PER_SIZE},
              metrics)
    if not args.naive and not (
        metrics["root_equivalent"] and metrics["incremental_equivalent"]
    ):
        print("E14 FAIL: incremental roots diverged from recomputation",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
