"""E1 — Blockchain scalability (paper section I).

Claim: "the performance (transaction latency and throughput) cannot scale up
proportionally along with the number of nodes increasing.  On the contrary,
the performance of a single node is better than multiple nodes due to the
faster consensus."

Workload: a fixed stream of 40 transfer transactions on PoW networks of
1/2/4/8 nodes.  The *aggregate* hash rate is held constant (the same
hardware pool, more or less distributed), so block discovery time is the
same in expectation and the comparison isolates the cost of distribution:
broadcast traffic, propagation latency, and fork races.  Reported per
network size: simulated time to commit all, throughput, mean and p95 commit
latency, and broadcast messages sent.
"""

from __future__ import annotations

import argparse
import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, emit_json, format_table

from repro.chain.blocks import make_genesis
from repro.chain.state import StateDB
from repro.chain.transactions import make_transfer
from repro.common.signatures import KeyPair
from repro.consensus.node import NodeConfig, make_network_nodes
from repro.consensus.pow import ProofOfWork
from repro.sim.kernel import Kernel
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import Network

TX_COUNT = 40
NODE_COUNTS = (1, 2, 4, 8)
TOTAL_HASH_RATE = 4e3  # hashes/second across the whole network


def run_network(node_count: int, seed: int = 3):
    kernel = Kernel(seed=seed)
    metrics = MetricsRegistry()
    network = Network(kernel, metrics)
    funder = KeyPair.generate("e1-funder")
    state = StateDB()
    state.credit(funder.address, 10**9)
    genesis = make_genesis(state.state_root())
    names = [f"n{i}" for i in range(node_count)]
    engine = ProofOfWork(
        difficulty_bits=10, default_hash_rate=TOTAL_HASH_RATE / node_count
    )
    nodes = make_network_nodes(
        kernel, network, names, genesis, state, lambda: engine,
        metrics=metrics, config=NodeConfig(max_txs_per_block=5),
    )
    for node in nodes.values():
        node.start()
    txs = [make_transfer(funder, "sink", 1, nonce=n) for n in range(TX_COUNT)]
    start = kernel.now
    for index, tx in enumerate(txs):
        kernel.schedule(0.2 * index, lambda t=tx: nodes[names[0]].submit_tx(t))
    kernel.run(
        until=3600,
        stop_when=lambda: all(
            nodes[names[0]].receipt(tx.tx_id) is not None for tx in txs
        ),
    )
    elapsed = kernel.now - start
    latency = metrics.histogram("tx_commit_latency_s")
    return {
        "nodes": node_count,
        "sim_seconds": elapsed,
        "throughput_tps": TX_COUNT / elapsed if elapsed else 0.0,
        "mean_latency_s": latency.mean,
        "p95_latency_s": latency.percentile(0.95),
        "messages": network.messages_sent,
    }


def run_experiment():
    return [run_network(count) for count in NODE_COUNTS]


def report(rows):
    table = format_table(
        "E1: PoW consensus scalability (fixed 40-tx load)",
        ["nodes", "sim time (s)", "throughput (tx/s)", "mean commit lat (s)",
         "p95 lat (s)", "msgs sent"],
        [
            [r["nodes"], r["sim_seconds"], r["throughput_tps"],
             r["mean_latency_s"], r["p95_latency_s"], r["messages"]]
            for r in rows
        ],
    )
    emit("e1_consensus_scalability", table)
    return rows


def test_e1_consensus_scalability(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(rows)
    # The paper's claim: more nodes do not increase throughput.
    single = next(r for r in rows if r["nodes"] == 1)
    eight = next(r for r in rows if r["nodes"] == 8)
    assert eight["throughput_tps"] <= single["throughput_tps"] * 1.3
    # Broadcast traffic explodes with the node count.
    assert eight["messages"] > 10 * single["messages"]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write a {bench, params, metrics, timestamp} "
                             "envelope to PATH")
    args = parser.parse_args(argv)
    rows = report(run_experiment())
    emit_json(args.json, "e1_consensus_scalability",
              {"tx_count": TX_COUNT, "node_counts": list(NODE_COUNTS),
               "total_hash_rate": TOTAL_HASH_RATE},
              {"rows": rows})
    return 0


if __name__ == "__main__":
    sys.exit(main())
