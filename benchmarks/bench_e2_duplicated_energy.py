"""E2 — Duplicated validation wastes energy (paper section I).

Claim (via Digiconomist): PoW mining burns energy proportional to the miner
population for the *same* useful work, because every miner races every
block; PoS "resolves the wasting energy issue" by replacing hashing with
virtual mining.

Workload: commit the same 20-transaction load on PoW networks of 1/2/4/8
miners (constant per-miner hash rate — more miners means more total
hardware racing), and on an 8-node PoS network.  Reported: total hash
attempts, energy in joules, and energy per committed transaction.
"""

from __future__ import annotations

import argparse
import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, emit_json, format_table

from repro.chain.blocks import make_genesis
from repro.chain.state import StateDB
from repro.chain.transactions import make_transfer
from repro.common.signatures import KeyPair
from repro.consensus.node import NodeConfig, make_network_nodes
from repro.consensus.pos import ProofOfStake
from repro.consensus.pow import ProofOfWork
from repro.sim.kernel import Kernel
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import Network

TX_COUNT = 20
MINER_COUNTS = (1, 2, 4, 8)


def run_load(node_count: int, consensus: str, seed: int = 11):
    kernel = Kernel(seed=seed)
    metrics = MetricsRegistry()
    network = Network(kernel, metrics)
    funder = KeyPair.generate("e2-funder")
    state = StateDB()
    state.credit(funder.address, 10**9)
    genesis = make_genesis(state.state_root())
    names = [f"m{i}" for i in range(node_count)]
    if consensus == "pow":
        # Real PoW networks retarget difficulty to hold block time constant:
        # doubling the mining population doubles difficulty, so the same
        # useful work burns proportionally more hashes (Digiconomist's
        # observation).  2^bits scales with the miner count.
        bits = 10 + int(node_count).bit_length() - 1  # 10,11,12,13 for 1,2,4,8
        engine = ProofOfWork(difficulty_bits=bits, default_hash_rate=2e3)
    else:
        engine = ProofOfStake({name: 100 for name in names}, round_time_s=1.0)
    nodes = make_network_nodes(
        kernel, network, names, genesis, state, lambda: engine,
        metrics=metrics, config=NodeConfig(max_txs_per_block=4),
    )
    for node in nodes.values():
        node.start()
    txs = [make_transfer(funder, "sink", 1, nonce=n) for n in range(TX_COUNT)]
    for tx in txs:
        nodes[names[0]].submit_tx(tx)
    kernel.run(
        until=7200,
        stop_when=lambda: all(
            nodes[names[0]].receipt(tx.tx_id) is not None for tx in txs
        ),
    )
    hashes = metrics.counter_total("hashes")
    energy = metrics.total_energy_joules()
    return {
        "consensus": consensus,
        "miners": node_count,
        "hashes": hashes,
        "energy_j": energy,
        "energy_per_tx_j": energy / TX_COUNT,
    }


def run_experiment():
    rows = [run_load(count, "pow") for count in MINER_COUNTS]
    rows.append(run_load(8, "pos"))
    return rows


def report(rows):
    table = format_table(
        "E2: energy burned to commit the same 20-tx load",
        ["consensus", "miners", "hash attempts", "energy (J)", "J per tx"],
        [
            [r["consensus"], r["miners"], r["hashes"], r["energy_j"],
             r["energy_per_tx_j"]]
            for r in rows
        ],
    )
    emit("e2_duplicated_energy", table)
    return rows


def test_e2_duplicated_energy(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(rows)
    pow_rows = [r for r in rows if r["consensus"] == "pow"]
    one, eight = pow_rows[0], pow_rows[-1]
    # Energy grows ~linearly with the miner population (at least 4x for 8x).
    assert eight["hashes"] > 4 * one["hashes"]
    # PoS removes essentially all hash energy.
    pos = rows[-1]
    assert pos["hashes"] < 0.01 * eight["hashes"]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write a {bench, params, metrics, timestamp} "
                             "envelope to PATH")
    args = parser.parse_args(argv)
    rows = report(run_experiment())
    emit_json(args.json, "e2_duplicated_energy",
              {"tx_count": TX_COUNT, "miner_counts": list(MINER_COUNTS)},
              {"rows": rows})
    return 0


if __name__ == "__main__":
    sys.exit(main())
