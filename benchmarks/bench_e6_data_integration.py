"""E6 — Heterogeneous data integration and record linkage (Figure 3, §III.A).

Claim: blockchain-managed distributed data management can compose "a large
size core initial training data set" out of per-hospital silos in different
legacy formats, including re-linking the records of patients who visited
several hospitals.

Workload: 4 sites storing cohorts in hl7v2 / fhirjson / legacycsv /
canonical formats, plus 80 patients who visited two hospitals each.
Reported: (a) the virtual-cohort size vs the largest single silo,
(b) schema-mapping fidelity on every access path, and (c) linkage
precision/recall as the fraction of records carrying a national id falls.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, emit_json, format_table

from repro.datamgmt.cohort import CohortGenerator, default_site_profiles, shared_patients
from repro.datamgmt.linkage import RecordLinker, evaluate_linkage
from repro.datamgmt.store import HospitalDataStore
from repro.datamgmt.virtual import DatasetRef, VirtualCohort

SITES = 4
RECORDS_PER_SITE = 150
SHARED_PATIENTS = 80
MASK_FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.0)
FORMATS = ("hl7v2", "fhirjson", "legacycsv", "canonical")


def build_silos():
    generator = CohortGenerator(seed=66)
    profiles = default_site_profiles(SITES)
    cohorts = generator.generate_multi_site(profiles, RECORDS_PER_SITE)
    stores = {}
    virtual = VirtualCohort(lambda site: stores[site])
    for index, (site, records) in enumerate(sorted(cohorts.items())):
        store = HospitalDataStore(site)
        store.add_canonical(f"emr-{site}", records, fmt=FORMATS[index])
        stores[site] = store
        virtual.add_ref(DatasetRef(site, f"emr-{site}", len(records)))
    return generator, profiles, cohorts, stores, virtual


def linkage_rows(generator, profiles):
    groups = shared_patients(generator, profiles, SHARED_PATIENTS, 2)
    rows = []
    for fraction in MASK_FRACTIONS:
        rng = np.random.default_rng(int(fraction * 100))
        records = []
        for person, group in enumerate(groups):
            for record in group:
                copy = dict(record)
                copy["_person"] = person
                if rng.random() < fraction:
                    copy["national_id_hash"] = ""
                records.append(copy)
        result = RecordLinker().link(records)
        metrics = evaluate_linkage(result)
        rows.append(
            {
                "masked": fraction,
                "precision": metrics["precision"],
                "recall": metrics["recall"],
                "f1": metrics["f1"],
                "deterministic_links": result.deterministic_links,
                "probabilistic_links": result.probabilistic_links,
            }
        )
    return rows


def run_experiment():
    generator, profiles, cohorts, stores, virtual = build_silos()
    # Virtual cohort vs silos.
    silo_sizes = {site: len(records) for site, records in cohorts.items()}
    composition = {
        "virtual_total": virtual.total_records,
        "largest_silo": max(silo_sizes.values()),
        "scale_factor": virtual.total_records / max(silo_sizes.values()),
        "stroke_prevalence": virtual.prevalence("stroke"),
        "mean_sbp": virtual.numeric_summary("vitals.sbp").mean,
    }
    # Mapping fidelity: every silo's canonical view validates and matches.
    fidelity = 0
    checked = 0
    from repro.datamgmt.schema import is_canonical

    for site, records in cohorts.items():
        accessed = stores[site].get_records(f"emr-{site}")
        for original, mapped in zip(records, accessed):
            checked += 1
            if is_canonical(mapped) and mapped["birth_year"] == original["birth_year"]:
                fidelity += 1
    composition["mapping_fidelity"] = fidelity / checked
    return composition, linkage_rows(generator, profiles)


def report(result):
    composition, rows = result
    table_a = format_table(
        "E6a: virtual cohort composed across 4 legacy-format silos",
        ["virtual records", "largest silo", "scale factor",
         "stroke prevalence", "mean SBP", "mapping fidelity"],
        [[composition["virtual_total"], composition["largest_silo"],
          composition["scale_factor"], composition["stroke_prevalence"],
          composition["mean_sbp"], composition["mapping_fidelity"]]],
    )
    table_b = format_table(
        "E6b: cross-site record linkage vs national-id masking",
        ["masked frac", "precision", "recall", "F1",
         "deterministic links", "probabilistic links"],
        [
            [r["masked"], r["precision"], r["recall"], r["f1"],
             r["deterministic_links"], r["probabilistic_links"]]
            for r in rows
        ],
    )
    emit("e6_data_integration", table_a + "\n\n" + table_b)
    return result


def test_e6_data_integration(benchmark):
    composition, rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report((composition, rows))
    assert composition["scale_factor"] >= SITES - 0.01
    assert composition["mapping_fidelity"] == 1.0
    assert rows[0]["recall"] == 1.0  # full ids -> every true pair found
    assert all(row["f1"] > 0.75 for row in rows)  # genomics keep it strong


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write a {bench, params, metrics, timestamp} "
                             "envelope to PATH")
    args = parser.parse_args(argv)
    composition, rows = report(run_experiment())
    emit_json(args.json, "e6_data_integration",
              {"sites": SITES, "records_per_site": RECORDS_PER_SITE,
               "shared_patients": SHARED_PATIENTS,
               "mask_fractions": list(MASK_FRACTIONS)},
              {"composition": composition, "linkage_rows": rows})
    return 0


if __name__ == "__main__":
    sys.exit(main())
