"""E13 — Lightning-style channels reduce ledger load, not duplication (§I).

Claim: "lightning network reduces the loading of the number of transactions
to improve the system overall performance ... but it is still a duplicated
computing mechanism."

Workload: two parties exchange K payments, (a) as on-chain transfers on a
4-node PoA network, and (b) inside a state channel that settles once.
Reported: on-chain transactions, total gas, bytes broadcast, and simulated
time — plus the observation that the *settlement* transactions are still
executed by every node (duplication survives).
"""

from __future__ import annotations

import argparse
import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, emit_json, format_table, human_bytes

from repro.chain.blocks import make_genesis
from repro.chain.channels import StateChannel
from repro.chain.state import StateDB
from repro.chain.transactions import make_transfer
from repro.common.signatures import KeyPair
from repro.consensus.node import NodeConfig, make_network_nodes
from repro.consensus.poa import ProofOfAuthority
from repro.sim.kernel import Kernel
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import Network

PAYMENTS = 80
NODES = 4


def _network(seed: int):
    kernel = Kernel(seed=seed)
    metrics = MetricsRegistry()
    network = Network(kernel, metrics)
    alice = KeyPair.generate("e13-alice")
    bob = KeyPair.generate("e13-bob")
    state = StateDB()
    state.credit(alice.address, 10**9)
    state.credit(bob.address, 10**9)
    genesis = make_genesis(state.state_root())
    names = [f"v{i}" for i in range(NODES)]
    keypairs = {name: KeyPair.generate(name) for name in names}
    engine = ProofOfAuthority(names, keypairs, block_interval_s=0.5)
    nodes = make_network_nodes(
        kernel, network, names, genesis, state, lambda: engine,
        metrics=metrics, config=NodeConfig(max_txs_per_block=10),
    )
    for node in nodes.values():
        node.start()
    return kernel, metrics, network, nodes, names, alice, bob


def run_onchain(seed: int = 29):
    kernel, metrics, network, nodes, names, alice, bob = _network(seed)
    txs = [make_transfer(alice, bob.address, 1, nonce=n) for n in range(PAYMENTS)]
    for tx in txs:
        nodes[names[0]].submit_tx(tx)
    kernel.run(
        until=3600,
        stop_when=lambda: all(nodes[names[0]].receipt(t.tx_id) for t in txs),
    )
    elapsed = kernel.now
    kernel.run(until=kernel.now + 30)
    return {
        "approach": "on-chain transfers",
        "onchain_txs": PAYMENTS,
        "total_gas": metrics.counter_total("gas"),
        "bytes": metrics.counter_total("bytes_transferred"),
        "sim_seconds": elapsed,
    }


def run_channel(seed: int = 29):
    kernel, metrics, network, nodes, names, alice, bob = _network(seed)
    # Open: one funding transfer into an escrow address (modelled as a
    # transfer); updates happen entirely off chain; close: one settlement.
    open_tx = make_transfer(alice, "channel-escrow", 1000, nonce=0)
    nodes[names[0]].submit_tx(open_tx)
    kernel.run(until=600, stop_when=lambda: nodes[names[0]].receipt(open_tx.tx_id))
    channel = StateChannel("e13-chan", alice, bob, deposit_a=1000, deposit_b=0)
    for __ in range(PAYMENTS):
        channel.propose_update(alice, 1)
    record = channel.close_cooperative()
    close_tx = make_transfer(alice, bob.address, 0, nonce=1)  # settlement marker
    nodes[names[0]].submit_tx(close_tx)
    kernel.run(until=1200, stop_when=lambda: nodes[names[0]].receipt(close_tx.tx_id))
    elapsed = kernel.now
    kernel.run(until=kernel.now + 30)
    per_node_gas = metrics.scopes("gas")
    return {
        "approach": "state channel",
        "onchain_txs": 2,
        "total_gas": metrics.counter_total("gas"),
        "bytes": metrics.counter_total("bytes_transferred"),
        "sim_seconds": elapsed,
        "offchain_updates": channel.updates_exchanged,
        "settlement_duplicated": len(set(per_node_gas.values())) == 1,
        "final_bob_balance": record.final_balances[bob.address],
    }


def run_experiment():
    return [run_onchain(), run_channel()]


def report(rows):
    table = format_table(
        f"E13: {PAYMENTS} payments — on-chain vs state channel ({NODES}-node PoA)",
        ["approach", "on-chain txs", "total gas (all nodes)", "bytes broadcast",
         "sim time (s)"],
        [
            [r["approach"], r["onchain_txs"], r["total_gas"],
             human_bytes(r["bytes"]), r["sim_seconds"]]
            for r in rows
        ],
    )
    emit("e13_state_channels", table)
    return rows


def test_e13_state_channels(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(rows)
    onchain, channel = rows
    # The Lightning claim: txs collapse to open+close, gas and bytes shrink.
    assert channel["onchain_txs"] == 2
    assert channel["total_gas"] < onchain["total_gas"] / 5
    assert channel["bytes"] < onchain["bytes"] / 3
    assert channel["offchain_updates"] == PAYMENTS
    assert channel["final_bob_balance"] == PAYMENTS
    # The paper's counterpoint: what DOES reach the chain is still executed
    # identically by every node.
    assert channel["settlement_duplicated"]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write a {bench, params, metrics, timestamp} "
                             "envelope to PATH")
    args = parser.parse_args(argv)
    rows = report(run_experiment())
    emit_json(args.json, "e13_state_channels",
              {"payments": PAYMENTS, "nodes": NODES},
              {"rows": rows})
    return 0


if __name__ == "__main__":
    sys.exit(main())
