"""E9 — Distributed transfer learning from a core medical model (§III.A/C).

Claim: a large virtual cohort lets the platform learn "a set of core
features and models for the medical domain", and transfer learning then
"jump starts" new small-data disease tasks — the medical analogue of
ImageNet-pretrained CNNs.

Workload: federated multi-task pretraining (stroke + cancer heads, shared
hidden layer) over 4 sites, then fine-tuning a fresh head on a *diabetes*
task with 20..320 labelled examples, vs training from scratch.  Reported:
the transfer-vs-scratch AUC learning curve.
"""

from __future__ import annotations

import argparse
import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, emit_json, format_table

from repro.analytics.features import dataset_for, multitask_dataset_for
from repro.datamgmt.cohort import CohortGenerator, default_site_profiles
from repro.learning.transfer import pretrain_core_multitask, transfer_learning_curve

SOURCE_OUTCOMES = ("stroke", "cancer")
TARGET_OUTCOME = "diabetes"
SITES = 4
RECORDS_PER_SITE = 600
TARGET_SIZES = (20, 40, 80, 160, 320)


def run_experiment():
    generator = CohortGenerator(seed=202)
    profiles = default_site_profiles(SITES)
    cohorts = generator.generate_multi_site(profiles, RECORDS_PER_SITE)
    site_data = {
        site: multitask_dataset_for(records, SOURCE_OUTCOMES)
        for site, records in cohorts.items()
    }
    core = pretrain_core_multitask(
        site_data, SOURCE_OUTCOMES, hidden=24, rounds=25, lr=0.3, seed=1
    ).to_mlp()  # fresh head over the learned shared features
    target_generator = CohortGenerator(seed=909)
    profile = default_site_profiles(1)[0]
    X_pool, y_pool = dataset_for(
        target_generator.generate_cohort(profile, 500), TARGET_OUTCOME
    )
    X_test, y_test = dataset_for(
        target_generator.generate_cohort(profile, 1500), TARGET_OUTCOME
    )
    curve = transfer_learning_curve(
        core, X_pool, y_pool, X_test, y_test, sizes=TARGET_SIZES, epochs=60, seed=2
    )
    return [
        {
            "target_size": point.target_size,
            "transfer_auc": point.transfer_metrics["auc"],
            "scratch_auc": point.scratch_metrics["auc"],
            "gain": point.auc_gain,
        }
        for point in curve
    ]


def report(rows):
    table = format_table(
        f"E9: transfer (pretrained on {'+'.join(SOURCE_OUTCOMES)}) vs scratch "
        f"on {TARGET_OUTCOME}",
        ["target train size", "transfer AUC", "scratch AUC", "AUC gain"],
        [[r["target_size"], r["transfer_auc"], r["scratch_auc"], r["gain"]]
         for r in rows],
    )
    emit("e9_transfer_learning", table)
    return rows


def test_e9_transfer_learning(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(rows)
    # Transfer never loses badly and wins in the small-data regime.
    assert all(row["gain"] > -0.03 for row in rows)
    small = [row for row in rows if row["target_size"] <= 80]
    assert sum(row["gain"] for row in small) / len(small) > 0.02


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write a {bench, params, metrics, timestamp} "
                             "envelope to PATH")
    args = parser.parse_args(argv)
    rows = report(run_experiment())
    emit_json(args.json, "e9_transfer_learning",
              {"source_outcomes": list(SOURCE_OUTCOMES),
               "target_outcome": TARGET_OUTCOME, "sites": SITES,
               "records_per_site": RECORDS_PER_SITE,
               "target_sizes": list(TARGET_SIZES)},
              {"rows": rows})
    return 0


if __name__ == "__main__":
    sys.exit(main())
