"""E16 — Static-analysis throughput and deploy-gate latency.

The ``repro.analysis`` verifier sits on two hot paths: CI lints the whole
tree on every push, and the ``ContractRegistry`` deploy gate runs the
contract family synchronously before every admission.  Both must stay
cheap: this micro-benchmark reports full-tree analysis throughput
(files/s, KLoC/s) and the per-contract verification latency over the
shipped contract library.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, emit_json, format_table

from repro.analysis import analyze_paths
from repro.analysis.verify import verify_contract
from repro.contracts import library

REPO_ROOT = os.path.normpath(os.path.join(os.path.dirname(__file__), ".."))
TREE_PATHS = (
    os.path.join(REPO_ROOT, "src", "repro"),
    os.path.join(REPO_ROOT, "examples"),
)
VERIFY_REPEATS = 25


def count_lines(paths):
    from repro.analysis.engine import iter_python_files

    total = 0
    for path in iter_python_files(paths):
        with open(path, "r", encoding="utf-8") as handle:
            total += sum(1 for _ in handle)
    return total


def run_tree_analysis(paths):
    start = time.perf_counter()
    result = analyze_paths(paths)
    elapsed = time.perf_counter() - start
    lines = count_lines(paths)
    return {
        "target": "full tree" if len(paths) > 1 else os.path.basename(paths[0]),
        "files": result.files_analyzed,
        "embedded_contracts": result.contracts_analyzed,
        "findings": len(result.findings),
        "lines": lines,
        "seconds": elapsed,
        "files_per_s": result.files_analyzed / elapsed if elapsed else 0.0,
        "kloc_per_s": (lines / 1000) / elapsed if elapsed else 0.0,
    }


def run_verify_latency(repeats):
    sources = {
        name: getattr(library, name)
        for name in sorted(dir(library))
        if name.endswith("_SOURCE")
    }
    rows = []
    for name, source in sources.items():
        start = time.perf_counter()
        for __ in range(repeats):
            verify_contract(source, name=name)
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "contract": name,
                "lines": len(source.splitlines()),
                "verify_ms": 1000 * elapsed / repeats,
            }
        )
    return rows


def run_experiment(fast=False):
    paths = (
        [TREE_PATHS[0]]
        if fast
        else [path for path in TREE_PATHS if os.path.exists(path)]
    )
    tree = run_tree_analysis(paths)
    verify = run_verify_latency(3 if fast else VERIFY_REPEATS)
    return tree, verify


def report(result):
    tree, verify = result
    table_a = format_table(
        "E16a: full-tree analysis throughput (repo lints + embedded audit)",
        ["files", "embedded contracts", "findings", "lines", "seconds",
         "files/s", "KLoC/s"],
        [[tree["files"], tree["embedded_contracts"], tree["findings"],
          tree["lines"], tree["seconds"], tree["files_per_s"],
          tree["kloc_per_s"]]],
    )
    table_b = format_table(
        "E16b: deploy-gate verification latency per library contract",
        ["contract", "lines", "verify (ms)"],
        [[r["contract"], r["lines"], r["verify_ms"]] for r in verify],
    )
    emit("e16_analysis", table_a + "\n\n" + table_b)
    return result


def test_e16_analysis(benchmark):
    tree, verify = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report((tree, verify))
    # The tree the gate protects must be clean, and the gate must be fast
    # enough to sit on the deploy path.
    assert tree["findings"] == 0
    assert tree["files"] > 50
    assert tree["embedded_contracts"] >= 6
    assert all(row["verify_ms"] < 500 for row in verify)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="analyze only src/repro and use fewer verify "
                             "repeats")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write a {bench, params, metrics, timestamp} "
                             "envelope to PATH")
    args = parser.parse_args(argv)
    tree, verify = report(run_experiment(fast=args.fast))
    emit_json(args.json, "e16_analysis",
              {"fast": args.fast,
               "verify_repeats": 3 if args.fast else VERIFY_REPEATS},
              {"tree": tree, "verify": verify})
    return 0


if __name__ == "__main__":
    sys.exit(main())
