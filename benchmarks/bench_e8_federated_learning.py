"""E8 — Federated learning vs centralized vs isolated sites (§III.C).

Claim: Google-federated-learning-style training lets hospitals
"collaboratively learn a shared prediction model while keeping all the
training data on local devices" — approaching centralized accuracy without
the (often impossible) raw-data transfer, and clearly beating each site
training alone.

Workload: a stroke-risk classifier over 4 non-IID hospital shards.
Reported: (a) AUC-by-round series for FedAvg vs the centralized and
local-only baselines, with bytes on the wire; (b) an aggregation-strategy
ablation (FedAvg vs FedSGD vs single-shot averaging) — DESIGN.md ablation 4.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, emit_json, format_table, human_bytes

from repro.analytics.features import FEATURE_DIM, dataset_for
from repro.analytics.models import LogisticModel
from repro.datamgmt.cohort import CohortGenerator, default_site_profiles
from repro.learning.baseline import local_only_baselines, train_centralized
from repro.learning.federated import (
    FederatedConfig,
    FederatedTrainer,
    non_iid_severity,
    single_shot_average,
)

SITES = 4
RECORDS_PER_SITE = 400
ROUNDS = 20


def factory():
    return LogisticModel(FEATURE_DIM, seed=3)


def build_data():
    generator = CohortGenerator(seed=12)
    profiles = default_site_profiles(SITES)
    cohorts = generator.generate_multi_site(profiles, RECORDS_PER_SITE)
    site_data = {
        site: dataset_for(records, "stroke") for site, records in cohorts.items()
    }
    test_records = []
    for profile in profiles:
        test_records.extend(generator.generate_cohort(profile, 300))
    return site_data, dataset_for(test_records, "stroke")


def run_experiment():
    site_data, eval_data = build_data()
    severity = non_iid_severity(site_data)
    fed = FederatedTrainer(
        factory, FederatedConfig(rounds=ROUNDS, local_epochs=2, lr=0.3, seed=4)
    ).train(site_data, eval_data)
    central = train_centralized(factory, site_data, eval_data, epochs=40, lr=0.3)
    local = local_only_baselines(factory, site_data, eval_data, epochs=40, lr=0.3)
    series = [
        {
            "round": record.round_index + 1,
            "fed_auc": record.eval_metrics["auc"],
            "cum_bytes": sum(
                r.bytes_on_wire for r in fed.history[: record.round_index + 1]
            ),
        }
        for record in fed.history
        if record.round_index % 4 == 3 or record.round_index == 0
    ]
    # Ablation: aggregation strategies at matched round budgets.
    fedsgd = FederatedTrainer(
        factory, FederatedConfig(rounds=ROUNDS * 2, fedsgd=True, lr=0.5, seed=4)
    ).train(site_data, eval_data)
    oneshot = single_shot_average(factory, site_data, epochs=40, lr=0.3)
    ablation = [
        ("FedAvg", fed.final_metric("auc"), fed.total_bytes_on_wire),
        ("FedSGD", fedsgd.final_metric("auc"), fedsgd.total_bytes_on_wire),
        ("single-shot avg", oneshot.evaluate(*eval_data)["auc"],
         2 * 8 * (FEATURE_DIM + 1) * SITES),
    ]
    return {
        "severity": severity,
        "series": series,
        "fed_auc": fed.final_metric("auc"),
        "fed_bytes": fed.total_bytes_on_wire,
        "central_auc": central.eval_metrics["auc"],
        "central_bytes": central.bytes_moved,
        "local_aucs": {site: metrics["auc"] for site, metrics in local.items()},
        "ablation": ablation,
    }


def report(result):
    series_table = format_table(
        f"E8a: FedAvg AUC by round (non-IID severity {result['severity']:.3f})",
        ["round", "federated AUC", "cumulative bytes"],
        [[s["round"], s["fed_auc"], human_bytes(s["cum_bytes"])] for s in result["series"]],
    )
    mean_local = float(np.mean(list(result["local_aucs"].values())))
    compare_table = format_table(
        "E8b: final comparison",
        ["approach", "AUC", "raw records moved", "bytes on wire"],
        [
            ["federated (FedAvg)", result["fed_auc"], 0,
             human_bytes(result["fed_bytes"])],
            ["centralized (copy all)", result["central_auc"],
             SITES * RECORDS_PER_SITE, human_bytes(result["central_bytes"])],
            ["local-only (mean of sites)", mean_local, 0, "0B"],
        ],
    )
    ablation_table = format_table(
        "E8c: aggregation-strategy ablation",
        ["strategy", "AUC", "bytes on wire"],
        [[name, auc, human_bytes(bytes_)] for name, auc, bytes_ in result["ablation"]],
    )
    emit(
        "e8_federated_learning",
        series_table + "\n\n" + compare_table + "\n\n" + ablation_table,
    )
    return result


def test_e8_federated_learning(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(result)
    mean_local = float(np.mean(list(result["local_aucs"].values())))
    # Federated ~ centralized (within 3 AUC points), no raw data moved.
    assert result["fed_auc"] > result["central_auc"] - 0.03
    # Federated beats (or at worst matches) isolated training.
    assert result["fed_auc"] >= mean_local - 0.01
    # And moves orders of magnitude fewer bytes than centralizing.
    assert result["fed_bytes"] < result["central_bytes"] / 5
    # FedAvg >= single-shot averaging (iterative averaging helps).
    fedavg_auc = result["ablation"][0][1]
    oneshot_auc = result["ablation"][2][1]
    assert fedavg_auc >= oneshot_auc - 0.02


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write a {bench, params, metrics, timestamp} "
                             "envelope to PATH")
    args = parser.parse_args(argv)
    result = report(run_experiment())
    mean_local = float(np.mean(list(result["local_aucs"].values())))
    emit_json(args.json, "e8_federated_learning",
              {"sites": SITES, "records_per_site": RECORDS_PER_SITE},
              {
                  "fed_auc": float(result["fed_auc"]),
                  "central_auc": float(result["central_auc"]),
                  "mean_local_auc": mean_local,
                  "fed_bytes": int(result["fed_bytes"]),
                  "central_bytes": int(result["central_bytes"]),
                  "severity": float(result["severity"]),
                  "series": result["series"],
                  "ablation": [
                      [name, float(auc), int(bytes_)]
                      for name, auc, bytes_ in result["ablation"]
                  ],
              })
    return 0


if __name__ == "__main__":
    sys.exit(main())
