"""E5 — Move compute to data vs move data to compute (paper section IV).

Claim: "the huge size of the medical data set renders the operations of
copying or moving data around for the analytics computing very expensive
and impossible most of the time ... move the computing engine to the data".

Workload: the same prevalence query answered two ways over a 3-site
platform while the per-site data size grows: (a) compute-to-data — per-site
contract tasks, only aggregates return; (b) data-to-compute — every record
pulled through the (grant-enforcing, encrypting) HIE exchange to the
requester, then computed centrally.  Reported per data size: bytes on the
wire and simulated completion time for both, plus the ratio.
"""

from __future__ import annotations

import argparse
import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, emit_json, format_table, human_bytes

from repro.common.signatures import KeyPair
from repro.core.platform import MedicalBlockchainNetwork, PlatformConfig
from repro.core.queryservice import GlobalQueryService
from repro.core.strategies import compute_to_data, data_to_compute
from repro.datamgmt.cohort import CohortGenerator, default_site_profiles
from repro.query.vector import QueryVector
from repro.sim.network import LinkSpec

RECORDS_PER_SITE = (50, 200, 800, 3200)
SITES = 3


def run_size(records_per_site: int, seed: int = 33):
    generator = CohortGenerator(seed=5)
    profiles = default_site_profiles(SITES)
    platform = MedicalBlockchainNetwork(
        PlatformConfig(
            site_count=SITES,
            consensus="poa",
            include_fda=False,
            seed=seed,
            link=LinkSpec(latency_s=0.03, bandwidth_bps=50e6),  # WAN-ish
        )
    )
    for index, site in enumerate(platform.site_names):
        cohort = generator.generate_cohort(profiles[index], records_per_site)
        platform.register_dataset(site, f"emr-{site}", cohort)
    researcher = KeyPair.generate("e5-researcher")
    for site in platform.site_names:
        platform.grant_access(site, f"emr-{site}", researcher.address, "research")
    service = GlobalQueryService(platform, researcher)
    vector = QueryVector(intent="prevalence", outcome="stroke", purpose="research")
    to_data = compute_to_data(service, vector)
    to_compute = data_to_compute(platform, researcher, vector)
    assert to_data.result["positives"] == to_compute.result["positives"]
    return {
        "records_per_site": records_per_site,
        "ctd_bytes": to_data.bytes_moved,
        "dtc_bytes": to_compute.bytes_moved,
        "bytes_ratio": to_compute.bytes_moved / max(to_data.bytes_moved, 1),
        "ctd_seconds": to_data.sim_seconds,
        "dtc_seconds": to_compute.sim_seconds,
    }


def run_experiment():
    return [run_size(size) for size in RECORDS_PER_SITE]


def report(rows):
    table = format_table(
        "E5: compute-to-data (CTD) vs data-to-compute (DTC), 3 sites",
        ["records/site", "CTD bytes", "DTC bytes", "DTC/CTD bytes",
         "CTD sim s", "DTC sim s"],
        [
            [r["records_per_site"], human_bytes(r["ctd_bytes"]),
             human_bytes(r["dtc_bytes"]), r["bytes_ratio"],
             r["ctd_seconds"], r["dtc_seconds"]]
            for r in rows
        ],
    )
    emit("e5_compute_to_data", table)
    return rows


def test_e5_compute_to_data(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(rows)
    for row in rows:
        assert row["bytes_ratio"] > 10  # CTD always moves far fewer bytes
    # The gap widens with data size: CTD bytes are ~constant, DTC grows.
    assert rows[-1]["bytes_ratio"] > 4 * rows[0]["bytes_ratio"]
    first, last = rows[0], rows[-1]
    assert last["ctd_bytes"] < 3 * first["ctd_bytes"]
    assert last["dtc_bytes"] > 10 * first["dtc_bytes"]
    # Time crossover: with small data DTC's raw copy is quicker than chain
    # coordination; as data grows DTC time rises toward (and past) CTD's
    # flat coordination floor.
    assert last["dtc_seconds"] > 10 * first["dtc_seconds"]
    assert abs(last["ctd_seconds"] - first["ctd_seconds"]) < 1.0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write a {bench, params, metrics, timestamp} "
                             "envelope to PATH")
    args = parser.parse_args(argv)
    rows = report(run_experiment())
    emit_json(args.json, "e5_compute_to_data",
              {"sites": SITES, "records_per_site": list(RECORDS_PER_SITE)},
              {"rows": rows})
    return 0


if __name__ == "__main__":
    sys.exit(main())
