"""E11 — Real-world-evidence trial with precision-medicine subgroups (§II).

Claims: (a) Schork/Nature — a drug can look mediocre on average while
working well in a genetic subgroup, so precision trials must stratify;
(b) FDA vision — continuous monitoring over live hospital data surfaces
efficacy and safety signals long before the classic end-of-trial batch
analysis.

Workload: a 600-subject two-arm trial where the drug strongly protects
rs2200733 carriers only, with an elevated adverse-event rate.  Reported:
(a) event rates by arm and subgroup (the heterogeneity table), and
(b) detection day of each signal under continuous monitoring vs the
batch-analysis day (end of follow-up).
"""

from __future__ import annotations

import argparse
import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, emit_json, format_table

from repro.datamgmt.cohort import CohortGenerator, default_site_profiles
from repro.trial.monitor import RWEMonitor
from repro.trial.protocol import TrialProtocol
from repro.trial.simulation import assign_arms, simulate_follow_up, true_effect_summary

ENROLLMENT = 600
FOLLOW_UP_DAYS = 365


def run_experiment():
    protocol = TrialProtocol(
        trial_id="NCT-E11",
        title="anticoag-x precision RWE trial",
        drug="anticoag-x",
        primary_outcomes=["stroke"],
        secondary_outcomes=["mortality"],
        subgroups=["rs2200733"],
        target_enrollment=ENROLLMENT,
        follow_up_days=FOLLOW_UP_DAYS,
    )
    generator = CohortGenerator(seed=31)
    profiles = default_site_profiles(3)
    patients = []
    for profile in profiles:
        patients.extend(generator.generate_cohort(profile, ENROLLMENT // 3))
    arms = assign_arms(patients, protocol, seed=1)
    outcomes = simulate_follow_up(patients, arms, protocol, seed=2)
    summary = true_effect_summary(outcomes)
    monitor = RWEMonitor(alpha=0.01, min_per_arm=30, subgroup_min_per_arm=15)
    monitor.run_stream(outcomes)
    batch = RWEMonitor.batch_analysis(outcomes)
    detection = {
        kind: monitor.detection_day(kind)
        for kind in (
            "efficacy",
            "subgroup_efficacy_carriers",
            "subgroup_efficacy_noncarriers",
            "safety",
        )
    }
    return summary, detection, {k: v.p_value for k, v in batch.items()}


def report(payload):
    summary, detection, batch = payload
    rates_table = format_table(
        "E11a: event rates (effect heterogeneity: the drug works in carriers)",
        ["group", "treatment event rate", "control event rate"],
        [
            ["all subjects", summary["treatment_rate"], summary["control_rate"]],
            ["rs2200733 carriers", summary["treatment_rate_carriers"],
             summary["control_rate_carriers"]],
            ["non-carriers", summary["treatment_rate_noncarriers"],
             summary["control_rate_noncarriers"]],
            ["adverse events", summary["ae_rate_treatment"],
             summary["ae_rate_control"]],
        ],
    )
    detect_table = format_table(
        f"E11b: continuous detection day vs batch analysis (day {FOLLOW_UP_DAYS})",
        ["signal", "continuous detection day", "batch p-value"],
        [
            [kind, detection[kind] if detection[kind] is not None else "not fired",
             batch.get(kind, float("nan"))]
            for kind in detection
        ],
    )
    emit("e11_rwe_trial", rates_table + "\n\n" + detect_table)
    return payload


def test_e11_rwe_trial(benchmark):
    summary, detection, batch = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report((summary, detection, batch))
    # Heterogeneity: carriers benefit much more than non-carriers.
    carrier_benefit = summary["control_rate_carriers"] - summary["treatment_rate_carriers"]
    noncarrier_benefit = (
        summary["control_rate_noncarriers"] - summary["treatment_rate_noncarriers"]
    )
    assert carrier_benefit > noncarrier_benefit + 0.05
    # Safety signal detected continuously, well before follow-up ends.
    assert detection["safety"] is not None
    assert detection["safety"] < FOLLOW_UP_DAYS
    # Subgroup efficacy found continuously; batch confirms it.
    assert detection["subgroup_efficacy_carriers"] is not None
    assert batch["subgroup_efficacy_carriers"] < 0.05


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write a {bench, params, metrics, timestamp} "
                             "envelope to PATH")
    args = parser.parse_args(argv)
    summary, detection, batch = report(run_experiment())
    emit_json(args.json, "e11_rwe_trial",
              {"enrollment": ENROLLMENT, "follow_up_days": FOLLOW_UP_DAYS},
              {"summary": summary, "detection": detection, "batch": batch})
    return 0


if __name__ == "__main__":
    sys.exit(main())
