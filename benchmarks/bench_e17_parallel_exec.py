"""E17 — Optimistic parallel block execution: speedup vs conflict rate.

Executes the same block serially and through ``repro.chain.scheduler``'s
wave-based optimistic scheduler (thread and process backends) and reports
wall-clock speedup, the parallel-commit rate, and — the part CI gates on —
bit-identical state roots and receipts on every backend and conflict
pattern:

- a *low-conflict* block (every call touches its own balance slot), where
  the scheduler should approach the core count on the process backend;
- a *100%-conflict* block (every call hits one hot slot), where
  levelization degenerates to one wave per transaction and the scheduler
  must stay within a small constant of plain serial execution.

Speedup is only asserted when the host actually has >= 2 workers (CI
runners do; the equivalence gate holds everywhere).
"""

from __future__ import annotations

import argparse
import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, emit_json, format_table

from repro.chain.executor import ExecutionContext
from repro.chain.scheduler import BlockScheduler
from repro.chain.state import StateDB
from repro.chain.transactions import make_call, make_deploy
from repro.common.signatures import KeyPair
from repro.contracts.runtime import ContractExecutor
from repro.parallel.executor import available_workers

# Per-user balance slots (statically disjoint across users) with a
# CPU-bound body, so parallel speculation has real work to overlap.
WORKLOAD_SOURCE = '''
def work(user, rounds):
    acc = storage_get("bal/" + user, 0)
    digest = ""
    for i in range(rounds):
        digest = sha256_hex(str(acc) + ":" + str(i))
        acc = acc + len(digest)
    storage_set("bal/" + user, acc)
    return acc
'''

CTX = ExecutionContext(block_height=2, timestamp_ms=1000, node_name="bench")
ROUNDS = 150


def build_fixture(n_txs):
    """Funded senders, deployed workload contract, low/high-conflict blocks."""
    senders = [KeyPair.generate(f"e17-{i}") for i in range(n_txs)]
    state = StateDB()
    for keypair in senders:
        state.credit(keypair.address, 1_000_000)
    deployer = KeyPair.generate("e17-deployer")
    state.credit(deployer.address, 1_000_000)
    receipt = ContractExecutor().apply(
        state, make_deploy(deployer, "work", WORKLOAD_SOURCE, nonce=0), CTX
    )
    assert receipt.success, receipt.error
    contract_id = receipt.output
    low_conflict = [
        make_call(kp, contract_id, "work",
                  {"user": f"u{i}", "rounds": ROUNDS}, nonce=0)
        for i, kp in enumerate(senders)
    ]
    full_conflict = [
        make_call(kp, contract_id, "work",
                  {"user": "hot", "rounds": ROUNDS}, nonce=0)
        for kp in senders
    ]
    return state, low_conflict, full_conflict


def run_serial(state, txs):
    executor = ContractExecutor()
    overlay = state.fork()
    start = time.perf_counter()
    receipts = [executor.apply(overlay, tx, CTX) for tx in txs]
    elapsed = time.perf_counter() - start
    root = overlay.state_root()
    overlay.discard()
    return elapsed, root, receipts


def run_scheduled(scheduler, state, txs):
    before = dict(scheduler.stats)
    start = time.perf_counter()
    overlay, receipts = scheduler.execute_block(state, txs, CTX)
    elapsed = time.perf_counter() - start
    root = overlay.state_root()
    overlay.discard()
    delta = {k: scheduler.stats[k] - before[k] for k in before}
    return elapsed, root, receipts, delta


def run_experiment(fast=False, backends=("thread", "process")):
    n_txs = 60 if fast else 200
    state, low_conflict, full_conflict = build_fixture(n_txs)
    workers = available_workers()

    # Warm the reference executor's compile cache, then time serial.
    run_serial(state, low_conflict[:2])
    serial_low, root_low, receipts_low = run_serial(state, low_conflict)
    serial_full, root_full, receipts_full = run_serial(state, full_conflict)

    rows = []
    equivalent = True
    for backend in backends:
        with BlockScheduler(ContractExecutor(), backend=backend) as scheduler:
            # Warm the worker pool and per-worker compile caches untimed.
            run_scheduled(scheduler, state, low_conflict[: workers + 1])
            low_s, low_root, low_receipts, low_stats = run_scheduled(
                scheduler, state, low_conflict
            )
            full_s, full_root, full_receipts, _ = run_scheduled(
                scheduler, state, full_conflict
            )
        roots_ok = low_root == root_low and full_root == root_full
        receipts_ok = (
            low_receipts == receipts_low and full_receipts == receipts_full
        )
        equivalent = equivalent and roots_ok and receipts_ok
        rows.append({
            "backend": backend,
            "low_conflict_s": low_s,
            "speedup": serial_low / low_s if low_s else 0.0,
            "parallel_committed": low_stats["txs_parallel_committed"],
            "waves": low_stats["waves"],
            "full_conflict_s": full_s,
            "degradation": full_s / serial_full if serial_full else 0.0,
            "roots_equal": roots_ok,
            "receipts_equal": receipts_ok,
        })
    return {
        "n_txs": n_txs,
        "workers": workers,
        "serial_low_conflict_s": serial_low,
        "serial_full_conflict_s": serial_full,
        "backends": rows,
        "equivalent": equivalent,
    }


def report(result):
    table = format_table(
        f"E17: optimistic parallel block execution "
        f"({result['n_txs']} txs, {result['workers']} workers, "
        f"serial low-conflict {result['serial_low_conflict_s']:.3f}s)",
        ["backend", "low-conflict (s)", "speedup", "parallel commits",
         "waves", "100%-conflict (s)", "degradation", "bit-identical"],
        [[r["backend"], r["low_conflict_s"], r["speedup"],
          r["parallel_committed"], r["waves"], r["full_conflict_s"],
          r["degradation"], r["roots_equal"] and r["receipts_equal"]]
         for r in result["backends"]],
    )
    emit("e17_parallel_exec", table)
    return result


def check(result):
    """The invariants CI enforces (speedup only with real parallelism)."""
    assert result["equivalent"], "parallel execution diverged from serial"
    for row in result["backends"]:
        assert row["degradation"] <= 1.25, (
            f"{row['backend']}: 100%-conflict block {row['degradation']:.2f}x "
            "serial (budget 1.25x)"
        )
    if result["workers"] >= 2:
        best = max(row["speedup"] for row in result["backends"])
        floor = 2.0 if result["workers"] >= 4 else 1.3
        assert best >= floor, (
            f"best speedup {best:.2f}x below {floor}x floor "
            f"({result['workers']} workers)"
        )


def test_e17_parallel_exec(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment(fast=True), rounds=1, iterations=1
    )
    report(result)
    check(result)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="60-tx blocks instead of 200")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write a {bench, params, metrics, timestamp} "
                             "envelope to PATH")
    parser.add_argument("--no-gate", action="store_true",
                        help="report without asserting the CI invariants")
    args = parser.parse_args(argv)
    result = report(run_experiment(fast=args.fast))
    emit_json(args.json, "e17_parallel_exec",
              {"fast": args.fast, "rounds": ROUNDS}, result)
    if not args.no_gate:
        check(result)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
