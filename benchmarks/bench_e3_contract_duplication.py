"""E3 — Smart-contract duplicated computing vs the transformed architecture
(paper sections I and IV, Figure 1).

Claim: on-chain smart contracts suffer "even more severe duplicated
computing" because every node re-executes arbitrary Turing-complete code;
the transformed architecture keeps only a light-weight policy contract on
chain and moves the analytic off chain, so the chain cost is (a) small and
(b) independent of how heavy the analytic is.

Workload: a fixed-point model-training step over n samples, executed
(a) inside the contract VM on every node of a 4-node chain, and
(b) through the transformed platform (policy contract + one off-chain run).
Reported: total gas summed over nodes, the per-node duplication check, the
waste factor, and how both scale with network size.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, emit_json, format_table

from repro.baselines.duplicated import run_onchain_training, run_transformed_training
from repro.datamgmt.cohort import CohortGenerator, default_site_profiles

NODE_COUNTS = (2, 4, 8)
SAMPLES = 30
FEATURES = 6
STEPS = 2


def run_experiment():
    rng = np.random.default_rng(0)
    features = rng.normal(0, 1, (SAMPLES, FEATURES)).tolist()
    labels = (rng.random(SAMPLES) < 0.4).astype(int).tolist()
    generator = CohortGenerator(seed=1)
    records = generator.generate_cohort(default_site_profiles(1)[0], 150)
    rows = []
    for node_count in NODE_COUNTS:
        onchain = run_onchain_training(
            features, labels, node_count=node_count, steps=STEPS
        )
        transformed = run_transformed_training(
            records, node_count=node_count, steps=STEPS
        )
        per_node_gas = list(onchain.gas_per_node.values())
        rows.append(
            {
                "nodes": node_count,
                "onchain_total_gas": onchain.total_gas,
                "onchain_gas_per_node": per_node_gas[0],
                "perfectly_duplicated": len(set(per_node_gas)) == 1,
                "transformed_total_gas": transformed.total_gas,
                "transformed_offchain_flops": transformed.offchain_flops,
                "waste_factor": onchain.total_gas / max(transformed.total_gas, 1),
            }
        )
    return rows


def report(rows):
    table = format_table(
        "E3: on-chain (duplicated) vs transformed gas for the same training",
        ["nodes", "on-chain total gas", "gas/node", "identical per node?",
         "transformed gas", "off-chain flops", "waste factor"],
        [
            [r["nodes"], r["onchain_total_gas"], r["onchain_gas_per_node"],
             r["perfectly_duplicated"], r["transformed_total_gas"],
             r["transformed_offchain_flops"], r["waste_factor"]]
            for r in rows
        ],
    )
    emit("e3_contract_duplication", table)
    return rows


def test_e3_contract_duplication(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(rows)
    for row in rows:
        # Every node re-executed identical work.
        assert row["perfectly_duplicated"]
        # The transformed architecture is at least 3x cheaper on chain.
        assert row["waste_factor"] > 3
    # On-chain cost grows with the network; transformed grows much slower.
    assert rows[-1]["onchain_total_gas"] > 3 * rows[0]["onchain_total_gas"]
    assert rows[-1]["transformed_total_gas"] < 3 * rows[0]["transformed_total_gas"]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write a {bench, params, metrics, timestamp} "
                             "envelope to PATH")
    args = parser.parse_args(argv)
    rows = report(run_experiment())
    emit_json(args.json, "e3_contract_duplication",
              {"node_counts": list(NODE_COUNTS), "samples": SAMPLES,
               "features": FEATURES, "steps": STEPS},
              {"rows": rows})
    return 0


if __name__ == "__main__":
    sys.exit(main())
