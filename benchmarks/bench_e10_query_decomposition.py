"""E10 — Query decomposition and composition (Figures 5/6, section IV).

Claim: a research query (natural language -> query vector) can be
decomposed into per-site smart contracts, executed against local data, and
composed into a global answer that matches what a centralized system would
return — while the requester never learns where the data lives.

Workload: a suite of natural-language queries over a 3-site platform.
Reported per query: composed answer vs pooled ground truth (must match),
end-to-end simulated latency, and bytes on the wire.  Also a decomposition-
granularity ablation (predicate push-down vs fetch-then-filter).
"""

from __future__ import annotations

import argparse
import sys


sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, emit_json, format_table, human_bytes

from repro.common.signatures import KeyPair
from repro.core.platform import MedicalBlockchainNetwork, PlatformConfig
from repro.core.queryservice import GlobalQueryService
from repro.core.strategies import data_to_compute
from repro.datamgmt.cohort import CohortGenerator, default_site_profiles
from repro.query.parser import parse_query

QUERIES = (
    "how many patients have diabetes",
    "prevalence of stroke among smokers",
    "average systolic blood pressure for women over 50",
    "histogram of bmi between 15 and 55 with 8 bins",
    "how many men aged 40 to 60 have cancer",
)
SITES = 3
RECORDS_PER_SITE = 200


def ground_truth(query_text, pooled):
    from repro.analytics.tools import STANDARD_TOOLS

    vector = parse_query(query_text)
    tool = next(t for t in STANDARD_TOOLS if t.tool_id == vector.tool_id())
    return vector, tool.fn(pooled, vector.tool_params())


def run_experiment():
    generator = CohortGenerator(seed=44)
    profiles = default_site_profiles(SITES)
    cohorts = generator.generate_multi_site(profiles, RECORDS_PER_SITE)
    pooled = [record for records in cohorts.values() for record in records]
    platform = MedicalBlockchainNetwork(
        PlatformConfig(site_count=SITES, consensus="poa", include_fda=False, seed=10)
    )
    formats = ["hl7v2", "fhirjson", "legacycsv"]
    for index, (site, records) in enumerate(sorted(cohorts.items())):
        platform.register_dataset(site, f"emr-{site}", records, fmt=formats[index])
    researcher = KeyPair.generate("e10-researcher")
    for site in platform.site_names:
        platform.grant_access(site, f"emr-{site}", researcher.address, "research")
    service = GlobalQueryService(platform, researcher)
    rows = []
    for text in QUERIES:
        vector, reference = ground_truth(text, pooled)
        answer = service.ask(text)
        matches = _matches(vector.intent, answer.result, reference)
        rows.append(
            {
                "query": text,
                "intent": vector.intent,
                "matches_pooled": matches,
                "latency_s": answer.latency_s,
                "bytes": answer.bytes_on_wire,
                "sites": len(answer.site_partials),
            }
        )
    # Granularity ablation: same first query via fetch-everything.
    vector = parse_query(QUERIES[0])
    pushdown_bytes = rows[0]["bytes"]
    fetched = data_to_compute(platform, researcher, vector)
    ablation = {
        "pushdown_bytes": pushdown_bytes,
        "fetch_bytes": fetched.bytes_moved,
    }
    return rows, ablation


def _matches(intent, result, reference):
    if intent == "count":
        return result["count"] == reference["count"]
    if intent == "prevalence":
        return (
            result["positives"] == reference["positives"]
            and result["n"] == reference["n"]
        )
    if intent == "mean":
        return abs(result["mean"] - reference["summary"]["mean"]) < 1e-9
    if intent == "histogram":
        return result["counts"] == reference["counts"]
    return False


def report(payload):
    rows, ablation = payload
    table = format_table(
        "E10: NL query -> decomposed contracts -> composed answer",
        ["query", "intent", "matches pooled?", "latency (sim s)", "bytes", "sites"],
        [
            [r["query"][:44], r["intent"], r["matches_pooled"], r["latency_s"],
             human_bytes(r["bytes"]), r["sites"]]
            for r in rows
        ],
    )
    ablation_table = format_table(
        "E10b: decomposition granularity (query 1)",
        ["strategy", "bytes moved"],
        [
            ["predicate push-down (per-site tasks)", human_bytes(ablation["pushdown_bytes"])],
            ["fetch-then-filter (copy records)", human_bytes(ablation["fetch_bytes"])],
        ],
    )
    emit("e10_query_decomposition", table + "\n\n" + ablation_table)
    return payload


def test_e10_query_decomposition(benchmark):
    rows, ablation = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report((rows, ablation))
    assert all(row["matches_pooled"] for row in rows)
    assert all(row["sites"] == SITES for row in rows)
    assert ablation["fetch_bytes"] > 50 * ablation["pushdown_bytes"]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write a {bench, params, metrics, timestamp} "
                             "envelope to PATH")
    args = parser.parse_args(argv)
    rows, ablation = report(run_experiment())
    emit_json(args.json, "e10_query_decomposition",
              {"sites": SITES, "records_per_site": RECORDS_PER_SITE,
               "queries": list(QUERIES)},
              {"rows": rows, "ablation": ablation,
               "all_match_pooled": all(r["matches_pooled"] for r in rows)})
    return 0


if __name__ == "__main__":
    sys.exit(main())
