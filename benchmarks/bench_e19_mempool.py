"""E19 — Fee-market mempool under oversubscription: priority and fairness.

Drives PoA networks whose offered transaction load exceeds mempool
capacity by 10x and 100x and measures what the priority fee market
delivers end-to-end (admission -> gossip -> block building -> commit):

- **priority**: inclusion rate and commit latency split by fee band —
  high bidders must clear strictly faster than low bidders, with latency
  measured from sim submission time to the committing block's header
  timestamp (discrete-event time, never wall clock);
- **bounded depth**: no node's pool may ever exceed its configured
  capacity, however hard it is oversubscribed;
- **fairness**: one spamming key flooding cheap transactions must not
  crowd out a modest paying sender once the per-account token bucket is
  on — and the no-limiter control shows the crowding the limiter
  prevents.

The networks are discrete-event simulations with seeded kernels, so
every number here is deterministic and CI can gate on ordering
relations, not just smoke.
"""

from __future__ import annotations

import argparse
import random
import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, emit_json, format_table

from repro.chain.blocks import make_genesis
from repro.chain.mempool import MempoolConfig
from repro.chain.state import StateDB
from repro.chain.transactions import make_transfer
from repro.common.signatures import KeyPair
from repro.consensus.node import NodeConfig, make_network_nodes
from repro.consensus.poa import ProofOfAuthority
from repro.sim.kernel import Kernel
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import Network

NODES = 3
BLOCK_INTERVAL_S = 0.5
SEED = 19


def build_chain(mempool_config, max_txs_per_block, funded, seed=SEED):
    kernel = Kernel(seed=seed)
    metrics = MetricsRegistry()
    network = Network(kernel, metrics)
    state = StateDB()
    for keypair in funded:
        state.credit(keypair.address, 10**9)
    genesis = make_genesis(state.state_root())
    names = [f"n{i}" for i in range(NODES)]
    keypairs = {name: KeyPair.generate(name) for name in names}
    engine = ProofOfAuthority(names, keypairs, block_interval_s=BLOCK_INTERVAL_S)
    nodes = make_network_nodes(
        kernel, network, names, genesis, state, lambda: engine,
        metrics=metrics,
        config=NodeConfig(
            max_txs_per_block=max_txs_per_block, mempool=mempool_config
        ),
    )
    for node in nodes.values():
        node.start()
    return kernel, metrics, nodes


def commit_times(entry):
    """tx_id -> commit time (s, sim clock) from canonical block headers."""
    times = {}
    for block in entry.store.canonical_chain():
        for tx in block.transactions:
            times[tx.tx_id] = block.header.timestamp_ms / 1000.0
    return times


def median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2] if ordered else None


# -- priority under oversubscription ----------------------------------------

def run_priority(oversub, total_txs):
    """Offered load = ``oversub`` x pool capacity, fees uniform in 1..100."""
    capacity = max(6, total_txs // oversub)
    per_block = 20
    inject_window_s = 10.0
    rng = random.Random(SEED + oversub)
    senders = [KeyPair.generate(f"e19-{oversub}-{i}") for i in range(total_txs)]
    config = MempoolConfig(max_size=capacity)
    kernel, metrics, nodes = build_chain(config, per_block, senders)
    entry = nodes["n0"]

    fees = [rng.randint(1, 100) for _ in range(total_txs)]
    txs = [
        make_transfer(
            keypair, "sink", 1, nonce=0,
            max_fee_per_gas=fee, priority_fee_per_gas=fee,
        )
        for keypair, fee in zip(senders, fees)
    ]
    submit_at = {}
    for index, tx in enumerate(txs):
        at = 1.0 + inject_window_s * index / total_txs
        submit_at[tx.tx_id] = at
        kernel.schedule(at, lambda t=tx: entry.submit_tx(t), label="e19:submit")
    kernel.run(until=1.0 + inject_window_s + 40.0)

    committed = commit_times(entry)
    bands = {"low(p0-25)": (1, 25), "mid(p25-75)": (26, 75), "high(p75-100)": (76, 100)}
    rows = {}
    for band, (lo, hi) in bands.items():
        members = [tx for tx, fee in zip(txs, fees) if lo <= fee <= hi]
        latencies = [
            committed[tx.tx_id] - submit_at[tx.tx_id]
            for tx in members
            if tx.tx_id in committed
        ]
        rows[band] = {
            "offered": len(members),
            "included": len(latencies),
            "inclusion_rate": len(latencies) / len(members) if members else 0.0,
            "median_latency_s": median(latencies),
        }
    max_depth = max(node.mempool.max_depth_seen for node in nodes.values())
    return {
        "oversub": oversub,
        "total_txs": total_txs,
        "capacity": capacity,
        "txs_per_block": per_block,
        "bands": rows,
        "max_depth_seen": max_depth,
        "included_total": len(committed),
        "evicted": metrics.counter_total("mempool_evicted_capacity"),
        "shed_or_full": metrics.counter_total("mempool_rejected_pool_full"),
    }


# -- fairness under spam ------------------------------------------------------

def run_fairness(limiter, spam_txs, payer_txs):
    """One key floods fee-3 spam; a payer sends fee-3 txs at 1/s."""
    config = MempoolConfig(
        max_size=30,
        rate_limit_rate=1.0 if limiter else None,
        rate_limit_burst=4,
    )
    spammer = KeyPair.generate("e19-spammer")
    payer = KeyPair.generate("e19-payer")
    kernel, metrics, nodes = build_chain(config, 5, [spammer, payer])
    entry = nodes["n0"]

    spam_rate = 20.0  # tx/s, 2x the network's drain rate
    spam = [
        make_transfer(spammer, "sink", 1, nonce=n,
                      max_fee_per_gas=3, priority_fee_per_gas=3)
        for n in range(spam_txs)
    ]
    for index, tx in enumerate(spam):
        kernel.schedule(
            1.0 + index / spam_rate, lambda t=tx: entry.submit_tx(t),
            label="e19:spam",
        )
    paid = [
        make_transfer(payer, "sink", 1, nonce=n,
                      max_fee_per_gas=3, priority_fee_per_gas=3)
        for n in range(payer_txs)
    ]
    for index, tx in enumerate(paid):
        kernel.schedule(
            2.0 + float(index), lambda t=tx: entry.submit_tx(t),
            label="e19:payer",
        )
    kernel.run(until=2.0 + payer_txs + 40.0)

    committed = commit_times(entry)
    payer_included = sum(1 for tx in paid if tx.tx_id in committed)
    spam_included = sum(1 for tx in spam if tx.tx_id in committed)
    return {
        "limiter": limiter,
        "spam_offered": spam_txs,
        "spam_included": spam_included,
        "payer_offered": payer_txs,
        "payer_included": payer_included,
        "payer_inclusion_rate": payer_included / payer_txs,
        "rate_limited": metrics.counter_total("mempool_rejected_rate_limited"),
        "max_depth_seen": max(n.mempool.max_depth_seen for n in nodes.values()),
    }


def run_experiment(fast=False):
    priority = [
        run_priority(10, 600 if fast else 1500),
        run_priority(100, 800 if fast else 2000),
    ]
    spam_txs, payer_txs = (180, 10) if fast else (400, 15)
    fairness = {
        "with_limiter": run_fairness(True, spam_txs, payer_txs),
        "without_limiter": run_fairness(False, spam_txs, payer_txs),
    }
    return {"priority": priority, "fairness": fairness}


def report(result):
    rows = []
    for run in result["priority"]:
        for band, stats in run["bands"].items():
            rows.append([
                f"{run['oversub']}x", run["capacity"], band, stats["offered"],
                stats["included"], stats["inclusion_rate"],
                stats["median_latency_s"]
                if stats["median_latency_s"] is not None else "-",
            ])
    table = format_table(
        "E19: priority under oversubscription "
        f"({NODES}-node PoA, {BLOCK_INTERVAL_S}s blocks)",
        ["oversub", "pool cap", "fee band", "offered", "included",
         "inclusion", "median latency (s)"],
        rows,
    )
    fair_rows = [
        [label, run["spam_offered"], run["spam_included"],
         run["payer_offered"], run["payer_included"],
         run["payer_inclusion_rate"], run["rate_limited"],
         run["max_depth_seen"]]
        for label, run in result["fairness"].items()
    ]
    fair_table = format_table(
        "E19: fairness under spam (same fee, spammer at 2x drain rate)",
        ["scenario", "spam offered", "spam included", "payer offered",
         "payer included", "payer inclusion", "rate-limited", "max depth"],
        fair_rows,
    )
    emit("e19_mempool", table + "\n\n" + fair_table)
    return result


def check(result):
    """The invariants CI enforces."""
    for run in result["priority"]:
        assert run["max_depth_seen"] <= run["capacity"], (
            f"pool depth {run['max_depth_seen']} exceeded capacity "
            f"{run['capacity']} at {run['oversub']}x"
        )
        bands = run["bands"]
        high, low = bands["high(p75-100)"], bands["low(p0-25)"]
        assert high["inclusion_rate"] >= low["inclusion_rate"], (
            f"{run['oversub']}x: high-fee inclusion below low-fee"
        )
        if run["oversub"] == 10:
            # The headline property: money talks — strictly lower latency
            # for the top band (an empty low band counts as infinite).
            high_lat = high["median_latency_s"]
            low_lat = low["median_latency_s"]
            assert high_lat is not None and high["inclusion_rate"] >= 0.9
            assert low_lat is None or high_lat < low_lat, (
                f"high-fee median {high_lat}s not below low-fee {low_lat}s"
            )
    with_l = result["fairness"]["with_limiter"]
    without = result["fairness"]["without_limiter"]
    assert with_l["payer_inclusion_rate"] >= 0.9, (
        f"payer crowded out despite limiter: {with_l['payer_inclusion_rate']}"
    )
    assert with_l["rate_limited"] > 0
    assert with_l["payer_inclusion_rate"] > without["payer_inclusion_rate"], (
        "limiter did not improve payer inclusion over the control"
    )
    for run in (with_l, without):
        assert run["max_depth_seen"] <= 30


def test_e19_mempool(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment(fast=True), rounds=1, iterations=1
    )
    report(result)
    check(result)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="smaller offered loads")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write a {bench, params, metrics, timestamp} "
                             "envelope to PATH")
    parser.add_argument("--no-gate", action="store_true",
                        help="report without asserting the CI invariants")
    args = parser.parse_args(argv)
    result = report(run_experiment(fast=args.fast))
    emit_json(args.json, "e19_mempool",
              {"fast": args.fast, "nodes": NODES,
               "block_interval_s": BLOCK_INTERVAL_S},
              result)
    if not args.no_gate:
        check(result)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
