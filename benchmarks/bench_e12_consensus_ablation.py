"""E12 — Consensus ablation: PoW vs PoS vs PoA (paper section I survey).

Claims: PoS "resolves the wasting energy issue, but it is still a
duplicated computing mechanism"; the same holds for permissioned PoA.  The
duplication the paper attacks lives in *contract execution*, not in the
proof mechanism — so switching consensus changes energy and latency but
leaves the N-fold contract gas untouched.

Workload: the identical contract-call load (counter increments) on 4-node
networks under each engine.  Reported: commit latency, throughput, hash
energy, and the per-node gas (identical across engines and across nodes).
"""

from __future__ import annotations

import argparse
import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, emit_json, format_table

from repro.chain.blocks import make_genesis
from repro.chain.state import StateDB
from repro.chain.transactions import make_call, make_deploy
from repro.common.signatures import KeyPair
from repro.consensus.node import NodeConfig, make_network_nodes
from repro.consensus.poa import ProofOfAuthority
from repro.consensus.pos import ProofOfStake
from repro.consensus.pow import ProofOfWork
from repro.contracts.library import COUNTER_SOURCE
from repro.sim.kernel import Kernel
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import Network

NODES = 4
CALLS = 25


def run_engine(kind: str, seed: int = 17):
    kernel = Kernel(seed=seed)
    metrics = MetricsRegistry()
    network = Network(kernel, metrics)
    owner = KeyPair.generate("e12-owner")
    state = StateDB()
    state.credit(owner.address, 10**9)
    genesis = make_genesis(state.state_root())
    names = [f"v{i}" for i in range(NODES)]
    keypairs = {name: KeyPair.generate(name) for name in names}
    if kind == "pow":
        engine = ProofOfWork(difficulty_bits=13, default_hash_rate=1e3)
    elif kind == "pos":
        engine = ProofOfStake({name: 100 for name in names}, round_time_s=0.5)
    else:
        engine = ProofOfAuthority(names, keypairs, block_interval_s=0.5)
    nodes = make_network_nodes(
        kernel, network, names, genesis, state, lambda: engine,
        metrics=metrics, config=NodeConfig(max_txs_per_block=5),
    )
    for node in nodes.values():
        node.start()
    deploy = make_deploy(owner, "counter", COUNTER_SOURCE, nonce=0)
    nodes[names[0]].submit_tx(deploy)
    kernel.run(
        until=600,
        stop_when=lambda: nodes[names[0]].receipt(deploy.tx_id) is not None,
    )
    contract_id = nodes[names[0]].receipt(deploy.tx_id).output
    start = kernel.now
    txs = [
        make_call(owner, contract_id, "increment", {"by": 1}, nonce=n + 1)
        for n in range(CALLS)
    ]
    for tx in txs:
        nodes[names[0]].submit_tx(tx)
    kernel.run(
        until=3600,
        stop_when=lambda: all(
            nodes[names[0]].receipt(tx.tx_id) is not None for tx in txs
        ),
    )
    elapsed = kernel.now - start
    # Drain in-flight gossip so every node finishes executing every block
    # (otherwise per-node gas comparisons see a truncated simulation).
    kernel.run(until=kernel.now + 60)
    latency = metrics.histogram("tx_commit_latency_s")
    gas_per_node = metrics.scopes("gas")
    return {
        "engine": kind,
        "sim_seconds": elapsed,
        "throughput_tps": CALLS / elapsed if elapsed else 0.0,
        "mean_latency_s": latency.mean,
        "hashes": metrics.counter_total("hashes"),
        "hash_energy_j": metrics.counter_total("hashes")
        * metrics.energy_model.joules_per_hash,
        "gas_per_node": gas_per_node,
        "gas_duplicated": len(set(gas_per_node.values())) == 1,
        "total_gas": metrics.counter_total("gas"),
    }


def run_experiment():
    return [run_engine(kind) for kind in ("pow", "pos", "poa")]


def report(rows):
    table = format_table(
        f"E12: consensus ablation ({NODES} nodes, identical 25-call load)",
        ["engine", "sim time (s)", "tx/s", "mean latency (s)", "hash attempts",
         "hash energy (J)", "gas per node", "gas duplicated N-fold?"],
        [
            [r["engine"], r["sim_seconds"], r["throughput_tps"],
             r["mean_latency_s"], r["hashes"], r["hash_energy_j"],
             next(iter(r["gas_per_node"].values())), r["gas_duplicated"]]
            for r in rows
        ],
    )
    emit("e12_consensus_ablation", table)
    return rows


def test_e12_consensus_ablation(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(rows)
    by_engine = {row["engine"]: row for row in rows}
    # Only PoW burns hash energy.
    assert by_engine["pow"]["hashes"] > 0
    assert by_engine["pos"]["hashes"] == 0
    assert by_engine["poa"]["hashes"] == 0
    # But contract gas is duplicated N-fold under EVERY engine — the paper's
    # point that consensus fixes don't address smart-contract duplication.
    for row in rows:
        assert row["gas_duplicated"]
        assert len(row["gas_per_node"]) == NODES
    gas_totals = {row["engine"]: row["total_gas"] for row in rows}
    assert len(set(gas_totals.values())) == 1  # identical across engines


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write a {bench, params, metrics, timestamp} "
                             "envelope to PATH")
    args = parser.parse_args(argv)
    rows = report(run_experiment())
    emit_json(args.json, "e12_consensus_ablation",
              {"nodes": NODES, "calls": CALLS},
              {"rows": rows})
    return 0


if __name__ == "__main__":
    sys.exit(main())
