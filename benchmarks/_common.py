"""Shared helpers for the experiment benchmarks (E1–E12).

Each ``bench_eN_*.py`` file both

- runs under ``pytest benchmarks/ --benchmark-only`` (the experiment body is
  timed once via ``benchmark.pedantic``), and
- runs standalone (``python benchmarks/bench_e1_....py``) printing the
  experiment's table.

Tables are also appended to ``benchmarks/results/`` so EXPERIMENTS.md can be
refreshed from actual runs.
"""

from __future__ import annotations

import json
import os
from datetime import datetime, timezone
from typing import Any, Dict, Optional, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def format_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Plain-text aligned table."""
    rendered_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in rendered_rows), 1)
        if rendered_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = [f"== {title} =="]
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def _format_cell(cell: Any) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    return str(cell)


def emit(name: str, table: str) -> None:
    """Print the table and persist it under benchmarks/results/."""
    print("\n" + table + "\n")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(table + "\n")


def json_envelope(
    bench: str, params: Dict[str, Any], metrics: Dict[str, Any]
) -> Dict[str, Any]:
    """Uniform ``BENCH_*.json`` payload: {bench, params, metrics, timestamp}.

    Every benchmark that emits machine-readable output uses this schema so
    trajectory files accumulate uniformly and CI gates can read
    ``payload["metrics"]`` without per-benchmark special cases.
    """
    return {
        "bench": bench,
        "params": params,
        "metrics": metrics,
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }


def emit_json(
    path: Optional[str],
    bench: str,
    params: Dict[str, Any],
    metrics: Dict[str, Any],
) -> Dict[str, Any]:
    """Build the envelope and, when ``path`` is set, write it to disk."""
    payload = json_envelope(bench, params, metrics)
    if path:
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
    return payload


def human_bytes(count: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if abs(count) < 1024:
            return f"{count:.1f}{unit}"
        count /= 1024
    return f"{count:.1f}TB"
