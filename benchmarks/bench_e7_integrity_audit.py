"""E7 — Integrity auditing of anchored data and trial reports (§III.B).

Claims: (a) Irving & Holden — hash-anchoring raw data on chain makes any
post-hoc modification detectable by any peer at low cost; (b) COMPare —
only 9 of 67 monitored trials reported pre-registered outcomes correctly,
and on-chain registration makes outcome switching mechanically detectable.

Workload: 60 synthetic trials; a controlled fraction have their raw data
falsified after anchoring and/or their outcomes switched at publication.
Reported: detection rate per tamper class, false-positive rate on clean
trials, and per-trial audit cost (timed by the benchmark harness).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, emit_json, format_table

from repro.datamgmt.cohort import CohortGenerator, default_site_profiles
from repro.offchain.anchoring import DatasetAnchor
from repro.trial.auditor import PublishedReport, TrialAuditor

TRIALS = 60
TAMPER_FRACTION = 0.4   # fraction with falsified raw data (China report: ~0.8)
SWITCH_FRACTION = 0.55  # fraction with outcome switching (COMPare: 58/67)


def build_trials(seed: int = 8):
    generator = CohortGenerator(seed=seed)
    profile = default_site_profiles(1)[0]
    rng = np.random.default_rng(seed)
    registrations = {}
    anchors = {}
    reports = []
    truth = {"tampered": set(), "switched": set()}
    for index in range(TRIALS):
        trial_id = f"T{index:03d}"
        outcomes = ["stroke"] if index % 2 == 0 else ["stroke", "mortality"]
        registrations[trial_id] = outcomes
        raw = generator.generate_cohort(profile, 20)
        anchors[trial_id] = DatasetAnchor.build(raw).root_hex
        published_raw = [dict(record) for record in raw]
        claimed = list(outcomes)
        if rng.random() < TAMPER_FRACTION:
            victim = int(rng.integers(0, len(published_raw)))
            published_raw[victim] = dict(published_raw[victim])
            flipped = dict(published_raw[victim]["outcomes"])
            flipped["stroke"] = 1 - flipped["stroke"]
            published_raw[victim]["outcomes"] = flipped
            truth["tampered"].add(trial_id)
        if rng.random() < SWITCH_FRACTION:
            claimed = [outcomes[0] + "_surrogate"] + claimed[1:]
            truth["switched"].add(trial_id)
        reports.append(
            PublishedReport(trial_id, claimed_outcomes=claimed, raw_records=published_raw)
        )
    return registrations, anchors, reports, truth


def run_experiment():
    registrations, anchors, reports, truth = build_trials()
    auditor = TrialAuditor()
    summary = auditor.audit_many(registrations, reports, anchors)
    findings = {finding.trial_id: finding for finding in summary["findings"]}
    tamper_detected = sum(
        1 for trial_id in truth["tampered"] if not findings[trial_id].data_intact
    )
    switch_detected = sum(
        1 for trial_id in truth["switched"] if not findings[trial_id].reported_correctly
    )
    clean_trials = [
        trial_id
        for trial_id in registrations
        if trial_id not in truth["tampered"] and trial_id not in truth["switched"]
    ]
    false_positives = sum(
        1 for trial_id in clean_trials if not findings[trial_id].clean
    )
    return {
        "trials": TRIALS,
        "tampered": len(truth["tampered"]),
        "tamper_detected": tamper_detected,
        "switched": len(truth["switched"]),
        "switch_detected": switch_detected,
        "clean": len(clean_trials),
        "false_positives": false_positives,
        "reported_correctly": summary["reported_correctly"],
    }


def report(row):
    table = format_table(
        "E7: audit of 60 published trials against on-chain commitments",
        ["trials", "data-tampered", "tamper detected", "outcome-switched",
         "switch detected", "clean trials", "false positives"],
        [[row["trials"], row["tampered"], row["tamper_detected"],
          row["switched"], row["switch_detected"], row["clean"],
          row["false_positives"]]],
    )
    emit("e7_integrity_audit", table)
    return row


def test_e7_integrity_audit(benchmark):
    row = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(row)
    assert row["tamper_detected"] == row["tampered"]     # 100% detection
    assert row["switch_detected"] == row["switched"]     # 100% detection
    assert row["false_positives"] == 0                   # no false alarms


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write a {bench, params, metrics, timestamp} "
                             "envelope to PATH")
    args = parser.parse_args(argv)
    row = report(run_experiment())
    emit_json(args.json, "e7_integrity_audit",
              {"trials": TRIALS, "tamper_fraction": TAMPER_FRACTION,
               "switch_fraction": SWITCH_FRACTION},
              {"row": row})
    return 0


if __name__ == "__main__":
    sys.exit(main())
