"""E18 — p2p dissemination: propagation latency, dedup, and cold sync.

Three measurements over ``repro.p2p``'s announce-by-hash gossip and
headers-first sync:

- *Propagation matrix* (sim): time for a transaction announced at one
  node to reach every mempool, across network size x gossip fanout,
  plus the duplicate-delivery ratio (bodies fetched more than once per
  node — the zero-flood property says this stays at exactly zero).
- *Cold sync* (sim): time for a fresh node joining mid-chain to reach
  the network head via locator-based header windows, vs chain length.
- *TCP acceptance* (real sockets): a 5-node validator network over the
  framed JSON-RPC transport, plus a fresh joiner that must converge to
  the same head id and bit-identical state root with zero duplicate
  bodies.  CI gates on ``equivalent`` and ``zero_flood``.
"""

from __future__ import annotations

import argparse
import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, emit_json, format_table

from repro.chain.blocks import make_genesis
from repro.chain.state import StateDB
from repro.chain.transactions import make_transfer
from repro.common.clock import WallClock
from repro.common.signatures import KeyPair
from repro.consensus.node import BlockchainNode, NodeConfig, make_network_nodes
from repro.consensus.poa import ProofOfAuthority
from repro.p2p.config import P2PConfig
from repro.p2p.service import P2PService
from repro.p2p.transport import SimTransport
from repro.sim.kernel import Kernel
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import Network

BASE_PORT = 9481
PROBE_INTERVAL_S = 0.01


def percentile(values, fraction):
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


class SimWorld:
    """A PoA network of ``n_nodes`` (first 3 validate) gossiping via p2p."""

    def __init__(self, n_nodes, fanout, seed=18, block_interval_s=0.5):
        self.kernel = Kernel(seed=seed)
        self.metrics = MetricsRegistry()
        self.network = Network(self.kernel, self.metrics)
        self.alice = KeyPair.generate("alice")
        state = StateDB()
        state.credit(self.alice.address, 10**9)
        self.genesis = make_genesis(state.state_root())
        validators = [f"n{i}" for i in range(min(3, n_nodes))]
        keypairs = {name: KeyPair.generate(name) for name in validators}
        engine = ProofOfAuthority(
            validators, keypairs, block_interval_s=block_interval_s
        )
        self.nodes = make_network_nodes(
            self.kernel,
            self.network,
            validators,
            self.genesis,
            state,
            lambda: engine,
            metrics=self.metrics,
            config=NodeConfig(max_txs_per_block=3),
        )
        for i in range(len(validators), n_nodes):
            self.nodes[f"n{i}"] = BlockchainNode(
                kernel=self.kernel,
                network=self.network,
                name=f"n{i}",
                genesis=self.genesis,
                genesis_state=state,
                consensus=engine,
                metrics=self.metrics,
                config=NodeConfig(max_txs_per_block=3),
            )
        self.engine = engine
        self.state = state
        self.services = {}
        for name, node in self.nodes.items():
            seeds = [v for v in validators if v != name]
            transport = SimTransport(self.network, name, register=False)
            self.services[name] = P2PService(
                node,
                transport,
                P2PConfig(seeds=seeds, fanout=fanout, ping_interval_s=2.0),
            )
        for node in self.nodes.values():
            node.start()
        for service in self.services.values():
            service.start()
        self.kernel.run(until=3.0)  # let the mesh form

    def add_observer(self, name, seeds, **overrides):
        node = BlockchainNode(
            kernel=self.kernel,
            network=self.network,
            name=name,
            genesis=self.genesis,
            genesis_state=self.state,
            consensus=self.engine,
            metrics=self.metrics,
            config=NodeConfig(),
        )
        self.nodes[name] = node
        transport = SimTransport(self.network, name, register=False)
        self.services[name] = P2PService(
            node,
            transport,
            P2PConfig(seeds=list(seeds), fanout=2, ping_interval_s=1.0, **overrides),
        )
        node.start()
        self.services[name].start()
        return node


def measure_propagation(n_nodes, fanout, n_txs):
    """Per-node first-arrival latency of gossiped txs, plus dedup ratios."""
    world = SimWorld(n_nodes, fanout)
    latencies = []
    for n in range(n_txs):
        tx = make_transfer(world.alice, "sink", 1, nonce=n)
        start = world.kernel.now
        arrivals = {}

        def has_tx(node):
            return tx.tx_id in node.mempool or node.receipt(tx.tx_id)

        def probe():
            for name, node in world.nodes.items():
                if name not in arrivals and has_tx(node):
                    arrivals[name] = world.kernel.now - start
            if len(arrivals) < len(world.nodes):
                world.kernel.schedule(PROBE_INTERVAL_S, probe, label="probe")

        world.nodes["n0"].submit_tx(tx)
        probe()
        world.kernel.run(
            until=start + 60.0,
            stop_when=lambda: len(arrivals) == len(world.nodes),
        )
        latencies.extend(v for k, v in arrivals.items() if k != "n0")
    world.kernel.run(until=world.kernel.now + 5.0)  # drain block gossip
    fetches = world.metrics.counter_total("p2p_fetches")
    duplicates = world.metrics.counter_total("p2p_duplicate_bodies")
    return {
        "nodes": n_nodes,
        "fanout": fanout,
        "txs": n_txs,
        "p50_s": percentile(latencies, 0.50),
        "p95_s": percentile(latencies, 0.95),
        "max_s": max(latencies) if latencies else 0.0,
        "fetches": fetches,
        "duplicate_bodies": duplicates,
        "dup_ratio": duplicates / fetches if fetches else 0.0,
        "announce_dedup": world.metrics.counter_total("p2p_announce_duplicate"),
    }


def measure_cold_sync(n_txs):
    """Sim time for a fresh joiner to sync a chain of ~n_txs/3 blocks."""
    world = SimWorld(3, fanout=2)
    txs = [make_transfer(world.alice, "sink", 1, nonce=n) for n in range(n_txs)]
    for tx in txs:
        world.nodes["n0"].submit_tx(tx)
    world.kernel.run(
        until=world.kernel.now + 600.0,
        stop_when=lambda: all(
            n.receipt(txs[-1].tx_id) for n in world.nodes.values()
        ),
    )
    head = world.nodes["n0"].head
    joiner = world.add_observer("joiner", seeds=["n0", "n1"])
    start = world.kernel.now
    world.kernel.run(
        until=start + 600.0,
        stop_when=lambda: joiner.head.block_id == world.nodes["n0"].head.block_id,
    )
    return {
        "chain_blocks": head.height,
        "sync_s": world.kernel.now - start,
        "sync_rounds": world.metrics.counter("p2p_sync_rounds", scope="joiner"),
        "sync_blocks": world.metrics.counter("p2p_sync_blocks", scope="joiner"),
        "duplicate_bodies": world.metrics.counter(
            "p2p_duplicate_bodies", scope="joiner"
        ),
        "root_equal": joiner.state.state_root()
        == world.nodes["n0"].state.state_root(),
    }


def run_tcp_acceptance(n_validators=5, n_txs=8):
    """The ISSUE's acceptance scenario over real sockets, measured."""
    from repro.p2p.host import P2PHost
    from repro.p2p.node_server import build_world
    from repro.p2p.wire import tx_to_wire
    from repro.rpc.client import ConnectionPool
    from repro.rpc.runtime import EventLoopThread

    names = [f"v{i}" for i in range(n_validators)]
    alice = KeyPair.generate("alice")
    world = build_world(names, {"alice": 10**9}, block_interval_s=0.2)
    clock = WallClock()
    addrs = [f"127.0.0.1:{BASE_PORT + i}" for i in range(n_validators)]
    loop = EventLoopThread(name="bench-e18-client")

    def call(addr, method, params=None):
        host, port = addr.rsplit(":", 1)

        async def go():
            pool = ConnectionPool(host, int(port), request_timeout_s=5.0)
            try:
                return await pool.call(method, params or {}, timeout_s=5.0)
            finally:
                await pool.close()

        return loop.run(go(), timeout_s=10.0)

    def wait_for(predicate, timeout_s=60.0):
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if predicate():
                return True
            time.sleep(0.2)
        return predicate()

    def make_host(name, port, seeds, seed):
        genesis, state, engine = world
        return P2PHost(
            name=name,
            listen_addr=f"127.0.0.1:{port}",
            genesis=genesis,
            genesis_state=state,
            consensus=engine,
            node_config=NodeConfig(max_txs_per_block=2),
            p2p_config=P2PConfig(
                seeds=seeds, fanout=2, ping_interval_s=0.5, request_timeout_s=3.0
            ),
            seed=seed,
            time_source=clock.now,
        )

    hosts = [
        make_host(name, BASE_PORT + i, [a for j, a in enumerate(addrs) if j != i], i)
        for i, name in enumerate(names)
    ]
    joiner = None
    try:
        for host in hosts:
            host.start()
        assert wait_for(
            lambda: all(call(a, "ctl.status")["peers"] for a in addrs)
        ), "validators never interconnected"
        for n in range(n_txs):
            tx = make_transfer(alice, "sink", 1, nonce=n)
            call(addrs[0], "ctl.submit_tx", {"tx": tx_to_wire(tx)})
        assert wait_for(
            lambda: all(call(a, "ctl.status")["mempool"] == 0 for a in addrs)
            and len({call(a, "ctl.status")["head_id"] for a in addrs}) == 1
        ), "validators did not converge"
        head = call(addrs[0], "ctl.status")

        joiner_addr = f"127.0.0.1:{BASE_PORT + n_validators}"
        joiner = make_host("joiner", BASE_PORT + n_validators, [addrs[0]], 99)
        start = time.monotonic()
        joiner.start()

        def joined():
            status = call(joiner_addr, "ctl.status")
            tip = call(addrs[0], "ctl.status")
            return (
                status["head_id"] == tip["head_id"]
                and status["state_root"] == tip["state_root"]
            )

        synced = wait_for(joined)
        cold_sync_s = time.monotonic() - start
        statuses = [call(a, "ctl.status") for a in addrs + [joiner_addr]]
        counters = [call(a, "ctl.counters") for a in addrs + [joiner_addr]]
        return {
            "validators": n_validators,
            "chain_height": head["height"],
            "cold_sync_s": cold_sync_s,
            "equivalent": synced
            and len({s["head_id"] for s in statuses}) == 1
            and len({s["state_root"] for s in statuses}) == 1,
            "zero_flood": all(c["p2p_duplicate_bodies"] == 0 for c in counters),
            "sync_blocks": counters[-1]["p2p_sync_blocks"],
        }
    finally:
        if joiner is not None:
            joiner.stop()
        for host in hosts:
            host.stop()
        loop.close()


def run_experiment(fast=False):
    if fast:
        matrix = [(6, 2), (6, 4), (12, 2)]
        prop_txs, sync_lengths, tcp_txs = 4, [6, 12], 6
    else:
        matrix = [(6, 2), (6, 4), (12, 2), (12, 4), (24, 2), (24, 4)]
        prop_txs, sync_lengths, tcp_txs = 8, [9, 24, 48], 12
    propagation = [measure_propagation(n, f, prop_txs) for n, f in matrix]
    cold_sync = [measure_cold_sync(n) for n in sync_lengths]
    tcp = run_tcp_acceptance(n_txs=tcp_txs)
    return {"propagation": propagation, "cold_sync": cold_sync, "tcp": tcp}


def report(result):
    emit(
        "e18_p2p_propagation",
        format_table(
            "E18a: gossip propagation (sim; tx arrival latency across nodes)",
            ["nodes", "fanout", "p50 (s)", "p95 (s)", "max (s)",
             "fetches", "dup bodies", "dup ratio"],
            [[r["nodes"], r["fanout"], r["p50_s"], r["p95_s"], r["max_s"],
              r["fetches"], r["duplicate_bodies"], r["dup_ratio"]]
             for r in result["propagation"]],
        ),
    )
    emit(
        "e18_p2p_cold_sync",
        format_table(
            "E18b: headers-first cold sync (sim)",
            ["chain blocks", "sync (s)", "rounds", "blocks fetched",
             "dup bodies", "root equal"],
            [[r["chain_blocks"], r["sync_s"], r["sync_rounds"],
              r["sync_blocks"], r["duplicate_bodies"], r["root_equal"]]
             for r in result["cold_sync"]],
        ),
    )
    tcp = result["tcp"]
    emit(
        "e18_p2p_tcp",
        format_table(
            "E18c: TCP acceptance (5 validators + fresh joiner, real sockets)",
            ["validators", "chain height", "cold sync (s)", "sync blocks",
             "equivalent", "zero flood"],
            [[tcp["validators"], tcp["chain_height"], tcp["cold_sync_s"],
              tcp["sync_blocks"], tcp["equivalent"], tcp["zero_flood"]]],
        ),
    )
    return result


def check(result):
    """The invariants CI enforces."""
    for row in result["propagation"]:
        assert row["duplicate_bodies"] == 0, (
            f"{row['nodes']}x{row['fanout']}: {row['duplicate_bodies']} "
            "duplicate body deliveries (zero-flood property violated)"
        )
    for row in result["cold_sync"]:
        assert row["root_equal"], f"cold sync diverged at {row['chain_blocks']}"
        assert row["duplicate_bodies"] == 0, row
    assert result["tcp"]["equivalent"], (
        "TCP joiner did not converge to the network head/state root"
    )
    assert result["tcp"]["zero_flood"], (
        "duplicate block bodies delivered over TCP"
    )


def test_e18_p2p(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment(fast=True), rounds=1, iterations=1
    )
    report(result)
    check(result)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="smaller matrix and shorter chains")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write a {bench, params, metrics, timestamp} "
                             "envelope to PATH")
    parser.add_argument("--no-gate", action="store_true",
                        help="report without asserting the CI invariants")
    args = parser.parse_args(argv)
    result = report(run_experiment(fast=args.fast))
    emit_json(args.json, "e18_p2p", {"fast": args.fast}, result)
    if not args.no_gate:
        check(result)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
