"""E21 — PHI taint analysis: throughput, deploy-gate latency, detection.

Gates the load-bearing claims of the MED2xx "PHI escape" pass:

- **analysis throughput**: the full repo walk (``src/repro`` +
  ``examples``) with the taint pass off vs on — files/s and the relative
  overhead of interprocedural taint on top of the MED0xx/MED1xx checkers;
- **deploy-gate latency**: ``verify_contract`` over the shipped platform
  contracts with ``taint=False`` vs ``taint=True`` — the per-deploy cost
  the PR 5 verification gate absorbs for the privacy guarantee;
- **detection**: the ``tests/analysis/corpus`` leak snippets must each be
  flagged with *exactly* their encoded MED2xx code (100% detection), the
  clean twins and the dogfooded repo tree must produce zero findings
  (0 false positives) — the same invariants the test suite pins, enforced
  here so the trajectory records them per run.

Timings use wall clock: this benchmark measures real AST analysis work.
"""

from __future__ import annotations

import argparse
import glob
import os
import re
import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, emit_json, format_table

from repro.analysis import analyze_file, analyze_paths, verify_contract
from repro.contracts import library

REPO_ROOT = os.path.normpath(
    os.path.join(os.path.dirname(__file__), os.pardir)
)
DOGFOOD_PATHS = [
    os.path.join(REPO_ROOT, "src", "repro"),
    os.path.join(REPO_ROOT, "examples"),
]
CORPUS_DIR = os.path.join(REPO_ROOT, "tests", "analysis", "corpus")


def _library_sources() -> dict:
    return {
        name: getattr(library, name)
        for name in sorted(dir(library))
        if name.endswith("_SOURCE") and isinstance(getattr(library, name), str)
    }


# -- 1. repo analysis throughput --------------------------------------------

def analysis_throughput(fast: bool) -> dict:
    rounds = 1 if fast else 3
    out = {"rows": [], "med2_findings": None}
    for taint in (False, True):
        best = None
        result = None
        for _ in range(rounds):
            start = time.perf_counter()
            result = analyze_paths(DOGFOOD_PATHS, taint=taint)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        med2 = [f for f in result.findings if f.code.startswith("MED2")]
        out["rows"].append(
            {
                "taint": taint,
                "seconds": best,
                "files": result.files_analyzed,
                "files_per_s": result.files_analyzed / best,
                "findings": len(result.findings),
            }
        )
        if taint:
            out["med2_findings"] = len(med2)
            out["med2_rendered"] = [f.render() for f in med2]
    base, taint_on = out["rows"]
    out["taint_overhead_pct"] = (
        (taint_on["seconds"] - base["seconds"]) / base["seconds"] * 100
    )
    return out


# -- 2. deploy-gate latency ---------------------------------------------------

def deploy_gate_latency(fast: bool) -> dict:
    sources = _library_sources()
    rounds = 3 if fast else 10
    out = {"contracts": len(sources), "rows": []}
    for taint in (False, True):
        best = None
        for _ in range(rounds):
            start = time.perf_counter()
            for name, source in sources.items():
                verify_contract(source, name=name, taint=taint)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        out["rows"].append(
            {
                "taint": taint,
                "seconds_per_pass": best,
                "ms_per_contract": best / len(sources) * 1000,
            }
        )
    base, taint_on = out["rows"]
    out["latency_delta_ms"] = (
        taint_on["ms_per_contract"] - base["ms_per_contract"]
    )
    out["latency_delta_pct"] = (
        (taint_on["seconds_per_pass"] - base["seconds_per_pass"])
        / base["seconds_per_pass"]
        * 100
    )
    return out


# -- 3. corpus detection ------------------------------------------------------

def corpus_detection() -> dict:
    rows = []
    detected = 0
    false_positives = 0
    leak_files = sorted(glob.glob(os.path.join(CORPUS_DIR, "leak_*.py")))
    clean_files = sorted(glob.glob(os.path.join(CORPUS_DIR, "clean_*.py")))
    for path in leak_files + clean_files:
        name = os.path.basename(path)
        codes = [
            f.code
            for f in analyze_file(path, taint=True)
            if f.code.startswith("MED2")
        ]
        match = re.search(r"med(\d{3})\.py$", name)
        expected = [f"MED{match.group(1)}"] if match else []
        ok = codes == expected
        if match and ok:
            detected += 1
        if not match:
            false_positives += len(codes)
        rows.append(
            {
                "snippet": name,
                "expected": expected,
                "found": codes,
                "ok": ok,
            }
        )
    return {
        "rows": rows,
        "leaks": len(leak_files),
        "cleans": len(clean_files),
        "detected": detected,
        "detection_rate": detected / len(leak_files) if leak_files else 0.0,
        "false_positives": false_positives,
    }


# -- harness ------------------------------------------------------------------

def run_experiment(fast: bool) -> dict:
    return {
        "throughput": analysis_throughput(fast),
        "gate": deploy_gate_latency(fast),
        "corpus": corpus_detection(),
    }


def report(result: dict) -> dict:
    through = result["throughput"]
    emit(
        "e21_taint_throughput",
        format_table(
            f"E21a repo analysis throughput "
            f"(taint overhead {through['taint_overhead_pct']:.1f}%)",
            ["taint", "seconds", "files", "files/s", "findings"],
            [
                [r["taint"], r["seconds"], r["files"], r["files_per_s"],
                 r["findings"]]
                for r in through["rows"]
            ],
        ),
    )
    gate = result["gate"]
    emit(
        "e21_taint_gate_latency",
        format_table(
            f"E21b deploy-gate latency over {gate['contracts']} platform "
            f"contracts (taint delta {gate['latency_delta_ms']:.2f} "
            f"ms/contract, {gate['latency_delta_pct']:.1f}%)",
            ["taint", "s/pass", "ms/contract"],
            [
                [r["taint"], r["seconds_per_pass"], r["ms_per_contract"]]
                for r in gate["rows"]
            ],
        ),
    )
    corpus = result["corpus"]
    emit(
        "e21_taint_corpus",
        format_table(
            f"E21c corpus detection "
            f"({corpus['detected']}/{corpus['leaks']} leaks, "
            f"{corpus['false_positives']} false positive(s))",
            ["snippet", "expected", "found", "ok"],
            [
                [r["snippet"], ",".join(r["expected"]) or "-",
                 ",".join(r["found"]) or "-", r["ok"]]
                for r in corpus["rows"]
            ],
        ),
    )
    return result


def check(result: dict) -> None:
    """The CI gate: 100% corpus detection, zero false positives."""
    corpus = result["corpus"]
    assert corpus["detection_rate"] == 1.0, (
        f"corpus detection {corpus['detection_rate']:.0%}: "
        f"{[r for r in corpus['rows'] if not r['ok']]}"
    )
    for row in corpus["rows"]:
        assert row["ok"], row  # exact code, nothing more, nothing less
    assert corpus["false_positives"] == 0, corpus
    through = result["throughput"]
    assert through["med2_findings"] == 0, (
        "dogfood run must be clean:\n"
        + "\n".join(through.get("med2_rendered", []))
    )


def test_e21_taint(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment(fast=True), rounds=1, iterations=1
    )
    report(result)
    check(result)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="fewer timing rounds")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write a {bench, params, metrics, timestamp} "
                             "envelope to PATH")
    parser.add_argument("--no-gate", action="store_true",
                        help="report without asserting the CI invariants")
    args = parser.parse_args(argv)
    result = report(run_experiment(fast=args.fast))
    emit_json(args.json, "e21_taint",
              {"fast": args.fast,
               "dogfood_paths": ["src/repro", "examples"],
               "corpus": os.path.relpath(CORPUS_DIR, REPO_ROOT)},
              result)
    if not args.no_gate:
        check(result)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
