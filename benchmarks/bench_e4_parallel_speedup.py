"""E4 — Parallel speedup of the transformed architecture (Figure 1, §III).

Claim: by making each node's off-chain control code feed *different* local
data to the same on-chain contract, the blockchain becomes a distributed
parallel computer: S sites process their shards simultaneously, so the
makespan of a decomposable analytic approaches 1/S of the single-site time,
bounded below by chain coordination latency.

Workload: a fixed corpus of patient records is split over 1/2/4/8 sites;
every site runs the ``local_train`` analytic on its shard (with a simulated
compute rate so analytics take simulated time).  Reported: makespan,
speedup vs one site, parallel efficiency, and the coordination floor.

``--wallclock`` switches from simulated to *measured* time: the same
sharded corpus is fanned out through ``run_many_across_sites`` under the
serial, thread, and process executor backends, a CPU-bound genomic risk
scan runs at every site, and the script asserts that all backends commit
bit-identical result hashes (the regression gate CI enforces via
``BENCH_e4.json``).  A >= 2x speedup at 4 workers is additionally gated
when the host actually exposes >= 4 cores.
"""

from __future__ import annotations

import argparse
import json
import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, emit_json, format_table

from repro import obs
from repro.common.signatures import KeyPair
from repro.core.platform import MedicalBlockchainNetwork, PlatformConfig
from repro.core.queryservice import GlobalQueryService
from repro.datamgmt.cohort import CohortGenerator, default_site_profiles
from repro.offchain.tasks import (
    TaskRequest,
    TaskResult,
    TaskRunner,
    ToolRegistry,
    ToolSpec,
    batch_flops,
    run_many_across_sites,
)
from repro.parallel import available_workers, make_executor
from repro.query.vector import QueryVector
from repro.sim.metrics import MetricsRegistry

TOTAL_RECORDS = 480
SITE_COUNTS = (1, 2, 4, 8)
COMPUTE_RATE = 2e5  # flops/second per site server


def run_split(site_count: int, seed: int = 21):
    generator = CohortGenerator(seed=99)
    profile = default_site_profiles(1)[0]
    corpus = generator.generate_cohort(profile, TOTAL_RECORDS)
    platform = MedicalBlockchainNetwork(
        PlatformConfig(
            site_count=site_count, consensus="poa", include_fda=False, seed=seed
        )
    )
    shard_size = TOTAL_RECORDS // site_count
    for index, site in enumerate(platform.site_names):
        shard = corpus[index * shard_size : (index + 1) * shard_size]
        platform.register_dataset(site, f"shard-{index}", shard)
        platform.sites[site].control.compute_rate_flops = COMPUTE_RATE
    researcher = KeyPair.generate("e4-researcher")
    for index, site in enumerate(platform.site_names):
        platform.grant_access(site, f"shard-{index}", researcher.address, "research")
    service = GlobalQueryService(platform, researcher)
    vector = QueryVector(intent="train", outcome="stroke", rounds=1)
    answer = service.execute(vector)
    return {
        "sites": site_count,
        "makespan_s": answer.latency_s,
        "records_per_site": shard_size,
    }


def run_experiment():
    rows = [run_split(count) for count in SITE_COUNTS]
    base = rows[0]["makespan_s"]
    for row in rows:
        row["speedup"] = base / row["makespan_s"]
        row["efficiency"] = row["speedup"] / row["sites"]
    return rows


def report(rows):
    table = format_table(
        f"E4: parallel speedup, {TOTAL_RECORDS} records split across sites",
        ["sites", "records/site", "makespan (sim s)", "speedup", "efficiency"],
        [
            [r["sites"], r["records_per_site"], r["makespan_s"], r["speedup"],
             r["efficiency"]]
            for r in rows
        ],
    )
    emit("e4_parallel_speedup", table)
    return rows


def test_e4_parallel_speedup(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(rows)
    # Speedup grows with sites...
    assert rows[-1]["speedup"] > rows[1]["speedup"] > 1.2
    # ...and 4 sites give at least 2x.
    four = next(r for r in rows if r["sites"] == 4)
    assert four["speedup"] > 2.0


# -- wall-clock mode ---------------------------------------------------------

WALLCLOCK_BACKENDS = ("serial", "thread", "process")
SCAN_FLOPS_PER_RECORD = 1e5


def genomic_risk_scan(records, params):
    """CPU-bound analytic: a pure-Python per-record iterative risk scan.

    Deliberately GIL-bound (no NumPy) so the thread backend shows no gain
    and the process backend shows real-core speedup.  Deterministic LCG
    arithmetic only — no ``hash()`` — so results are identical across
    worker processes regardless of ``PYTHONHASHSEED``.
    """
    iters = int(params.get("iters", 20000))
    checksum = 0
    risk_total = 0.0
    for rec in records:
        x = (int(rec["seed"]) * 2654435761 + 97) & 0x7FFFFFFF
        for __ in range(iters):
            x = (x * 1103515245 + 12345) & 0x7FFFFFFF
        checksum = (checksum ^ x) & 0x7FFFFFFF
        risk_total += (x % 1000) / 1000.0
    return {
        "records": len(records),
        "checksum": checksum,
        "mean_risk": round(risk_total / max(1, len(records)), 6),
    }


def _make_wallclock_sites(workers, records_per_site):
    registry = ToolRegistry()
    registry.register(
        ToolSpec(
            "genomic_risk_scan",
            genomic_risk_scan,
            description="iterative per-record risk scan (CPU-bound)",
            flops_per_record=SCAN_FLOPS_PER_RECORD,
        )
    )
    runners = {}
    site_requests = []
    for index in range(workers):
        site = f"site-{index}"
        runners[site] = TaskRunner(site, registry)
        shard = [
            {"id": f"p{index}-{row}", "seed": index * 100003 + row * 31 + 7}
            for row in range(records_per_site)
        ]
        site_requests.append(
            (
                site,
                TaskRequest(
                    task_id=f"scan-{index}",
                    tool_id="genomic_risk_scan",
                    records=shard,
                    params={"iters": None},  # filled by run_wallclock
                ),
            )
        )
    return runners, site_requests


def run_wallclock(workers=4, records_per_site=60, iters=50000,
                  require_speedup=None):
    """Measure real serial/thread/process times on identical shards.

    Hard gate: every backend must commit bit-identical result hashes.
    Optional gate: process speedup >= ``require_speedup``, enforced only
    when the host exposes at least ``workers`` usable cores (a 1-core CI
    box cannot physically show parallel speedup).
    """
    runners, site_requests = _make_wallclock_sites(workers, records_per_site)
    site_requests = [
        (site, TaskRequest(req.task_id, req.tool_id, req.records, {"iters": iters}))
        for site, req in site_requests
    ]
    metrics = MetricsRegistry()
    hashes = {}
    timings = {}
    failures = {}
    for backend in WALLCLOCK_BACKENDS:
        executor = make_executor(backend, max_workers=workers)
        with executor:
            # Warm the pool so process spin-up is not billed to the workload.
            warm = [(site_requests[0][0], TaskRequest("warmup", "genomic_risk_scan",
                                                      [], {"iters": 1}))]
            run_many_across_sites(runners, warm, executor)
            with metrics.wallclock(f"e4_{backend}"):
                outcomes = run_many_across_sites(runners, site_requests, executor)
        bad = [o for o in outcomes if not isinstance(o, TaskResult)]
        failures[backend] = [str(b) for b in bad]
        hashes[backend] = [
            o.result_hash if isinstance(o, TaskResult) else "FAILED" for o in outcomes
        ]
        timings[backend] = metrics.wallclock_total(f"e4_{backend}")
        if backend == "serial":
            flops = batch_flops(outcomes)
    equivalence = {
        backend: hashes[backend] == hashes["serial"] and not failures[backend]
        for backend in WALLCLOCK_BACKENDS
    }
    equivalent = all(equivalence.values())
    cores = available_workers()
    speedup = {
        backend: (timings["serial"] / timings[backend]) if timings[backend] else 0.0
        for backend in WALLCLOCK_BACKENDS
    }
    payload = {
        "available_cores": cores,
        "timings_s": timings,
        "speedup": speedup,
        "equivalence": equivalence,
        "equivalent": equivalent,
        "failures": failures,
        "flops_per_backend_run": flops,
        "result_hashes": hashes["serial"],
        "speedup_gate": {
            "required": require_speedup,
            "enforced": bool(require_speedup) and cores >= workers,
            "passed": (
                speedup["process"] >= require_speedup if require_speedup else None
            ),
        },
    }
    table = format_table(
        f"E4 (wall-clock): {workers} sites x {records_per_site} records, "
        f"{iters} iters/record, {cores} core(s) visible",
        ["backend", "wall s", "speedup", "hashes equal serial"],
        [
            [b, timings[b], speedup[b], equivalence[b]]
            for b in WALLCLOCK_BACKENDS
        ],
    )
    emit("e4_wallclock", table)
    return payload


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--wallclock", action="store_true",
                        help="measure real serial/thread/process times")
    parser.add_argument("--fast", action="store_true",
                        help="small CI-smoke workload (equivalence gate only)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write a {bench, params, metrics, timestamp} "
                             "BENCH_e4.json envelope to PATH")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="enable tracing and write a JSON-lines span "
                             "trace to PATH (inspect with "
                             "python -m repro.obs.summary)")
    parser.add_argument("--require-speedup", type=float, default=None,
                        help="fail unless process speedup meets this "
                             "(only enforced when enough cores are visible; "
                             "default 2.0 in non-fast wallclock mode)")
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error(f"--workers must be >= 1 (got {args.workers})")
    tracer = obs.enable() if args.trace else None
    if not args.wallclock:
        rows = report(run_experiment())
        emit_json(args.json, "e4_parallel_speedup",
                  {"mode": "simulated", "total_records": TOTAL_RECORDS,
                   "site_counts": list(SITE_COUNTS)},
                  {"rows": rows})
        if tracer is not None:
            count = obs.write_trace_jsonl(tracer, args.trace)
            print(f"wrote {count} spans to {args.trace}")
        return 0
    require = args.require_speedup
    if require is None and not args.fast and args.workers >= 2:
        require = 2.0
    records_per_site = 10 if args.fast else 60
    iters = 3000 if args.fast else 50000
    payload = run_wallclock(workers=args.workers,
                            records_per_site=records_per_site,
                            iters=iters, require_speedup=require)
    emit_json(args.json, "e4_parallel_speedup",
              {"mode": "wallclock", "workers": args.workers,
               "records_per_site": records_per_site, "iters": iters,
               "fast": args.fast},
              payload)
    if tracer is not None:
        count = obs.write_trace_jsonl(tracer, args.trace)
        print(f"wrote {count} spans to {args.trace}")
    if not payload["equivalent"]:
        print("FAIL: backends disagree on result hashes", file=sys.stderr)
        print(json.dumps(payload["equivalence"], indent=2), file=sys.stderr)
        return 1
    gate = payload["speedup_gate"]
    if gate["enforced"] and not gate["passed"]:
        print(
            f"FAIL: process speedup {payload['speedup']['process']:.2f}x "
            f"< required {gate['required']}x with "
            f"{payload['available_cores']} cores",
            file=sys.stderr,
        )
        return 1
    summary = ("equivalence OK; process speedup "
               f"{payload['speedup']['process']:.2f}x on "
               f"{payload['available_cores']} core(s)")
    if gate["required"] and not gate["enforced"]:
        summary += (f" (speedup gate {gate['required']}x skipped: "
                    f"needs >= {args.workers} cores)")
    print(summary)
    return 0


if __name__ == "__main__":
    sys.exit(main())
