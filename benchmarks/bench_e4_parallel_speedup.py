"""E4 — Parallel speedup of the transformed architecture (Figure 1, §III).

Claim: by making each node's off-chain control code feed *different* local
data to the same on-chain contract, the blockchain becomes a distributed
parallel computer: S sites process their shards simultaneously, so the
makespan of a decomposable analytic approaches 1/S of the single-site time,
bounded below by chain coordination latency.

Workload: a fixed corpus of patient records is split over 1/2/4/8 sites;
every site runs the ``local_train`` analytic on its shard (with a simulated
compute rate so analytics take simulated time).  Reported: makespan,
speedup vs one site, parallel efficiency, and the coordination floor.
"""

from __future__ import annotations

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import emit, format_table

from repro.common.signatures import KeyPair
from repro.core.platform import MedicalBlockchainNetwork, PlatformConfig
from repro.core.queryservice import GlobalQueryService
from repro.datamgmt.cohort import CohortGenerator, default_site_profiles
from repro.query.vector import QueryVector

TOTAL_RECORDS = 480
SITE_COUNTS = (1, 2, 4, 8)
COMPUTE_RATE = 2e5  # flops/second per site server


def run_split(site_count: int, seed: int = 21):
    generator = CohortGenerator(seed=99)
    profile = default_site_profiles(1)[0]
    corpus = generator.generate_cohort(profile, TOTAL_RECORDS)
    platform = MedicalBlockchainNetwork(
        PlatformConfig(
            site_count=site_count, consensus="poa", include_fda=False, seed=seed
        )
    )
    shard_size = TOTAL_RECORDS // site_count
    for index, site in enumerate(platform.site_names):
        shard = corpus[index * shard_size : (index + 1) * shard_size]
        platform.register_dataset(site, f"shard-{index}", shard)
        platform.sites[site].control.compute_rate_flops = COMPUTE_RATE
    researcher = KeyPair.generate("e4-researcher")
    for index, site in enumerate(platform.site_names):
        platform.grant_access(site, f"shard-{index}", researcher.address, "research")
    service = GlobalQueryService(platform, researcher)
    vector = QueryVector(intent="train", outcome="stroke", rounds=1)
    answer = service.execute(vector)
    return {
        "sites": site_count,
        "makespan_s": answer.latency_s,
        "records_per_site": shard_size,
    }


def run_experiment():
    rows = [run_split(count) for count in SITE_COUNTS]
    base = rows[0]["makespan_s"]
    for row in rows:
        row["speedup"] = base / row["makespan_s"]
        row["efficiency"] = row["speedup"] / row["sites"]
    return rows


def report(rows):
    table = format_table(
        f"E4: parallel speedup, {TOTAL_RECORDS} records split across sites",
        ["sites", "records/site", "makespan (sim s)", "speedup", "efficiency"],
        [
            [r["sites"], r["records_per_site"], r["makespan_s"], r["speedup"],
             r["efficiency"]]
            for r in rows
        ],
    )
    emit("e4_parallel_speedup", table)
    return rows


def test_e4_parallel_speedup(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(rows)
    # Speedup grows with sites...
    assert rows[-1]["speedup"] > rows[1]["speedup"] > 1.2
    # ...and 4 sites give at least 2x.
    four = next(r for r in rows if r["sites"] == 4)
    assert four["speedup"] > 2.0


if __name__ == "__main__":
    report(run_experiment())
