"""Heterogeneous EMR integration and record linkage (Figure 3, §III.A).

Four hospitals keep their records in four different legacy formats; some
patients visited two hospitals and left scattered records.  This example:

1. stores each cohort in its site's native format (hl7v2 / FHIR-JSON /
   flat legacy CSV / canonical);
2. reads everything back through the schema mappers into the canonical
   form (the paper's "common data format");
3. builds the *virtual cohort* — one logical dataset, nothing copied —
   and answers population statistics from mergeable per-site summaries;
4. re-links multi-hospital patients, with and without national ids.

Run:  python examples/data_integration.py
"""

import numpy as np

from repro.datamgmt.cohort import (
    CohortGenerator,
    default_site_profiles,
    shared_patients,
)
from repro.datamgmt.linkage import RecordLinker, evaluate_linkage
from repro.datamgmt.schema import is_canonical
from repro.datamgmt.store import HospitalDataStore
from repro.datamgmt.virtual import DatasetRef, VirtualCohort

FORMATS = ("hl7v2", "fhirjson", "legacycsv", "canonical")
RECORDS_PER_SITE = 200


def main() -> None:
    generator = CohortGenerator(seed=14)
    profiles = default_site_profiles(4)
    cohorts = generator.generate_multi_site(profiles, RECORDS_PER_SITE)

    print("storing each hospital's cohort in its native legacy format:")
    stores = {}
    virtual = VirtualCohort(lambda site: stores[site])
    for index, (site, records) in enumerate(sorted(cohorts.items())):
        store = HospitalDataStore(site)
        store.add_canonical(f"emr-{site}", records, fmt=FORMATS[index])
        stores[site] = store
        virtual.add_ref(DatasetRef(site, f"emr-{site}", len(records)))
        sample = store.get_raw(f"emr-{site}")[0]
        keys = list(sample)[:5]
        print(f"  {site}: {FORMATS[index]:9s}  raw keys look like {keys}")

    print("\nreading back through the schema mappers (canonical view):")
    ok = 0
    total = 0
    for site in stores:
        for record in stores[site].get_records(f"emr-{site}"):
            total += 1
            ok += is_canonical(record)
    print(f"  {ok}/{total} records validate against the canonical schema")

    print("\nvirtual cohort (no data copied):")
    print(f"  total records: {virtual.total_records} across {len(virtual.sites)} sites "
          f"(largest silo: {RECORDS_PER_SITE})")
    sbp = virtual.numeric_summary("vitals.sbp")
    print(f"  mean SBP {sbp.mean:.1f} mmHg over n={sbp.count} "
          f"(composed from per-site summaries)")
    for outcome in ("stroke", "diabetes", "cancer"):
        print(f"  {outcome} prevalence: {virtual.prevalence(outcome):.3f}")

    print("\nrecord linkage for patients seen at two hospitals:")
    groups = shared_patients(generator, profiles, 60, sites_per_patient=2)
    records = []
    for person, group in enumerate(groups):
        for record in group:
            record["_person"] = person
            records.append(record)
    result = RecordLinker().link(records)
    metrics = evaluate_linkage(result)
    print(f"  with national ids:    precision {metrics['precision']:.3f} "
          f"recall {metrics['recall']:.3f} "
          f"({result.deterministic_links} deterministic links)")

    rng = np.random.default_rng(0)
    for record in records:
        if rng.random() < 0.7:
            record["national_id_hash"] = ""
    result = RecordLinker().link(records)
    metrics = evaluate_linkage(result)
    print(f"  70% ids masked:       precision {metrics['precision']:.3f} "
          f"recall {metrics['recall']:.3f} "
          f"({result.probabilistic_links} probabilistic links)")


if __name__ == "__main__":
    main()
