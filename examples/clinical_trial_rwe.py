"""Real-world-evidence clinical trial on the medical blockchain (§II, §IV).

Walks the full FDA-vision pipeline the paper sketches:

1. the sponsor registers the trial on chain — protocol hash and
   pre-registered outcomes are committed before any data exists;
2. three hospitals recruit patients through the clinical-trial contract;
3. follow-up data streams in; an RWE monitor watches efficacy per genetic
   subgroup and safety continuously;
4. the sponsor "publishes" a report with a switched outcome and a falsified
   record — both are caught mechanically against the on-chain commitments.

Run:  python examples/clinical_trial_rwe.py
"""

from repro.core.platform import MedicalBlockchainNetwork, PlatformConfig
from repro.datamgmt.cohort import CohortGenerator, default_site_profiles
from repro.offchain.anchoring import DatasetAnchor
from repro.trial.auditor import PublishedReport, TrialAuditor
from repro.trial.monitor import RWEMonitor
from repro.trial.protocol import TrialProtocol
from repro.trial.simulation import assign_arms, simulate_follow_up, true_effect_summary

ENROLL_PER_SITE = 120


def main() -> None:
    platform = MedicalBlockchainNetwork(
        PlatformConfig(site_count=3, consensus="poa", include_fda=True, seed=4)
    )
    protocol = TrialProtocol(
        trial_id="NCT-DEMO-001",
        title="Anticoagulant-X vs standard of care in stroke prevention",
        drug="anticoag-x",
        primary_outcomes=["stroke"],
        secondary_outcomes=["mortality"],
        subgroups=["rs2200733"],
        target_enrollment=3 * ENROLL_PER_SITE,
        follow_up_days=365,
    )
    sponsor = platform.sites["hospital-0"]
    print(f"registering trial {protocol.trial_id} "
          f"(protocol hash {protocol.protocol_hash()[:16]}...) on chain")
    tx = sponsor.control.submit_signed_call(
        platform.contracts.trial_contract_id,
        "register_trial",
        protocol.to_registration_args(),
    )
    receipt = platform.run_until_committed(tx)
    assert receipt.success, receipt.error

    print("recruiting through the clinical-trial contract at 3 hospitals...")
    generator = CohortGenerator(seed=40)
    profiles = default_site_profiles(3)
    patients = []
    last_tx = None
    arm_flip = 0
    for index, site_name in enumerate(platform.site_names):
        cohort = generator.generate_cohort(profiles[index], ENROLL_PER_SITE)
        patients.extend(cohort)
        site = platform.sites[site_name]
        for record in cohort:
            last_tx = site.control.submit_signed_call(
                platform.contracts.trial_contract_id,
                "enroll",
                {
                    "trial_id": protocol.trial_id,
                    "patient_pseudo_id": record["patient_id"],
                    "site": site_name,
                    "arm": protocol.arms[arm_flip % 2],
                },
            )
            arm_flip += 1
    platform.run_until_committed(last_tx, timeout_s=1200)
    platform.run(30)
    trial = platform.nodes["fda"].call_view(
        platform.contracts.trial_contract_id,
        "get_trial",
        {"trial_id": protocol.trial_id},
    )
    print(f"  enrolled {trial['enrolled']} / {protocol.target_enrollment}; "
          f"status = {trial['status']}")

    print("\nsimulating follow-up (drug protects rs2200733 carriers only)...")
    arms = assign_arms(patients, protocol, seed=8)
    outcomes = simulate_follow_up(patients, arms, protocol, seed=9)
    truth = true_effect_summary(outcomes)
    print(f"  carriers:     treatment {truth['treatment_rate_carriers']:.2f} "
          f"vs control {truth['control_rate_carriers']:.2f}")
    print(f"  non-carriers: treatment {truth['treatment_rate_noncarriers']:.2f} "
          f"vs control {truth['control_rate_noncarriers']:.2f}")

    # Continuous monitoring re-tests after every report, so alpha must be
    # conservative (repeated looks inflate type-I error).
    monitor = RWEMonitor(alpha=0.001, min_per_arm=30, subgroup_min_per_arm=15)
    monitor.run_stream(outcomes)
    print("\ncontinuous-monitoring signals:")
    for signal in monitor.signals:
        print(f"  day {signal.day:3d}: {signal.kind}  (p={signal.p_value:.2e})")
    if not monitor.signals:
        print("  none fired")

    print("\nsponsor publishes a *bad* report (switched outcome + falsified record)...")
    raw = [dict(record) for record in patients[:60]]
    anchor = DatasetAnchor.build(raw)
    tampered = [dict(record) for record in raw]
    tampered[7]["outcomes"] = {**tampered[7]["outcomes"],
                               "stroke": 1 - tampered[7]["outcomes"]["stroke"]}
    report = PublishedReport(
        protocol.trial_id,
        claimed_outcomes=["stroke", "patient_satisfaction"],  # switched!
        raw_records=tampered,
    )
    registered = trial["outcomes"]
    finding = TrialAuditor().audit(registered, report, anchor.root_hex)
    print(f"  outcome switching detected: {bool(finding.switched_in)} "
          f"(switched in: {finding.switched_in})")
    print(f"  silently dropped outcomes:  {finding.silently_dropped}")
    print(f"  raw data matches anchor:    {finding.data_intact}")
    print(f"  verdict: {'CLEAN' if finding.clean else 'VIOLATIONS FOUND'}")


if __name__ == "__main__":
    main()
