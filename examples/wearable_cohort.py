"""Wearable-device streams and distributed hypothesis tests (paper §II).

The paper's data inventory goes beyond EMR: "wearable device health data,
environment data, genome data, lifestyle data".  This example:

1. generates 28-day wearable streams (steps, resting HR, sleep) for two
   hospital cohorts, consistent with each patient's EMR lifestyle fields;
2. summarizes them per site and composes the global summary without moving
   a single day of raw series;
3. runs a *distributed* Welch's t-test (compare intent) over the EMR data —
   "do stroke patients have higher systolic blood pressure?" — where each
   site contributes only two moment summaries.

Run:  python examples/wearable_cohort.py
"""

from repro.analytics.tools import tool_compare_groups
from repro.datamgmt.cohort import CohortGenerator, default_site_profiles
from repro.datamgmt.wearables import (
    WearableGenerator,
    merge_wearable_summaries,
    tool_wearable_summary,
)
from repro.query.compose import compose
from repro.query.parser import parse_query

SITES = 2
RECORDS_PER_SITE = 250


def main() -> None:
    cohort_generator = CohortGenerator(seed=3)
    profiles = default_site_profiles(SITES)
    cohorts = cohort_generator.generate_multi_site(profiles, RECORDS_PER_SITE)

    print("generating 28-day wearable streams per hospital...")
    wearable_generator = WearableGenerator(seed=4)
    streams = {
        site: wearable_generator.cohort_streams(records, days=28)
        for site, records in cohorts.items()
    }

    print("per-site summaries (only these leave each hospital):")
    partials = []
    for site, site_streams in sorted(streams.items()):
        partial = tool_wearable_summary(site_streams, {})
        partials.append(partial)
        print(f"  {site}: {partial['patients']} patients, "
              f"mean steps {partial['steps']['mean']:.0f}, "
              f"mean resting HR {partial['resting_hr']['mean']:.1f}, "
              f"active-day fraction {partial['active_day_fraction']:.2f}")

    merged = merge_wearable_summaries(partials)
    print(f"\ncomposed global summary ({merged['patients']} patients, "
          f"{merged['steps']['count']} patient-days):")
    print(f"  steps      mean {merged['steps']['mean']:.0f} "
          f"(sd {merged['steps']['variance'] ** 0.5:.0f})")
    print(f"  resting HR mean {merged['resting_hr']['mean']:.1f}")
    print(f"  sleep      mean {merged['sleep_hours']['mean']:.2f} h")
    print(f"  active-day fraction {merged['active_day_fraction']:.3f}")

    print("\ndistributed two-group test: SBP in stroke vs non-stroke patients")
    vector = parse_query("compare systolic blood pressure between men and women")
    # Swap the parsed groups for the clinically interesting split:
    vector.group_field = "outcomes.stroke"
    vector.group_values = [1, 0]
    partials = [
        tool_compare_groups(records, vector.tool_params())
        for records in cohorts.values()
    ]
    result = compose(vector, partials)
    stroke, no_stroke = result["groups"]
    print(f"  stroke patients    (n={stroke['count']}): "
          f"mean SBP {stroke['mean']:.1f}")
    print(f"  non-stroke patients (n={no_stroke['count']}): "
          f"mean SBP {no_stroke['mean']:.1f}")
    print(f"  Welch t = {result['t_statistic']:.2f}, p = {result['p_value']:.2e} "
          f"(computed from per-site moments only)")


if __name__ == "__main__":
    main()
