"""From a natural-language question to per-site smart contracts (Figs. 5/6).

Shows the full query path in slow motion:

1. parse the question into a QueryVector (intent, outcome, filters);
2. decompose it over the on-chain dataset catalog into per-site tasks;
3. dispatch the tasks as analytics-contract transactions;
4. watch the monitor-node events and each site's control node execute;
5. compose the partial results and compare against the pooled ground truth.

Run:  python examples/query_to_contract.py
"""

from repro.analytics.tools import STANDARD_TOOLS
from repro.common.signatures import KeyPair
from repro.core.platform import MedicalBlockchainNetwork, PlatformConfig
from repro.core.queryservice import GlobalQueryService
from repro.datamgmt.cohort import CohortGenerator, default_site_profiles
from repro.query.compose import decompose
from repro.query.parser import parse_query

QUESTION = "what is the prevalence of stroke among smokers over 60"


def main() -> None:
    generator = CohortGenerator(seed=21)
    profiles = default_site_profiles(3)
    cohorts = generator.generate_multi_site(profiles, 180)
    pooled = [record for records in cohorts.values() for record in records]

    platform = MedicalBlockchainNetwork(
        PlatformConfig(site_count=3, consensus="poa", include_fda=False, seed=6)
    )
    for site in platform.site_names:
        platform.register_dataset(site, f"emr-{site}", cohorts[site])
    researcher = KeyPair.generate("query-demo-researcher")
    for site in platform.site_names:
        platform.grant_access(site, f"emr-{site}", researcher.address, "research")

    print(f"question: {QUESTION!r}")
    vector = parse_query(QUESTION)
    print("\n1. parsed query vector:")
    print(f"   intent={vector.intent} outcome={vector.outcome} "
          f"filters={vector.filters}")
    print(f"   query id (content-addressed): {vector.query_id}")

    print("\n2. decomposition over the on-chain catalog:")
    catalog = platform.catalog()
    for task in decompose(vector, catalog):
        print(f"   {task.site}: tool={task.tool_id} datasets={task.dataset_ids}")

    print("\n3. dispatch + execution (the simulation runs the whole dance):")
    service = GlobalQueryService(platform, researcher)
    answer = service.execute(vector)
    platform.run(10)  # let the post_result transactions commit
    monitor = platform.sites["hospital-0"].monitor
    requested = monitor.events_named("TaskRequested")
    completed = monitor.events_named("TaskCompleted")
    print(f"   TaskRequested events seen on chain: {len(requested)}")
    print(f"   TaskCompleted events (result hashes anchored): {len(completed)}")

    print("\n4. per-site partial results:")
    for site, partial in sorted(answer.site_partials.items()):
        print(f"   {site}: {partial}")

    print("\n5. composed answer vs pooled ground truth:")
    tool = next(t for t in STANDARD_TOOLS if t.tool_id == vector.tool_id())
    reference = tool.fn(pooled, vector.tool_params())
    print(f"   composed: {answer.result}")
    print(f"   pooled:   positives={reference['positives']} n={reference['n']}")
    match = (
        answer.result["positives"] == reference["positives"]
        and answer.result["n"] == reference["n"]
    )
    print(f"   exact match: {match}")
    print(f"\n   latency {answer.latency_s:.2f} simulated s, "
          f"{answer.bytes_on_wire} bytes moved (vs ~{len(pooled) * 900} bytes "
          f"if the records had been copied)")


if __name__ == "__main__":
    main()
