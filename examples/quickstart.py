"""Quickstart: boot a medical blockchain, register data, ask a question.

This is the smallest end-to-end tour of the public API:

1. boot a 3-hospital platform (PoA consensus, FDA trusted node);
2. host synthetic EMR cohorts at each hospital, in that hospital's legacy
   format, anchored on chain;
3. grant a researcher access on chain;
4. ask a natural-language research question — it is decomposed into
   per-site smart-contract tasks, executed against local data, and the
   partial results composed into one answer.  No raw record ever moves.

Run:  python examples/quickstart.py
"""

from repro.common.signatures import KeyPair
from repro.core.platform import MedicalBlockchainNetwork, PlatformConfig
from repro.core.queryservice import GlobalQueryService
from repro.datamgmt.cohort import CohortGenerator, default_site_profiles


def main() -> None:
    print("booting a 3-hospital medical blockchain (PoA + FDA node)...")
    platform = MedicalBlockchainNetwork(
        PlatformConfig(site_count=3, consensus="poa", include_fda=True, seed=1)
    )
    print(f"  contracts deployed: data={platform.contracts.data_contract_id[:10]}... "
          f"analytics={platform.contracts.analytics_contract_id[:10]}...")

    print("hosting synthetic EMR cohorts (one legacy format per hospital)...")
    generator = CohortGenerator(seed=2)
    profiles = default_site_profiles(3)
    formats = ["hl7v2", "fhirjson", "legacycsv"]
    for index, site in enumerate(platform.site_names):
        cohort = generator.generate_cohort(profiles[index], 200)
        anchor = platform.register_dataset(
            site, f"emr-{site}", cohort, fmt=formats[index]
        )
        print(f"  {site}: 200 records as {formats[index]:9s} "
              f"anchored at {anchor.root_hex[:16]}...")

    print("granting Dr. Chen on-chain access to each dataset...")
    researcher = KeyPair.generate("dr-chen")
    for site in platform.site_names:
        platform.grant_access(site, f"emr-{site}", researcher.address, "research")

    service = GlobalQueryService(platform, researcher)
    for question in (
        "how many patients have diabetes",
        "what is the prevalence of stroke among smokers over 60",
        "average systolic blood pressure for women",
    ):
        answer = service.ask(question)
        print(f"\nQ: {question}")
        print(f"A: {answer.result}")
        print(f"   ({answer.latency_s:.2f} simulated s, "
              f"{answer.bytes_on_wire} bytes on the wire, "
              f"{len(answer.site_partials)} sites)")

    energy = platform.total_energy_joules()
    print(f"\ntotal platform energy so far: {energy:.3f} J "
          f"(gas={platform.metrics.counter_total('gas'):.0f}, "
          f"bytes={platform.metrics.counter_total('bytes_transferred'):.0f})")


if __name__ == "__main__":
    main()
