"""Federated stroke-risk model across hospitals (paper section III.C).

The project's first disease targets are "clinical trial, brain stroke and
cancer" (section IV).  This example trains a stroke-risk classifier with
FedAvg running *through the blockchain platform*: every round is a set of
on-chain task requests, executed by each hospital's off-chain control node
against its local shard, with only model parameters crossing the wire.

It then compares against (a) pooling all records centrally and (b) each
hospital training alone — reproducing experiment E8's shape interactively.

Run:  python examples/federated_stroke_model.py
"""

import numpy as np

from repro.analytics.features import FEATURE_DIM, dataset_for
from repro.analytics.models import LogisticModel
from repro.common.signatures import KeyPair
from repro.core.platform import MedicalBlockchainNetwork, PlatformConfig
from repro.core.queryservice import GlobalQueryService
from repro.datamgmt.cohort import CohortGenerator, default_site_profiles
from repro.learning.baseline import local_only_baselines, train_centralized
from repro.query.vector import QueryVector

SITES = 4
RECORDS_PER_SITE = 300
ROUNDS = 8


def main() -> None:
    generator = CohortGenerator(seed=7)
    profiles = default_site_profiles(SITES)
    cohorts = generator.generate_multi_site(profiles, RECORDS_PER_SITE)

    print(f"booting a {SITES}-hospital platform and hosting shards...")
    platform = MedicalBlockchainNetwork(
        PlatformConfig(site_count=SITES, consensus="poa", include_fda=False, seed=3)
    )
    for site in platform.site_names:
        platform.register_dataset(site, f"emr-{site}", cohorts[site])
    researcher = KeyPair.generate("stroke-researcher")
    for site in platform.site_names:
        platform.grant_access(site, f"emr-{site}", researcher.address, "research")

    test_records = []
    for profile in profiles:
        test_records.extend(generator.generate_cohort(profile, 250))
    X_test, y_test = dataset_for(test_records, "stroke")

    print(f"training with FedAvg over the chain ({ROUNDS} rounds)...")
    service = GlobalQueryService(platform, researcher)
    vector = QueryVector(intent="train", outcome="stroke", model="logistic",
                         rounds=ROUNDS)
    answer = service.execute(vector)
    federated = LogisticModel(FEATURE_DIM)
    federated.set_params([np.asarray(p) for p in answer.result["params"]])
    fed_metrics = federated.evaluate(X_test, y_test)
    print(f"  federated AUC {fed_metrics['auc']:.3f}  "
          f"({answer.bytes_on_wire} bytes on the wire, zero raw records moved)")

    print("baselines...")
    site_data = {
        site: dataset_for(records, "stroke") for site, records in cohorts.items()
    }
    factory = lambda: LogisticModel(FEATURE_DIM, seed=0)
    central = train_centralized(
        factory, site_data, (X_test, y_test), epochs=2 * ROUNDS, lr=0.1
    )
    print(f"  centralized AUC {central.eval_metrics['auc']:.3f}  "
          f"(moved {central.bytes_moved} bytes of raw records)")
    local = local_only_baselines(
        factory, site_data, (X_test, y_test), epochs=2 * ROUNDS, lr=0.1
    )
    for site, metrics in sorted(local.items()):
        print(f"  {site} alone: AUC {metrics['auc']:.3f}")

    gap = central.eval_metrics["auc"] - fed_metrics["auc"]
    saved = central.bytes_moved / max(answer.bytes_on_wire, 1)
    print(f"\nfederated is within {gap:+.3f} AUC of centralized while moving "
          f"{saved:.0f}x fewer bytes — and the records never left their sites.")


if __name__ == "__main__":
    main()
