"""Oracle error paths: typed failures, and a complete audit log.

Regression coverage for the bug where a handler-raised ``OracleError``
escaped ``DataOracle.call`` without being recorded in ``call_log`` —
breaking the paper's "traceable and auditable" property exactly on the
failing calls, the ones an audit most needs to see.
"""

from __future__ import annotations

import pytest

from repro.common.errors import OracleError
from repro.offchain.oracle import DataOracle, OracleEndpointError


def test_unknown_endpoint_is_typed_and_logged():
    oracle = DataOracle()
    with pytest.raises(OracleEndpointError) as err:
        oracle.call("no.such.endpoint", {"x": 1})
    assert err.value.kind == "unknown_endpoint"
    assert err.value.endpoint == "no.such.endpoint"
    assert isinstance(err.value, OracleError)  # back-compat for catchers
    assert len(oracle.call_log) == 1
    record = oracle.call_log[0]
    assert not record.ok and "unknown_endpoint" in record.error
    assert record.request == {"x": 1}


def test_handler_failure_is_typed_and_logged():
    oracle = DataOracle()

    def broken(request):
        raise ValueError("upstream exploded")

    oracle.register_endpoint("labs.fetch", broken)
    with pytest.raises(OracleEndpointError) as err:
        oracle.call("labs.fetch")
    assert err.value.kind == "handler_error"
    assert "upstream exploded" in err.value.detail
    assert len(oracle.call_log) == 1
    assert not oracle.call_log[0].ok


def test_handler_raised_oracle_error_is_still_logged():
    # The original bug: OracleError took the bare `raise` path, skipping the log.
    oracle = DataOracle()

    def refuses(request):
        raise OracleError("politely refusing")

    oracle.register_endpoint("refuser", refuses)
    with pytest.raises(OracleEndpointError) as err:
        oracle.call("refuser")
    assert err.value.kind == "handler_error"
    assert len(oracle.call_log) == 1
    assert not oracle.call_log[0].ok
    assert "politely refusing" in oracle.call_log[0].error


def test_non_dict_response_is_bad_response():
    oracle = DataOracle()
    oracle.register_endpoint("scalar", lambda request: 42)
    with pytest.raises(OracleEndpointError) as err:
        oracle.call("scalar")
    assert err.value.kind == "bad_response"
    assert len(oracle.call_log) == 1


def test_success_still_logs_ok():
    oracle = DataOracle()
    oracle.register_endpoint("ok", lambda request: {"value": request.get("a", 0)})
    assert oracle.call("ok", {"a": 5}) == {"value": 5}
    assert [record.ok for record in oracle.call_log] == [True]


def test_rpc_layer_forwards_endpoint_and_kind():
    from repro.rpc.errors import RemoteOracleError, to_rpc_error

    error = to_rpc_error(OracleEndpointError("labs.fetch", "handler_error", "x"))
    assert isinstance(error, RemoteOracleError)
    assert error.code == -32010
    assert error.data == {"endpoint": "labs.fetch", "kind": "handler_error"}
