"""Off-chain layer tests: anchoring, oracle, task runner."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import IntegrityError, OracleError
from repro.offchain.anchoring import (
    DatasetAnchor,
    require_dataset_integrity,
    verify_dataset,
    verify_record_proof,
)
from repro.offchain.oracle import DataOracle
from repro.offchain.tasks import (
    TaskRequest,
    TaskResult,
    TaskRunner,
    ToolRegistry,
    ToolSpec,
    batch_flops,
    run_many_across_sites,
)
from repro.parallel import TaskFailure


def _count_tool(recs, params):
    return {"n": len(recs)}


def _boom_tool(recs, params):
    raise ValueError("tool exploded")


def _records(n=5):
    return [{"id": i, "value": i * 1.5, "tags": ["a", "b"]} for i in range(n)]


class TestAnchoring:
    def test_anchor_round_trip(self):
        records = _records()
        anchor = DatasetAnchor.build(records)
        assert verify_dataset(records, anchor.root_hex)
        assert anchor.record_count == 5

    def test_tampered_value_detected(self):
        records = _records()
        anchor = DatasetAnchor.build(records)
        records[2]["value"] = 999.0
        assert not verify_dataset(records, anchor.root_hex)

    def test_added_record_detected(self):
        records = _records()
        anchor = DatasetAnchor.build(records)
        assert not verify_dataset(records + [{"id": 99}], anchor.root_hex)

    def test_removed_record_detected(self):
        records = _records()
        anchor = DatasetAnchor.build(records)
        assert not verify_dataset(records[:-1], anchor.root_hex)

    def test_reordered_records_detected(self):
        records = _records()
        anchor = DatasetAnchor.build(records)
        assert not verify_dataset(list(reversed(records)), anchor.root_hex)

    def test_require_raises_on_mismatch(self):
        records = _records()
        anchor = DatasetAnchor.build(records)
        records[0]["id"] = -1
        with pytest.raises(IntegrityError):
            require_dataset_integrity(records, anchor.root_hex, "ds1")

    def test_per_record_proof(self):
        records = _records()
        anchor = DatasetAnchor.build(records)
        proof = anchor.proof_for(3)
        assert verify_record_proof(records[3], proof, anchor.root_hex)
        assert not verify_record_proof(records[2], proof, anchor.root_hex)

    def test_verify_record_helper(self):
        records = _records()
        anchor = DatasetAnchor.build(records)
        assert anchor.verify_record(records[1], 1)
        assert not anchor.verify_record({"id": "evil"}, 1)

    @settings(max_examples=25)
    @given(st.integers(min_value=1, max_value=15), st.data())
    def test_property_any_single_field_tamper_detected(self, count, data):
        records = [{"id": i, "v": i} for i in range(count)]
        anchor = DatasetAnchor.build(records)
        victim = data.draw(st.integers(min_value=0, max_value=count - 1))
        records[victim]["v"] = -42
        assert not verify_dataset(records, anchor.root_hex)


class TestDataOracle:
    def test_endpoint_call_normalizes(self):
        oracle = DataOracle()
        oracle.register_endpoint("echo", lambda req: {"got": req.get("x")})
        assert oracle.call("echo", {"x": 5}) == {"got": 5}

    def test_unknown_endpoint(self):
        oracle = DataOracle()
        with pytest.raises(OracleError):
            oracle.call("ghost")

    def test_non_dict_response_rejected(self):
        oracle = DataOracle()
        oracle.register_endpoint("bad", lambda req: [1, 2, 3])
        with pytest.raises(OracleError):
            oracle.call("bad")

    def test_handler_exception_wrapped(self):
        oracle = DataOracle()
        oracle.register_endpoint("boom", lambda req: 1 / 0)
        with pytest.raises(OracleError):
            oracle.call("boom")

    def test_call_log_records_outcomes(self):
        oracle = DataOracle()
        oracle.register_endpoint("ok", lambda req: {})
        oracle.call("ok")
        with pytest.raises(OracleError):
            oracle.call("missing")
        assert [record.ok for record in oracle.call_log] == [True, False]

    def test_duplicate_endpoint_rejected(self):
        oracle = DataOracle()
        oracle.register_endpoint("e", lambda req: {})
        with pytest.raises(OracleError):
            oracle.register_endpoint("e", lambda req: {})


class TestTaskRunner:
    def _runner(self):
        registry = ToolRegistry()
        registry.register(
            ToolSpec("count", lambda recs, params: {"n": len(recs)}, flops_per_record=10)
        )
        return TaskRunner("site-a", registry)

    def test_run_produces_hashed_result(self):
        runner = self._runner()
        result = runner.run("t1", "count", _records(4), {})
        assert result.result == {"n": 4}
        assert len(result.result_hash) == 64
        assert result.records_used == 4
        assert result.flops == 40

    def test_result_hash_is_content_addressed(self):
        runner = self._runner()
        a = runner.run("t1", "count", _records(4), {})
        b = runner.run("t2", "count", _records(4), {})
        assert a.result_hash == b.result_hash

    def test_unknown_tool(self):
        runner = self._runner()
        with pytest.raises(OracleError):
            runner.run("t1", "ghost", [], {})

    def test_non_dict_result_rejected(self):
        registry = ToolRegistry()
        registry.register(ToolSpec("bad", lambda recs, params: 42))
        runner = TaskRunner("s", registry)
        with pytest.raises(OracleError):
            runner.run("t", "bad", [], {})

    def test_summary_is_chain_safe(self):
        runner = self._runner()
        result = runner.run("t1", "count", _records(2), {})
        from repro.common.serialize import canonical_bytes

        canonical_bytes(result.summary(), allow_float=False)  # no floats

    def test_registry_listing(self):
        runner = self._runner()
        assert runner.registry.tool_ids() == ["count"]
        assert runner.registry.has("count")

    def test_duplicate_tool_rejected(self):
        registry = ToolRegistry()
        spec = ToolSpec("x", lambda r, p: {})
        registry.register(spec)
        with pytest.raises(OracleError):
            registry.register(spec)


class TestRunMany:
    def _runner(self):
        registry = ToolRegistry()
        registry.register(ToolSpec("count", _count_tool, flops_per_record=10))
        registry.register(ToolSpec("boom", _boom_tool))
        return TaskRunner("site-a", registry)

    def _requests(self, n=3):
        return [
            TaskRequest(f"t{i}", "count", _records(i + 1), {}) for i in range(n)
        ]

    def test_batch_results_in_request_order(self):
        runner = self._runner()
        outcomes = runner.run_many(self._requests())
        assert [o.result for o in outcomes] == [{"n": 1}, {"n": 2}, {"n": 3}]
        assert all(o.site == "site-a" for o in outcomes)
        assert batch_flops(outcomes) == 10 + 20 + 30

    def test_batch_matches_single_run_hashes(self):
        runner = self._runner()
        requests = self._requests()
        singles = [
            runner.run(r.task_id, r.tool_id, r.records, r.params) for r in requests
        ]
        batched = runner.run_many(requests)
        assert [b.result_hash for b in batched] == [s.result_hash for s in singles]

    def test_raising_tool_contained_as_failure(self):
        runner = self._runner()
        outcomes = runner.run_many(
            [
                TaskRequest("good", "count", _records(2), {}),
                TaskRequest("bad", "boom", _records(1), {}),
            ]
        )
        assert isinstance(outcomes[0], TaskResult)
        failure = outcomes[1]
        assert isinstance(failure, TaskFailure)
        assert failure.error_type == "ValueError"
        assert failure.key == "site-a/bad"
        assert batch_flops(outcomes) == 20

    def test_unknown_tool_fails_fast_before_submission(self):
        runner = self._runner()
        with pytest.raises(OracleError):
            runner.run_many([TaskRequest("t", "ghost", [], {})])

    def test_across_sites_routes_to_owning_runner(self):
        registry = ToolRegistry()
        registry.register(ToolSpec("count", _count_tool, flops_per_record=10))
        runners = {
            "site-a": TaskRunner("site-a", registry),
            "site-b": TaskRunner("site-b", registry),
        }
        outcomes = run_many_across_sites(
            runners,
            [
                ("site-b", TaskRequest("t1", "count", _records(2), {})),
                ("site-a", TaskRequest("t2", "count", _records(3), {})),
            ],
        )
        assert [o.site for o in outcomes] == ["site-b", "site-a"]
        assert [o.result["n"] for o in outcomes] == [2, 3]

    def test_across_sites_unknown_site_rejected(self):
        with pytest.raises(OracleError):
            run_many_across_sites(
                {}, [("ghost", TaskRequest("t", "count", [], {}))]
            )
