"""Anchoring edge cases: degenerate datasets, proof reuse, batch hashing."""

import pytest

from repro.common.errors import IntegrityError, ValidationError
from repro.common.hashing import ZERO_HASH, hash_leaves_batch, sha256
from repro.common.merkle import MerkleProof
from repro.offchain.anchoring import (
    DatasetAnchor,
    record_leaf,
    record_leaves,
    require_dataset_integrity,
    verify_dataset,
    verify_record_proof,
)


def _records(count):
    return [{"id": i, "hr": 60 + i * 0.5} for i in range(count)]


class TestDegenerateDatasets:
    def test_empty_dataset_anchors_to_zero_hash(self):
        anchor = DatasetAnchor.build([])
        assert anchor.record_count == 0
        assert anchor.root_hex == ZERO_HASH.hex()
        assert verify_dataset([], anchor.root_hex)
        require_dataset_integrity([], anchor.root_hex)  # no raise
        with pytest.raises(ValidationError):
            anchor.proof_for(0)

    def test_single_record_root_is_its_leaf(self):
        records = _records(1)
        anchor = DatasetAnchor.build(records)
        assert anchor.root_hex == record_leaf(records[0]).hex()
        assert anchor.verify_record(records[0], 0)

    def test_odd_record_counts_verify_every_index(self):
        for count in (3, 5, 7):
            records = _records(count)
            anchor = DatasetAnchor.build(records)
            for index, record in enumerate(records):
                assert anchor.verify_record(record, index)

    def test_empty_vs_nonempty_roots_differ(self):
        assert DatasetAnchor.build([]).root_hex != DatasetAnchor.build(
            _records(1)
        ).root_hex


class TestVerification:
    def test_tampered_record_detected(self):
        records = _records(6)
        anchor = DatasetAnchor.build(records)
        tampered = dict(records[2], hr=999)
        assert not anchor.verify_record(tampered, 2)
        assert not verify_dataset(
            records[:2] + [tampered] + records[3:], anchor.root_hex
        )
        with pytest.raises(IntegrityError):
            require_dataset_integrity(
                records[:2] + [tampered] + records[3:], anchor.root_hex, "d1"
            )

    def test_record_at_wrong_index_detected(self):
        records = _records(4)
        anchor = DatasetAnchor.build(records)
        assert not anchor.verify_record(records[1], 0)

    def test_verify_record_with_proof_skips_rebuild(self):
        records = _records(8)
        anchor = DatasetAnchor.build(records)
        proof = anchor.proof_for(5)
        assert anchor.verify_record_with_proof(records[5], proof)
        assert not anchor.verify_record_with_proof(records[4], proof)
        truncated = MerkleProof(
            leaf=proof.leaf, index=proof.index, path=proof.path[:-1]
        )
        assert not anchor.verify_record_with_proof(records[5], truncated)

    def test_shipped_proof_verifies_against_root_hex_alone(self):
        records = _records(8)
        anchor = DatasetAnchor.build(records)
        proof = anchor.proof_for(3)
        # the remote-verifier path: no tree, just the on-chain root
        assert verify_record_proof(records[3], proof, anchor.root_hex)
        assert not verify_record_proof(records[2], proof, anchor.root_hex)
        other = DatasetAnchor.build(_records(9))
        assert not verify_record_proof(records[3], proof, other.root_hex)


class TestBatchHashing:
    def test_hash_leaves_batch_matches_per_item_sha256(self):
        items = [f"item-{i}".encode() for i in range(50)]
        assert hash_leaves_batch(items) == [sha256(item) for item in items]
        assert hash_leaves_batch([]) == []
        assert hash_leaves_batch(iter(items)) == hash_leaves_batch(items)

    def test_record_leaves_match_record_leaf(self):
        records = _records(25)
        assert record_leaves(records) == [record_leaf(r) for r in records]

    def test_build_via_batch_equals_legacy_per_record_path(self):
        records = _records(40)
        anchor = DatasetAnchor.build(records)
        from repro.common.merkle import MerkleTree

        legacy = MerkleTree([record_leaf(r) for r in records])
        assert anchor.root_hex == legacy.root.hex()
