"""End-to-end real-world-evidence clinical trial over the platform (E11)."""

import pytest

from repro.core.platform import MedicalBlockchainNetwork, PlatformConfig
from repro.datamgmt.cohort import CohortGenerator, default_site_profiles
from repro.offchain.anchoring import DatasetAnchor
from repro.trial.auditor import PublishedReport, TrialAuditor
from repro.trial.monitor import RWEMonitor
from repro.trial.protocol import TrialProtocol
from repro.trial.simulation import assign_arms, simulate_follow_up


@pytest.fixture(scope="module")
def trial_world():
    platform = MedicalBlockchainNetwork(
        PlatformConfig(site_count=3, consensus="poa", include_fda=True, seed=55)
    )
    generator = CohortGenerator(seed=550)
    profiles = default_site_profiles(3)
    cohorts = generator.generate_multi_site(profiles, 120)
    protocol = TrialProtocol(
        trial_id="NCT-E2E-1",
        title="anticoag-x RWE trial",
        drug="anticoag-x",
        primary_outcomes=["stroke"],
        secondary_outcomes=["mortality"],
        subgroups=["rs2200733"],
        target_enrollment=300,
        follow_up_days=365,
    )
    sponsor = platform.sites["hospital-0"]
    tx = sponsor.control.submit_signed_call(
        platform.contracts.trial_contract_id,
        "register_trial",
        protocol.to_registration_args(),
    )
    receipt = platform.run_until_committed(tx)
    assert receipt.success, receipt.error
    return platform, protocol, cohorts


class TestOnChainTrial:
    def test_registration_event_visible_at_fda(self, trial_world):
        platform, protocol, __ = trial_world
        fda_node = platform.nodes["fda"]
        trial = fda_node.call_view(
            platform.contracts.trial_contract_id,
            "get_trial",
            {"trial_id": protocol.trial_id},
        )
        assert trial["protocol_hash"] == protocol.protocol_hash()
        assert trial["outcomes"] == ["stroke", "mortality"]

    def test_multi_site_recruitment(self, trial_world):
        platform, protocol, cohorts = trial_world
        enrolled = 0
        last_tx = None
        for site_name in platform.site_names:
            site = platform.sites[site_name]
            for record in cohorts[site_name][:100]:
                last_tx = site.control.submit_signed_call(
                    platform.contracts.trial_contract_id,
                    "enroll",
                    {
                        "trial_id": protocol.trial_id,
                        "patient_pseudo_id": record["patient_id"],
                        "site": site_name,
                        "arm": "treatment" if enrolled % 2 == 0 else "control",
                    },
                )
                enrolled += 1
        platform.run_until_committed(last_tx, timeout_s=900)
        platform.run(60)
        trial = platform.nodes["fda"].call_view(
            platform.contracts.trial_contract_id,
            "get_trial",
            {"trial_id": protocol.trial_id},
        )
        assert trial["enrolled"] == 300
        assert trial["status"] == "active"  # target reached

    def test_continuous_monitoring_detects_signals(self, trial_world):
        platform, protocol, cohorts = trial_world
        patients = [r for site in platform.site_names for r in cohorts[site][:100]]
        arms = assign_arms(patients, protocol, seed=4)
        outcomes = simulate_follow_up(patients, arms, protocol, seed=5)
        monitor = RWEMonitor(alpha=0.05, subgroup_min_per_arm=12)
        monitor.run_stream(outcomes)
        assert monitor.detection_day("safety") is not None or monitor.detection_day(
            "subgroup_efficacy_carriers"
        ) is not None

    def test_outcome_switching_rejected_on_chain(self, trial_world):
        platform, protocol, cohorts = trial_world
        site = platform.sites["hospital-0"]
        patient = cohorts["hospital-0"][0]["patient_id"]
        tx = site.control.submit_signed_call(
            platform.contracts.trial_contract_id,
            "report_outcome",
            {
                "trial_id": protocol.trial_id,
                "patient_pseudo_id": patient,
                "outcome": "convenient_surrogate",
                "value_milli": 1,
                "data_hash": "aa" * 32,
            },
        )
        receipt = platform.run_until_committed(tx)
        assert not receipt.success
        platform.run(30)
        switching_events = platform.sites["hospital-1"].monitor.events_named(
            "OutcomeSwitchingDetected"
        )
        # The event is emitted inside the failed call and rolled back with
        # it, so detection happens through the *rejection*, which is public.
        assert "not pre-registered" in receipt.error or switching_events == []

    def test_registered_outcome_accepted(self, trial_world):
        platform, protocol, cohorts = trial_world
        site = platform.sites["hospital-0"]
        patient = cohorts["hospital-0"][0]["patient_id"]
        tx = site.control.submit_signed_call(
            platform.contracts.trial_contract_id,
            "report_outcome",
            {
                "trial_id": protocol.trial_id,
                "patient_pseudo_id": patient,
                "outcome": "stroke",
                "value_milli": 1000,
                "data_hash": "bb" * 32,
            },
        )
        receipt = platform.run_until_committed(tx)
        assert receipt.success

    def test_adverse_events_counted_on_chain(self, trial_world):
        platform, protocol, cohorts = trial_world
        site = platform.sites["hospital-1"]
        last_tx = None
        for record in cohorts["hospital-1"][:5]:
            last_tx = site.control.submit_signed_call(
                platform.contracts.trial_contract_id,
                "report_adverse_event",
                {
                    "trial_id": protocol.trial_id,
                    "patient_pseudo_id": record["patient_id"],
                    "severity": 3,
                    "description_hash": "cc" * 32,
                },
            )
        platform.run_until_committed(last_tx, timeout_s=300)
        count = platform.nodes["fda"].call_view(
            platform.contracts.trial_contract_id,
            "adverse_event_count",
            {"trial_id": protocol.trial_id},
        )
        assert count == 5

    def test_post_publication_audit(self, trial_world):
        """Irving & Holden + COMPare, end to end: the published report is
        checked against the on-chain registration and the data anchor."""
        platform, protocol, cohorts = trial_world
        raw = [dict(record) for record in cohorts["hospital-0"][:50]]
        anchor = DatasetAnchor.build(raw)
        # Sponsor publishes with a switched outcome and a falsified record.
        raw_tampered = [dict(record) for record in raw]
        original = raw_tampered[10]["outcomes"]
        raw_tampered[10]["outcomes"] = {
            **original, "stroke": 1 - original["stroke"],  # guaranteed change
        }
        report = PublishedReport(
            protocol.trial_id,
            claimed_outcomes=["stroke", "quality_of_life"],
            raw_records=raw_tampered,
        )
        registered = platform.nodes["fda"].call_view(
            platform.contracts.trial_contract_id,
            "get_trial",
            {"trial_id": protocol.trial_id},
        )["outcomes"]
        finding = TrialAuditor().audit(registered, report, anchor.root_hex)
        assert not finding.reported_correctly
        assert finding.switched_in == ["quality_of_life"]
        assert not finding.data_intact
