"""Bit-identicality gate for the copy-on-write state refactor.

The golden hashes below were produced by the pre-refactor implementation
(full-dict snapshots, deep-copying reads/writes, from-scratch roots) on the
exact same scenario.  The journaled/overlay/incremental state layer must
reproduce every one of them byte for byte: state roots feed block hashes,
so any drift here is a consensus break, not a formatting nit.
"""

from repro.chain.blocks import make_genesis
from repro.chain.state import StateDB
from repro.chain.transactions import make_call, make_deploy, make_transfer
from repro.common.hashing import hash_value, hash_value_hex
from repro.common.signatures import KeyPair
from repro.consensus.node import NodeConfig, make_network_nodes
from repro.consensus.poa import ProofOfAuthority
from repro.contracts.library import DATA_REGISTRY_SOURCE
from repro.sim.kernel import Kernel
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import Network

GOLDEN_STATE_ROOT = (
    "7727f5269c19af523908eb88a00cb6b256e4d695fb8a1beb3b934e451ee822ac"
)
# Receipts hash and head block id embed tx ids, so they were re-pinned when
# the fee-market fields (max_fee_per_gas / priority_fee_per_gas) entered the
# transaction signing digest.  The state root is pinned to the original seed:
# fees are admission signals only and must never leak into execution.
GOLDEN_RECEIPTS_HASH = (
    "d5f62687543102ff3df9474db79c0c741b409d6597ca4bd2e1baf22fce692833"
)
GOLDEN_HEAD_BLOCK_ID = (
    "06d3d47f1f4aa6bb8aa818fdbb36bda64e0b5b309863f7a26ac7f09926db0053"
)


def _run_scenario(state_prune_window: int = 64):
    kernel = Kernel(seed=7)
    metrics = MetricsRegistry()
    network = Network(kernel, metrics)
    owner = KeyPair.generate("golden-owner")
    state = StateDB()
    state.credit(owner.address, 10**9)
    genesis = make_genesis(state.state_root())
    names = [f"n{i}" for i in range(3)]
    keypairs = {name: KeyPair.generate(name) for name in names}
    engine = ProofOfAuthority(names, keypairs, block_interval_s=1.0)
    nodes = make_network_nodes(
        kernel,
        network,
        names,
        genesis,
        state,
        lambda: engine,
        metrics=metrics,
        config=NodeConfig(
            max_txs_per_block=5, state_prune_window=state_prune_window
        ),
    )
    for node in nodes.values():
        node.start()
    entry = nodes["n0"]
    txs = []
    deploy = make_deploy(
        owner, "registry", DATA_REGISTRY_SOURCE, nonce=0, gas_limit=10**9
    )
    txs.append(deploy)
    entry.submit_tx(deploy)
    kernel.run(until=30)
    contract_id = entry.receipt(deploy.tx_id).output
    nonce = 1
    for index in range(6):
        tx = make_call(
            owner,
            contract_id,
            "register_dataset",
            {
                "dataset_id": f"ds-{index}",
                "site": "n0",
                "schema": "s",
                "record_count": 10 + index,
                "merkle_root": "ab" * 32,
            },
            nonce=nonce,
            gas_limit=10**8,
        )
        nonce += 1
        txs.append(tx)
        entry.submit_tx(tx)
    transfer = make_transfer(owner, keypairs["n1"].address, 1234, nonce=nonce)
    txs.append(transfer)
    entry.submit_tx(transfer)
    kernel.run(until=120)
    return nodes, names, entry, txs


def _receipts_hash(entry, txs):
    receipts = []
    for tx in txs:
        receipt = entry.receipt(tx.tx_id)
        receipts.append(
            {
                "tx_id": receipt.tx_id,
                "success": receipt.success,
                "gas_used": receipt.gas_used,
                "output": receipt.output,
                "error": receipt.error,
                "events": [
                    [
                        event.contract_id,
                        event.name,
                        event.data,
                        event.tx_id,
                        event.block_height,
                    ]
                    for event in receipt.events
                ],
            }
        )
    return hash_value_hex(receipts, allow_float=False)


def test_state_roots_receipts_and_blocks_bit_identical_to_seed():
    nodes, names, entry, txs = _run_scenario()
    roots = {name: nodes[name].state.state_root().hex() for name in names}
    assert set(roots.values()) == {GOLDEN_STATE_ROOT}, roots
    assert _receipts_hash(entry, txs) == GOLDEN_RECEIPTS_HASH
    assert entry.head.block_id == GOLDEN_HEAD_BLOCK_ID


def test_incremental_machinery_agrees_with_naive_recomputation():
    nodes, names, entry, _ = _run_scenario()
    for name in names:
        state = nodes[name].state
        # Legacy digest: incremental fragment assembly == full serialization.
        assert state.state_root() == hash_value(state.to_dict(), allow_float=False)
        # Bucketed Merkle root: cached == from scratch.
        assert state.incremental_root() == state.recompute_incremental_root()


def test_aggressive_pruning_does_not_change_consensus_results():
    nodes, names, entry, txs = _run_scenario(state_prune_window=1)
    roots = {name: nodes[name].state.state_root().hex() for name in names}
    assert set(roots.values()) == {GOLDEN_STATE_ROOT}, roots
    assert _receipts_hash(entry, txs) == GOLDEN_RECEIPTS_HASH
    assert entry.head.block_id == GOLDEN_HEAD_BLOCK_ID
    # The retained state map is bounded by the window, not chain length.
    for name in names:
        node = nodes[name]
        assert len(node._states) <= node.store.height + 1
        assert len(node._states) <= 1 + 2  # boundary + head window + slack
