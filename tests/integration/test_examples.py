"""Smoke tests: the shipped examples must run end to end.

Each example is imported by path and its ``main()`` executed with stdout
captured; assertions check for the landmark lines a user would look for.
The slow clinical-trial example is excluded (covered by
``test_trial_e2e.py``).
"""

import importlib.util
import io
import os
from contextlib import redirect_stdout

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def run_example(name: str) -> str:
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, name))
    spec = importlib.util.spec_from_file_location(f"example_{name[:-3]}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        module.main()
    return buffer.getvalue()


@pytest.mark.slow
def test_quickstart_runs():
    output = run_example("quickstart.py")
    assert "prevalence" in output
    assert "total platform energy" in output


@pytest.mark.slow
def test_data_integration_runs():
    output = run_example("data_integration.py")
    assert "800/800 records validate" in output
    assert "precision 1.000" in output


@pytest.mark.slow
def test_query_to_contract_runs():
    output = run_example("query_to_contract.py")
    assert "exact match: True" in output


@pytest.mark.slow
def test_wearable_cohort_runs():
    output = run_example("wearable_cohort.py")
    assert "composed global summary" in output
    assert "Welch t" in output


@pytest.mark.slow
def test_federated_stroke_model_runs():
    output = run_example("federated_stroke_model.py")
    assert "federated AUC" in output
    assert "centralized AUC" in output
