"""Integration tests: the full paper pipeline on one platform instance."""

import pytest

from repro.analytics.features import dataset_for
from repro.common.signatures import KeyPair
from repro.core.platform import MedicalBlockchainNetwork, PlatformConfig
from repro.core.queryservice import GlobalQueryService
from repro.datamgmt.cohort import CohortGenerator, default_site_profiles
from repro.query.vector import QueryVector


@pytest.fixture(scope="module")
def generator():
    return CohortGenerator(seed=777)


@pytest.fixture(scope="module")
def world(generator):
    platform = MedicalBlockchainNetwork(
        PlatformConfig(site_count=4, consensus="poa", include_fda=True, seed=77)
    )
    profiles = default_site_profiles(4)
    cohorts = generator.generate_multi_site(profiles, 150)
    formats = ["hl7v2", "fhirjson", "legacycsv", "canonical"]
    for index, site in enumerate(platform.site_names):
        platform.register_dataset(
            site, f"emr-{site}", cohorts[site], fmt=formats[index]
        )
    researcher = KeyPair.generate("e2e-researcher")
    for site in platform.site_names:
        platform.grant_access(site, f"emr-{site}", researcher.address, "research")
    return platform, researcher, cohorts


class TestHeterogeneousIntegration:
    """Figure 3: one virtual cohort over four formats, no data copied."""

    def test_query_spans_all_formats(self, world):
        platform, researcher, cohorts = world
        service = GlobalQueryService(platform, researcher)
        answer = service.ask("how many patients have diabetes")
        expected = sum(
            record["outcomes"]["diabetes"]
            for records in cohorts.values()
            for record in records
        )
        assert answer.result["count"] == expected
        assert len(answer.site_partials) == 4

    def test_federated_model_beats_single_site(self, world, generator):
        platform, researcher, cohorts = world
        service = GlobalQueryService(platform, researcher)
        vector = QueryVector(intent="train", outcome="stroke", rounds=8)
        model = service.train_model(vector)
        test_records = generator.generate_cohort(default_site_profiles(4)[1], 700)
        X, y = dataset_for(test_records, "stroke")
        federated_auc = model.evaluate(X, y)["auc"]
        # single-site baseline
        from repro.analytics.features import FEATURE_DIM
        from repro.analytics.models import LogisticModel

        solo = LogisticModel(FEATURE_DIM, seed=0)
        X_solo, y_solo = dataset_for(cohorts["hospital-0"], "stroke")
        solo.train_epochs(X_solo, y_solo, epochs=16, lr=0.1)
        solo_auc = solo.evaluate(X, y)["auc"]
        assert federated_auc > solo_auc - 0.03  # at worst comparable, usually better

    def test_chain_remains_consistent_after_workload(self, world):
        platform, __, ___ = world
        roots = {node.state.state_root() for node in platform.nodes.values()}
        assert len(roots) == 1
        for node in platform.nodes.values():
            assert node.store.verify_chain_integrity()

    def test_energy_accounting_nonzero(self, world):
        platform, __, ___ = world
        assert platform.total_energy_joules() > 0
        summary = platform.metrics.summary()
        assert summary["gas"] > 0
        assert summary["bytes_transferred"] > 0


class TestIntegrityEnforcement:
    def test_tampered_site_cannot_serve_tasks(self, world):
        """E7's mechanism inside the task path: tampering after anchoring
        makes the control node refuse to execute."""
        platform, researcher, __ = world
        site = platform.sites["hospital-2"]
        site.store.tamper("emr-hospital-2", 5, "pt_id", "forged-id")
        service = GlobalQueryService(platform, researcher)
        vector = QueryVector(intent="count", purpose="research")
        answer = service.execute(vector, timeout_s=120)
        assert "hospital-2" in answer.failed_sites
        assert "anchor" in answer.failed_sites["hospital-2"]
        # Other sites still answered.
        assert len(answer.site_partials) == 3

    def test_failed_task_recorded_on_chain(self, world):
        platform, __, ___ = world
        platform.run(30)
        monitor = platform.sites["hospital-0"].monitor
        failed_events = monitor.events_named("TaskFailed")
        assert failed_events
        assert any(
            "anchor" in event.data.get("reason", "") for event in failed_events
        )
