"""Failure injection: partitions, crashes, stragglers, lossy links.

The paper's setting is a WAN of independently-administered hospitals, so
the platform must degrade gracefully when parts of it misbehave.
"""


from repro.common.signatures import KeyPair
from repro.core.platform import MedicalBlockchainNetwork, PlatformConfig
from repro.core.queryservice import GlobalQueryService
from repro.datamgmt.cohort import CohortGenerator, default_site_profiles
from repro.query.vector import QueryVector
from repro.sim.network import LinkSpec


def build_world(site_count=3, seed=13, loss_rate=0.0):
    platform = MedicalBlockchainNetwork(
        PlatformConfig(
            site_count=site_count,
            consensus="poa",
            include_fda=False,
            seed=seed,
            link=LinkSpec(loss_rate=loss_rate),
        )
    )
    generator = CohortGenerator(seed=seed)
    profiles = default_site_profiles(site_count)
    for index, site in enumerate(platform.site_names):
        platform.register_dataset(
            site, f"emr-{site}", generator.generate_cohort(profiles[index], 80)
        )
    researcher = KeyPair.generate(f"fi-researcher-{seed}")
    for site in platform.site_names:
        platform.grant_access(site, f"emr-{site}", researcher.address, "research")
    return platform, researcher


class TestPartitions:
    def test_partitioned_site_times_out_others_answer(self):
        platform, researcher = build_world()
        service = GlobalQueryService(platform, researcher)
        isolated = "hospital-2"
        others = [name for name in platform.nodes if name != isolated]
        platform.network.partition(set(others), {isolated})
        vector = QueryVector(intent="count", purpose="research")
        answer = service.execute(vector, timeout_s=60)
        assert isolated in answer.failed_sites
        assert set(answer.site_partials) == set(platform.site_names) - {isolated}
        # Composition still worked over the reachable majority.
        assert answer.result["count"] == 2 * 80

    def test_healed_partition_catches_up(self):
        platform, researcher = build_world(seed=14)
        isolated = "hospital-2"
        others = [name for name in platform.nodes if name != isolated]
        head_before = platform.nodes[isolated].head.height
        platform.network.partition(set(others), {isolated})
        service = GlobalQueryService(platform, researcher)
        vector = QueryVector(intent="count", purpose="research")
        service.execute(vector, timeout_s=60)
        platform.network.heal()
        # New work after healing flows to everyone again.
        answer = service.execute(QueryVector(intent="count", purpose="research"),
                                 timeout_s=120)
        assert "hospital-0" in answer.site_partials
        assert "hospital-1" in answer.site_partials
        # The healed node's chain advanced past its partition-era head.
        assert platform.nodes[isolated].head.height >= head_before


class TestCrashes:
    def test_stopped_node_does_not_stall_poa_chain(self):
        """PoA rotates past a dead proposer only if others keep producing;
        our simple round-robin *does* stall on the dead proposer's turns, so
        queries must still settle via timeout reporting, not hang."""
        platform, researcher = build_world(seed=15)
        platform.nodes["hospital-1"].stop()
        service = GlobalQueryService(platform, researcher)
        vector = QueryVector(intent="count", purpose="research")
        # The dead node still *receives* nothing; others depend on rotation.
        # Whatever happens, execute() must return within the timeout.
        try:
            answer = service.execute(vector, timeout_s=30)
            assert answer.result["count"] >= 80
        except Exception as exc:
            assert "no results" in str(exc)

    def test_crashed_site_reported_as_timeout(self):
        platform, researcher = build_world(seed=16)
        # Unregister the control node's event feed by stopping its node's
        # participation (it still verifies blocks, but we simulate a dead
        # task runner by making the host lose its dataset).
        victim = platform.sites["hospital-2"]
        victim.store._datasets.clear()
        service = GlobalQueryService(platform, researcher)
        vector = QueryVector(intent="count", purpose="research")
        answer = service.execute(vector, timeout_s=45)
        assert answer.failed_sites.get("hospital-2") == "timeout"
        assert len(answer.site_partials) == 2


class TestStragglers:
    def test_slow_site_delays_but_completes(self):
        platform, researcher = build_world(seed=17)
        platform.sites["hospital-2"].control.compute_rate_flops = 50.0  # glacial
        service = GlobalQueryService(platform, researcher)
        vector = QueryVector(intent="count", purpose="research")
        answer = service.execute(vector, timeout_s=600)
        assert len(answer.site_partials) == 3
        assert answer.result["count"] == 3 * 80
        # The straggler dominated the makespan.
        assert answer.latency_s > 5.0


class TestLossyNetwork:
    def test_query_completes_despite_packet_loss(self):
        platform, researcher = build_world(seed=18, loss_rate=0.10)
        service = GlobalQueryService(platform, researcher)
        vector = QueryVector(intent="count", purpose="research")
        answer = service.execute(vector, timeout_s=300)
        # Flood-gossip redundancy rides out 10% loss.
        assert answer.result["count"] == 3 * 80

    def test_chain_consistency_despite_loss(self):
        platform, __ = build_world(seed=19, loss_rate=0.10)
        platform.run(60)
        roots = {node.state.state_root() for node in platform.nodes.values()}
        assert len(roots) == 1
