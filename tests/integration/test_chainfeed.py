"""On-chain events drive the RWE monitor end to end (Figure 4 closed loop)."""

import pytest

from repro.core.platform import MedicalBlockchainNetwork, PlatformConfig
from repro.datamgmt.cohort import CohortGenerator, default_site_profiles
from repro.trial.chainfeed import ChainTrialFeed
from repro.trial.monitor import RWEMonitor
from repro.trial.protocol import TrialProtocol
from repro.trial.simulation import TrialEffect, assign_arms, simulate_follow_up


@pytest.fixture(scope="module")
def fed_world():
    platform = MedicalBlockchainNetwork(
        PlatformConfig(site_count=2, consensus="poa", include_fda=True, seed=88)
    )
    generator = CohortGenerator(seed=880)
    profiles = default_site_profiles(2)
    cohorts = {
        site: generator.generate_cohort(profiles[index], 60)
        for index, site in enumerate(platform.site_names)
    }
    patients = [record for records in cohorts.values() for record in records]
    protocol = TrialProtocol(
        trial_id="NCT-FEED",
        title="feed test",
        drug="anticoag-x",
        primary_outcomes=["stroke"],
        subgroups=["rs2200733"],
        target_enrollment=len(patients),
        follow_up_days=365,
    )
    sponsor = platform.sites["hospital-0"]
    tx = sponsor.control.submit_signed_call(
        platform.contracts.trial_contract_id,
        "register_trial",
        protocol.to_registration_args(),
    )
    assert platform.run_until_committed(tx).success
    genomics = {record["patient_id"]: record["genomics"] for record in patients}
    # The FDA watches the chain: feed wires its monitor node to an RWE monitor.
    fda_monitor_node = platform.sites["hospital-0"].monitor  # any node sees all events
    rwe = RWEMonitor(alpha=0.05, min_per_arm=10, subgroup_min_per_arm=5)
    feed = ChainTrialFeed(
        fda_monitor_node,
        rwe,
        trial_id="NCT-FEED",
        primary_outcome="stroke",
        carrier_lookup=lambda pid: genomics[pid].get("rs2200733", 0) > 0,
    )
    # Enroll everyone and push follow-up through the contract.
    arms = assign_arms(patients, protocol, seed=5)
    outcomes = simulate_follow_up(
        patients, arms, protocol,
        effect=TrialEffect(base_event_rate=0.5, treatment_rr_carriers=0.1),
        seed=6,
    )
    last_tx = None
    for site_name in platform.site_names:
        site = platform.sites[site_name]
        for record in cohorts[site_name]:
            last_tx = site.control.submit_signed_call(
                platform.contracts.trial_contract_id,
                "enroll",
                {
                    "trial_id": "NCT-FEED",
                    "patient_pseudo_id": record["patient_id"],
                    "site": site_name,
                    "arm": arms[record["patient_id"]],
                },
            )
    platform.run_until_committed(last_tx, timeout_s=900)
    by_patient = {o.patient_pseudo_id: o for o in outcomes}
    for site_name in platform.site_names:
        site = platform.sites[site_name]
        for record in cohorts[site_name]:
            outcome = by_patient[record["patient_id"]]
            if outcome.adverse_event:
                site.control.submit_signed_call(
                    platform.contracts.trial_contract_id,
                    "report_adverse_event",
                    {
                        "trial_id": "NCT-FEED",
                        "patient_pseudo_id": record["patient_id"],
                        "severity": outcome.adverse_severity,
                        "description_hash": "ab" * 32,
                    },
                )
            last_tx = site.control.submit_signed_call(
                platform.contracts.trial_contract_id,
                "report_outcome",
                {
                    "trial_id": "NCT-FEED",
                    "patient_pseudo_id": record["patient_id"],
                    "outcome": "stroke",
                    "value_milli": 1000 * outcome.event,
                    "data_hash": "cd" * 32,
                },
            )
    platform.run_until_committed(last_tx, timeout_s=900)
    platform.run(60)
    return platform, feed, rwe, outcomes


def test_every_patient_tracked(fed_world):
    __, feed, ___, outcomes = fed_world
    assert feed.patients_tracked == len(outcomes)


def test_every_report_ingested(fed_world):
    __, feed, rwe, outcomes = fed_world
    assert rwe.reports_seen == len(outcomes)


def test_subgroup_signal_fires_from_chain_events(fed_world):
    """The strong carrier effect must be detected purely from ledger events."""
    __, feed, rwe, ___ = fed_world
    assert rwe.detection_day("subgroup_efficacy_carriers") is not None


def test_signals_reference_block_heights(fed_world):
    platform, feed, rwe, ___ = fed_world
    head = platform.nodes["hospital-0"].head.height
    for signal in rwe.signals:
        assert 0 < signal.day <= head


def test_feed_ignores_other_trials(fed_world):
    platform, feed, ___, ____ = fed_world
    before = feed.patients_tracked
    site = platform.sites["hospital-0"]
    tx = site.control.submit_signed_call(
        platform.contracts.trial_contract_id,
        "register_trial",
        {
            "trial_id": "NCT-OTHER",
            "protocol_hash": "ef" * 32,
            "outcomes": ["stroke"],
            "target_enrollment": 5,
        },
    )
    platform.run_until_committed(tx)
    tx = site.control.submit_signed_call(
        platform.contracts.trial_contract_id,
        "enroll",
        {
            "trial_id": "NCT-OTHER",
            "patient_pseudo_id": "stranger-1",
            "site": "hospital-0",
            "arm": "treatment",
        },
    )
    platform.run_until_committed(tx)
    platform.run(15)
    assert feed.patients_tracked == before
