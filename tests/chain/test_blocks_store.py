"""Block structure and chain-store tests."""


import pytest

from repro.chain.blocks import Block, build_block, make_genesis
from repro.chain.state import StateDB
from repro.chain.store import ChainStore
from repro.chain.transactions import make_transfer
from repro.common.errors import ChainError, ValidationError
from repro.common.hashing import ZERO_HASH


@pytest.fixture()
def genesis():
    state = StateDB()
    return make_genesis(state.state_root())


def _child(parent, alice, txs=None, ts=1000):
    return build_block(
        parent=parent,
        transactions=txs or [],
        state_root=parent.header.state_root,
        proposer="tester",
        timestamp_ms=ts,
    )


class TestBlocks:
    def test_genesis_has_zero_parent(self, genesis):
        assert genesis.header.parent_hash == ZERO_HASH
        assert genesis.height == 0

    def test_block_hash_deterministic(self, genesis):
        assert genesis.block_hash == genesis.block_hash

    def test_tx_root_matches_transactions(self, genesis, alice):
        txs = [make_transfer(alice, "r", 1, nonce=0)]
        block = _child(genesis, alice, txs)
        block.validate_structure()

    def test_tx_root_mismatch_detected(self, genesis, alice):
        txs = [make_transfer(alice, "r", 1, nonce=0)]
        block = _child(genesis, alice, txs)
        forged = Block(header=block.header, transactions=[])
        with pytest.raises(ValidationError):
            forged.validate_structure()

    def test_duplicate_tx_in_block_rejected(self, genesis, alice):
        tx = make_transfer(alice, "r", 1, nonce=0)
        block = _child(genesis, alice, [tx, tx])
        with pytest.raises(ValidationError):
            block.validate_structure()

    def test_with_consensus_changes_hash(self, genesis):
        sealed = genesis.with_consensus({"type": "x"})
        assert sealed.block_hash != genesis.block_hash

    def test_mining_digest_ignores_consensus(self, genesis):
        sealed = genesis.with_consensus({"nonce": 42})
        assert sealed.header.mining_digest() == genesis.header.mining_digest()


class TestChainStore:
    def test_starts_at_genesis(self, genesis):
        store = ChainStore(genesis)
        assert store.head is genesis
        assert store.height == 0

    def test_add_extends_head(self, genesis, alice):
        store = ChainStore(genesis)
        child = _child(genesis, alice)
        assert store.add(child)
        assert store.head.block_id == child.block_id

    def test_non_genesis_start_rejected(self, genesis, alice):
        child = _child(genesis, alice)
        with pytest.raises(ChainError):
            ChainStore(child)

    def test_duplicate_add_is_noop(self, genesis, alice):
        store = ChainStore(genesis)
        child = _child(genesis, alice)
        store.add(child)
        assert not store.add(child)

    def test_orphans_connected_when_parent_arrives(self, genesis, alice):
        store = ChainStore(genesis)
        child = _child(genesis, alice)
        grandchild = _child(child, alice, ts=2000)
        store.add(grandchild)  # parent unknown -> orphan
        assert store.orphan_count() == 1
        assert store.head.height == 0
        store.add(child)
        assert store.orphan_count() == 0
        assert store.head.height == 2

    def test_longest_chain_wins(self, genesis, alice):
        store = ChainStore(genesis)
        short = _child(genesis, alice, ts=1)
        long1 = _child(genesis, alice, ts=2)
        long2 = _child(long1, alice, ts=3)
        store.add(short)
        store.add(long1)
        store.add(long2)
        assert store.head.block_id == long2.block_id

    def test_tie_broken_by_lowest_hash(self, genesis, alice):
        store = ChainStore(genesis)
        a = _child(genesis, alice, ts=1)
        b = _child(genesis, alice, ts=2)
        store.add(a)
        store.add(b)
        assert store.head.block_id == min(a.block_id, b.block_id)

    def test_canonical_chain_order(self, genesis, alice):
        store = ChainStore(genesis)
        child = _child(genesis, alice)
        grandchild = _child(child, alice, ts=2000)
        store.add(child)
        store.add(grandchild)
        chain = store.canonical_chain()
        assert [block.height for block in chain] == [0, 1, 2]

    def test_block_at_height(self, genesis, alice):
        store = ChainStore(genesis)
        child = _child(genesis, alice)
        store.add(child)
        assert store.block_at_height(1).block_id == child.block_id
        assert store.block_at_height(5) is None

    def test_canonical_tx_ids(self, genesis, alice):
        tx = make_transfer(alice, "r", 1, nonce=0)
        store = ChainStore(genesis)
        store.add(_child(genesis, alice, [tx]))
        assert store.canonical_tx_ids() == [tx.tx_id]
        assert store.contains_tx(tx.tx_id)

    def test_verify_chain_integrity_clean(self, genesis, alice):
        store = ChainStore(genesis)
        store.add(_child(genesis, alice))
        assert store.verify_chain_integrity()

    def test_unknown_block_lookup_raises(self, genesis):
        store = ChainStore(genesis)
        with pytest.raises(ChainError):
            store.get("ff" * 32)


class TestHeadersAfter:
    def _store_with_chain(self, genesis, alice, length):
        store = ChainStore(genesis)
        parent = genesis
        for i in range(length):
            parent = _child(parent, alice, ts=1000 + i)
            store.add(parent)
        return store

    def test_empty_locator_anchors_at_genesis(self, genesis, alice):
        store = self._store_with_chain(genesis, alice, 5)
        headers = store.headers_after([])
        assert [b.height for b in headers] == [1, 2, 3, 4, 5]  # oldest first

    def test_first_locator_hit_anchors_reply(self, genesis, alice):
        store = self._store_with_chain(genesis, alice, 6)
        chain = store.canonical_chain()
        locator = [chain[3].block_id, chain[1].block_id, genesis.block_id]
        headers = store.headers_after(locator)
        assert [b.height for b in headers] == [4, 5, 6]

    def test_unknown_locator_falls_back_to_genesis(self, genesis, alice):
        store = self._store_with_chain(genesis, alice, 3)
        headers = store.headers_after(["ee" * 32, "ff" * 32])
        assert [b.height for b in headers] == [1, 2, 3]

    def test_limit_clamped_and_applied(self, genesis, alice):
        store = self._store_with_chain(genesis, alice, 5)
        assert len(store.headers_after([], limit=2)) == 2
        assert len(store.headers_after([], limit=0)) == 1  # clamped up to 1
        assert len(store.headers_after([], limit=10_000)) == 5

    def test_caught_up_requester_gets_nothing(self, genesis, alice):
        store = self._store_with_chain(genesis, alice, 4)
        assert store.headers_after([store.head.block_id]) == []


class TestOrphanBound:
    def _disconnected_chain(self, genesis, alice, length):
        """Build a chain off genesis and return it without its first block."""
        blocks = []
        parent = genesis
        for i in range(length):
            parent = _child(parent, alice, ts=1000 + i)
            blocks.append(parent)
        return blocks

    def test_orphan_pool_bounded_with_oldest_first_eviction(self, genesis, alice):
        store = ChainStore(genesis, max_orphans=3)
        chain = self._disconnected_chain(genesis, alice, 6)
        link, orphans = chain[0], chain[1:]
        for block in orphans:  # parents unknown -> all orphaned
            store.add(block)
        assert store.orphan_count() == 3
        assert store.orphans_evicted == 2
        # Oldest orphans were evicted, so connecting the missing link only
        # recovers the survivors that still chain onto it.
        store.add(link)
        assert store.head.height == 1  # orphans 2..3 were evicted, chain broke
        assert store.orphan_count() == 3  # survivors still disconnected

    def test_orphans_under_capacity_never_evicted(self, genesis, alice):
        store = ChainStore(genesis, max_orphans=10)
        chain = self._disconnected_chain(genesis, alice, 4)
        for block in chain[1:]:
            store.add(block)
        assert store.orphans_evicted == 0
        store.add(chain[0])
        assert store.orphan_count() == 0
        assert store.head.height == 4
