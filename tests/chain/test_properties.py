"""Property-based tests on chain data structures (DESIGN.md invariants)."""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.mempool import Mempool
from repro.chain.state import StateDB
from repro.chain.transactions import make_transfer
from repro.common.signatures import KeyPair
from repro.sharing.audit import AuditLog

_KEYS = st.text(alphabet="abcdef/", min_size=1, max_size=8)
_VALUES = st.one_of(
    st.integers(min_value=-(10**9), max_value=10**9),
    st.text(max_size=12),
    st.lists(st.integers(min_value=0, max_value=9), max_size=4),
)

_ALICE = KeyPair.generate("prop-alice")
_BOB = KeyPair.generate("prop-bob")


class TestStateProperties:
    @settings(max_examples=40)
    @given(st.dictionaries(_KEYS, _VALUES, max_size=12))
    def test_root_is_order_independent(self, mapping):
        items = list(mapping.items())
        a, b = StateDB(), StateDB()
        for key, value in items:
            a.set(key, value)
        for key, value in reversed(items):
            b.set(key, value)
        assert a.state_root() == b.state_root()

    @settings(max_examples=40)
    @given(
        st.lists(st.tuples(_KEYS, _VALUES), min_size=1, max_size=8),
        st.lists(st.tuples(_KEYS, _VALUES), min_size=1, max_size=8),
    )
    def test_snapshot_rollback_is_exact(self, before, after):
        state = StateDB()
        for key, value in before:
            state.set(key, value)
        root_before = state.state_root()
        state.snapshot()
        for key, value in after:
            state.set(key, value)
        state.delete(before[0][0])
        state.rollback()
        assert state.state_root() == root_before

    @settings(max_examples=40)
    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=10))
    def test_credits_conserve_total(self, amounts):
        state = StateDB()
        for index, amount in enumerate(amounts):
            state.credit(f"acct-{index % 3}", amount)
        total = sum(state.balance(f"acct-{i}") for i in range(3))
        assert total == sum(amounts)


class TestMempoolProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.permutations(list(range(6))))
    def test_selection_always_in_nonce_order(self, arrival_order):
        txs = {n: make_transfer(_ALICE, "sink", 1, nonce=n) for n in range(6)}
        pool = Mempool()
        for nonce in arrival_order:
            pool.add(txs[nonce])
        selected = pool.select(10, nonces={_ALICE.address: 0})
        assert [tx.nonce for tx in selected] == sorted(tx.nonce for tx in selected)
        # The selection must be a contiguous prefix starting at 0.
        assert [tx.nonce for tx in selected] == list(range(len(selected)))

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=1, max_value=10),
    )
    def test_limit_respected(self, start_nonce, limit):
        pool = Mempool()
        for nonce in range(start_nonce, start_nonce + 8):
            pool.add(make_transfer(_BOB, "sink", 1, nonce=nonce))
        selected = pool.select(limit, nonces={_BOB.address: start_nonce})
        assert len(selected) <= limit


class TestAuditLogProperties:
    @settings(max_examples=25)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["alice", "bob", "site"]),
                st.sampled_from(["request", "release", "deny"]),
                st.sampled_from(["ds1", "ds2"]),
            ),
            min_size=1,
            max_size=12,
        ),
        st.data(),
    )
    def test_any_single_edit_detected(self, entries, data):
        log = AuditLog()
        for actor, action, resource in entries:
            log.append(actor, action, resource)
        assert log.verify()
        victim = data.draw(st.integers(min_value=0, max_value=len(entries) - 1))
        field_name = data.draw(st.sampled_from(["actor", "action", "resource"]))
        setattr(log._entries[victim], field_name, "TAMPERED")
        assert not log.verify()

    @settings(max_examples=25)
    @given(st.integers(min_value=2, max_value=10), st.data())
    def test_any_deletion_detected(self, count, data):
        """Interior deletions break the chain; deleting the tail is only
        detectable against the externally-known head hash — exactly the
        hash-chain guarantee, so check both ways."""
        log = AuditLog()
        for index in range(count):
            log.append("actor", "action", f"r{index}")
        expected_head = log.head_hash
        victim = data.draw(st.integers(min_value=0, max_value=count - 1))
        del log._entries[victim]
        assert not log.verify() or log.head_hash != expected_head


class TestTransactionProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_signed_transfers_always_validate(self, nonce, amount):
        tx = make_transfer(_ALICE, "dest", amount, nonce=nonce)
        tx.validate()  # must not raise

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_payload_tamper_always_detected(self, amount):
        tx = make_transfer(_ALICE, "dest", amount, nonce=0)
        tampered = dataclasses.replace(
            tx, payload={"to": "mallory", "amount": amount}
        )
        assert not tampered.verify_signature()
