"""Transaction signing, validation, and builder tests."""

import dataclasses

import pytest

from repro.chain.transactions import (
    Transaction,
    make_call,
    make_deploy,
    make_transfer,
)
from repro.common.errors import ValidationError


def test_transfer_builder_signs_validly(alice):
    tx = make_transfer(alice, "recipient", 100, nonce=0)
    tx.validate()  # does not raise
    assert tx.sender == alice.address


def test_tx_id_excludes_signature(alice):
    tx = make_transfer(alice, "r", 5, nonce=0)
    stripped = dataclasses.replace(tx, signature=b"")
    assert tx.tx_id == stripped.tx_id


def test_tx_id_changes_with_payload(alice):
    a = make_transfer(alice, "r", 5, nonce=0)
    b = make_transfer(alice, "r", 6, nonce=0)
    assert a.tx_id != b.tx_id


def test_unsigned_tx_fails_validation(alice):
    tx = Transaction(sender=alice.address, nonce=0, kind="transfer", payload={})
    with pytest.raises(ValidationError):
        tx.validate()


def test_tampered_payload_breaks_signature(alice):
    tx = make_transfer(alice, "r", 5, nonce=0)
    tampered = dataclasses.replace(tx, payload={"to": "attacker", "amount": 5})
    assert not tampered.verify_signature()


def test_signature_from_other_key_rejected(alice, bob):
    tx = make_transfer(alice, "r", 5, nonce=0)
    stolen = dataclasses.replace(
        tx, sender=bob.address, public_key=bob.public.data
    )
    assert not stolen.verify_signature()


def test_unknown_kind_rejected(alice):
    tx = make_transfer(alice, "r", 5, nonce=0)
    bad = dataclasses.replace(tx, kind="mystery")
    with pytest.raises(ValidationError):
        bad.validate()


def test_negative_nonce_rejected(alice):
    tx = make_transfer(alice, "r", 5, nonce=0)
    bad = dataclasses.replace(tx, nonce=-1)
    with pytest.raises(ValidationError):
        bad.validate()


def test_zero_gas_limit_rejected(alice):
    tx = make_transfer(alice, "r", 5, nonce=0)
    bad = dataclasses.replace(tx, gas_limit=0)
    with pytest.raises(ValidationError):
        bad.validate()


def test_deploy_builder_payload(alice):
    tx = make_deploy(alice, "counter", "def get():\n    return 1\n", nonce=2)
    assert tx.kind == "deploy"
    assert tx.payload["contract"] == "counter"
    tx.validate()


def test_call_builder_payload(alice):
    tx = make_call(alice, "cid123", "method", {"x": 1}, nonce=3)
    assert tx.kind == "call"
    assert tx.payload["args"] == {"x": 1}
    tx.validate()


def test_estimated_size_positive_and_stable(alice):
    tx = make_transfer(alice, "r", 5, nonce=0)
    assert tx.estimated_size_bytes() > 100
    assert tx.estimated_size_bytes() == tx.estimated_size_bytes()


def test_signing_digest_memo_not_stale(alice):
    tx = make_transfer(alice, "r", 5, nonce=0)
    first = tx.signing_digest()
    copied = dataclasses.replace(tx, nonce=1)
    assert copied.signing_digest() != first
