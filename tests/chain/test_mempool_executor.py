"""Mempool selection and transfer-executor tests."""


from repro.chain.executor import (
    BASE_TX_GAS,
    ExecutionContext,
    TransferExecutor,
    apply_block_transactions,
)
from repro.chain.mempool import Mempool
from repro.chain.state import StateDB
from repro.chain.transactions import make_transfer


class TestMempool:
    def test_add_and_contains(self, alice):
        pool = Mempool()
        tx = make_transfer(alice, "r", 1, nonce=0)
        assert pool.add(tx)
        assert tx.tx_id in pool
        assert len(pool) == 1

    def test_duplicates_rejected(self, alice):
        pool = Mempool()
        tx = make_transfer(alice, "r", 1, nonce=0)
        pool.add(tx)
        assert not pool.add(tx)

    def test_capacity_enforced(self, alice):
        pool = Mempool(max_size=2)
        for nonce in range(3):
            pool.add(make_transfer(alice, "r", 1, nonce=nonce))
        assert len(pool) == 2

    def test_fifo_selection_without_nonces(self, alice, bob):
        pool = Mempool()
        first = make_transfer(alice, "r", 1, nonce=0)
        second = make_transfer(bob, "r", 1, nonce=0)
        pool.add(first)
        pool.add(second)
        assert [tx.tx_id for tx in pool.select(10)] == [first.tx_id, second.tx_id]

    def test_selection_respects_limit(self, alice):
        pool = Mempool()
        for nonce in range(5):
            pool.add(make_transfer(alice, "r", 1, nonce=nonce))
        assert len(pool.select(3)) == 3

    def test_nonce_gaps_deferred(self, alice):
        pool = Mempool()
        pool.add(make_transfer(alice, "r", 1, nonce=2))
        selected = pool.select(10, nonces={alice.address: 0})
        assert selected == []

    def test_out_of_order_arrival_reordered(self, alice):
        pool = Mempool()
        later = make_transfer(alice, "r", 1, nonce=1)
        earlier = make_transfer(alice, "r", 1, nonce=0)
        pool.add(later)
        pool.add(earlier)
        selected = pool.select(10, nonces={alice.address: 0})
        assert [tx.nonce for tx in selected] == [0, 1]

    def test_get_by_id(self, alice):
        pool = Mempool()
        tx = make_transfer(alice, "r", 1, nonce=0)
        pool.add(tx)
        assert pool.get(tx.tx_id) is tx
        assert pool.get("ff" * 32) is None
        pool.remove_all([tx.tx_id])
        assert pool.get(tx.tx_id) is None

    def test_remove_all(self, alice):
        pool = Mempool()
        txs = [make_transfer(alice, "r", 1, nonce=n) for n in range(3)]
        for tx in txs:
            pool.add(tx)
        pool.remove_all([tx.tx_id for tx in txs[:2]])
        assert len(pool) == 1


class TestTransferExecutor:
    def _setup(self, alice):
        state = StateDB()
        state.credit(alice.address, 1000)
        return state, TransferExecutor(), ExecutionContext(block_height=1)

    def test_successful_transfer(self, alice):
        state, executor, ctx = self._setup(alice)
        tx = make_transfer(alice, "dest", 300, nonce=0)
        receipt = executor.apply(state, tx, ctx)
        assert receipt.success
        assert receipt.gas_used == BASE_TX_GAS
        assert state.balance("dest") == 300
        assert state.balance(alice.address) == 700

    def test_nonce_enforced(self, alice):
        state, executor, ctx = self._setup(alice)
        tx = make_transfer(alice, "dest", 10, nonce=5)
        receipt = executor.apply(state, tx, ctx)
        assert not receipt.success
        assert "nonce" in receipt.error

    def test_failed_transfer_still_consumes_nonce(self, alice):
        state, executor, ctx = self._setup(alice)
        tx = make_transfer(alice, "dest", 99999, nonce=0)
        receipt = executor.apply(state, tx, ctx)
        assert not receipt.success
        assert state.nonce(alice.address) == 1
        assert state.balance("dest") == 0

    def test_malformed_payload_rejected(self, alice):
        state, executor, ctx = self._setup(alice)
        tx = make_transfer(alice, "dest", 10, nonce=0)
        import dataclasses

        bad = dataclasses.replace(
            tx, payload={"to": "dest", "amount": "ten"}
        ).signed_by(alice)
        receipt = executor.apply(state, bad, ctx)
        assert not receipt.success

    def test_apply_block_transactions_in_order(self, alice):
        state, executor, ctx = self._setup(alice)
        txs = [
            make_transfer(alice, "d1", 100, nonce=0),
            make_transfer(alice, "d2", 100, nonce=1),
        ]
        receipts = apply_block_transactions(executor, state, txs, ctx)
        assert all(receipt.success for receipt in receipts)
        assert state.balance("d1") == state.balance("d2") == 100
