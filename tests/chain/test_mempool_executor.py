"""Mempool selection and transfer-executor tests."""


from repro.chain.executor import (
    BASE_TX_GAS,
    ExecutionContext,
    TransferExecutor,
    apply_block_transactions,
)
from repro.chain.mempool import (
    ACCEPTED,
    DUPLICATE,
    POOL_FULL,
    REPLACED,
    Mempool,
    MempoolConfig,
)
from repro.chain.state import StateDB
from repro.chain.transactions import make_transfer
from repro.common.signatures import KeyPair


def _paid(keypair, nonce, fee, amount=1):
    """A transfer bidding ``fee`` per gas (max == priority, base fee 0)."""
    return make_transfer(
        keypair,
        "r",
        amount,
        nonce=nonce,
        max_fee_per_gas=fee,
        priority_fee_per_gas=fee,
    )


class TestMempool:
    def test_add_and_contains(self, alice):
        pool = Mempool()
        tx = make_transfer(alice, "r", 1, nonce=0)
        result = pool.add(tx)
        assert result and result.code == ACCEPTED
        assert tx.tx_id in pool
        assert len(pool) == 1

    def test_duplicates_rejected(self, alice):
        pool = Mempool()
        tx = make_transfer(alice, "r", 1, nonce=0)
        pool.add(tx)
        result = pool.add(tx)
        assert not result
        assert result.code == DUPLICATE

    def test_capacity_never_exceeded(self, alice, bob):
        carol = KeyPair.generate("carol")
        config = MempoolConfig(max_size=2, high_watermark=1.0, low_watermark=0.5)
        pool = Mempool(config=config)
        pool.add(_paid(alice, 0, fee=5))
        pool.add(_paid(bob, 0, fee=3))
        # An outbidding third sender evicts the cheapest resident...
        result = pool.add(_paid(carol, 0, fee=9))
        assert result and result.code == ACCEPTED
        assert len(pool) == 2
        # ...while a bid at-or-below the cheapest resident is refused.
        refused = pool.add(_paid(bob, 1, fee=5))
        assert not refused
        assert refused.code == POOL_FULL
        assert refused.fee_floor == 6  # one above the cheapest resident fee
        assert len(pool) == 2

    def test_replacement_requires_fee_bump(self, alice):
        pool = Mempool()
        pool.add(_paid(alice, 0, fee=10))
        # Same sender+nonce at an insufficient bump is underpriced...
        weak = pool.add(_paid(alice, 0, fee=10, amount=2))
        assert not weak
        # ...but a >=10% bump replaces the original in place.
        strong = pool.add(_paid(alice, 0, fee=11, amount=3))
        assert strong.code == REPLACED
        assert strong.replaced_tx_id is not None
        assert len(pool) == 1

    def test_priority_ordering_by_fee(self, alice, bob):
        pool = Mempool()
        cheap = _paid(alice, 0, fee=1)
        rich = _paid(bob, 0, fee=50)
        pool.add(cheap)
        pool.add(rich)
        assert [tx.tx_id for tx in pool.select(10)] == [rich.tx_id, cheap.tx_id]

    def test_fifo_selection_without_nonces(self, alice, bob):
        pool = Mempool()
        first = make_transfer(alice, "r", 1, nonce=0)
        second = make_transfer(bob, "r", 1, nonce=0)
        pool.add(first)
        pool.add(second)
        assert [tx.tx_id for tx in pool.select(10)] == [first.tx_id, second.tx_id]

    def test_selection_respects_limit(self, alice):
        pool = Mempool()
        for nonce in range(5):
            pool.add(make_transfer(alice, "r", 1, nonce=nonce))
        assert len(pool.select(3)) == 3

    def test_nonce_gaps_deferred(self, alice):
        pool = Mempool()
        pool.add(make_transfer(alice, "r", 1, nonce=2))
        selected = pool.select(10, nonces={alice.address: 0})
        assert selected == []

    def test_out_of_order_arrival_reordered(self, alice):
        pool = Mempool()
        later = make_transfer(alice, "r", 1, nonce=1)
        earlier = make_transfer(alice, "r", 1, nonce=0)
        pool.add(later)
        pool.add(earlier)
        selected = pool.select(10, nonces={alice.address: 0})
        assert [tx.nonce for tx in selected] == [0, 1]

    def test_get_by_id(self, alice):
        pool = Mempool()
        tx = make_transfer(alice, "r", 1, nonce=0)
        pool.add(tx)
        assert pool.get(tx.tx_id) is tx
        assert pool.get("ff" * 32) is None
        pool.remove_all([tx.tx_id])
        assert pool.get(tx.tx_id) is None

    def test_remove_all(self, alice):
        pool = Mempool()
        txs = [make_transfer(alice, "r", 1, nonce=n) for n in range(3)]
        for tx in txs:
            pool.add(tx)
        pool.remove_all([tx.tx_id for tx in txs[:2]])
        assert len(pool) == 1


class TestTransferExecutor:
    def _setup(self, alice):
        state = StateDB()
        state.credit(alice.address, 1000)
        return state, TransferExecutor(), ExecutionContext(block_height=1)

    def test_successful_transfer(self, alice):
        state, executor, ctx = self._setup(alice)
        tx = make_transfer(alice, "dest", 300, nonce=0)
        receipt = executor.apply(state, tx, ctx)
        assert receipt.success
        assert receipt.gas_used == BASE_TX_GAS
        assert state.balance("dest") == 300
        assert state.balance(alice.address) == 700

    def test_nonce_enforced(self, alice):
        state, executor, ctx = self._setup(alice)
        tx = make_transfer(alice, "dest", 10, nonce=5)
        receipt = executor.apply(state, tx, ctx)
        assert not receipt.success
        assert "nonce" in receipt.error

    def test_failed_transfer_still_consumes_nonce(self, alice):
        state, executor, ctx = self._setup(alice)
        tx = make_transfer(alice, "dest", 99999, nonce=0)
        receipt = executor.apply(state, tx, ctx)
        assert not receipt.success
        assert state.nonce(alice.address) == 1
        assert state.balance("dest") == 0

    def test_malformed_payload_rejected(self, alice):
        state, executor, ctx = self._setup(alice)
        tx = make_transfer(alice, "dest", 10, nonce=0)
        import dataclasses

        bad = dataclasses.replace(
            tx, payload={"to": "dest", "amount": "ten"}
        ).signed_by(alice)
        receipt = executor.apply(state, bad, ctx)
        assert not receipt.success

    def test_apply_block_transactions_in_order(self, alice):
        state, executor, ctx = self._setup(alice)
        txs = [
            make_transfer(alice, "d1", 100, nonce=0),
            make_transfer(alice, "d2", 100, nonce=1),
        ]
        receipts = apply_block_transactions(executor, state, txs, ctx)
        assert all(receipt.success for receipt in receipts)
        assert state.balance("d1") == state.balance("d2") == 100
