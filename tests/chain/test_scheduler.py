"""Optimistic parallel block scheduler tests (`repro.chain.scheduler`).

The contract under test: whatever the backend, conflict pattern, or
derivation precision, `BlockScheduler.execute_block` produces a state root
and receipt list bit-identical to the serial fork-and-apply loop.
"""

import pytest

from repro.chain import scheduler as scheduler_mod
from repro.chain.executor import (
    ExecutionContext,
    Receipt,
    speculate_block_transactions,
)
from repro.chain.scheduler import (
    BlockScheduler,
    TxAccess,
    _build_snapshot,
    _covered,
    _OrderingViolation,
    _SpecOutcome,
    _wave_conflict,
    derive_tx_access,
    plan_waves,
)
from repro.chain.state import StateDB
from repro.chain.transactions import make_call, make_deploy, make_transfer
from repro.common.signatures import KeyPair
from repro.contracts.library import COUNTER_SOURCE
from repro.contracts.runtime import ContractExecutor

# Per-user balance slots: calls touching different users are statically
# disjoint, which is what gives the scheduler parallelism to find.
LEDGER_SOURCE = '''
def credit(user, amount):
    bal = storage_get("bal/" + user, 0)
    storage_set("bal/" + user, bal + amount)
    return bal + amount

def move(src, dst, amount):
    a = storage_get("bal/" + src, 0)
    require(a >= amount, "insufficient")
    storage_set("bal/" + src, a - amount)
    storage_set("bal/" + dst, storage_get("bal/" + dst, 0) + amount)
    return True

def get(user):
    return storage_get("bal/" + user, 0)

def audit():
    return storage_keys("bal/")
'''

CTX = ExecutionContext(block_height=7, timestamp_ms=1234, node_name="test")

SENDERS = [KeyPair.generate(f"sched-sender-{i}") for i in range(16)]


@pytest.fixture()
def ledger():
    """(base_state, contract_id): funded senders + a deployed ledger."""
    state = StateDB()
    for keypair in SENDERS:
        state.credit(keypair.address, 1_000_000)
    deployer = KeyPair.generate("sched-deployer")
    state.credit(deployer.address, 1_000_000)
    receipt = ContractExecutor().apply(
        state, make_deploy(deployer, "ledger", LEDGER_SOURCE, nonce=0), CTX
    )
    assert receipt.success, receipt.error
    return state, receipt.output


def serial_reference(base_state, transactions):
    """Root + receipts from the plain serial loop (the ground truth)."""
    overlay = base_state.fork()
    executor = ContractExecutor()
    receipts = [executor.apply(overlay, tx, CTX) for tx in transactions]
    root = overlay.state_root()
    overlay.discard()
    return root, receipts


def run_scheduled(base_state, transactions, **kwargs):
    with BlockScheduler(ContractExecutor(), **kwargs) as scheduler:
        overlay, receipts = scheduler.execute_block(
            base_state, transactions, CTX
        )
        root = overlay.state_root()
        stats = dict(scheduler.stats)
        overlay.discard()
    return root, receipts, stats


def mixed_block(contract_id):
    """~20 txs: disjoint credits, a hot-key pile-up, transfers, a chain."""
    txs = [
        make_call(
            SENDERS[i], contract_id, "credit", {"user": f"u{i}", "amount": i + 1},
            nonce=0,
        )
        for i in range(8)
    ]
    txs += [
        make_call(
            SENDERS[i], contract_id, "credit", {"user": "hot", "amount": 5},
            nonce=1,
        )
        for i in range(8, 12)
    ]
    txs.append(make_transfer(SENDERS[12], SENDERS[13].address, 50, nonce=0))
    txs += [
        make_call(
            SENDERS[14], contract_id, "move",
            {"src": "u1", "dst": "u2", "amount": 1}, nonce=n,
        )
        for n in range(3)
    ]
    txs.append(make_call(SENDERS[15], contract_id, "audit", nonce=0))
    return txs


class TestDeriveTxAccess:
    def test_transfer_footprint(self, ledger):
        state, _ = ledger
        tx = make_transfer(SENDERS[0], SENDERS[1].address, 5, nonce=0)
        access = derive_tx_access(state, tx)
        expected = frozenset(
            {f"acct/{SENDERS[0].address}", f"acct/{SENDERS[1].address}"}
        )
        assert access.reads == expected
        assert access.writes == expected
        assert not access.unknown

    def test_call_footprint_resolved(self, ledger):
        state, cid = ledger
        tx = make_call(
            SENDERS[0], cid, "credit", {"user": "ann", "amount": 3}, nonce=0
        )
        access = derive_tx_access(state, tx)
        assert not access.unknown
        assert f"contract/{cid}/s/bal/ann" in access.reads
        assert f"contract/{cid}/s/bal/ann" in access.writes
        assert f"acct/{SENDERS[0].address}" in access.writes
        assert f"contract/{cid}/__meta__" in access.reads

    def test_prefix_scan_footprint(self, ledger):
        state, cid = ledger
        tx = make_call(SENDERS[0], cid, "audit", nonce=0)
        access = derive_tx_access(state, tx)
        assert access.read_prefixes == frozenset({f"contract/{cid}/s/bal/"})

    def test_deploy_is_unknown(self, ledger):
        state, _ = ledger
        tx = make_deploy(SENDERS[0], "counter", COUNTER_SOURCE, nonce=0)
        assert derive_tx_access(state, tx).unknown

    def test_unresolvable_args_are_unknown(self, ledger):
        state, cid = ledger
        tx = make_call(
            SENDERS[0], cid, "credit", {"user": ["list"], "amount": 1}, nonce=0
        )
        assert derive_tx_access(state, tx).unknown

    def test_missing_contract_minimal_footprint(self, ledger):
        state, _ = ledger
        tx = make_call(SENDERS[0], "00" * 20, "get", nonce=0)
        access = derive_tx_access(state, tx)
        assert not access.unknown
        assert access.writes == frozenset({f"acct/{SENDERS[0].address}"})

    def test_missing_contract_after_barrier_is_unknown(self, ledger):
        # A deploy earlier in the block may create the contract mid-block.
        state, _ = ledger
        tx = make_call(SENDERS[0], "00" * 20, "get", nonce=0)
        assert derive_tx_access(state, tx, contract_may_appear=True).unknown

    def test_missing_method_minimal_footprint(self, ledger):
        state, cid = ledger
        tx = make_call(SENDERS[0], cid, "nope", nonce=0)
        access = derive_tx_access(state, tx)
        assert not access.unknown
        assert access.writes == frozenset({f"acct/{SENDERS[0].address}"})


class TestPlanWaves:
    def access(self, reads=(), writes=(), prefixes=(), unknown=False):
        return TxAccess(
            reads=frozenset(reads),
            writes=frozenset(writes),
            read_prefixes=frozenset(prefixes),
            unknown=unknown,
        )

    def test_disjoint_txs_share_a_wave(self):
        accesses = [
            self.access(reads={f"k{i}"}, writes={f"k{i}"}) for i in range(5)
        ]
        assert plan_waves(accesses) == [[0, 1, 2, 3, 4]]

    def test_same_sender_chain_serializes(self):
        # Every tx reads+writes its sender's account key, so nonce chains
        # levelize into one wave per tx.
        key = "acct/a"
        accesses = [self.access(reads={key}, writes={key}) for _ in range(3)]
        assert plan_waves(accesses) == [[0], [1], [2]]

    def test_write_write_overlap_serializes(self):
        accesses = [
            self.access(writes={"k"}),
            self.access(writes={"k"}),
            self.access(writes={"other"}),
        ]
        assert plan_waves(accesses) == [[0, 2], [1]]

    def test_read_after_write_serializes(self):
        accesses = [self.access(writes={"k"}), self.access(reads={"k"})]
        assert plan_waves(accesses) == [[0], [1]]

    def test_write_after_read_serializes(self):
        accesses = [self.access(reads={"k"}), self.access(writes={"k"})]
        assert plan_waves(accesses) == [[0], [1]]

    def test_read_read_overlap_is_parallel(self):
        accesses = [self.access(reads={"k"}), self.access(reads={"k"})]
        assert plan_waves(accesses) == [[0, 1]]

    def test_unknown_is_singleton_barrier(self):
        accesses = [
            self.access(writes={"a"}),
            self.access(unknown=True),
            self.access(writes={"b"}),
        ]
        assert plan_waves(accesses) == [[0], [1], [2]]

    def test_prefix_scan_serializes_against_writes_both_directions(self):
        scan_then_write = [
            self.access(prefixes={"bal/"}),
            self.access(writes={"bal/x"}),
        ]
        write_then_scan = [
            self.access(writes={"bal/x"}),
            self.access(prefixes={"bal/"}),
        ]
        assert plan_waves(scan_then_write) == [[0], [1]]
        assert plan_waves(write_then_scan) == [[0], [1]]

    def test_empty_block(self):
        assert plan_waves([]) == []


class TestEquivalence:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_mixed_block_bit_identical(self, ledger, backend):
        state, cid = ledger
        txs = mixed_block(cid)
        serial_root, serial_receipts = serial_reference(state, txs)
        root, receipts, stats = run_scheduled(state, txs, backend=backend)
        assert root == serial_root
        assert receipts == serial_receipts
        assert stats["txs_parallel_committed"] > 0
        assert stats["block_aborts"] == 0

    def test_process_backend_bit_identical(self, ledger):
        state, cid = ledger
        txs = [
            make_call(
                SENDERS[i], cid, "credit",
                {"user": f"u{i}", "amount": 2}, nonce=0,
            )
            for i in range(6)
        ]
        serial_root, serial_receipts = serial_reference(state, txs)
        root, receipts, stats = run_scheduled(
            state, txs, backend="process", max_workers=2
        )
        assert root == serial_root
        assert receipts == serial_receipts
        assert stats["txs_parallel_committed"] == 6

    def test_conflict_heavy_block_bit_identical(self, ledger):
        # 100% write-write conflicts: every tx hits the same slot.
        state, cid = ledger
        txs = [
            make_call(
                SENDERS[i], cid, "credit", {"user": "hot", "amount": 1},
                nonce=0,
            )
            for i in range(8)
        ]
        serial_root, serial_receipts = serial_reference(state, txs)
        root, receipts, stats = run_scheduled(state, txs, backend="thread")
        assert root == serial_root
        assert receipts == serial_receipts
        # Levelization serializes the pile-up outright: one wave per tx.
        assert stats["waves"] == 8

    def test_deploy_then_call_same_block(self, ledger):
        state, _ = ledger
        deployer = SENDERS[7]
        deploy = make_deploy(deployer, "counter", COUNTER_SOURCE, nonce=0)
        new_cid = ContractExecutor().apply(
            state.fork(), deploy, CTX
        ).output  # throwaway fork: cid depends only on sender/nonce/name
        txs = [
            make_call(SENDERS[0], SENDERS[1].address[:40], "get", nonce=0),
            deploy,
            make_call(deployer, new_cid, "increment", {"by": 2}, nonce=1),
            make_call(SENDERS[2], new_cid, "get", nonce=0),
        ]
        serial_root, serial_receipts = serial_reference(state, txs)
        root, receipts, stats = run_scheduled(state, txs, backend="thread")
        assert root == serial_root
        assert receipts == serial_receipts
        assert receipts[2].success and receipts[2].output == 2
        # deploy + the two post-barrier calls to a then-unknown contract
        assert stats["unknown_txs"] == 3

    def test_failed_txs_equivalent(self, ledger):
        state, cid = ledger
        txs = [
            make_call(
                SENDERS[0], cid, "move",
                {"src": "nobody", "dst": "x", "amount": 10}, nonce=0,
            ),
            make_transfer(SENDERS[1], SENDERS[2].address, 10**12, nonce=0),
            make_call(SENDERS[2], cid, "credit", {"user": "y", "amount": 1},
                      nonce=5),  # bad nonce
            make_call(SENDERS[3], cid, "credit", {"user": "y", "amount": 1},
                      nonce=0),
        ]
        serial_root, serial_receipts = serial_reference(state, txs)
        root, receipts, _ = run_scheduled(state, txs, backend="thread")
        assert root == serial_root
        assert receipts == serial_receipts
        assert not receipts[0].success
        assert not receipts[1].success
        assert not receipts[2].success

    def test_empty_block(self, ledger):
        state, _ = ledger
        root, receipts, _ = run_scheduled(state, [], backend="thread")
        assert receipts == []
        assert root == state.state_root()

    def test_golden_root_pinned(self, ledger):
        """Deterministic fixture -> pinned root: any drift in scheduler,
        state layer, or contract VM semantics shows up here."""
        state, cid = ledger
        txs = mixed_block(cid)
        root, _, __ = run_scheduled(state, txs, backend="thread")
        serial_root, _ = serial_reference(state, txs)
        assert root.hex() == serial_root.hex() == GOLDEN_MIXED_BLOCK_ROOT

    def test_speculate_block_transactions_routes_scheduler(self, ledger):
        state, cid = ledger
        txs = mixed_block(cid)
        serial_root, serial_receipts = serial_reference(state, txs)
        with BlockScheduler(ContractExecutor(), backend="thread") as sched:
            overlay, receipts = speculate_block_transactions(
                ContractExecutor(), state, txs, CTX, scheduler=sched
            )
            assert overlay.state_root() == serial_root
            assert receipts == serial_receipts
            overlay.discard()


class TestOrderingBackstop:
    def test_unsound_derivation_aborts_to_serial(self, ledger, monkeypatch):
        """Even if the static deriver under-approximates (a bug), the
        commit-time ordering cross-check catches it and the block reruns
        serially — bit-identical root, block_aborts incremented."""
        state, cid = ledger
        txs = [
            make_call(SENDERS[i], cid, "credit", {"user": "shared",
                      "amount": 10 + i}, nonce=0)
            for i in range(3)
        ]
        fake = {
            0: TxAccess(reads=frozenset({"x"}), writes=frozenset({"x"})),
            1: TxAccess(reads=frozenset({"x"}), writes=frozenset({"x"})),
            2: TxAccess(reads=frozenset({"z"}), writes=frozenset({"z"})),
        }
        by_id = {tx.tx_id: fake[i] for i, tx in enumerate(txs)}
        monkeypatch.setattr(
            scheduler_mod,
            "derive_tx_access",
            lambda _state, tx, *a, **k: by_id[tx.tx_id],
        )
        # Fake plan: wave1 = [0, 2], wave2 = [1]; tx2 commits the shared
        # balance before tx1 reads it => cross-wave ordering violation.
        serial_root, serial_receipts = serial_reference(state, txs)
        root, receipts, stats = run_scheduled(state, txs, backend="thread")
        assert root == serial_root
        assert receipts == serial_receipts
        assert stats["block_aborts"] == 1


class TestValidationUnits:
    def outcome(self, reads=(), prefixes=(), writes=None, deletes=()):
        return _SpecOutcome(
            receipt=Receipt(tx_id="t", success=True),
            writes=writes or {},
            deletes=list(deletes),
            observed_reads=set(reads),
            observed_prefixes=set(prefixes),
        )

    def test_wave_conflict_on_read_of_committed_write(self):
        assert _wave_conflict(self.outcome(reads={"k"}), {"k"})
        assert not _wave_conflict(self.outcome(reads={"k"}), {"other"})
        assert not _wave_conflict(self.outcome(reads={"k"}), set())

    def test_wave_conflict_on_prefix_scan(self):
        assert _wave_conflict(self.outcome(prefixes={"bal/"}), {"bal/x"})
        assert not _wave_conflict(self.outcome(prefixes={"bal/"}), {"acct/x"})

    def test_check_ordering_raises_on_later_writer(self):
        with pytest.raises(_OrderingViolation):
            BlockScheduler._check_ordering(
                1, self.outcome(reads={"k"}), {"k": 5}
            )
        with pytest.raises(_OrderingViolation):
            BlockScheduler._check_ordering(
                1, self.outcome(writes={"k": 1}), {"k": 5}
            )
        with pytest.raises(_OrderingViolation):
            BlockScheduler._check_ordering(
                1, self.outcome(prefixes={"ba"}), {"bal": 5}
            )

    def test_check_ordering_accepts_earlier_writer(self):
        BlockScheduler._check_ordering(5, self.outcome(reads={"k"}), {"k": 1})
        BlockScheduler._check_ordering(5, self.outcome(reads={"k"}), {})

    def test_covered_uses_universe_not_snapshot(self):
        # A key in the universe but absent from state is still covered:
        # the worker correctly saw "no value".
        outcome = self.outcome(reads={"present", "absent"})
        assert _covered(outcome, frozenset({"present", "absent"}), frozenset())
        assert not _covered(outcome, frozenset({"present"}), frozenset())

    def test_covered_by_prefix(self):
        outcome = self.outcome(reads={"bal/x"}, prefixes={"bal/"})
        assert _covered(outcome, frozenset(), frozenset({"bal/"}))
        assert not _covered(outcome, frozenset(), frozenset({"acct/"}))

    def test_build_snapshot_universe_and_prefix_expansion(self):
        state = StateDB({"bal/a": 1, "bal/b": 2, "other": 3})
        access = TxAccess(
            reads=frozenset({"bal/a", "missing"}),
            writes=frozenset({"out"}),
            read_prefixes=frozenset({"bal/"}),
        )
        snapshot, universe = _build_snapshot(state, access)
        assert snapshot == {"bal/a": 1, "bal/b": 2}
        assert universe == {"bal/a", "bal/b", "missing", "out"}


GOLDEN_MIXED_BLOCK_ROOT = (
    "dad15fd3f31da10abb6b76885de34e9909d32955e199659deee46bb22c427ccb"
)
