"""Model-based property suite for the fee-market mempool.

``NaiveMempool`` below is a brute-force transcription of the admission
and selection *spec* — flat dicts, linear scans, no heaps, no lazy
eviction index, no cached fee floors.  Hypothesis drives both it and the
real :class:`Mempool` through the same random operation sequences and
demands identical admission codes, pool contents, and selection output
at every step.  Any divergence means the optimized implementation broke
the spec, not that the spec moved.

Watermark shedding, rate limiting, and age expiry are held out of scope
here by construction (the configs pin both watermarks at 1.0, which makes
shedding unreachable outside the capacity branch; the limiter and age
knobs default off) — their caching and hysteresis are tested directly in
``test_mempool.py``.  This file is
part of the scheduled ``ci-stress`` deep-fuzz profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.chain.mempool import (
    ACCEPTED,
    DUPLICATE,
    POOL_FULL,
    REPLACED,
    STALE_NONCE,
    UNDERPRICED,
    Mempool,
    MempoolConfig,
)
from repro.chain.mempool.fee_market import rbf_threshold
from repro.chain.transactions import TX_TRANSFER, Transaction

SENDERS = ["A", "B", "C"]
# low == high == 1.0 makes the watermark provably inert: shedding can only
# engage while depth == max_size, where the capacity/eviction branch takes
# precedence in ``Mempool.add``, and it clears on the first removal.  The
# capacity path is therefore the only depth limiter under test.
SMALL_CONFIG = MempoolConfig(
    max_size=6,
    min_fee_per_gas=2,
    replace_bump_pct=10,
    high_watermark=1.0,
    low_watermark=1.0,
)
BIG_CONFIG = MempoolConfig(
    max_size=200,
    min_fee_per_gas=0,
    replace_bump_pct=10,
    high_watermark=1.0,
    low_watermark=1.0,
)


def make_tx(sender: str, nonce: int, fee: int, salt: int) -> Transaction:
    """Unsigned tx; ``salt`` varies the payload so tx_ids stay unique."""
    return Transaction(
        sender=sender,
        nonce=nonce,
        kind=TX_TRANSFER,
        payload={"to": "sink", "amount": salt + 1},
        max_fee_per_gas=fee,
        priority_fee_per_gas=fee,
    )


@dataclass
class NaiveEntry:
    tx: Transaction
    fee: int
    seq: int


@dataclass
class NaiveMempool:
    """Literal spec: O(n) everything, one flat (sender, nonce) table."""

    config: MempoolConfig
    slots: Dict[Tuple[str, int], NaiveEntry] = field(default_factory=dict)
    seq: int = 0

    def __len__(self) -> int:
        return len(self.slots)

    def tx_ids(self) -> set:
        return {entry.tx.tx_id for entry in self.slots.values()}

    def add(self, tx: Transaction, account_nonce: Optional[int] = None) -> str:
        if tx.tx_id in self.tx_ids():
            return DUPLICATE
        if account_nonce is not None and tx.nonce < account_nonce:
            return STALE_NONCE
        config = self.config
        fee = tx.effective_fee_per_gas(config.base_fee_per_gas)
        if tx.max_fee_per_gas < config.base_fee_per_gas or fee < config.min_fee_per_gas:
            return UNDERPRICED
        incumbent = self.slots.get((tx.sender, tx.nonce))
        if incumbent is not None:
            if fee < rbf_threshold(incumbent.fee, config.replace_bump_pct):
                return UNDERPRICED
            self.seq += 1
            self.slots[(tx.sender, tx.nonce)] = NaiveEntry(tx, fee, self.seq)
            return REPLACED
        if len(self.slots) >= config.max_size:
            victim = self._victim()
            if victim is None or self.slots[victim].fee >= fee:
                return POOL_FULL
            del self.slots[victim]
        self.seq += 1
        self.slots[(tx.sender, tx.nonce)] = NaiveEntry(tx, fee, self.seq)
        return ACCEPTED

    def _victim(self) -> Optional[Tuple[str, int]]:
        """Cheapest (then youngest) per-sender *tail* — never mid-sequence."""
        tails = {}
        for (sender, nonce) in self.slots:
            if sender not in tails or nonce > tails[sender]:
                tails[sender] = nonce
        candidates = [(sender, nonce) for sender, nonce in tails.items()]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda key: (self.slots[key].fee, -self.slots[key].seq),
        )

    def commit(self, tx_ids: List[str], account_nonces: Dict[str, int]) -> None:
        drop = set(tx_ids)
        self.slots = {
            key: entry
            for key, entry in self.slots.items()
            if entry.tx.tx_id not in drop
            and entry.tx.nonce >= account_nonces.get(entry.tx.sender, -1)
        }

    def select(self, limit: int, nonces: Dict[str, int]) -> List[str]:
        next_nonce = dict(nonces)
        picked: List[str] = []
        while len(picked) < limit:
            ready = [
                self.slots[(sender, next_nonce.get(sender, 0))]
                for sender in SENDERS
                if (sender, next_nonce.get(sender, 0)) in self.slots
            ]
            if not ready:
                break
            best = max(ready, key=lambda entry: (entry.fee, -entry.seq))
            picked.append(best.tx.tx_id)
            next_nonce[best.tx.sender] = best.tx.nonce + 1
        return picked


# One operation = (kind, sender_idx, nonce, fee, flag).
ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["add", "add", "add", "add", "commit", "select"]),
        st.integers(min_value=0, max_value=len(SENDERS) - 1),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=12),
        st.booleans(),
    ),
    min_size=1,
    max_size=40,
)


def run_against_model(ops, config: MempoolConfig) -> None:
    real = Mempool(config=config)
    naive = NaiveMempool(config=config)
    account_nonces = {sender: 0 for sender in SENDERS}
    salt = 0
    last_tx: Optional[Transaction] = None
    for kind, sender_idx, nonce, fee, flag in ops:
        sender = SENDERS[sender_idx]
        if kind == "add":
            if flag and last_tx is not None:
                tx = last_tx  # exact resubmission: must be DUPLICATE
            else:
                salt += 1
                tx = make_tx(sender, nonce, fee, salt)
            last_tx = tx
            known = account_nonces[tx.sender] if flag else None
            got = real.add(tx, account_nonce=known)
            want = naive.add(tx, account_nonce=known)
            assert got.code == want, (got.code, want, tx.sender, tx.nonce)
            assert bool(got) == (want in (ACCEPTED, REPLACED))
        elif kind == "commit":
            # Advance one account nonce and commit whatever that sender
            # had pooled below it, exactly like a block commit would.
            account_nonces[sender] += 1
            included = [
                tx_id
                for tx_id in real.all_ids()
                if real.get(tx_id).sender == sender
                and real.get(tx_id).nonce < account_nonces[sender]
            ]
            real.commit(included, {sender: account_nonces[sender]})
            naive.commit(included, {sender: account_nonces[sender]})
        else:  # select
            limit = 1 + (fee % 8)
            got_ids = [t.tx_id for t in real.select(limit, nonces=account_nonces)]
            assert got_ids == naive.select(limit, nonces=account_nonces)
        assert len(real) == len(naive)
        assert set(real.all_ids()) == naive.tx_ids()
        assert len(real) <= config.max_size


@settings(max_examples=60, deadline=None)
@given(ops_strategy)
@example(
    # Regression: fill to depth 5 (where a 0.9 high watermark on max_size=6
    # would engage) then add a sixth sender-B tx — it must be ACCEPTED on
    # the capacity path, never shed.
    ops=[
        ("add", 0, 0, 3, False),
        ("add", 0, 1, 3, False),
        ("add", 0, 2, 3, False),
        ("add", 0, 3, 2, False),
        ("add", 0, 4, 2, False),
        ("add", 1, 0, 2, False),
    ],
)
def test_real_pool_matches_naive_model_under_pressure(ops):
    """Tiny capacity: eviction and POOL_FULL paths run constantly."""
    run_against_model(ops, SMALL_CONFIG)


@settings(max_examples=60, deadline=None)
@given(ops_strategy)
def test_real_pool_matches_naive_model_roomy(ops):
    """Roomy pool: RBF/duplicate/ordering paths without capacity noise."""
    run_against_model(ops, BIG_CONFIG)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=len(SENDERS) - 1),
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=0, max_value=50),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_selection_sorted_by_fee_within_executability(adds):
    """Global invariant: selected txs are the greedy max-fee frontier —
    each pick is the highest-fee (then oldest) executable candidate at
    the moment it is taken."""
    pool = Mempool(config=BIG_CONFIG)
    salt = 0
    for sender_idx, nonce, fee in adds:
        salt += 1
        pool.add(make_tx(SENDERS[sender_idx], nonce, fee, salt))
    zeros = {sender: 0 for sender in SENDERS}
    selected = pool.select(100, nonces=zeros)
    # Per-sender nonces are contiguous from the account nonce.
    by_sender: Dict[str, List[int]] = {}
    for tx in selected:
        by_sender.setdefault(tx.sender, []).append(tx.nonce)
    for sender, nonces in by_sender.items():
        assert nonces == list(range(len(nonces)))
