"""StateDB tests: accounts, contract slots, snapshots, roots."""

import pytest

from repro.chain.state import StateDB
from repro.common.errors import ChainError


def test_get_set_round_trip():
    state = StateDB()
    state.set("k", {"nested": [1, 2]})
    assert state.get("k") == {"nested": [1, 2]}


def test_get_returns_copies():
    state = StateDB()
    state.set("k", {"list": [1]})
    state.get("k")["list"].append(2)
    assert state.get("k") == {"list": [1]}


def test_missing_key_default():
    assert StateDB().get("nope", 42) == 42


def test_delete_and_contains():
    state = StateDB()
    state.set("k", 1)
    assert state.contains("k")
    state.delete("k")
    assert not state.contains("k")


def test_keys_with_prefix_sorted():
    state = StateDB()
    for key in ["b/2", "a/1", "b/1"]:
        state.set(key, 0)
    assert state.keys_with_prefix("b/") == ["b/1", "b/2"]


class TestAccounts:
    def test_balance_starts_zero(self):
        assert StateDB().balance("addr") == 0

    def test_credit_debit(self):
        state = StateDB()
        state.credit("a", 100)
        state.debit("a", 30)
        assert state.balance("a") == 70

    def test_overdraft_rejected(self):
        state = StateDB()
        state.credit("a", 10)
        with pytest.raises(ChainError):
            state.debit("a", 11)

    def test_debit_unknown_account_rejected(self):
        with pytest.raises(ChainError):
            StateDB().debit("ghost", 1)

    def test_negative_amounts_rejected(self):
        state = StateDB()
        with pytest.raises(ChainError):
            state.credit("a", -1)
        with pytest.raises(ChainError):
            state.debit("a", -1)

    def test_nonce_bumping(self):
        state = StateDB()
        assert state.nonce("a") == 0
        assert state.bump_nonce("a") == 1
        assert state.nonce("a") == 1


class TestContractSlots:
    def test_slot_round_trip(self):
        state = StateDB()
        state.set_slot("c1", "counter", 5)
        assert state.get_slot("c1", "counter") == 5

    def test_slots_namespaced_by_contract(self):
        state = StateDB()
        state.set_slot("c1", "x", 1)
        state.set_slot("c2", "x", 2)
        assert state.get_slot("c1", "x") == 1
        assert state.get_slot("c2", "x") == 2

    def test_contract_slots_listing(self):
        state = StateDB()
        state.set_slot("c1", "a", 1)
        state.set_slot("c1", "b", 2)
        assert state.contract_slots("c1") == {"a": 1, "b": 2}


class TestSnapshots:
    def test_rollback_restores(self):
        state = StateDB()
        state.set("k", 1)
        state.snapshot()
        state.set("k", 2)
        state.rollback()
        assert state.get("k") == 1

    def test_commit_keeps_changes(self):
        state = StateDB()
        state.snapshot()
        state.set("k", 9)
        state.commit()
        assert state.get("k") == 9

    def test_nested_snapshots(self):
        state = StateDB()
        state.set("k", 1)
        state.snapshot()
        state.set("k", 2)
        state.snapshot()
        state.set("k", 3)
        state.rollback()
        assert state.get("k") == 2
        state.rollback()
        assert state.get("k") == 1

    def test_rollback_without_snapshot_rejected(self):
        with pytest.raises(ChainError):
            StateDB().rollback()

    def test_commit_without_snapshot_rejected(self):
        with pytest.raises(ChainError):
            StateDB().commit()


class TestRoots:
    def test_equal_states_equal_roots(self):
        a, b = StateDB(), StateDB()
        a.set("x", 1)
        b.set("x", 1)
        assert a.state_root() == b.state_root()

    def test_any_difference_changes_root(self):
        a, b = StateDB(), StateDB()
        a.set("x", 1)
        b.set("x", 2)
        assert a.state_root() != b.state_root()

    def test_insertion_order_irrelevant(self):
        a, b = StateDB(), StateDB()
        a.set("x", 1)
        a.set("y", 2)
        b.set("y", 2)
        b.set("x", 1)
        assert a.state_root() == b.state_root()

    def test_copy_is_independent(self):
        a = StateDB()
        a.set("x", 1)
        b = a.copy()
        b.set("x", 2)
        assert a.get("x") == 1
        assert a.state_root() != b.state_root()
