"""StateDB tests: accounts, contract slots, snapshots, overlays, roots."""

import pytest

from repro.chain.state import (
    StateAliasingError,
    StateDB,
    StateOverlay,
    bucketed_root_of_dict,
    set_debug_aliasing,
)
from repro.common.errors import ChainError
from repro.common.hashing import hash_value


def test_get_set_round_trip():
    state = StateDB()
    state.set("k", {"nested": [1, 2]})
    assert state.get("k") == {"nested": [1, 2]}


def test_get_returns_references_under_immutable_convention():
    # get/set are zero-copy: the stored object is handed back by reference.
    # Callers must treat it as immutable (the contract host bridge copies at
    # its own boundary); debug aliasing mode exists to catch violations.
    state = StateDB()
    value = {"list": [1]}
    state.set("k", value)
    assert state.get("k") is value


def test_debug_aliasing_mode_catches_in_place_mutation():
    set_debug_aliasing(True)
    try:
        state = StateDB()
        state.set("k", {"list": [1]})
        state.get("k")["list"].append(2)  # convention violation
        with pytest.raises(StateAliasingError):
            state.state_root()
    finally:
        set_debug_aliasing(False)


def test_missing_key_default():
    assert StateDB().get("nope", 42) == 42


def test_delete_and_contains():
    state = StateDB()
    state.set("k", 1)
    assert state.contains("k")
    state.delete("k")
    assert not state.contains("k")


def test_keys_with_prefix_sorted():
    state = StateDB()
    for key in ["b/2", "a/1", "b/1"]:
        state.set(key, 0)
    assert state.keys_with_prefix("b/") == ["b/1", "b/2"]


class TestAccounts:
    def test_balance_starts_zero(self):
        assert StateDB().balance("addr") == 0

    def test_credit_debit(self):
        state = StateDB()
        state.credit("a", 100)
        state.debit("a", 30)
        assert state.balance("a") == 70

    def test_overdraft_rejected(self):
        state = StateDB()
        state.credit("a", 10)
        with pytest.raises(ChainError):
            state.debit("a", 11)

    def test_debit_unknown_account_rejected(self):
        with pytest.raises(ChainError):
            StateDB().debit("ghost", 1)

    def test_negative_amounts_rejected(self):
        state = StateDB()
        with pytest.raises(ChainError):
            state.credit("a", -1)
        with pytest.raises(ChainError):
            state.debit("a", -1)

    def test_nonce_bumping(self):
        state = StateDB()
        assert state.nonce("a") == 0
        assert state.bump_nonce("a") == 1
        assert state.nonce("a") == 1


class TestContractSlots:
    def test_slot_round_trip(self):
        state = StateDB()
        state.set_slot("c1", "counter", 5)
        assert state.get_slot("c1", "counter") == 5

    def test_slots_namespaced_by_contract(self):
        state = StateDB()
        state.set_slot("c1", "x", 1)
        state.set_slot("c2", "x", 2)
        assert state.get_slot("c1", "x") == 1
        assert state.get_slot("c2", "x") == 2

    def test_contract_slots_listing(self):
        state = StateDB()
        state.set_slot("c1", "a", 1)
        state.set_slot("c1", "b", 2)
        assert state.contract_slots("c1") == {"a": 1, "b": 2}


class TestSnapshots:
    def test_rollback_restores(self):
        state = StateDB()
        state.set("k", 1)
        state.snapshot()
        state.set("k", 2)
        state.rollback()
        assert state.get("k") == 1

    def test_commit_keeps_changes(self):
        state = StateDB()
        state.snapshot()
        state.set("k", 9)
        state.commit()
        assert state.get("k") == 9

    def test_nested_snapshots(self):
        state = StateDB()
        state.set("k", 1)
        state.snapshot()
        state.set("k", 2)
        state.snapshot()
        state.set("k", 3)
        state.rollback()
        assert state.get("k") == 2
        state.rollback()
        assert state.get("k") == 1

    def test_rollback_without_snapshot_rejected(self):
        with pytest.raises(ChainError):
            StateDB().rollback()

    def test_commit_without_snapshot_rejected(self):
        with pytest.raises(ChainError):
            StateDB().commit()


class TestRoots:
    def test_equal_states_equal_roots(self):
        a, b = StateDB(), StateDB()
        a.set("x", 1)
        b.set("x", 1)
        assert a.state_root() == b.state_root()

    def test_any_difference_changes_root(self):
        a, b = StateDB(), StateDB()
        a.set("x", 1)
        b.set("x", 2)
        assert a.state_root() != b.state_root()

    def test_insertion_order_irrelevant(self):
        a, b = StateDB(), StateDB()
        a.set("x", 1)
        a.set("y", 2)
        b.set("y", 2)
        b.set("x", 1)
        assert a.state_root() == b.state_root()

    def test_copy_is_independent(self):
        a = StateDB()
        a.set("x", 1)
        b = a.copy()
        b.set("x", 2)
        assert a.get("x") == 1
        assert a.state_root() != b.state_root()

    def test_root_bit_identical_to_full_serialization_digest(self):
        # Pins the incremental root to the historical formula:
        # sha256(canonical_bytes(full state dict)).  This is the
        # consensus-critical bit-identicality contract of the refactor.
        state = StateDB()
        state.credit("alice", 100)
        state.set("contract/c1/s/x", {"a": [1, 2], "b": "text"})
        state.set_slot("c2", "y", [3, {"k": True}])
        state.delete("contract/c1/s/x")
        assert state.state_root() == hash_value(state.to_dict(), allow_float=False)

    def test_root_cache_hit_after_clean_read(self):
        state = StateDB()
        state.set("x", 1)
        first = state.state_root()
        assert state.state_root() == first
        assert state.stats()["root_cache_hits"] >= 1
        state.set("x", 2)
        assert state.state_root() != first


class TestOverlay:
    def test_fork_reads_through_to_parent(self):
        base = StateDB()
        base.set("x", 1)
        overlay = base.fork()
        assert isinstance(overlay, StateOverlay)
        assert overlay.get("x") == 1
        overlay.set("x", 2)
        assert overlay.get("x") == 2
        assert base.get("x") == 1

    def test_parent_frozen_after_fork(self):
        base = StateDB()
        base.set("x", 1)
        overlay = base.fork()
        with pytest.raises(ChainError):
            base.set("x", 2)
        assert overlay.get("x") == 1

    def test_parent_unfreezes_when_last_overlay_discarded(self):
        # Regression: a speculative fork must not freeze the base forever.
        # Dropping the last live overlay lifts the freeze automatically.
        base = StateDB()
        base.set("x", 1)
        overlay = base.fork()
        with pytest.raises(ChainError):
            base.set("x", 2)
        del overlay
        base.set("x", 2)
        assert base.get("x") == 2

    def test_parent_stays_frozen_while_any_overlay_lives(self):
        base = StateDB()
        base.set("x", 1)
        o1 = base.fork()
        o2 = base.fork()
        del o1
        with pytest.raises(ChainError):
            base.set("x", 2)
        o2.discard()  # deterministic release of the last overlay
        base.set("x", 2)
        assert base.get("x") == 2

    def test_collapse_releases_parent_freeze(self):
        base = StateDB()
        base.set("x", 1)
        overlay = base.fork()
        overlay.set("y", 2)
        overlay.collapse()
        base.set("x", 3)  # overlay is standalone; base writable again
        assert overlay.get("x") == 1
        assert overlay.get("y") == 2

    def test_transient_fork_leaves_parent_writable(self):
        base = StateDB()
        base.set("x", 1)
        view = base.fork(freeze=False)
        assert view.get("x") == 1
        base.set("x", 2)  # still allowed

    def test_tombstone_hides_parent_key(self):
        base = StateDB()
        base.set("x", 1)
        base.set("y", 2)
        overlay = base.fork()
        overlay.delete("x")
        assert not overlay.contains("x")
        assert overlay.get("x", "gone") == "gone"
        assert overlay.keys_with_prefix("") == ["y"]
        assert len(overlay) == 1
        assert base.contains("x")

    def test_overlay_root_equals_flat_root(self):
        base = StateDB()
        for i in range(20):
            base.set(f"k/{i}", {"v": i})
        overlay = base.fork()
        overlay.set("k/3", {"v": 333})
        overlay.delete("k/7")
        overlay.set("new", [1, 2])
        flat = StateDB(overlay.to_dict())
        assert overlay.state_root() == flat.state_root()
        assert overlay.state_root() == hash_value(
            overlay.to_dict(), allow_float=False
        )

    def test_chained_overlays(self):
        base = StateDB()
        base.set("a", 1)
        o1 = base.fork()
        o1.set("b", 2)
        o2 = o1.fork()
        o2.delete("a")
        o2.set("c", 3)
        assert o2.overlay_depth == 2
        assert dict(o2.items()) == {"b": 2, "c": 3}
        assert dict(o1.items()) == {"a": 1, "b": 2}

    def test_flatten_matches_effective_view(self):
        base = StateDB()
        base.set("a", 1)
        overlay = base.fork()
        overlay.set("b", 2)
        overlay.delete("a")
        flat = overlay.flatten()
        assert flat.overlay_depth == 0
        assert dict(flat.items()) == {"b": 2}
        assert flat.state_root() == overlay.state_root()

    def test_flatten_root_fresh_after_overlay_shadows_cached_fragment(self):
        # Regression: the base had cached a fragment for "k" (state_root
        # was computed), then an overlay overwrote "k" and was flattened
        # WITHOUT an intervening state_root() on the overlay.  The stale
        # base fragment must not be carried into the flat state, or its
        # next root would encode the old value — a silent consensus-root
        # divergence.
        base = StateDB()
        base.set("k", 1)
        base.set("other", "x")
        base.state_root()  # caches base's fragment for "k"
        overlay = base.fork()
        overlay.set("k", 999)
        flat = overlay.flatten()
        assert flat.get("k") == 999
        assert flat.state_root() == hash_value(flat.to_dict(), allow_float=False)
        expected = StateDB({"k": 999, "other": "x"})
        assert flat.state_root() == expected.state_root()

    def test_collapse_root_fresh_after_overlay_shadows_cached_fragment(self):
        # Same regression as above, through the in-place collapse() path.
        base = StateDB()
        base.set("k", 1)
        base.state_root()
        overlay = base.fork()
        overlay.set("k", 999)
        overlay.collapse()
        assert overlay.get("k") == 999
        assert overlay.state_root() == hash_value({"k": 999}, allow_float=False)

    def test_chained_flatten_keeps_shallowest_writer_fragment(self):
        # Three layers: the middle layer's cached fragment must win over
        # the base's, and the top layer's uncached write must win over
        # both cached fragments.
        base = StateDB()
        base.set("a", 1)
        base.set("b", 1)
        base.state_root()
        mid = base.fork()
        mid.set("a", 2)
        mid.state_root()  # caches mid's fragment for "a"
        top = mid.fork()
        top.set("b", 3)  # shadows base's cached "b" fragment, uncached
        flat = top.flatten()
        assert flat.state_root() == hash_value(
            {"a": 2, "b": 3}, allow_float=False
        )

    def test_collapse_preserves_content_and_children(self):
        base = StateDB()
        base.set("a", 1)
        mid = base.fork()
        mid.set("b", 2)
        child = mid.fork()
        child.set("c", 3)
        root_before = child.state_root()
        mid.collapse()
        assert mid.overlay_depth == 0
        assert dict(mid.items()) == {"a": 1, "b": 2}
        assert child.state_root() == root_before
        assert child.overlay_depth == 1

    def test_overlay_snapshot_rollback(self):
        base = StateDB()
        base.set("x", 1)
        overlay = base.fork()
        overlay.set("x", 2)
        overlay.snapshot()
        overlay.set("x", 3)
        overlay.delete("x")
        overlay.rollback()
        assert overlay.get("x") == 2
        overlay.snapshot()
        overlay.delete("x")
        overlay.commit()
        assert overlay.get("x") is None
        assert base.get("x") == 1

    def test_fork_with_open_snapshot_rejected(self):
        state = StateDB()
        state.snapshot()
        with pytest.raises(ChainError):
            state.fork()

    def test_accounts_through_overlay(self):
        base = StateDB()
        base.credit("alice", 100)
        overlay = base.fork()
        overlay.debit("alice", 40)
        overlay.credit("bob", 40)
        assert overlay.balance("alice") == 60
        assert overlay.balance("bob") == 40
        assert base.balance("alice") == 100
        assert base.balance("bob") == 0


class TestCopyIsolation:
    def test_copy_shares_no_structure_with_parent_or_siblings(self):
        # Regression for the copy() docstring contract: a copy never leaks
        # mutations into the state it came from, its parents, or sibling
        # overlays — even for nested container values.
        base = StateDB()
        base.set("box", {"items": [1, 2]})
        overlay = base.fork()
        overlay.set("box2", {"items": [3]})
        sibling = base.fork()
        copied = overlay.copy()
        copied.get("box")["items"].append(99)  # mutate through the copy
        copied.set("box", {"items": ["replaced"]})
        copied.credit("alice", 5)
        assert base.get("box") == {"items": [1, 2]}
        assert overlay.get("box") == {"items": [1, 2]}
        assert sibling.get("box") == {"items": [1, 2]}
        assert overlay.get("box2") == {"items": [3]}
        assert base.balance("alice") == 0

    def test_copy_drops_snapshot_history(self):
        state = StateDB()
        state.set("x", 1)
        state.snapshot()
        state.set("x", 2)
        copied = state.copy()
        with pytest.raises(ChainError):
            copied.rollback()
        state.rollback()
        assert state.get("x") == 1
        assert copied.get("x") == 2


class TestIncrementalRoot:
    def test_matches_from_scratch(self):
        state = StateDB()
        for i in range(50):
            state.set(f"k/{i}", {"v": i})
        assert state.incremental_root() == state.recompute_incremental_root()
        state.set("k/10", {"v": "changed"})
        state.delete("k/20")
        state.set("brand-new", [1])
        assert state.incremental_root() == state.recompute_incremental_root()

    def test_matches_reference_implementation(self):
        state = StateDB()
        state.set("a", 1)
        state.set("b", {"x": [1, 2]})
        assert state.incremental_root() == bucketed_root_of_dict(state.to_dict())

    def test_overlay_incremental_root(self):
        base = StateDB()
        for i in range(30):
            base.set(f"k/{i}", i)
        base.incremental_root()  # warm the base caches
        overlay = base.fork()
        overlay.set("k/5", "changed")
        overlay.delete("k/6")
        overlay.set("extra", True)
        assert overlay.incremental_root() == overlay.recompute_incremental_root()
        assert overlay.incremental_root() != base.incremental_root()

    def test_detects_any_difference(self):
        a, b = StateDB(), StateDB()
        a.set("x", 1)
        b.set("x", 2)
        assert a.incremental_root() != b.incremental_root()
