"""State-channel tests: updates, settlement, disputes, fraud."""

import pytest

from repro.chain.channels import ChannelState, StateChannel
from repro.common.errors import ChainError, CryptoError, ValidationError
from repro.common.signatures import KeyPair


@pytest.fixture()
def channel(alice, bob):
    return StateChannel("chan-1", alice, bob, deposit_a=1000, deposit_b=500)


class TestUpdates:
    def test_initial_balances(self, channel, alice, bob):
        assert channel.balance_of(alice.address) == 1000
        assert channel.balance_of(bob.address) == 500

    def test_payment_moves_balance(self, channel, alice, bob):
        channel.propose_update(alice, 300)
        assert channel.balance_of(alice.address) == 700
        assert channel.balance_of(bob.address) == 800

    def test_versions_increase(self, channel, alice):
        channel.propose_update(alice, 10)
        channel.propose_update(alice, 10)
        assert channel.latest.version == 2

    def test_capacity_conserved(self, channel, alice, bob):
        for __ in range(5):
            channel.propose_update(alice, 50)
        assert sum(channel.latest.balances.values()) == channel.capacity

    def test_overdraft_rejected(self, channel, bob):
        with pytest.raises(ChainError):
            channel.propose_update(bob, 501)

    def test_non_member_rejected(self, channel):
        carol = KeyPair.generate("carol-channel")
        with pytest.raises(ValidationError):
            channel.propose_update(carol, 1)

    def test_non_positive_amount_rejected(self, channel, alice):
        with pytest.raises(ValidationError):
            channel.propose_update(alice, 0)

    def test_states_fully_signed(self, channel, alice, bob):
        state = channel.propose_update(alice, 5)
        assert state.verify(alice.public, bob.public)

    def test_identical_parties_rejected(self, alice):
        with pytest.raises(ValidationError):
            StateChannel("x", alice, alice, 1, 1)


class TestCooperativeClose:
    def test_final_state_settles(self, channel, alice, bob):
        channel.propose_update(alice, 200)
        record = channel.close_cooperative()
        assert record.cooperative
        assert record.final_balances[bob.address] == 700
        assert record.onchain_txs == 2

    def test_no_updates_after_close(self, channel, alice):
        channel.close_cooperative()
        with pytest.raises(ChainError):
            channel.propose_update(alice, 1)

    def test_double_close_rejected(self, channel):
        channel.close_cooperative()
        with pytest.raises(ChainError):
            channel.close_cooperative()

    def test_ledger_footprint_compression(self, channel, alice):
        """The Lightning claim: many updates, two on-chain txs."""
        for __ in range(100):
            channel.propose_update(alice, 1)
        channel.close_cooperative()
        footprint = channel.ledger_footprint()
        assert footprint["offchain_updates"] == 100
        assert footprint["onchain_txs"] == 2


class TestUnilateralCloseAndDisputes:
    def test_honest_unilateral_close(self, channel, alice, bob):
        latest = channel.propose_update(alice, 100)
        channel.start_unilateral_close(latest, now_s=0.0)
        record = channel.finalize_close(now_s=StateChannel.DISPUTE_WINDOW_S + 1)
        assert record.final_balances[bob.address] == 600
        assert not record.cooperative

    def test_stale_state_fraud_punished_by_dispute(self, channel, alice, bob):
        stale = channel.latest  # version 0: alice still has everything
        channel.propose_update(alice, 400)
        fresh = channel.latest
        # Alice tries to close with the stale state...
        channel.start_unilateral_close(stale, now_s=0.0)
        # ...Bob disputes with the newer one inside the window.
        channel.dispute(fresh, now_s=10.0)
        record = channel.finalize_close(now_s=StateChannel.DISPUTE_WINDOW_S + 1)
        assert record.final_balances[bob.address] == 900
        assert record.disputed or record.final_version == fresh.version

    def test_dispute_after_window_rejected(self, channel, alice):
        stale = channel.latest
        channel.propose_update(alice, 400)
        fresh = channel.latest
        channel.start_unilateral_close(stale, now_s=0.0)
        with pytest.raises(ChainError):
            channel.dispute(fresh, now_s=StateChannel.DISPUTE_WINDOW_S + 5)

    def test_dispute_requires_newer_version(self, channel, alice):
        channel.propose_update(alice, 100)
        fresh = channel.latest
        channel.start_unilateral_close(fresh, now_s=0.0)
        with pytest.raises(ValidationError):
            channel.dispute(fresh, now_s=1.0)

    def test_finalize_before_window_rejected(self, channel):
        channel.start_unilateral_close(channel.latest, now_s=0.0)
        with pytest.raises(ChainError):
            channel.finalize_close(now_s=1.0)

    def test_unsigned_state_rejected(self, channel, alice, bob):
        forged = ChannelState(
            channel_id="chan-1",
            version=99,
            balances={alice.address: 0, bob.address: 1500},
        )
        with pytest.raises(CryptoError):
            channel.start_unilateral_close(forged, now_s=0.0)

    def test_capacity_violation_rejected(self, channel, alice, bob):
        inflated = ChannelState(
            channel_id="chan-1",
            version=1,
            balances={alice.address: 1000, bob.address: 10_000},
        )
        inflated = inflated.signed_by(alice, True).signed_by(bob, False)
        with pytest.raises(ValidationError):
            channel.start_unilateral_close(inflated, now_s=0.0)

    def test_wrong_channel_state_rejected(self, alice, bob):
        other = StateChannel("chan-2", alice, bob, 10, 10)
        mine = StateChannel("chan-1", alice, bob, 10, 10)
        with pytest.raises(ValidationError):
            mine.start_unilateral_close(other.latest, now_s=0.0)

    def test_no_updates_while_close_pending(self, channel, alice):
        channel.start_unilateral_close(channel.latest, now_s=0.0)
        with pytest.raises(ChainError):
            channel.propose_update(alice, 1)
