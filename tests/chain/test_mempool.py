"""Fee-market mempool unit tests: admission codes, RBF, eviction,
watermark shedding, rate limiting, commit hygiene, and the selection
perf-shape gate.

Admission and selection never verify signatures (nodes verify before
offering), so these tests build unsigned :class:`Transaction` objects
directly — cheap enough to fill pools with thousands of entries.
"""

import time

from repro.chain.mempool import (
    ACCEPTED,
    DUPLICATE,
    POOL_FULL,
    RATE_LIMITED,
    REPLACED,
    STALE_NONCE,
    UNDERPRICED,
    Mempool,
    MempoolConfig,
    RateLimiter,
    WatermarkTracker,
    effective_fee,
    fee_percentiles,
    rbf_threshold,
)
from repro.chain.transactions import TX_TRANSFER, Transaction
from repro.sim.metrics import MetricsRegistry


def tx(sender, nonce, fee=0, *, max_fee=None, priority=None, amount=1):
    """Unsigned transfer bidding ``fee`` (or explicit max/priority)."""
    return Transaction(
        sender=sender,
        nonce=nonce,
        kind=TX_TRANSFER,
        payload={"to": "sink", "amount": amount},
        max_fee_per_gas=fee if max_fee is None else max_fee,
        priority_fee_per_gas=fee if priority is None else priority,
    )


def no_watermark(**overrides):
    """Config with watermark shedding effectively disabled."""
    overrides.setdefault("high_watermark", 1.0)
    overrides.setdefault("low_watermark", 0.5)
    return MempoolConfig(**overrides)


class TestAdmissionCodes:
    def test_accept_then_duplicate(self):
        pool = Mempool()
        first = tx("a", 0, fee=1)
        assert pool.add(first).code == ACCEPTED
        dup = pool.add(first)
        assert dup.code == DUPLICATE and not dup

    def test_stale_nonce_rejected_at_door(self):
        pool = Mempool()
        result = pool.add(tx("a", 3, fee=1), account_nonce=5)
        assert result.code == STALE_NONCE
        assert len(pool) == 0

    def test_current_and_future_nonces_admitted(self):
        pool = Mempool()
        assert pool.add(tx("a", 5, fee=1), account_nonce=5)
        assert pool.add(tx("a", 9, fee=1), account_nonce=5)

    def test_static_floor_underpriced(self):
        pool = Mempool(config=MempoolConfig(min_fee_per_gas=10))
        result = pool.add(tx("a", 0, fee=9))
        assert result.code == UNDERPRICED
        assert result.fee_floor == 10

    def test_max_fee_below_base_fee_underpriced(self):
        pool = Mempool(config=MempoolConfig(base_fee_per_gas=100))
        result = pool.add(tx("a", 0, max_fee=99, priority=99))
        assert result.code == UNDERPRICED
        assert result.fee_floor == 100

    def test_effective_fee_capped_by_max(self):
        # EIP-1559 shape: bid = min(max_fee, base_fee + priority).
        assert effective_fee(tx("a", 0, max_fee=12, priority=50), 10) == 12
        assert effective_fee(tx("a", 0, max_fee=100, priority=5), 10) == 15


class TestReplaceByFee:
    def test_bump_threshold(self):
        assert rbf_threshold(100, 10) == 110
        assert rbf_threshold(0, 10) == 1  # bump is always at least one unit
        assert rbf_threshold(5, 10) == 6

    def test_replacement_swaps_in_place(self):
        pool = Mempool()
        old = tx("a", 0, fee=100)
        new = tx("a", 0, fee=110, amount=2)
        pool.add(old)
        result = pool.add(new)
        assert result.code == REPLACED
        assert result.replaced_tx_id == old.tx_id
        assert old.tx_id not in pool and new.tx_id in pool
        assert len(pool) == 1

    def test_insufficient_bump_underpriced_with_floor(self):
        pool = Mempool()
        pool.add(tx("a", 0, fee=100))
        result = pool.add(tx("a", 0, fee=105, amount=2))
        assert result.code == UNDERPRICED
        assert result.fee_floor == 110

    def test_zero_fee_slot_needs_any_bump(self):
        pool = Mempool()
        pool.add(tx("a", 0, fee=0))
        assert pool.add(tx("a", 0, fee=0, amount=2)).code == UNDERPRICED
        assert pool.add(tx("a", 0, fee=1, amount=3)).code == REPLACED


class TestEviction:
    def test_cheapest_tail_evicted_for_better_bid(self):
        pool = Mempool(config=no_watermark(max_size=3))
        cheap = tx("a", 0, fee=1)
        pool.add(cheap)
        pool.add(tx("b", 0, fee=5))
        pool.add(tx("c", 0, fee=7))
        result = pool.add(tx("d", 0, fee=9))
        assert result.code == ACCEPTED
        assert cheap.tx_id not in pool
        assert len(pool) == 3

    def test_full_pool_refuses_non_outbidding_tx(self):
        pool = Mempool(config=no_watermark(max_size=2))
        pool.add(tx("a", 0, fee=4))
        pool.add(tx("b", 0, fee=6))
        result = pool.add(tx("c", 0, fee=4))
        assert result.code == POOL_FULL
        assert result.fee_floor == 5  # outbid the cheapest resident
        assert len(pool) == 2

    def test_eviction_prefers_sender_tails(self):
        # A sender's lower nonces are never evicted from under higher
        # ones: only the highest pooled nonce per sender is a candidate,
        # so eviction can never open a same-sender nonce gap.
        pool = Mempool(config=no_watermark(max_size=3))
        pool.add(tx("a", 0, fee=1))
        pool.add(tx("a", 1, fee=9))
        pool.add(tx("b", 0, fee=5))
        result = pool.add(tx("c", 0, fee=8))
        assert result.code == ACCEPTED
        # Victim is b/0 (cheapest tail, fee 5) — NOT a/0 (fee 1, shielded
        # because a/1 sits above it).
        assert pool.get(tx("b", 0, fee=5).tx_id) is None
        assert tx("a", 0, fee=1).tx_id in pool

    def test_age_expiry(self):
        clock = {"now": 0.0}
        pool = Mempool(
            config=no_watermark(max_size=10, max_age_s=5.0),
            time_source=lambda: clock["now"],
        )
        stale = tx("a", 0, fee=1)
        pool.add(stale)
        clock["now"] = 6.0
        pool.add(tx("b", 0, fee=1))
        assert stale.tx_id not in pool
        assert len(pool) == 1

    def test_age_expiry_purges_stranded_successors(self):
        # Aging out a mid-sequence nonce must not leave unexecutable
        # higher nonces squatting in the pool (tail-only invariant).
        clock = {"now": 0.0}
        pool = Mempool(
            config=no_watermark(max_size=10, max_age_s=5.0),
            time_source=lambda: clock["now"],
        )
        old = tx("a", 0, fee=1)
        pool.add(old)
        clock["now"] = 3.0
        fresh = [tx("a", 1, fee=1), tx("a", 2, fee=1)]
        for t in fresh:
            pool.add(t)
        bystander = tx("b", 0, fee=1)
        pool.add(bystander)
        clock["now"] = 6.0  # only a/0 is past max_age
        pool.add(tx("c", 0, fee=1))
        assert old.tx_id not in pool
        for t in fresh:  # stranded successors went with it
            assert t.tx_id not in pool
        assert bystander.tx_id in pool
        assert len(pool) == 2

    def test_pool_never_exceeds_capacity_under_pressure(self):
        pool = Mempool(config=no_watermark(max_size=16))
        for i in range(200):
            pool.add(tx(f"s{i}", 0, fee=i))
            assert len(pool) <= 16
        assert pool.max_depth_seen <= 16
        # Survivors are the best bids.
        fees = sorted(entry.fee for entry in pool._entries.values())
        assert fees == list(range(184, 200))


class TestWatermarks:
    def test_tracker_hysteresis(self):
        tracker = WatermarkTracker(high=0.9, low=0.5, capacity=100)
        assert tracker.high_depth == 90 and tracker.low_depth == 50
        assert not tracker.update(89)
        assert tracker.update(90)
        assert tracker.update(60)   # still shedding above low
        assert not tracker.update(49)
        assert tracker.flips == 1   # counts engagements, not state changes
        assert tracker.update(95)
        assert tracker.flips == 2

    def test_shedding_refuses_cheap_bids(self):
        config = MempoolConfig(max_size=100, high_watermark=0.5, low_watermark=0.2)
        pool = Mempool(config=config)
        for i in range(50):
            pool.add(tx(f"s{i}", 0, fee=10))
        assert pool.shedding
        refused = pool.add(tx("cheap", 0, fee=0))
        assert refused.code == POOL_FULL
        assert refused.reason == "shedding"
        assert refused.fee_floor is not None and refused.fee_floor >= 1
        # A bid at the shed floor still gets in (pool is not at capacity).
        assert pool.add(tx("payer", 0, fee=refused.fee_floor)).code == ACCEPTED

    def test_tiny_capacity_low_depth_clamped_so_shedding_can_clear(self):
        # low * capacity truncates to 0 for max_size=1; without the
        # clamp, shedding could never clear (depth < 0 is unreachable).
        tracker = WatermarkTracker(high=1.0, low=0.75, capacity=1)
        assert tracker.low_depth == 1
        assert tracker.update(1)    # shedding engages at capacity
        assert not tracker.update(0)  # and clears once the pool empties

    def test_shedding_clears_below_low_watermark(self):
        config = MempoolConfig(max_size=100, high_watermark=0.5, low_watermark=0.2)
        pool = Mempool(config=config)
        admitted = [tx(f"s{i}", 0, fee=10) for i in range(50)]
        for t in admitted:
            pool.add(t)
        assert pool.shedding
        pool.remove_all([t.tx_id for t in admitted[:40]])
        assert not pool.shedding
        assert pool.add(tx("cheap", 0, fee=0)).code == ACCEPTED


class TestRateLimiter:
    def test_bucket_refills(self):
        limiter = RateLimiter(rate=1.0, burst=2)
        assert limiter.allow("a", 0.0)
        assert limiter.allow("a", 0.0)
        assert not limiter.allow("a", 0.0)
        assert limiter.allow("a", 1.0)  # one token back after one second

    def test_pool_rate_limits_per_sender(self):
        clock = {"now": 0.0}
        config = no_watermark(
            max_size=1000, rate_limit_rate=1.0, rate_limit_burst=3
        )
        pool = Mempool(config=config, time_source=lambda: clock["now"])
        codes = [pool.add(tx("spammer", n, fee=1)).code for n in range(5)]
        assert codes == [ACCEPTED] * 3 + [RATE_LIMITED] * 2
        # Other senders are unaffected.
        assert pool.add(tx("payer", 0, fee=1)).code == ACCEPTED
        clock["now"] = 2.0
        assert pool.add(tx("spammer", 3, fee=1)).code == ACCEPTED

    def test_rejected_bids_do_not_burn_rate_limit_tokens(self):
        # The limiter runs after the fee/capacity checks: a bid refused
        # as underpriced, POOL_FULL, or an insufficient RBF bump must
        # not consume the sender's admission budget.
        config = no_watermark(
            max_size=1,
            min_fee_per_gas=5,
            rate_limit_rate=0.001,
            rate_limit_burst=1,
        )
        pool = Mempool(config=config, time_source=lambda: 0.0)
        assert pool.add(tx("a", 0, fee=1)).code == UNDERPRICED
        assert pool.add(tx("b", 0, fee=10)).code == ACCEPTED  # b's token spent
        assert pool.add(tx("a", 0, fee=10)).code == POOL_FULL  # can't outbid
        assert pool.add(tx("b", 0, fee=10, amount=2)).code == UNDERPRICED  # RBF bump
        # None of the refusals burned "a"'s single token: a winning bid
        # still gets in (evicting b's resident).
        assert pool.add(tx("a", 0, fee=20)).code == ACCEPTED
        # Admission DID spend the token: "a"'s next otherwise-valid RBF
        # bump is rate limited, without mutating the pool.
        bump = pool.add(tx("a", 0, fee=40, amount=2))
        assert bump.code == RATE_LIMITED
        assert tx("a", 0, fee=20).tx_id in pool and len(pool) == 1


class TestCommitHygiene:
    def test_commit_removes_included_and_purges_stale(self):
        pool = Mempool()
        included = tx("a", 0, fee=1)
        stale = tx("a", 1, fee=1)
        live = tx("a", 2, fee=1)
        other = tx("b", 0, fee=1)
        for t in (included, stale, live, other):
            pool.add(t)
        # Block committed a/0 and (elsewhere) a/1: account nonce is now 2.
        purged = pool.commit([included.tx_id], {"a": 2})
        assert purged == 1
        assert included.tx_id not in pool
        assert stale.tx_id not in pool
        assert live.tx_id in pool and other.tx_id in pool

    def test_stale_purge_counted(self):
        metrics = MetricsRegistry()
        pool = Mempool(metrics=metrics, scope="n0")
        pool.add(tx("a", 0, fee=1))
        pool.add(tx("a", 1, fee=1))
        pool.commit([], {"a": 2})
        assert metrics.counter("mempool_stale_purged", scope="n0") == 2
        assert len(pool) == 0


class TestSelection:
    def test_highest_bid_first_fifo_ties(self):
        pool = Mempool()
        order = [
            tx("a", 0, fee=5),
            tx("b", 0, fee=9),
            tx("c", 0, fee=5),
        ]
        for t in order:
            pool.add(t)
        ids = [t.tx_id for t in pool.select(10)]
        assert ids == [order[1].tx_id, order[0].tx_id, order[2].tx_id]

    def test_zero_fee_pool_selects_in_arrival_order(self):
        # Back-compat determinism: a free workload is exactly old FIFO.
        pool = Mempool()
        order = [tx(f"s{i}", 0, fee=0) for i in range(8)]
        for t in order:
            pool.add(t)
        assert [t.tx_id for t in pool.select(8)] == [t.tx_id for t in order]

    def test_sender_nonces_stay_contiguous(self):
        pool = Mempool()
        pool.add(tx("a", 0, fee=1))
        pool.add(tx("a", 1, fee=100))  # rich but gated behind nonce 0
        pool.add(tx("b", 0, fee=50))
        picked = [(t.sender, t.nonce) for t in pool.select(10)]
        assert picked == [("b", 0), ("a", 0), ("a", 1)]

    def test_callable_nonce_source_skips_gapped_sender(self):
        pool = Mempool()
        pool.add(tx("a", 2, fee=9))
        pool.add(tx("b", 0, fee=1))
        picked = pool.select(10, nonces=lambda sender: 0)
        assert [(t.sender, t.nonce) for t in picked] == [("b", 0)]
        picked = pool.select(10, nonces={"a": 2, "b": 0})
        assert [(t.sender, t.nonce) for t in picked] == [("a", 2), ("b", 0)]

    def test_selection_near_linear_scaling(self):
        # Perf-shape gate for the old O(n^2) deferred-queue scan: an 8x
        # pool may cost more than 8x a 1000-entry select, but nowhere
        # near the 64x a quadratic scan would show.  The generous bound
        # keeps this stable on loaded CI machines.
        def build(size):
            pool = Mempool(config=no_watermark(max_size=size * 2))
            for i in range(size):
                pool.add(tx(f"s{i % (size // 4)}", i // (size // 4), fee=i % 97))
            return pool

        def measure(pool, limit):
            best = float("inf")
            for _ in range(3):
                start = time.perf_counter()
                selected = pool.select(limit, nonces=lambda sender: 0)
                best = min(best, time.perf_counter() - start)
            assert len(selected) == limit
            return best

        small_pool, big_pool = build(1000), build(8000)
        small = measure(small_pool, 1000)
        big = measure(big_pool, 8000)
        ratio = big / max(small, 1e-9)
        assert ratio < 32, f"selection scaled superlinearly: {ratio:.1f}x for 8x size"


class TestIntrospection:
    def test_fee_hint_tracks_pressure(self):
        pool = Mempool(config=no_watermark(max_size=2, min_fee_per_gas=3))
        assert pool.fee_hint() == 3
        pool.add(tx("a", 0, fee=4))
        pool.add(tx("b", 0, fee=6))
        assert pool.fee_hint() == 5  # outbid the cheapest resident

    def test_status_shape(self):
        pool = Mempool(config=no_watermark(max_size=10))
        for i in range(4):
            pool.add(tx(f"s{i}", 0, fee=i + 1))
        status = pool.status()
        assert status["depth"] == 4
        assert status["capacity"] == 10
        assert status["senders"] == 4
        assert status["shedding"] is False
        assert status["max_depth_seen"] == 4
        assert set(status["fee_percentiles"]) == {"p10", "p50", "p90"}

    def test_fee_percentiles(self):
        stats = fee_percentiles([1, 2, 3, 4, 5, 6, 7, 8, 9, 10])
        # Nearest-rank: quoted floors are fees that actually exist.
        assert stats["p10"] == 2
        assert stats["p50"] == 6
        assert stats["p90"] == 10
        assert fee_percentiles([]) == {"p10": 0, "p50": 0, "p90": 0}

    def test_admission_metrics_counted(self):
        metrics = MetricsRegistry()
        pool = Mempool(
            config=no_watermark(max_size=2, min_fee_per_gas=5),
            metrics=metrics,
            scope="n0",
        )
        pool.add(tx("a", 0, fee=5))
        pool.add(tx("a", 0, fee=5))      # duplicate
        pool.add(tx("b", 0, fee=1))      # underpriced
        pool.add(tx("a", 0, fee=6, amount=2))  # replaced
        assert metrics.counter("mempool_admitted", scope="n0") == 1
        assert metrics.counter("mempool_rejected_duplicate", scope="n0") == 1
        assert metrics.counter("mempool_rejected_underpriced", scope="n0") == 1
        assert metrics.counter("mempool_replaced", scope="n0") == 1
