"""Property tests for the versioned state layer.

The journaled :class:`StateDB` is checked against a *model*: a plain dict
with full-copy snapshots (the semantics of the historical implementation).
Any divergence between the journal/overlay machinery and the model under a
randomized operation sequence is a consensus bug.
"""

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.state import StateDB, bucketed_root_of_dict
from repro.common.hashing import hash_value

_KEYS = st.text(alphabet="abcxyz/", min_size=1, max_size=6)
_VALUES = st.one_of(
    st.integers(min_value=-(10**6), max_value=10**6),
    st.text(alphabet="qrstuv", max_size=6),
    st.lists(st.integers(min_value=0, max_value=9), max_size=3),
    st.dictionaries(
        st.text(alphabet="mn", min_size=1, max_size=2),
        st.integers(min_value=0, max_value=99),
        max_size=2,
    ),
)

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("set"), _KEYS, _VALUES),
        st.tuples(st.just("delete"), _KEYS, st.none()),
        st.tuples(st.just("snapshot"), st.none(), st.none()),
        st.tuples(st.just("commit"), st.none(), st.none()),
        st.tuples(st.just("rollback"), st.none(), st.none()),
    ),
    max_size=40,
)


class _ModelState:
    """Reference semantics: full-copy snapshots over a plain dict."""

    def __init__(self, data=None):
        self.data = dict(data or {})
        self.snapshots = []

    def apply(self, op, key, value):
        if op == "set":
            self.data[key] = copy.deepcopy(value)
        elif op == "delete":
            self.data.pop(key, None)
        elif op == "snapshot":
            self.snapshots.append(copy.deepcopy(self.data))
        elif op == "commit":
            if self.snapshots:
                self.snapshots.pop()
            else:
                return False
        elif op == "rollback":
            if self.snapshots:
                self.data = self.snapshots.pop()
            else:
                return False
        return True


def _apply_to_state(state, op, key, value):
    if op == "set":
        state.set(key, value)
    elif op == "delete":
        state.delete(key)
    elif op == "snapshot":
        state.snapshot()
    elif op in ("commit", "rollback"):
        if state.journal_depth == 0:
            return False
        getattr(state, op)()
    return True


class TestJournalProperties:
    @settings(max_examples=60)
    @given(
        st.dictionaries(_KEYS, _VALUES, max_size=8),
        st.lists(
            st.one_of(
                st.tuples(st.just("set"), _KEYS, _VALUES),
                st.tuples(st.just("delete"), _KEYS, st.none()),
            ),
            max_size=20,
        ),
    )
    def test_rollback_round_trip_restores_exact_state(self, initial, writes):
        state = StateDB(dict(initial))
        before_dict = state.to_dict()
        before_root = state.state_root()
        state.snapshot()
        for op, key, value in writes:
            _apply_to_state(state, op, key, value)
        state.rollback()
        assert state.to_dict() == before_dict
        assert state.state_root() == before_root

    @settings(max_examples=60)
    @given(_OPS)
    def test_nested_interleavings_match_full_copy_model(self, ops):
        state = StateDB()
        model = _ModelState()
        for op, key, value in ops:
            if model.apply(op, key, value):
                _apply_to_state(state, op, key, value)
        assert state.to_dict() == model.data
        assert state.state_root() == hash_value(model.data, allow_float=False)

    @settings(max_examples=40)
    @given(_OPS, _OPS)
    def test_overlay_matches_model_and_never_touches_parent(self, base_ops, fork_ops):
        state = StateDB()
        model = _ModelState()
        for op, key, value in base_ops:
            if model.apply(op, key, value):
                _apply_to_state(state, op, key, value)
        while state.journal_depth:
            state.commit()
        model.snapshots = []
        parent_dict = state.to_dict()
        overlay = state.fork()
        fork_model = _ModelState(copy.deepcopy(model.data))
        for op, key, value in fork_ops:
            if fork_model.apply(op, key, value):
                _apply_to_state(overlay, op, key, value)
        assert overlay.to_dict() == fork_model.data
        assert overlay.state_root() == hash_value(fork_model.data, allow_float=False)
        assert state.to_dict() == parent_dict


class TestRootEquivalenceProperties:
    @settings(max_examples=60)
    @given(_OPS)
    def test_incremental_roots_match_recomputation(self, ops):
        state = StateDB()
        for op, key, value in ops:
            if op in ("commit", "rollback") and state.journal_depth == 0:
                continue
            _apply_to_state(state, op, key, value)
            # Interleave root queries with writes so cache invalidation is
            # exercised mid-sequence, not just at the end.
            if op == "set" and isinstance(value, int) and value % 5 == 0:
                assert state.incremental_root() == state.recompute_incremental_root()
        while state.journal_depth:
            state.commit()
        effective = state.to_dict()
        assert state.state_root() == hash_value(effective, allow_float=False)
        assert state.incremental_root() == state.recompute_incremental_root()
        assert state.incremental_root() == bucketed_root_of_dict(effective)

    @settings(max_examples=30)
    @given(
        st.dictionaries(_KEYS, _VALUES, max_size=10),
        st.lists(
            st.one_of(
                st.tuples(st.just("set"), _KEYS, _VALUES),
                st.tuples(st.just("delete"), _KEYS, st.none()),
            ),
            max_size=15,
        ),
    )
    def test_overlay_incremental_root_matches_recomputation(self, initial, diff):
        base = StateDB(dict(initial))
        base.incremental_root()  # warm base bucket caches first
        overlay = base.fork()
        for op, key, value in diff:
            _apply_to_state(overlay, op, key, value)
        assert overlay.incremental_root() == overlay.recompute_incremental_root()
        assert overlay.state_root() == hash_value(
            overlay.to_dict(), allow_float=False
        )
