"""Property tests: parallel block execution == serial, on random blocks.

Bare ``@given`` (no explicit ``@settings``) so the ``ci-stress`` hypothesis
profile (see ``tests/conftest.py`` and the scheduled CI job) deepens these
without code changes.
"""

import pytest
from hypothesis import given, strategies as st

from repro.chain.executor import ExecutionContext
from repro.chain.scheduler import BlockScheduler, derive_tx_access, plan_waves
from repro.chain.state import StateDB
from repro.chain.transactions import make_call, make_deploy, make_transfer
from repro.common.signatures import KeyPair
from repro.contracts.library import COUNTER_SOURCE
from repro.contracts.runtime import ContractExecutor

from test_scheduler import LEDGER_SOURCE

CTX = ExecutionContext(block_height=3, timestamp_ms=99, node_name="prop")
SENDERS = [KeyPair.generate(f"prop-sender-{i}") for i in range(4)]
USERS = ["ann", "bo", "cy", "di"]

_REFERENCE_EXECUTOR = ContractExecutor()  # warm compile cache across examples


@pytest.fixture(scope="module")
def scheduler():
    with BlockScheduler(ContractExecutor(), backend="thread") as sched:
        yield sched


def fresh_ledger():
    state = StateDB()
    for keypair in SENDERS:
        state.credit(keypair.address, 10_000)
    deployer = KeyPair.generate("prop-deployer")
    state.credit(deployer.address, 10_000)
    receipt = _REFERENCE_EXECUTOR.apply(
        state, make_deploy(deployer, "ledger", LEDGER_SOURCE, nonce=0), CTX
    )
    assert receipt.success, receipt.error
    return state, receipt.output


def build_block(contract_id, ops):
    """Turn abstract ops into txs with per-sender nonce bookkeeping."""
    nonces = {keypair.address: 0 for keypair in SENDERS}
    txs = []
    for kind, sender_i, a, b, amount in ops:
        keypair = SENDERS[sender_i]
        nonce = nonces[keypair.address]
        nonces[keypair.address] += 1
        if kind == "credit":
            txs.append(
                make_call(keypair, contract_id, "credit",
                          {"user": USERS[a], "amount": amount}, nonce=nonce)
            )
        elif kind == "move":
            txs.append(
                make_call(keypair, contract_id, "move",
                          {"src": USERS[a], "dst": USERS[b],
                           "amount": amount}, nonce=nonce)
            )
        elif kind == "transfer":
            txs.append(
                make_transfer(keypair, SENDERS[b].address, amount,
                              nonce=nonce)
            )
        elif kind == "scan":
            txs.append(
                make_call(keypair, contract_id, "audit", nonce=nonce)
            )
        else:  # deploy: an unknown-footprint barrier mid-block
            txs.append(
                make_deploy(keypair, f"c{nonce}", COUNTER_SOURCE, nonce=nonce)
            )
    return txs


OPS = st.lists(
    st.tuples(
        st.sampled_from(["credit", "move", "transfer", "scan", "deploy"]),
        st.integers(0, len(SENDERS) - 1),
        st.integers(0, len(USERS) - 1),
        st.integers(0, len(USERS) - 1),
        st.integers(1, 40),
    ),
    min_size=1,
    max_size=20,
)


@given(ops=OPS)
def test_parallel_block_equals_serial(scheduler, ops):
    state, contract_id = fresh_ledger()
    txs = build_block(contract_id, ops)

    serial = state.fork()
    serial_receipts = [
        _REFERENCE_EXECUTOR.apply(serial, tx, CTX) for tx in txs
    ]
    serial_root = serial.state_root()
    serial.discard()

    overlay, receipts = scheduler.execute_block(state, txs, CTX)
    assert overlay.state_root() == serial_root
    assert receipts == serial_receipts
    overlay.discard()


@given(ops=OPS)
def test_waves_partition_and_order_indexes(ops):
    state, contract_id = fresh_ledger()
    txs = build_block(contract_id, ops)
    accesses = [derive_tx_access(state, tx) for tx in txs]
    waves = plan_waves(accesses)
    flat = [index for wave in waves for index in wave]
    assert sorted(flat) == list(range(len(txs)))  # exact partition
    for wave in waves:
        assert wave == sorted(wave)  # canonical commit order kept
    for wave in waves:
        for index in wave:
            if accesses[index].unknown:
                assert wave == [index]  # barriers are singletons
