"""Gas-estimator tests: soundness (estimate >= metered usage) and bounds."""

import ast
import math

import pytest

from repro.analysis.gasmodel import (
    GasEstimator,
    estimate_contract_gas,
    format_gas,
    static_loop_bound,
)
from repro.contracts import gas as G
from repro.contracts import library
from repro.contracts.vm import GasMeter, Interpreter, compile_contract


def estimate(source):
    tree = ast.parse(source)
    functions = {
        node.name: node for node in tree.body if isinstance(node, ast.FunctionDef)
    }
    return estimate_contract_gas(functions)


def metered_run(source, method, args=None, hosts=None):
    contract = compile_contract(source)
    meter = GasMeter(100_000_000)
    interpreter = Interpreter(contract, hosts or {}, meter)
    result = interpreter.call(method, args or {})
    return result, meter


class TestLoopBounds:
    @pytest.mark.parametrize(
        "loop_source,expected",
        [
            ("for i in range(10):\n    pass", 10),
            ("for i in range(2, 12):\n    pass", 10),
            ("for i in range(0, 10, 3):\n    pass", 4),
            ("for i in range(10, 0, -2):\n    pass", 5),
            ("for i in [1, 2, 3]:\n    pass", 3),
            ("for c in 'abcd':\n    pass", 4),
            ("while False:\n    pass", 0),
        ],
    )
    def test_static_bounds(self, loop_source, expected):
        stmt = ast.parse(loop_source).body[0]
        assert static_loop_bound(stmt) == expected

    def test_dynamic_loops_use_vm_ceiling(self):
        for loop_source in (
            "for i in range(n):\n    pass",
            "for item in items:\n    pass",
            "while n > 0:\n    pass",
        ):
            stmt = ast.parse(loop_source).body[0]
            assert static_loop_bound(stmt) == G.MAX_ITERATIONS_PER_LOOP


class TestSoundness:
    """The estimate must never be below what the GasMeter observes."""

    def test_straight_line_function(self):
        source = "def f(a, b):\n    c = a + b\n    return c * 2\n"
        _, meter = metered_run(source, "f", {"a": 3, "b": 4})
        assert estimate(source)["f"] >= meter.used

    def test_static_loop(self):
        source = (
            "def f():\n"
            "    total = 0\n"
            "    for i in range(50):\n"
            "        total = total + i\n"
            "    return total\n"
        )
        _, meter = metered_run(source, "f")
        assert estimate(source)["f"] >= meter.used

    def test_branches_use_max(self):
        source = (
            "def f(flag):\n"
            "    if flag:\n"
            "        return 1\n"
            "    x = 1 + 2 + 3 + 4\n"
            "    return x\n"
        )
        est = estimate(source)["f"]
        for flag in (True, False):
            _, meter = metered_run(source, "f", {"flag": flag})
            assert est >= meter.used

    def test_internal_calls_memoized_and_counted(self):
        source = (
            "def _helper(x):\n"
            "    return x * 2\n"
            "def f(a):\n"
            "    return _helper(a) + _helper(a + 1)\n"
        )
        _, meter = metered_run(source, "f", {"a": 5})
        tree = ast.parse(source)
        functions = {
            n.name: n for n in tree.body if isinstance(n, ast.FunctionDef)
        }
        estimator = GasEstimator(functions)
        assert estimator.estimate("f") >= meter.used

    def test_library_counter_contract(self):
        storage = {}
        hosts = {
            "storage_get": lambda k, d=None: storage.get(k, d),
            "storage_set": lambda k, v: storage.__setitem__(k, v),
            "emit": lambda *a, **kw: None,
            "require": lambda cond, msg="": None,
            "sender": lambda: "addr",
        }
        est = estimate(library.COUNTER_SOURCE)
        _, meter = metered_run(
            library.COUNTER_SOURCE, "increment", {"by": 3}, hosts=hosts
        )
        assert est["increment"] >= meter.used

    def test_recursion_is_unbounded(self):
        source = "def f(n):\n    return f(n - 1)\n"
        assert math.isinf(estimate(source)["f"])

    def test_private_helpers_excluded_from_entrypoints(self):
        source = "def _h():\n    return 1\ndef f():\n    return _h()\n"
        assert set(estimate(source)) == {"f"}


def test_format_gas():
    assert format_gas(1234567) == "1,234,567"
    assert format_gas(math.inf) == "unbounded"
