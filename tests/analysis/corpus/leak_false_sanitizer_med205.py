"""Corpus: a *declared* sanitizer that provably passes the rows through
unchanged — re-identification risk (MED205)."""


def anonymize_rows(rows):
    out = []
    for row in rows:
        out.append(row)
    return out


def export_rows(store, node, dataset_id):
    rows = store.get_records(dataset_id)
    node.set_slot("export/" + dataset_id, anonymize_rows(rows))
