"""Corpus twin: the helper persists only a Merkle commitment — clean."""


def persist(node, key, payload):
    node.set_slot(key, payload)


def archive_commitment(store, node, hashing, dataset_id):
    cohort = store.get_records(dataset_id)
    persist(node, "archive/" + dataset_id, hashing.merkle_root(cohort))
