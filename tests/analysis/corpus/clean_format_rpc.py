"""Corpus twin: the RPC reply interpolates only an aggregate — clean."""


def build(registry, store):
    def site_preview(params):
        records = store.get_records(params["dataset_id"])
        return {"preview": f"{len(records)} records available"}

    registry.register("site.preview", site_preview)
