"""Corpus: a patient record interpolated into an RPC reply (MED202)."""


def build(registry, store):
    def site_preview(params):
        record = store.get_records(params["dataset_id"])[0]
        return {"preview": f"first record: {record}"}

    registry.register("site.preview", site_preview)
