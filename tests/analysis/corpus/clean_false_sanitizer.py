"""Corpus twin: the declared sanitizer provably keeps only pseudonymous
identifiers and aggregates — clean."""


def anonymize_rows(rows):
    return [{"patient_id": row["patient_id"], "fields": len(row)} for row in rows]


def export_rows(store, node, dataset_id):
    rows = store.get_records(dataset_id)
    node.set_slot("export/" + dataset_id, anonymize_rows(rows))
