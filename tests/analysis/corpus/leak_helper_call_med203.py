"""Corpus: records escape through an interprocedural helper (MED203)."""


def persist(node, key, payload):
    node.set_slot(key, payload)


def archive_cohort(store, node, dataset_id):
    cohort = store.get_records(dataset_id)
    persist(node, "archive/" + dataset_id, cohort)
