"""Corpus: raw patient records written straight into chain state (MED201)."""


def publish_cohort(store, node, dataset_id):
    records = store.get_records(dataset_id)
    node.set_slot("cohort/" + dataset_id, records)
