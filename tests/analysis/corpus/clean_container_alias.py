"""Corpus twin: the aliased container accumulates only aggregates — clean."""


def stage_counts(store, node, dataset_id):
    batch = {"dataset_id": dataset_id, "counts": []}
    counts = batch["counts"]
    for record in store.get_records(dataset_id):
        counts.append(len(record))
    node.set_slot("batch/" + dataset_id, batch)
