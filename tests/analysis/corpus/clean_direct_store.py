"""Corpus twin: only the record *count* crosses the boundary — clean."""


def publish_cohort_size(store, node, dataset_id):
    records = store.get_records(dataset_id)
    node.set_slot("cohort-size/" + dataset_id, len(records))
