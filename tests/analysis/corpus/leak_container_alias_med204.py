"""Corpus: records leak via container aliasing — mutation through one name
escapes through another bound to the same object (MED204)."""


def stage_batch(store, node, dataset_id):
    batch = {"dataset_id": dataset_id, "rows": []}
    rows = batch["rows"]
    for record in store.get_records(dataset_id):
        rows.append(record)
    node.set_slot("batch/" + dataset_id, batch)
