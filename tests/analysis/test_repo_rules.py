"""Repo convention lint tests (MED101/102/103) on synthetic modules."""

import os

from repro.analysis import analyze_file
from repro.contracts.runtime import HOST_FUNCTION_NAMES


def write_module(tmp_path, package_relpath, source):
    """Materialize ``repro/<package_relpath>`` under tmp_path."""
    path = tmp_path / "repro" / package_relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return str(path)


class TestBlockingCallInAsync:
    def test_time_sleep_in_async_def_flagged(self, tmp_path):
        path = write_module(
            tmp_path,
            "rpc/server.py",
            "import time\n"
            "async def handle(request):\n"
            "    time.sleep(1)\n"
            "    return request\n",
        )
        findings = analyze_file(path)
        assert {f.code for f in findings} == {"MED101"}
        assert findings[0].symbol == "handle"

    def test_asyncio_sleep_allowed(self, tmp_path):
        path = write_module(
            tmp_path,
            "rpc/server.py",
            "import asyncio\n"
            "async def handle(request):\n"
            "    await asyncio.sleep(1)\n"
            "    return request\n",
        )
        assert analyze_file(path) == []

    def test_sync_function_may_sleep(self, tmp_path):
        path = write_module(
            tmp_path,
            "tools/poll.py",
            "import time\n"
            "def wait():\n"
            "    time.sleep(1)\n",
        )
        assert analyze_file(path) == []


class TestNonCanonicalJson:
    def test_json_dumps_in_chain_path_flagged(self, tmp_path):
        path = write_module(
            tmp_path,
            "chain/encode.py",
            "import json\n"
            "def frame(payload):\n"
            "    return json.dumps(payload)\n",
        )
        findings = analyze_file(path)
        assert {f.code for f in findings} == {"MED102"}

    def test_json_dumps_outside_consensus_paths_allowed(self, tmp_path):
        path = write_module(
            tmp_path,
            "obs/export.py",
            "import json\n"
            "def dump(payload):\n"
            "    return json.dumps(payload)\n",
        )
        assert analyze_file(path) == []

    def test_aliased_import_still_resolved(self, tmp_path):
        path = write_module(
            tmp_path,
            "consensus/wire.py",
            "import json as j\n"
            "def frame(payload):\n"
            "    return j.dumps(payload)\n",
        )
        findings = analyze_file(path)
        assert {f.code for f in findings} == {"MED102"}


class TestWallClock:
    def test_time_time_outside_clock_flagged(self, tmp_path):
        path = write_module(
            tmp_path,
            "core/scheduler.py",
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n",
        )
        findings = analyze_file(path)
        assert {f.code for f in findings} == {"MED103"}

    def test_datetime_now_via_from_import_flagged(self, tmp_path):
        path = write_module(
            tmp_path,
            "trial/monitor2.py",
            "from datetime import datetime\n"
            "def stamp():\n"
            "    return datetime.now()\n",
        )
        findings = analyze_file(path)
        assert {f.code for f in findings} == {"MED103"}

    def test_clock_module_and_obs_layer_exempt(self, tmp_path):
        for relpath in ("common/clock.py", "obs/tracer2.py"):
            path = write_module(
                tmp_path,
                relpath,
                "import time\n"
                "def stamp():\n"
                "    return time.time()\n",
            )
            assert analyze_file(path) == []

    def test_monotonic_clocks_allowed_everywhere(self, tmp_path):
        path = write_module(
            tmp_path,
            "core/scheduler.py",
            "import time\n"
            "def tick():\n"
            "    return time.perf_counter() + time.monotonic()\n",
        )
        assert analyze_file(path) == []

    def test_files_outside_repro_package_ignored(self, tmp_path):
        path = tmp_path / "script.py"
        path.write_text("import time\ndef stamp():\n    return time.time()\n")
        assert analyze_file(str(path)) == []


class TestNoqaOnRepoRules:
    def test_targeted_noqa_suppresses_repo_finding(self, tmp_path):
        path = write_module(
            tmp_path,
            "core/scheduler.py",
            "import time\n"
            "def stamp():\n"
            "    return time.time()  # repro: noqa[MED103]\n",
        )
        assert analyze_file(path) == []


class TestHostFunctionContract:
    def test_host_function_names_match_bridge(self):
        """HOST_FUNCTION_NAMES (used by MED006) must track HostBridge."""
        from repro.chain.executor import ExecutionContext
        from repro.chain.state import StateDB
        from repro.contracts.runtime import HostBridge
        from repro.contracts.vm import GasMeter

        bridge = HostBridge(
            state=StateDB(),
            contract_id="c-test",
            sender="addr",
            context=ExecutionContext(),
            meter=GasMeter(10_000),
            events=[],
        )
        assert set(bridge.functions()) == set(HOST_FUNCTION_NAMES)


class TestParseFailure:
    def test_unparseable_file_reports_med100(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def broken(:\n")
        findings = analyze_file(str(path))
        assert len(findings) == 1
        assert findings[0].code == "MED100"


def test_package_path_resolution():
    from repro.analysis.engine import _package_path

    assert _package_path("src/repro/chain/state.py") == "repro/chain/state.py"
    assert _package_path(os.path.join("a", "b", "repro", "rpc", "x.py")) == (
        "repro/rpc/x.py"
    )
    assert _package_path("scripts/tool.py") == "scripts/tool.py"
