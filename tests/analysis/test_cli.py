"""CLI tests: ``python -m repro.analysis`` exit codes and report formats."""

import json

from repro.analysis.cli import main

BAD_CONTRACT = "def f():\n    return 1.5\n"
CLEAN_CONTRACT = "def f(a, b):\n    return a + b\n"


class TestListRules:
    def test_catalog_printed(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "MED001" in out
        assert "MED103" in out


class TestContractMode:
    def test_bad_contract_fails_gate(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text(BAD_CONTRACT)
        assert main(["--contract", str(path)]) == 1
        assert "MED002" in capsys.readouterr().out

    def test_clean_contract_passes(self, tmp_path, capsys):
        path = tmp_path / "ok.py"
        path.write_text(CLEAN_CONTRACT)
        assert main(["--contract", str(path)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_missing_contract_file_is_usage_error(self, tmp_path):
        assert main(["--contract", str(tmp_path / "absent.py")]) == 2

    def test_max_gas_enables_ceiling(self, tmp_path):
        path = tmp_path / "heavy.py"
        path.write_text(
            "def f():\n"
            "    total = 0\n"
            "    for i in range(1000):\n"
            '        total = total + storage_get("k", 0)\n'
            "    return total\n"
        )
        assert main(["--contract", str(path)]) == 0
        assert main(["--contract", str(path), "--max-gas", "1000"]) == 1


class TestPathMode:
    def test_json_format_and_output_artifact(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "chain" / "wire.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import json\ndef f(p):\n    return json.dumps(p)\n")
        artifact = tmp_path / "findings.json"
        code = main(
            [str(tmp_path), "--format", "json", "--output", str(artifact)]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_analyzed"] == 1
        assert [f["code"] for f in payload["findings"]] == ["MED102"]
        on_disk = json.loads(artifact.read_text())
        assert on_disk == payload

    def test_clean_tree_exits_zero(self, tmp_path):
        clean = tmp_path / "mod.py"
        clean.write_text("def f():\n    return 1\n")
        assert main([str(tmp_path)]) == 0

    def test_fail_on_warning_threshold(self, tmp_path):
        host = tmp_path / "mod.py"
        # MED005 (storage alias) is warning severity.
        host.write_text(
            "C_SOURCE = '''\n"
            "def f(entry):\n"
            '    storage_set("a", entry)\n'
            '    storage_set("b", entry)\n'
            "    return 1\n"
            "'''\n"
        )
        assert main([str(tmp_path)]) == 0
        assert main([str(tmp_path), "--fail-on", "warning"]) == 1

    def test_no_embedded_skips_contract_audit(self, tmp_path):
        host = tmp_path / "mod.py"
        host.write_text("C_SOURCE = '''\ndef f():\n    return 1.5\n'''\n")
        assert main([str(tmp_path)]) == 1
        assert main([str(tmp_path), "--no-embedded"]) == 0


LEAKY_MODULE = (
    "def publish(store, node):\n"
    '    node.set_slot("k", store.get_records("d"))\n'
)


class TestTaintFlag:
    def test_taint_flag_enables_med2_for_modules(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(LEAKY_MODULE)
        assert main([str(tmp_path)]) == 0
        assert main([str(tmp_path), "--taint"]) == 1

    def test_taint_rules_listed(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("MED201", "MED202", "MED203", "MED204", "MED205"):
            assert code in out

    def test_contract_phi_leak_fails_without_flags(self, tmp_path, capsys):
        path = tmp_path / "leaky.py"
        path.write_text(
            "def admit(patient_id, record):\n"
            '    storage_set("r/" + patient_id, record)\n'
            "    return 1\n"
        )
        assert main(["--contract", str(path)]) == 1
        assert "MED201" in capsys.readouterr().out


class TestSarifFormat:
    def test_sarif_log_shape_and_code_flow(self, tmp_path, capsys):
        path = tmp_path / "mod.py"
        path.write_text(LEAKY_MODULE)
        artifact = tmp_path / "findings.sarif"
        code = main(
            [
                str(tmp_path),
                "--taint",
                "--format",
                "sarif",
                "--output",
                str(artifact),
            ]
        )
        assert code == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        (run,) = log["runs"]
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {"MED001", "MED102", "MED201"} <= rule_ids
        (result,) = run["results"]
        assert result["ruleId"] == "MED201"
        assert result["level"] == "error"
        flow = result["codeFlows"][0]["threadFlows"][0]["locations"]
        assert "[source]" in flow[0]["location"]["message"]["text"]
        assert "[sink]" in flow[-1]["location"]["message"]["text"]
        assert json.loads(artifact.read_text()) == log

    def test_clean_tree_sarif_has_no_results(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("def f():\n    return 1\n")
        assert main([str(tmp_path), "--format", "sarif"]) == 0
        log = json.loads(capsys.readouterr().out)
        assert log["runs"][0]["results"] == []


class TestBaseline:
    def test_baseline_suppresses_recorded_findings(self, tmp_path, capsys):
        path = tmp_path / "mod.py"
        path.write_text(LEAKY_MODULE)
        baseline = tmp_path / "baseline.json"
        assert (
            main(
                [
                    str(tmp_path),
                    "--taint",
                    "--write-baseline",
                    str(baseline),
                ]
            )
            == 0
        )
        assert "recorded 1 fingerprint" in capsys.readouterr().out
        # With the baseline, the recorded finding no longer fails the run.
        assert main([str(tmp_path), "--taint", "--baseline", str(baseline)]) == 0
        assert "suppressed by baseline" in capsys.readouterr().out

    def test_baseline_is_line_stable_but_not_symbol_stable(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(LEAKY_MODULE)
        baseline = tmp_path / "baseline.json"
        main([str(tmp_path), "--taint", "--write-baseline", str(baseline)])
        # Shifting the finding to a different line keeps it suppressed...
        path.write_text("# a comment shifting every line\n" + LEAKY_MODULE)
        assert main([str(tmp_path), "--taint", "--baseline", str(baseline)]) == 0
        # ...but a new finding in a different symbol still fails the run.
        path.write_text(
            LEAKY_MODULE
            + "def publish_again(store, node):\n"
            '    node.set_slot("k2", store.get_records("d"))\n'
        )
        assert main([str(tmp_path), "--taint", "--baseline", str(baseline)]) == 1

    def test_unreadable_baseline_is_usage_error(self, tmp_path, capsys):
        path = tmp_path / "mod.py"
        path.write_text("def f():\n    return 1\n")
        code = main(
            [str(tmp_path), "--baseline", str(tmp_path / "absent.json")]
        )
        assert code == 2
        assert "cannot load baseline" in capsys.readouterr().err


class TestUsage:
    def test_no_inputs_is_usage_error(self, capsys):
        assert main([]) == 2
        assert "provide paths" in capsys.readouterr().err
