"""Contract-verifier tests: the known-bad corpus, noqa, and zero-FP audit.

The corpus holds one minimal bad snippet per rule; each must be flagged
with exactly its own code (no cross-rule noise), which is the acceptance
bar for the analyzer: findings precise enough to gate deployments on.
"""

import os

import pytest

from repro.analysis import analyze_contract_source, analyze_file, analyze_paths
from repro.analysis.findings import Severity
from repro.analysis.registry import all_rules
from repro.contracts import library

REPO_ROOT = os.path.normpath(os.path.join(os.path.dirname(__file__), "..", ".."))

#: One minimal known-bad snippet per contract rule.  Each fires exactly its
#: own code.  MED008 needs a gas ceiling and is parameterized separately.
BAD_CORPUS = {
    "MED001": "def f(x):\n    return x + time\n",
    "MED002": "def f():\n    return 1.5\n",
    "MED003": "def f(a, b):\n    return a / b\n",
    "MED004": "def f(n):\n    while True:\n        n = n + 1\n    return n\n",
    "MED005": (
        "def f(entry):\n"
        '    storage_set("a", entry)\n'
        '    storage_set("b", entry)\n'
        "    return 1\n"
    ),
    "MED006": "def f():\n    return helper(1)\n",
    "MED007": 'def f():\n    return 1\n    storage_set("k", 2)\n',
    "MED009": "def f(x):\n    return x.append\n",
    "MED010": "def f():\n    return unknown_var + 1\n",
}


class TestBadCorpus:
    @pytest.mark.parametrize("code", sorted(BAD_CORPUS))
    def test_snippet_flagged_with_exactly_its_code(self, code):
        findings = analyze_contract_source(BAD_CORPUS[code])
        assert {f.code for f in findings} == {code}

    def test_med008_gas_ceiling(self):
        source = (
            "def f():\n"
            "    total = 0\n"
            "    for i in range(100):\n"
            '        total = total + storage_get("k", 0)\n'
            "    return total\n"
        )
        findings = analyze_contract_source(source, max_gas=100)
        assert {f.code for f in findings} == {"MED008"}
        # Without a ceiling the rule stays silent.
        assert analyze_contract_source(source) == []

    def test_syntax_error_reported_as_med009(self):
        findings = analyze_contract_source("def f(:\n    return 1\n")
        assert len(findings) == 1
        assert findings[0].code == "MED009"
        assert findings[0].severity is Severity.ERROR

    def test_findings_carry_location_and_symbol(self):
        findings = analyze_contract_source(BAD_CORPUS["MED002"])
        (finding,) = findings
        assert finding.line == 2
        assert finding.symbol == "f"
        assert finding.severity is Severity.ERROR

    def test_storage_alias_cleared_by_rebinding(self):
        source = (
            "def f(entry):\n"
            '    storage_set("a", entry)\n'
            '    entry = storage_get("a")\n'
            '    storage_set("b", entry)\n'
            "    return 1\n"
        )
        assert analyze_contract_source(source) == []

    def test_bounded_while_not_flagged(self):
        source = (
            "def f(n):\n"
            "    while True:\n"
            "        n = n - 1\n"
            "        if n <= 0:\n"
            "            break\n"
            "    return n\n"
        )
        assert analyze_contract_source(source) == []


class TestSuppressions:
    def test_targeted_noqa_suppresses_only_listed_code(self):
        source = "def f(a, b):\n    return a / 2.0  # repro: noqa[MED002]\n"
        findings = analyze_contract_source(source)
        assert {f.code for f in findings} == {"MED003"}

    def test_blanket_noqa_suppresses_everything_on_line(self):
        source = "def f(a, b):\n    return a / 2.0  # repro: noqa\n"
        assert analyze_contract_source(source) == []

    def test_noqa_on_other_line_does_not_suppress(self):
        source = "def f():  # repro: noqa\n    return 1.5\n"
        findings = analyze_contract_source(source)
        assert {f.code for f in findings} == {"MED002"}


class TestZeroFalsePositives:
    """The acceptance bar: no findings on the shipped contract library."""

    def test_library_contracts_all_clean(self):
        sources = {
            name: getattr(library, name)
            for name in dir(library)
            if name.endswith("_SOURCE")
        }
        assert len(sources) >= 6
        for name, source in sources.items():
            findings = analyze_contract_source(source, file=name)
            assert findings == [], [f.render() for f in findings]

    def test_library_file_embedded_audit_clean(self):
        path = os.path.join(REPO_ROOT, "src", "repro", "contracts", "library.py")
        assert analyze_file(path) == []

    def test_src_repro_and_examples_clean(self):
        paths = [
            os.path.join(REPO_ROOT, "src", "repro"),
            os.path.join(REPO_ROOT, "examples"),
        ]
        result = analyze_paths([p for p in paths if os.path.exists(p)])
        assert result.files_analyzed > 50
        assert result.contracts_analyzed >= 6
        assert result.findings == [], [f.render() for f in result.findings]


class TestEmbeddedContracts:
    def test_embedded_finding_maps_to_host_line(self, tmp_path):
        host = tmp_path / "mod.py"
        host.write_text(
            "X = 1\n"
            "BAD_SOURCE = '''\n"
            "def f():\n"
            "    return 1.5\n"
            "'''\n"
        )
        findings = analyze_file(str(host))
        (finding,) = findings
        assert finding.code == "MED002"
        assert finding.file == str(host)
        assert finding.line == 4  # the literal's `return 1.5` line in mod.py

    def test_noqa_inside_embedded_literal(self, tmp_path):
        host = tmp_path / "mod.py"
        host.write_text(
            "BAD_SOURCE = '''\n"
            "def f():\n"
            "    return 1.5  # repro: noqa[MED002]\n"
            "'''\n"
        )
        assert analyze_file(str(host)) == []

    def test_non_contract_string_constants_ignored(self, tmp_path):
        host = tmp_path / "mod.py"
        host.write_text('QUERY_SOURCE = "just a plain string"\n')
        assert analyze_file(str(host)) == []


class TestRuleCatalog:
    def test_every_contract_rule_has_a_corpus_entry(self):
        contract_codes = {
            rule.code for rule in all_rules() if rule.family == "contract"
        }
        covered = set(BAD_CORPUS) | {"MED008"}
        assert covered == contract_codes

    def test_rule_codes_unique_and_stable(self):
        rules = all_rules()
        codes = [rule.code for rule in rules]
        assert codes == sorted(set(codes))
        assert all(code.startswith("MED") for code in codes)
