"""Corpus tests: every leak snippet flagged with exactly its MED2xx code,
every clean twin silent, and the MED2xx pass dogfoods to zero findings on
the repo's own tree (the zero-false-positive pin)."""

import glob
import os
import re

import pytest

from repro.analysis import analyze_file, analyze_paths

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
REPO_ROOT = os.path.normpath(
    os.path.join(os.path.dirname(__file__), "..", "..")
)

LEAK_FILES = sorted(glob.glob(os.path.join(CORPUS_DIR, "leak_*.py")))
CLEAN_FILES = sorted(glob.glob(os.path.join(CORPUS_DIR, "clean_*.py")))


def med2_findings(path):
    return [
        f
        for f in analyze_file(path, taint=True)
        if f.code.startswith("MED2")
    ]


def expected_code(path):
    """The MED2xx code encoded in the leak file's name."""
    match = re.search(r"med(\d{3})\.py$", os.path.basename(path))
    assert match, f"leak corpus file {path} does not encode its code"
    return f"MED{match.group(1)}"


class TestCorpusShape:
    def test_one_leak_per_rule_code(self):
        codes = sorted(expected_code(path) for path in LEAK_FILES)
        assert codes == ["MED201", "MED202", "MED203", "MED204", "MED205"]

    def test_every_leak_has_a_clean_twin(self):
        leak_mechanisms = {
            re.sub(r"_med\d{3}\.py$", "", os.path.basename(p))[len("leak_"):]
            for p in LEAK_FILES
        }
        clean_mechanisms = {
            os.path.basename(p)[len("clean_"):-len(".py")]
            for p in CLEAN_FILES
        }
        assert leak_mechanisms == clean_mechanisms


class TestLeakDetection:
    @pytest.mark.parametrize(
        "path", LEAK_FILES, ids=[os.path.basename(p) for p in LEAK_FILES]
    )
    def test_leak_flagged_with_exact_code(self, path):
        findings = med2_findings(path)
        assert [f.code for f in findings] == [expected_code(path)]
        # Every finding carries a complete source -> ... -> sink trace.
        assert findings[0].trace[0]["kind"] == "source"
        assert findings[0].trace[-1]["kind"] == "sink"


class TestCleanTwins:
    @pytest.mark.parametrize(
        "path", CLEAN_FILES, ids=[os.path.basename(p) for p in CLEAN_FILES]
    )
    def test_clean_twin_has_zero_findings(self, path):
        assert med2_findings(path) == []


class TestDogfood:
    def test_zero_false_positives_on_own_tree(self):
        result = analyze_paths(
            [
                os.path.join(REPO_ROOT, "src", "repro"),
                os.path.join(REPO_ROOT, "examples"),
            ],
            taint=True,
        )
        med2 = [
            f for f in result.findings if f.code.startswith("MED2")
        ]
        assert med2 == [], "\n".join(f.render() for f in med2)
        assert result.files_analyzed > 100
