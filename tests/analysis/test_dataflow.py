"""Tests for the MED2xx interprocedural PHI taint analysis."""

import ast
import textwrap

from repro.analysis import analyze_contract_source, analyze_file
from repro.analysis.dataflow import TaintEngine, check_module, code_for_trace
from repro.analysis.dataflow.lattice import (
    CLEAN,
    Level,
    STEP_CALL,
    STEP_FORMAT,
    STEP_SANITIZER_BYPASS,
    Taint,
    TaintStep,
)
from repro.analysis.registry import ModuleContext


def run_module(source):
    """MED2xx findings for one python module source."""
    source = textwrap.dedent(source)
    tree = ast.parse(source)
    ctx = ModuleContext(
        source=source,
        tree=tree,
        file="mod.py",
        package_path="repro/mod.py",
        lines=source.splitlines(),
    )
    return check_module(ctx)


def run_contract(source, **kwargs):
    """MED2xx findings for one contract source."""
    findings = analyze_contract_source(textwrap.dedent(source), **kwargs)
    return [f for f in findings if f.code.startswith("MED2")]


class TestLattice:
    def test_join_prefers_higher_level(self):
        tainted = Taint(level=Level.TAINTED, steps=(TaintStep("source", "x"),))
        assert CLEAN.join(tainted).level is Level.TAINTED
        assert tainted.join(CLEAN).level is Level.TAINTED

    def test_join_tie_keeps_shorter_trace(self):
        short = Taint(level=Level.TAINTED, steps=(TaintStep("source", "a"),))
        long = Taint(
            level=Level.TAINTED,
            steps=(TaintStep("source", "b"), TaintStep("call", "c")),
        )
        assert long.join(short).steps == short.steps
        assert short.join(long).steps == short.steps

    def test_join_unions_params(self):
        a = Taint(params=frozenset({"a"}))
        b = Taint(params=frozenset({"b"}))
        assert a.join(b).params == frozenset({"a", "b"})

    def test_with_step_is_noop_on_clean(self):
        assert CLEAN.with_step(TaintStep("format", "x")) is CLEAN

    def test_code_priority(self):
        source = TaintStep("source", "s")
        sink = TaintStep("sink", "k")
        assert code_for_trace((source, sink)) == "MED201"
        assert code_for_trace((source, TaintStep(STEP_FORMAT, "f"), sink)) == "MED202"
        assert code_for_trace((source, TaintStep(STEP_CALL, "c"), sink)) == "MED203"
        assert (
            code_for_trace(
                (
                    source,
                    TaintStep(STEP_SANITIZER_BYPASS, "b"),
                    TaintStep(STEP_CALL, "c"),
                    sink,
                )
            )
            == "MED205"
        )


class TestModuleTaint:
    def test_direct_store_flagged(self):
        findings = run_module(
            """
            def publish(store, node):
                records = store.get_records("d")
                node.set_slot("k", records)
            """
        )
        assert [f.code for f in findings] == ["MED201"]
        assert findings[0].symbol == "publish"
        assert findings[0].trace[0]["kind"] == "source"
        assert findings[0].trace[-1]["kind"] == "sink"

    def test_unknown_at_sink_is_not_reported(self):
        findings = run_module(
            """
            def publish(store, node, transform):
                records = store.get_records("d")
                blob = transform(records)
                node.set_slot("k", blob)
            """
        )
        assert findings == []

    def test_digest_sanitizer_is_clean(self):
        findings = run_module(
            """
            def publish(store, node, hashing):
                records = store.get_records("d")
                node.set_slot("k", hashing.sha256_hex(records))
            """
        )
        assert findings == []

    def test_aggregating_builtin_is_clean(self):
        findings = run_module(
            """
            def publish(store, node):
                records = store.get_records("d")
                node.set_slot("k", len(records))
            """
        )
        assert findings == []

    def test_fstring_leak_is_med202(self):
        findings = run_module(
            """
            def publish(store, span):
                records = store.get_records("d")
                span.set_attr("summary", f"rows: {records}")
            """
        )
        assert [f.code for f in findings] == ["MED202"]

    def test_propagating_reshape_keeps_taint(self):
        findings = run_module(
            """
            def publish(store, node):
                records = sorted(store.get_records("d"))
                node.set_slot("k", list(records))
            """
        )
        assert [f.code for f in findings] == ["MED201"]

    def test_helper_leak_is_med203_with_full_trace(self):
        findings = run_module(
            """
            def persist(node, payload):
                node.set_slot("k", payload)

            def publish(store, node):
                cohort = store.get_records("d")
                persist(node, cohort)
            """
        )
        assert [f.code for f in findings] == ["MED203"]
        kinds = [step["kind"] for step in findings[0].trace]
        assert kinds[0] == "source"
        assert "call" in kinds
        assert kinds[-1] == "sink"

    def test_safe_projection_is_clean(self):
        findings = run_module(
            """
            def publish(store, node):
                record = store.get_records("d")[0]
                node.set_slot("k", record["patient_id"])
            """
        )
        assert findings == []

    def test_phi_field_projection_keeps_taint(self):
        findings = run_module(
            """
            def publish(store, node):
                record = store.get_records("d")[0]
                node.set_slot("k", record["dob"])
            """
        )
        assert [f.code for f in findings] == ["MED201"]

    def test_rpc_handler_return_is_a_sink(self):
        findings = run_module(
            """
            def build(registry, store):
                def dump(params):
                    return store.get_records(params["dataset_id"])

                registry.register("site.dump", dump)
            """
        )
        assert [f.code for f in findings] == ["MED201"]
        assert "rpc response" in findings[0].message

    def test_unregistered_function_return_is_not_a_sink(self):
        findings = run_module(
            """
            def local_helper(store):
                return store.get_records("d")
            """
        )
        assert findings == []

    def test_declared_sanitizer_from_elsewhere_is_trusted(self):
        findings = run_module(
            """
            def publish(store, node, privacy):
                records = store.get_records("d")
                node.set_slot("k", privacy.anonymize(records))
            """
        )
        assert findings == []

    def test_false_local_sanitizer_is_med205(self):
        findings = run_module(
            """
            def anonymize_rows(rows):
                return rows

            def publish(store, node):
                records = store.get_records("d")
                node.set_slot("k", anonymize_rows(records))
            """
        )
        assert [f.code for f in findings] == ["MED205"]

    def test_noqa_suppresses_taint_finding(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "def publish(store, node):\n"
            '    records = store.get_records("d")\n'
            '    node.set_slot("k", records)  # repro: noqa[MED201]\n'
        )
        findings = [
            f
            for f in analyze_file(str(path), taint=True)
            if f.code.startswith("MED2")
        ]
        assert findings == []

    def test_taint_off_by_default_for_modules(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "def publish(store, node):\n"
            '    node.set_slot("k", store.get_records("d"))\n'
        )
        assert [
            f for f in analyze_file(str(path)) if f.code.startswith("MED2")
        ] == []
        assert [
            f.code
            for f in analyze_file(str(path), taint=True)
            if f.code.startswith("MED2")
        ] == ["MED201"]


class TestInterproceduralDepth:
    @staticmethod
    def _chain_source(depth):
        lines = []
        for index in range(depth):
            lines.append(f"def helper{index}(node, payload):")
            if index + 1 < depth:
                lines.append(f"    helper{index + 1}(node, payload)")
            else:
                lines.append('    node.set_slot("k", payload)')
        lines.append("def publish(store, node):")
        lines.append('    helper0(node, store.get_records("d"))')
        return "\n".join(lines) + "\n"

    def test_chain_within_depth_is_found(self):
        tree = ast.parse(self._chain_source(4))
        assert len(TaintEngine(tree).run()) == 1

    def test_chain_past_depth_poisons_to_unknown(self):
        tree = ast.parse(self._chain_source(12))
        assert TaintEngine(tree).run() == []

    def test_raised_depth_resolves_deep_chain(self):
        tree = ast.parse(self._chain_source(12))
        assert len(TaintEngine(tree, max_depth=32).run()) == 1

    def test_direct_sink_in_recursive_helper_is_still_caught(self):
        findings = run_module(
            """
            def bounce(node, payload):
                bounce(node, payload)
                node.set_slot("k", payload)

            def publish(store, node):
                bounce(node, store.get_records("d"))
            """
        )
        assert [f.code for f in findings] == ["MED203"]

    def test_cyclic_only_flow_is_unknown_and_unreported(self):
        findings = run_module(
            """
            def odd(payload, depth):
                return even(payload, depth - 1)

            def even(payload, depth):
                if depth == 0:
                    return 0
                return odd(payload, depth - 1)

            def publish(store, node):
                node.set_slot("k", even(store.get_records("d"), 4))
            """
        )
        assert findings == []


class TestContractTaint:
    def test_phi_param_to_storage_is_med201(self):
        findings = run_contract(
            """
            def admit(patient_id, record):
                storage_set("r/" + patient_id, record)
                return 1
            """
        )
        assert [f.code for f in findings] == ["MED201"]
        assert findings[0].trace[0]["kind"] == "source"

    def test_taint_flag_disables_the_pass(self):
        findings = run_contract(
            """
            def admit(patient_id, record):
                storage_set("r/" + patient_id, record)
                return 1
            """,
            taint=False,
        )
        assert findings == []

    def test_pseudonymous_params_are_clean(self):
        findings = run_contract(
            """
            def admit(patient_id, record_hash, record_count):
                storage_set("r/" + patient_id, record_hash)
                storage_set("n/" + patient_id, record_count)
                return 1
            """
        )
        assert findings == []

    def test_emit_and_require_are_sinks(self):
        findings = run_contract(
            """
            def admit(record):
                require(record, "missing: " + str(record))
                emit("admitted", record)
                return 1
            """
        )
        codes = sorted({f.code for f in findings})
        assert codes == ["MED201", "MED202"]

    def test_public_return_is_a_sink_private_is_not(self):
        findings = run_contract(
            """
            def _lookup(record):
                return record

            def get_count(records):
                return len(records)
            """
        )
        assert findings == []
        findings = run_contract(
            """
            def echo(record):
                return record
            """
        )
        assert [f.code for f in findings] == ["MED201"]

    def test_phi_prefix_escape_hatch(self):
        findings = run_contract(
            """
            def stash(phi_payload):
                storage_set("p", phi_payload)
                return 1
            """
        )
        assert [f.code for f in findings] == ["MED201"]

    def test_sha256_host_digest_is_clean(self):
        findings = run_contract(
            """
            def anchor(record):
                storage_set("digest", sha256_hex(str(record)))
                return 1
            """
        )
        assert findings == []


class TestEmbeddedLineMapping:
    def test_embedded_contract_finding_maps_to_host_lines(self, tmp_path):
        host = tmp_path / "library.py"
        host.write_text(
            "LEAKY_SOURCE = '''\n"  # line 1; contract line 1 = host line 2
            "def admit(patient_id, record):\n"
            '    storage_set("r/" + patient_id, record)\n'
            "    return 1\n"
            "'''\n"
        )
        findings = [
            f
            for f in analyze_file(str(host))
            if f.code.startswith("MED2")
        ]
        assert [f.code for f in findings] == ["MED201"]
        assert findings[0].line == 3  # host-file line of the storage_set
        assert findings[0].trace[0]["line"] == 2  # def line in the host file
