"""Static read/write-set derivation tests (`repro.analysis.rwsets`).

The parallel block scheduler schedules across waves based on these sets, so
the critical property is *soundness*: a method not flagged ``unknown`` must
over-approximate every slot it can touch, and anything unprovable must
poison the method to ``unknown``.
"""

from repro.analysis import MethodRWSet, SlotTemplate, read_write_sets
from repro.analysis.rwsets import MAX_CALL_DEPTH


def rendered(templates):
    return {t.render() for t in templates}


class TestTemplateDerivation:
    def test_literal_keys(self):
        sets = read_write_sets(
            "def get():\n"
            '    return storage_get("total")\n'
            "def put(v):\n"
            '    storage_set("total", v)\n'
        )
        assert not sets["get"].unknown
        assert rendered(sets["get"].reads) == {"total"}
        assert not sets["get"].writes
        assert rendered(sets["put"].writes) == {"total"}

    def test_param_fstring_and_concat(self):
        sets = read_write_sets(
            "def bump(user):\n"
            '    v = storage_get(f"bal:{user}", 0)\n'
            '    storage_set("bal:" + user, v + 1)\n'
        )
        method = sets["bump"]
        assert not method.unknown
        assert rendered(method.reads) == {"bal:{user}"}
        assert rendered(method.writes) == {"bal:{user}"}

    def test_str_coercion_and_int_constants(self):
        sets = read_write_sets(
            "def f(i):\n"
            '    storage_set("slot:" + str(i), 1)\n'
            "def g():\n"
            "    return storage_get(7)\n"
        )
        assert rendered(sets["f"].writes) == {"slot:{i}"}
        assert rendered(sets["g"].reads) == {"7"}

    def test_module_constant_and_local_propagation(self):
        sets = read_write_sets(
            'PREFIX = "acl:"\n'
            "def check(who):\n"
            "    key = PREFIX + who\n"
            "    return storage_get(key)\n"
        )
        assert rendered(sets["check"].reads) == {"acl:{who}"}

    def test_prefix_scan_templates(self):
        sets = read_write_sets(
            "def scan(p):\n"
            '    return storage_keys(f"bal:{p}")\n'
            "def scan_all():\n"
            "    return storage_keys()\n"
        )
        assert rendered(sets["scan"].read_prefixes) == {"bal:{p}"}
        assert rendered(sets["scan_all"].read_prefixes) == {""}

    def test_delete_counts_as_read_and_write(self):
        sets = read_write_sets('def drop(k):\n    storage_delete("x:" + k)\n')
        assert rendered(sets["drop"].reads) == {"x:{k}"}
        assert rendered(sets["drop"].writes) == {"x:{k}"}

    def test_branches_union(self):
        sets = read_write_sets(
            "def route(flag):\n"
            "    if flag:\n"
            '        storage_set("a", 1)\n'
            "    else:\n"
            '        storage_set("b", 2)\n'
        )
        assert rendered(sets["route"].writes) == {"a", "b"}

    def test_helper_calls_are_followed(self):
        sets = read_write_sets(
            "def _key(user, kind):\n"
            '    return storage_get(kind + ":" + user)\n'
            "def read(user):\n"
            '    return _key(user, "bal")\n'
            "def read_kw(user):\n"
            '    return _key(kind="pt", user=user)\n'
        )
        assert rendered(sets["read"].reads) == {"bal:{user}"}
        assert rendered(sets["read_kw"].reads) == {"pt:{user}"}
        assert "_key" not in sets  # private helpers folded into callers

    def test_helper_default_argument(self):
        sets = read_write_sets(
            'def _get(k, kind="bal"):\n'
            '    return storage_get(kind + ":" + k)\n'
            "def read(k):\n"
            "    return _get(k)\n"
        )
        assert rendered(sets["read"].reads) == {"bal:{k}"}


class TestUnknownPoisoning:
    def test_computed_key_expression(self):
        sets = read_write_sets(
            "def f(xs):\n    return storage_get(xs[0])\n"
        )
        assert sets["f"].unknown

    def test_numeric_addition_key(self):
        # 2 + 3 evaluates to slot "5"; a concat template would claim "23".
        sets = read_write_sets("def f():\n    return storage_get(2 + 3)\n")
        assert sets["f"].unknown

    def test_string_side_makes_addition_safe(self):
        sets = read_write_sets(
            'def f(n):\n    return storage_get("n:" + n)\n'
        )
        assert not sets["f"].unknown

    def test_rebound_parameter(self):
        sets = read_write_sets(
            "def f(k):\n"
            "    k = transform(k)\n"
            '    return storage_get("x:" + k)\n'
        )
        assert sets["f"].unknown

    def test_aliased_helper_call(self):
        # `g = helper; g(x)` hides a potential storage access.
        sets = read_write_sets(
            "def _helper(k):\n"
            '    storage_set("h:" + k, 1)\n'
            "def f(k):\n"
            "    g = _helper\n"
            "    g(k)\n"
        )
        assert sets["f"].unknown

    def test_computed_callee(self):
        sets = read_write_sets(
            "def f(fns, k):\n    fns[0](k)\n"
        )
        assert sets["f"].unknown

    def test_unknown_name_call(self):
        sets = read_write_sets("def f(k):\n    mystery(k)\n")
        assert sets["f"].unknown

    def test_pure_builtin_calls_stay_known(self):
        sets = read_write_sets(
            "def f(k):\n"
            "    n = len(k)\n"
            '    return storage_get("x:" + k)\n'
        )
        assert not sets["f"].unknown

    def test_keyword_storage_argument(self):
        sets = read_write_sets('def f():\n    return storage_get(key="a")\n')
        assert sets["f"].unknown

    def test_recursion_hits_depth_cap(self):
        sets = read_write_sets(
            "def f(k):\n    return f(k)\n"
        )
        assert sets["f"].unknown

    def test_deep_call_chain_capped(self):
        lines = []
        for i in range(MAX_CALL_DEPTH + 2):
            lines.append(f"def _f{i}(k):")
            lines.append(f"    return _f{i + 1}(k)")
        lines.append(f"def _f{MAX_CALL_DEPTH + 2}(k):")
        lines.append('    return storage_get("x:" + k)')
        lines.append("def entry(k):")
        lines.append("    return _f0(k)")
        sets = read_write_sets("\n".join(lines) + "\n")
        assert sets["entry"].unknown

    @staticmethod
    def _chain(depth):
        """entry -> _f0 -> ... -> _f<depth-1> -> storage_get."""
        lines = []
        for i in range(depth - 1):
            lines.append(f"def _f{i}(k):")
            lines.append(f"    return _f{i + 1}(k)")
        lines.append(f"def _f{depth - 1}(k):")
        lines.append('    return storage_get("x:" + k)')
        lines.append("def entry(k):")
        lines.append("    return _f0(k)")
        return "\n".join(lines) + "\n"

    def test_max_depth_override_resolves_deeper_chains(self):
        source = self._chain(MAX_CALL_DEPTH + 4)
        assert read_write_sets(source)["entry"].unknown
        sets = read_write_sets(source, max_depth=MAX_CALL_DEPTH + 8)
        assert not sets["entry"].unknown
        (template,) = sets["entry"].reads
        assert template.render() == "x:{k}"

    def test_max_depth_override_poisons_shallow_chains_to_unknown(self):
        # A chain the default cap resolves mis-resolves to *unknown* —
        # never to a wrong template — when the cap is tightened.
        source = self._chain(4)
        assert not read_write_sets(source)["entry"].unknown
        assert read_write_sets(source, max_depth=2)["entry"].unknown

    def test_format_spec_rejected(self):
        sets = read_write_sets(
            'def f(n):\n    return storage_get(f"x:{n:04d}")\n'
        )
        assert sets["f"].unknown

    def test_syntax_error_yields_empty(self):
        assert read_write_sets("def f(:\n") == {}


class TestResolve:
    def resolve(self, source, method, args):
        return read_write_sets(source)[method].resolve(args)

    def test_resolve_substitutes_args(self):
        access = self.resolve(
            'def f(u):\n    storage_set("bal:" + u, 0)\n', "f", {"u": "alice"}
        )
        assert access.writes == frozenset({"bal:alice"})

    def test_resolve_applies_defaults(self):
        access = self.resolve(
            'def f(u, kind="bal"):\n'
            "    storage_set(kind + \":\" + u, 0)\n",
            "f",
            {"u": "bob"},
        )
        assert access.writes == frozenset({"bal:bob"})

    def test_resolve_missing_arg_is_none(self):
        assert self.resolve(
            'def f(u):\n    storage_set("bal:" + u, 0)\n', "f", {}
        ) is None

    def test_resolve_container_arg_is_none(self):
        assert self.resolve(
            'def f(u):\n    storage_set("bal:" + u, 0)\n', "f", {"u": [1]}
        ) is None

    def test_resolve_unknown_method_is_none(self):
        assert self.resolve(
            "def f(k):\n    mystery(k)\n", "f", {"k": "a"}
        ) is None

    def test_int_arg_coerced_like_runtime(self):
        access = self.resolve(
            'def f(i):\n    storage_set("s:" + str(i), 0)\n', "f", {"i": 12}
        )
        assert access.writes == frozenset({"s:12"})


class TestSlotTemplate:
    def test_render_and_params(self):
        template = SlotTemplate(
            parts=(("lit", "bal:"), ("param", "user"))
        )
        assert template.render() == "bal:{user}"
        assert template.params == frozenset({"user"})
        assert not template.is_literal

    def test_public_exports(self):
        import repro.analysis as analysis

        assert analysis.read_write_sets is read_write_sets
        assert analysis.MethodRWSet is MethodRWSet
