"""HIE sharing tests: encryption, audit chain, exchange policy."""

import dataclasses

import pytest

from repro.common.errors import CryptoError, IntegrityError
from repro.sharing.audit import AuditLog
from repro.sharing.encryption import Envelope, decrypt, encrypt_for


class TestEncryption:
    def test_round_trip(self, alice):
        payload = {"records": [{"id": 1, "value": 2.5}]}
        envelope = encrypt_for(alice.public, payload)
        assert decrypt(alice.private, envelope) == payload

    def test_wrong_recipient_cannot_decrypt(self, alice, bob):
        envelope = encrypt_for(alice.public, {"secret": True})
        with pytest.raises(CryptoError):
            decrypt(bob.private, envelope)

    def test_tampered_ciphertext_detected(self, alice):
        envelope = encrypt_for(alice.public, {"x": 1})
        flipped = bytearray(envelope.ciphertext)
        flipped[0] ^= 0xFF
        tampered = Envelope(
            ephemeral_public=envelope.ephemeral_public,
            ciphertext=bytes(flipped),
            tag=envelope.tag,
        )
        with pytest.raises(CryptoError):
            decrypt(alice.private, tampered)

    def test_tampered_tag_detected(self, alice):
        envelope = encrypt_for(alice.public, {"x": 1})
        bad_tag = bytes(b ^ 0x01 for b in envelope.tag)
        tampered = dataclasses.replace(envelope, tag=bad_tag)
        with pytest.raises(CryptoError):
            decrypt(alice.private, tampered)

    def test_ciphertext_differs_from_plaintext(self, alice):
        from repro.common.serialize import canonical_bytes

        payload = {"visible": "should not appear"}
        envelope = encrypt_for(alice.public, payload)
        assert canonical_bytes(payload) not in envelope.ciphertext

    def test_deterministic_with_seed(self, alice):
        a = encrypt_for(alice.public, {"x": 1}, ephemeral_seed=b"s")
        b = encrypt_for(alice.public, {"x": 1}, ephemeral_seed=b"s")
        assert a == b

    def test_envelope_size(self, alice):
        envelope = encrypt_for(alice.public, {"x": 1})
        assert envelope.size_bytes == (
            len(envelope.ephemeral_public) + len(envelope.ciphertext) + len(envelope.tag)
        )


class TestAuditLog:
    def test_append_and_verify(self):
        log = AuditLog()
        log.append("alice", "request", "ds1", {"purpose": "research"})
        log.append("site", "release", "ds1", {"records": 10})
        assert len(log) == 2
        assert log.verify()

    def test_entries_hash_chained(self):
        log = AuditLog()
        first = log.append("a", "x", "r")
        second = log.append("a", "y", "r")
        assert second.prev_hash == first.entry_hash

    def test_edit_detected(self):
        log = AuditLog()
        log.append("a", "x", "r")
        log.append("a", "y", "r")
        log._entries[0].action = "falsified"
        assert not log.verify()

    def test_deletion_detected(self):
        log = AuditLog()
        log.append("a", "x", "r")
        log.append("a", "y", "r")
        del log._entries[0]
        assert not log.verify()

    def test_insertion_detected(self):
        log = AuditLog()
        log.append("a", "x", "r")
        entry = log.append("a", "y", "r")
        forged = dataclasses.replace(entry, sequence=2)
        log._entries.insert(1, forged)
        assert not log.verify()

    def test_require_valid_raises(self):
        log = AuditLog()
        log.append("a", "x", "r")
        log._entries[0].actor = "mallory"
        with pytest.raises(IntegrityError):
            log.require_valid()

    def test_resource_and_actor_queries(self):
        log = AuditLog()
        log.append("alice", "request", "ds1")
        log.append("bob", "request", "ds2")
        log.append("alice", "release", "ds1")
        assert len(log.entries_for("ds1")) == 2
        assert len(log.entries_by("bob")) == 1

    def test_empty_log_verifies(self):
        assert AuditLog().verify()
