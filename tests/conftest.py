"""Shared fixtures.

The full platform is expensive to boot, so integration-oriented fixtures
are module-scoped; tests that mutate platform state build their own.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings as hypothesis_settings

from repro.common.ids import reset_ids
from repro.common.signatures import KeyPair
from repro.datamgmt.cohort import CohortGenerator, default_site_profiles


# Hypothesis profiles: "default" keeps local/CI runs fast; "ci-stress" is
# the scheduled deep-fuzz profile (see the cron job in ci.yml).  Tests that
# pin explicit @settings keep their own example counts; profile selection
# applies to bare @given tests.
hypothesis_settings.register_profile("default", hypothesis_settings())
hypothesis_settings.register_profile(
    "ci-stress",
    max_examples=500,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    print_blob=True,
)
hypothesis_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture(autouse=True)
def _fresh_id_namespaces():
    reset_ids()
    yield
    reset_ids()


@pytest.fixture(scope="session")
def alice() -> KeyPair:
    return KeyPair.generate("alice")


@pytest.fixture(scope="session")
def bob() -> KeyPair:
    return KeyPair.generate("bob")


@pytest.fixture(scope="session")
def small_cohort():
    """60 canonical records from one site (session-wide, read-only)."""
    generator = CohortGenerator(seed=101)
    profile = default_site_profiles(1)[0]
    return generator.generate_cohort(profile, 60)


@pytest.fixture(scope="session")
def multi_site_cohorts():
    """3 sites x 120 records (session-wide, read-only)."""
    generator = CohortGenerator(seed=202)
    profiles = default_site_profiles(3)
    return generator.generate_multi_site(profiles, 120)
