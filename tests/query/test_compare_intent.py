"""Distributed two-group comparison: parse, execute, compose."""

import pytest

from repro.analytics.stats import welch_t_test
from repro.analytics.tools import tool_compare_groups
from repro.common.errors import OracleError, QueryError
from repro.query.compose import compose
from repro.query.parser import parse_query
from repro.query.vector import QueryVector


class TestParseCompare:
    def test_smokers_vs_nonsmokers(self):
        vector = parse_query("compare glucose between smokers and non-smokers")
        assert vector.intent == "compare"
        assert vector.target_field == "labs.glucose"
        assert vector.group_field == "lifestyle.smoker"
        assert vector.group_values == [1, 0]

    def test_men_vs_women(self):
        vector = parse_query("compare systolic blood pressure between men and women")
        assert vector.group_field == "sex"
        assert vector.group_values == ["M", "F"]
        assert "sex" not in vector.filters  # group is not also a filter

    def test_diabetics(self):
        vector = parse_query("compare bmi between diabetics and non-diabetics")
        assert vector.group_field == "outcomes.diabetes"

    def test_age_filter_composes_with_groups(self):
        vector = parse_query("compare glucose between smokers and non-smokers over 40")
        assert vector.filters == {"age_min": 40}

    def test_unrecognized_groups_rejected(self):
        with pytest.raises(QueryError):
            parse_query("compare bmi between cats and dogs")

    def test_validation_requires_two_groups(self):
        with pytest.raises(QueryError):
            QueryVector(
                intent="compare", target_field="vitals.bmi",
                group_field="sex", group_values=["M"],
            ).validate()


class TestToolCompareGroups:
    def test_counts_match_manual_split(self, multi_site_cohorts):
        records = next(iter(multi_site_cohorts.values()))
        out = tool_compare_groups(
            records,
            {"field": "labs.glucose", "group_field": "lifestyle.smoker",
             "group_values": [1, 0]},
        )
        smokers = [r for r in records if r["lifestyle"]["smoker"] == 1]
        assert out["groups"][0]["count"] == len(smokers)
        assert out["groups"][1]["count"] == len(records) - len(smokers)

    def test_missing_params_rejected(self, multi_site_cohorts):
        records = next(iter(multi_site_cohorts.values()))
        with pytest.raises(OracleError):
            tool_compare_groups(records, {"field": "labs.glucose"})


class TestComposeCompare:
    def test_distributed_welch_matches_pooled(self, multi_site_cohorts):
        """The composed t/p must equal Welch on the pooled raw data."""
        vector = QueryVector(
            intent="compare",
            target_field="vitals.sbp",
            group_field="sex",
            group_values=["M", "F"],
        )
        partials = [
            tool_compare_groups(records, vector.tool_params())
            for records in multi_site_cohorts.values()
        ]
        composed = compose(vector, partials)
        pooled = [r for records in multi_site_cohorts.values() for r in records]
        men = [r["vitals"]["sbp"] for r in pooled if r["sex"] == "M"]
        women = [r["vitals"]["sbp"] for r in pooled if r["sex"] == "F"]
        reference = welch_t_test(men, women)
        assert composed["t_statistic"] == pytest.approx(reference.statistic, rel=1e-9)
        assert composed["p_value"] == pytest.approx(reference.p_value, rel=1e-9)
        assert composed["groups"][0]["count"] == len(men)

    def test_detects_real_difference(self, multi_site_cohorts):
        """Smokers vs non-smokers differ on the vascular latent's inputs;
        use age (older sites smoke more in the generator? no) — instead use
        a field with a genuine group difference: stroke outcome vs sbp."""
        vector = QueryVector(
            intent="compare",
            target_field="vitals.sbp",
            group_field="outcomes.stroke",
            group_values=[1, 0],
        )
        partials = [
            tool_compare_groups(records, vector.tool_params())
            for records in multi_site_cohorts.values()
        ]
        composed = compose(vector, partials)
        # Stroke patients have higher SBP by construction (vascular latent).
        assert composed["mean_difference"] > 0
        assert composed["p_value"] < 0.05

    def test_too_small_group_rejected(self):
        vector = QueryVector(
            intent="compare",
            target_field="vitals.sbp",
            group_field="sex",
            group_values=["M", "F"],
        )
        partial = {
            "groups": [
                {"count": 1, "mean": 1.0, "variance": 0.0, "min": 1.0, "max": 1.0},
                {"count": 5, "mean": 2.0, "variance": 1.0, "min": 0.0, "max": 4.0},
            ]
        }
        with pytest.raises(QueryError):
            compose(vector, [partial])


def test_query_id_distinguishes_groups():
    a = QueryVector(intent="compare", target_field="vitals.sbp",
                    group_field="sex", group_values=["M", "F"])
    b = QueryVector(intent="compare", target_field="vitals.sbp",
                    group_field="lifestyle.smoker", group_values=[1, 0])
    assert a.query_id != b.query_id
