"""Query layer tests: vectors, parser, decompose/compose."""

import numpy as np
import pytest

from repro.analytics.tools import (
    tool_count,
    tool_histogram,
    tool_numeric_summary,
    tool_prevalence,
)
from repro.common.errors import QueryError
from repro.datamgmt.virtual import DatasetRef
from repro.query.compose import compose, decompose
from repro.query.parser import parse_query
from repro.query.vector import QueryVector


class TestQueryVector:
    def test_validation_ok(self):
        QueryVector(intent="prevalence", outcome="stroke").validate()

    def test_unknown_intent_rejected(self):
        with pytest.raises(QueryError):
            QueryVector(intent="teleport").validate()

    def test_prevalence_needs_outcome(self):
        with pytest.raises(QueryError):
            QueryVector(intent="prevalence").validate()

    def test_mean_needs_field(self):
        with pytest.raises(QueryError):
            QueryVector(intent="mean").validate()

    def test_histogram_needs_range(self):
        with pytest.raises(QueryError):
            QueryVector(intent="histogram", target_field="vitals.sbp").validate()

    def test_query_id_stable_and_content_addressed(self):
        a = QueryVector(intent="count", filters={"sex": "F"})
        b = QueryVector(intent="count", filters={"sex": "F"})
        c = QueryVector(intent="count", filters={"sex": "M"})
        assert a.query_id == b.query_id
        assert a.query_id != c.query_id

    def test_tool_mapping(self):
        assert QueryVector(intent="mean", target_field="vitals.sbp").tool_id() == "numeric_summary"
        assert QueryVector(intent="train", outcome="stroke").tool_id() == "local_train"

    def test_fetch_has_no_tool(self):
        with pytest.raises(QueryError):
            QueryVector(intent="fetch").tool_id()

    def test_tool_params_push_filters_down(self):
        vector = QueryVector(
            intent="prevalence", outcome="stroke", filters={"age_min": 60}
        )
        params = vector.tool_params()
        assert params["filters"] == {"age_min": 60}
        assert params["outcome"] == "stroke"


class TestParser:
    def test_prevalence_query(self):
        vector = parse_query("What is the prevalence of stroke among smokers over 60?")
        assert vector.intent == "prevalence"
        assert vector.outcome == "stroke"
        assert vector.filters["lifestyle.smoker"] == 1
        assert vector.filters["age_min"] == 60

    def test_count_query_with_outcome(self):
        vector = parse_query("How many patients have diabetes?")
        assert vector.intent == "count"
        assert vector.filters.get("has_outcome_diabetes") == 1

    def test_mean_query_with_sex_filter(self):
        vector = parse_query("average systolic blood pressure for women over 50")
        assert vector.intent == "mean"
        assert vector.target_field == "vitals.sbp"
        assert vector.filters["sex"] == "F"
        assert vector.filters["age_min"] == 50

    def test_histogram_with_explicit_range(self):
        vector = parse_query("histogram of bmi between 15 and 50 with 7 bins")
        assert vector.intent == "histogram"
        assert vector.target_field == "vitals.bmi"
        assert vector.value_range == [15.0, 50.0]
        assert vector.bins == 7

    def test_histogram_default_range(self):
        vector = parse_query("distribution of glucose")
        assert vector.value_range == [60.0, 350.0]

    def test_train_query(self):
        vector = parse_query("train a stroke model with 12 rounds")
        assert vector.intent == "train"
        assert vector.outcome == "stroke"
        assert vector.rounds == 12
        assert vector.model == "logistic"

    def test_train_mlp_variant(self):
        vector = parse_query("train a deep neural model to predict diabetes")
        assert vector.model == "mlp"
        assert vector.outcome == "diabetes"

    def test_cluster_query(self):
        vector = parse_query("cluster patients into 4 subtypes")
        assert vector.intent == "cluster"
        assert vector.bins == 4

    def test_synonyms(self):
        assert parse_query("rate of cva in men").outcome == "stroke"
        assert parse_query("how common is t2d").outcome == "diabetes"
        assert parse_query("average a1c for non-smokers").filters["lifestyle.smoker"] == 0

    def test_age_range(self):
        vector = parse_query("how many patients aged 40 to 60 have cancer")
        assert vector.filters["age_min"] == 40
        assert vector.filters["age_max"] == 60

    def test_diagnosis_code(self):
        vector = parse_query("count patients diagnosed with I10")
        assert vector.filters["diagnosis"] == "I10"

    def test_unparseable_rejected(self):
        with pytest.raises(QueryError):
            parse_query("hello there")

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            parse_query("   ")


class TestDecompose:
    CATALOG = [
        DatasetRef("h0", "ds0", 100),
        DatasetRef("h0", "ds0b", 50),
        DatasetRef("h1", "ds1", 200),
    ]

    def test_one_task_per_site(self):
        vector = QueryVector(intent="count")
        tasks = decompose(vector, self.CATALOG)
        assert len(tasks) == 2
        by_site = {task.site: task for task in tasks}
        assert by_site["h0"].dataset_ids == ["ds0", "ds0b"]
        assert by_site["h1"].dataset_ids == ["ds1"]

    def test_task_ids_unique(self):
        tasks = decompose(QueryVector(intent="count"), self.CATALOG)
        assert len({task.task_id for task in tasks}) == len(tasks)

    def test_empty_catalog_rejected(self):
        with pytest.raises(QueryError):
            decompose(QueryVector(intent="count"), [])

    def test_params_pushed_down(self):
        vector = QueryVector(intent="prevalence", outcome="stroke", filters={"sex": "F"})
        tasks = decompose(vector, self.CATALOG)
        assert all(task.params["filters"] == {"sex": "F"} for task in tasks)


class TestCompose:
    """Composition invariant: composed == pooled for mergeable intents."""

    def _split(self, multi_site_cohorts):
        return list(multi_site_cohorts.values())

    def test_count_composition_exact(self, multi_site_cohorts):
        shards = self._split(multi_site_cohorts)
        pooled = [record for shard in shards for record in shard]
        vector = QueryVector(intent="count", filters={"sex": "F"})
        partials = [tool_count(shard, vector.tool_params()) for shard in shards]
        assert compose(vector, partials)["count"] == tool_count(
            pooled, vector.tool_params()
        )["count"]

    def test_prevalence_composition_exact(self, multi_site_cohorts):
        shards = self._split(multi_site_cohorts)
        pooled = [record for shard in shards for record in shard]
        vector = QueryVector(intent="prevalence", outcome="stroke")
        partials = [tool_prevalence(shard, vector.tool_params()) for shard in shards]
        composed = compose(vector, partials)
        reference = tool_prevalence(pooled, vector.tool_params())
        assert composed["positives"] == reference["positives"]
        assert composed["n"] == reference["n"]

    def test_mean_composition_exact(self, multi_site_cohorts):
        shards = self._split(multi_site_cohorts)
        pooled = [record for shard in shards for record in shard]
        vector = QueryVector(intent="mean", target_field="vitals.sbp")
        partials = [tool_numeric_summary(shard, vector.tool_params()) for shard in shards]
        composed = compose(vector, partials)
        values = [record["vitals"]["sbp"] for record in pooled]
        assert composed["mean"] == pytest.approx(np.mean(values))
        assert composed["count"] == len(values)
        assert composed["variance"] == pytest.approx(np.var(values))

    def test_histogram_composition_exact(self, multi_site_cohorts):
        shards = self._split(multi_site_cohorts)
        pooled = [record for shard in shards for record in shard]
        vector = QueryVector(
            intent="histogram",
            target_field="vitals.bmi",
            bins=8,
            value_range=[15.0, 55.0],
        )
        partials = [tool_histogram(shard, vector.tool_params()) for shard in shards]
        composed = compose(vector, partials)
        reference = tool_histogram(pooled, vector.tool_params())
        assert composed["counts"] == reference["counts"]

    def test_train_composition_weighted(self, multi_site_cohorts):
        from repro.analytics.tools import tool_local_train

        shards = self._split(multi_site_cohorts)
        vector = QueryVector(intent="train", outcome="stroke")
        partials = [
            tool_local_train(shard, {**vector.tool_params(), "epochs": 1})
            for shard in shards
        ]
        composed = compose(vector, partials)
        assert composed["n"] == sum(partial["n"] for partial in partials)
        assert len(composed["params"]) == 2

    def test_compose_empty_rejected(self):
        with pytest.raises(QueryError):
            compose(QueryVector(intent="count"), [])


class TestSitePruning:
    CATALOG = [
        DatasetRef("h0", "ds0", 100),
        DatasetRef("h1", "ds1", 200),
        DatasetRef("h2", "ds2", 50),
    ]

    def test_site_filter_prunes_dispatch(self):
        vector = QueryVector(intent="count", filters={"site": "h1"})
        tasks = decompose(vector, self.CATALOG)
        assert len(tasks) == 1
        assert tasks[0].site == "h1"
        # The predicate still travels with the task (harmless double check).
        assert tasks[0].params["filters"] == {"site": "h1"}

    def test_unknown_site_rejected(self):
        vector = QueryVector(intent="count", filters={"site": "ghost"})
        with pytest.raises(QueryError):
            decompose(vector, self.CATALOG)

    def test_no_site_filter_fans_out(self):
        tasks = decompose(QueryVector(intent="count"), self.CATALOG)
        assert len(tasks) == 3
