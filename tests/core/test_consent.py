"""Patient consent: on-chain opt-out enforced in the off-chain control path."""

import pytest

from repro.common.signatures import KeyPair
from repro.core.platform import MedicalBlockchainNetwork, PlatformConfig
from repro.core.queryservice import GlobalQueryService
from repro.query.vector import QueryVector


@pytest.fixture(scope="module")
def consent_world(multi_site_cohorts):
    platform = MedicalBlockchainNetwork(
        PlatformConfig(site_count=2, consensus="poa", include_fda=False, seed=61)
    )
    cohorts = {
        site: multi_site_cohorts[f"hospital-{index}"]
        for index, site in enumerate(platform.site_names)
    }
    for site, records in cohorts.items():
        platform.register_dataset(site, f"emr-{site}", records)
    researcher = KeyPair.generate("consent-researcher")
    for site in platform.site_names:
        platform.grant_access(site, f"emr-{site}", researcher.address, "research")
    service = GlobalQueryService(platform, researcher)
    return platform, service, cohorts


def _count(service):
    return service.execute(QueryVector(intent="count", purpose="research")).result["count"]


def test_consent_contract_deployed(consent_world):
    platform, __, ___ = consent_world
    assert platform.contracts.consent_contract_id
    node = platform.nodes["hospital-0"]
    assert node.call_view(
        platform.contracts.consent_contract_id,
        "check_consent",
        {"patient_pseudo_id": "anyone", "scope": "research"},
    ) is True  # opt-in by default


def test_optout_removes_records_from_analytics(consent_world):
    platform, service, cohorts = consent_world
    baseline = _count(service)
    victims = [record["patient_id"] for record in cohorts["hospital-0"][:5]]
    for patient in victims:
        platform.set_patient_consent("hospital-0", patient, "research", allow=False)
    assert _count(service) == baseline - 5


def test_optout_is_scope_specific(consent_world):
    platform, service, cohorts = consent_world
    node = platform.nodes["hospital-0"]
    patient = cohorts["hospital-0"][0]["patient_id"]
    # Opted out of "research" above, but a different scope is unaffected.
    assert node.call_view(
        platform.contracts.consent_contract_id,
        "check_consent",
        {"patient_pseudo_id": patient, "scope": "billing"},
    ) is True
    assert node.call_view(
        platform.contracts.consent_contract_id,
        "check_consent",
        {"patient_pseudo_id": patient, "scope": "research"},
    ) is False


def test_optback_in_restores_records(consent_world):
    platform, service, cohorts = consent_world
    before = _count(service)
    patient = cohorts["hospital-0"][0]["patient_id"]
    platform.set_patient_consent("hospital-0", patient, "research", allow=True)
    assert _count(service) == before + 1


def test_optout_count_on_chain(consent_world):
    platform, __, ___ = consent_world
    node = platform.nodes["hospital-1"]
    count = node.call_view(
        platform.contracts.consent_contract_id,
        "optout_count",
        {"scope": "research"},
    )
    assert count == 4  # 5 opted out, 1 opted back in


def test_consent_changes_emit_events(consent_world):
    platform, __, ___ = consent_world
    monitor = platform.sites["hospital-1"].monitor
    events = monitor.events_named("ConsentChanged")
    assert len(events) >= 6
    assert {"patient", "scope", "allow"} <= set(events[0].data)
