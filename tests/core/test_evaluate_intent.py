"""Federated evaluation: score a model on distributed data, no movement."""

import pytest

from repro.analytics.features import FEATURE_DIM, dataset_for
from repro.analytics.models import LogisticModel
from repro.common.errors import QueryError
from repro.common.signatures import KeyPair
from repro.core.platform import MedicalBlockchainNetwork, PlatformConfig
from repro.core.queryservice import GlobalQueryService
from repro.query.vector import QueryVector


@pytest.fixture(scope="module")
def eval_world(multi_site_cohorts):
    platform = MedicalBlockchainNetwork(
        PlatformConfig(site_count=3, consensus="poa", include_fda=False, seed=71)
    )
    for site, records in sorted(multi_site_cohorts.items()):
        platform.register_dataset(site, f"emr-{site}", records)
    researcher = KeyPair.generate("eval-researcher")
    for site in platform.site_names:
        platform.grant_access(site, f"emr-{site}", researcher.address, "research")
    service = GlobalQueryService(platform, researcher)
    # Train a model locally on pooled data (the thing we want to validate).
    pooled = [record for records in multi_site_cohorts.values() for record in records]
    X, y = dataset_for(pooled, "stroke")
    model = LogisticModel(FEATURE_DIM, seed=0)
    model.train_epochs(X, y, epochs=10, lr=0.3)
    return platform, service, model, (X, y)


def test_distributed_metrics_match_pooled_weighting(eval_world, multi_site_cohorts):
    """Sample-weighted composition of per-site accuracy equals pooled
    accuracy (accuracy is a mean over samples, so weighting is exact)."""
    __, service, model, (X, y) = eval_world
    vector = QueryVector(intent="evaluate", outcome="stroke")
    answer = service.evaluate_model(model, vector)
    pooled_accuracy = model.evaluate(X, y)["accuracy"]
    assert answer.result["n"] == len(y)
    assert answer.result["accuracy"] == pytest.approx(pooled_accuracy, abs=1e-9)
    assert 0.0 <= answer.result["auc"] <= 1.0


def test_per_site_sample_counts_reported(eval_world, multi_site_cohorts):
    __, service, model, __unused = eval_world
    vector = QueryVector(intent="evaluate", outcome="stroke")
    answer = service.evaluate_model(model, vector)
    expected = sorted(len(records) for records in multi_site_cohorts.values())
    assert sorted(answer.result["per_site_n"]) == expected


def test_filters_push_down_to_evaluation(eval_world):
    __, service, model, __unused = eval_world
    full = service.evaluate_model(
        model, QueryVector(intent="evaluate", outcome="stroke")
    )
    filtered = service.evaluate_model(
        model, QueryVector(intent="evaluate", outcome="stroke", filters={"sex": "F"})
    )
    # The filtered evaluation uses strictly fewer samples.
    assert 0 < filtered.result["n"] < full.result["n"]


def test_execute_rejects_bare_evaluate(eval_world):
    __, service, __model, __unused = eval_world
    with pytest.raises(QueryError):
        service.execute(QueryVector(intent="evaluate", outcome="stroke"))


def test_evaluate_model_rejects_other_intents(eval_world):
    __, service, model, __unused = eval_world
    with pytest.raises(QueryError):
        service.evaluate_model(model, QueryVector(intent="count"))
