"""HIE fetch intent through the query service (encrypted, schema-projected)."""

import pytest

from repro.common.errors import QueryError
from repro.common.signatures import KeyPair
from repro.core.platform import MedicalBlockchainNetwork, PlatformConfig
from repro.core.queryservice import GlobalQueryService
from repro.query.vector import QueryVector


@pytest.fixture(scope="module")
def world(multi_site_cohorts):
    platform = MedicalBlockchainNetwork(
        PlatformConfig(site_count=3, consensus="poa", include_fda=False, seed=23)
    )
    for site, records in sorted(multi_site_cohorts.items()):
        platform.register_dataset(site, f"emr-{site}", records)
    researcher = KeyPair.generate("fetch-researcher")
    for site in platform.site_names:
        platform.grant_access(site, f"emr-{site}", researcher.address, "rwe-review")
    return platform, researcher


def test_fetch_returns_all_records(world, multi_site_cohorts):
    platform, researcher = world
    service = GlobalQueryService(platform, researcher)
    vector = QueryVector(intent="fetch", purpose="rwe-review")
    answer = service.execute(vector)
    expected = sum(len(records) for records in multi_site_cohorts.values())
    assert answer.result["count"] == expected
    assert answer.bytes_on_wire > 0


def test_fetch_projects_requested_schema(world):
    platform, researcher = world
    service = GlobalQueryService(platform, researcher)
    vector = QueryVector(
        intent="fetch",
        purpose="rwe-review",
        requested_schema=["patient_id", "vitals", "outcomes"],
    )
    answer = service.execute(vector)
    record = answer.result["records"][0]
    assert set(record) == {"patient_id", "vitals", "outcomes"}


def test_fetch_denied_without_grant(world):
    platform, __ = world
    stranger = KeyPair.generate("fetch-stranger")
    service = GlobalQueryService(platform, stranger)
    vector = QueryVector(intent="fetch", purpose="rwe-review")
    with pytest.raises(QueryError):
        service.execute(vector)


def test_fetch_partial_grants_partial_results(world):
    platform, __ = world
    partial_user = KeyPair.generate("fetch-partial")
    platform.grant_access(
        "hospital-0", "emr-hospital-0", partial_user.address, "rwe-review"
    )
    service = GlobalQueryService(platform, partial_user)
    vector = QueryVector(intent="fetch", purpose="rwe-review")
    answer = service.execute(vector)
    assert set(answer.site_partials) == {"hospital-0"}
    assert set(answer.failed_sites) == {"hospital-1", "hospital-2"}


def test_fetch_is_audited(world):
    platform, __ = world
    audit = platform.sites["hospital-0"].exchange.audit
    assert audit.verify()
    actions = {entry.action for entry in audit.entries()}
    assert {"request", "release"} <= actions
