"""Global query service tests (Figure 5 end to end)."""

import numpy as np
import pytest

from repro.common.errors import QueryError
from repro.common.signatures import KeyPair
from repro.core.platform import MedicalBlockchainNetwork, PlatformConfig
from repro.core.queryservice import GlobalQueryService
from repro.core.strategies import compute_to_data, data_to_compute
from repro.query.vector import QueryVector


@pytest.fixture(scope="module")
def world(multi_site_cohorts):
    platform = MedicalBlockchainNetwork(
        PlatformConfig(site_count=3, consensus="poa", include_fda=False, seed=9)
    )
    for site, records in sorted(multi_site_cohorts.items()):
        platform.register_dataset(site, f"emr-{site}", records)
    researcher = KeyPair.generate("query-researcher")
    for site in platform.site_names:
        platform.grant_access(site, f"emr-{site}", researcher.address, "research")
    service = GlobalQueryService(platform, researcher)
    return platform, researcher, service


def pooled(multi_site_cohorts):
    return [record for records in multi_site_cohorts.values() for record in records]


class TestQueries:
    def test_count_matches_ground_truth(self, world, multi_site_cohorts):
        __, ___, service = world
        answer = service.ask("how many patients have diabetes")
        expected = sum(
            1 for record in pooled(multi_site_cohorts) if record["outcomes"]["diabetes"]
        )
        assert answer.result["count"] == expected

    def test_prevalence_matches_ground_truth(self, world, multi_site_cohorts):
        __, ___, service = world
        answer = service.ask("prevalence of stroke among smokers")
        records = [
            record
            for record in pooled(multi_site_cohorts)
            if record["lifestyle"]["smoker"] == 1
        ]
        expected = sum(record["outcomes"]["stroke"] for record in records) / len(records)
        assert answer.result["prevalence"] == pytest.approx(expected)

    def test_mean_matches_ground_truth(self, world, multi_site_cohorts):
        __, ___, service = world
        answer = service.ask("average systolic blood pressure for women")
        values = [
            record["vitals"]["sbp"]
            for record in pooled(multi_site_cohorts)
            if record["sex"] == "F"
        ]
        assert answer.result["mean"] == pytest.approx(np.mean(values))

    def test_histogram_composes(self, world, multi_site_cohorts):
        __, ___, service = world
        answer = service.ask("histogram of bmi between 15 and 55 with 8 bins")
        assert sum(answer.result["counts"]) == len(pooled(multi_site_cohorts))

    def test_partials_per_site(self, world):
        platform, __, service = world
        answer = service.ask("how many patients have cancer")
        assert set(answer.site_partials) == set(platform.site_names)

    def test_latency_and_bytes_reported(self, world):
        __, ___, service = world
        answer = service.ask("how many women over 50")
        assert answer.latency_s > 0
        assert answer.bytes_on_wire > 0

    def test_federated_train_query(self, world, multi_site_cohorts):
        __, ___, service = world
        vector = QueryVector(intent="train", outcome="stroke", rounds=6)
        model = service.train_model(vector)
        from repro.analytics.features import dataset_for

        X, y = dataset_for(pooled(multi_site_cohorts), "stroke")
        metrics = model.evaluate(X, y)
        assert metrics["auc"] > 0.62

    def test_raw_records_never_in_result(self, world):
        """Privacy: only aggregates cross the wire."""
        __, ___, service = world
        answer = service.ask("how many patients have diabetes")
        text = str(answer.result) + str(answer.site_partials)
        assert "patient_id" not in text
        assert "national_id_hash" not in text


class TestStrategies:
    def test_both_strategies_same_answer(self, world):
        platform, researcher, service = world
        vector = QueryVector(
            intent="prevalence", outcome="stroke", purpose="research"
        )
        to_data = compute_to_data(service, vector)
        to_compute = data_to_compute(platform, researcher, vector)
        assert to_data.result["positives"] == to_compute.result["positives"]
        assert to_data.result["n"] == to_compute.result["n"]

    def test_compute_to_data_moves_fewer_bytes(self, world):
        platform, researcher, service = world
        vector = QueryVector(intent="count", purpose="research")
        to_data = compute_to_data(service, vector)
        to_compute = data_to_compute(platform, researcher, vector)
        assert to_data.bytes_moved < to_compute.bytes_moved / 10

    def test_data_to_compute_touches_all_records(self, world, multi_site_cohorts):
        platform, researcher, __ = world
        vector = QueryVector(intent="count", purpose="research")
        report = data_to_compute(platform, researcher, vector)
        assert report.records_touched == len(pooled(multi_site_cohorts))


class TestFailureModes:
    def test_unknown_tool_task_fails_fast(self, world):
        platform, researcher, service = world
        vector = QueryVector(intent="cluster", purpose="research")
        # cluster is registered, so instead test with an unregistered purpose
        # against a dataset with no grant for that purpose.
        vector = QueryVector(intent="count", purpose="unauthorized-purpose")
        with pytest.raises(QueryError):
            service.execute(vector, timeout_s=90)

    def test_no_datasets_rejected(self):
        platform = MedicalBlockchainNetwork(
            PlatformConfig(site_count=1, consensus="poa", include_fda=False, seed=1)
        )
        researcher = KeyPair.generate("lonely-researcher")
        service = GlobalQueryService(platform, researcher)
        with pytest.raises(QueryError):
            service.ask("how many patients have diabetes")
