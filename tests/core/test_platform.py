"""Platform tests: boot, registration, grants, catalog, control path."""

import pytest

from repro.common.errors import AccessDeniedError
from repro.common.signatures import KeyPair
from repro.core.platform import MedicalBlockchainNetwork, PlatformConfig


@pytest.fixture(scope="module")
def platform(multi_site_cohorts):
    """Booted 3-site PoA platform with one dataset per site."""
    network = MedicalBlockchainNetwork(
        PlatformConfig(site_count=3, consensus="poa", include_fda=True, seed=42)
    )
    formats = ["hl7v2", "fhirjson", "legacycsv"]
    for index, (site, records) in enumerate(sorted(multi_site_cohorts.items())):
        network.register_dataset(site, f"emr-{site}", records, fmt=formats[index])
    return network


@pytest.fixture(scope="module")
def researcher(platform):
    keypair = KeyPair.generate("test-researcher")
    for site in platform.site_names:
        platform.grant_access(site, f"emr-{site}", keypair.address, "research")
    return keypair


class TestBoot:
    def test_all_nodes_running(self, platform):
        assert len(platform.nodes) == 4  # 3 hospitals + fda
        heights = {node.head.height for node in platform.nodes.values()}
        assert len(heights) == 1

    def test_contracts_deployed_everywhere(self, platform):
        for node in platform.nodes.values():
            info = node.executor.contract_info(
                node.state, platform.contracts.data_contract_id
            )
            assert info is not None and info.name == "data-registry"

    def test_three_contract_categories(self, platform):
        contracts = platform.contracts
        assert len(
            {
                contracts.data_contract_id,
                contracts.analytics_contract_id,
                contracts.trial_contract_id,
            }
        ) == 3

    def test_tools_registered_on_chain(self, platform):
        node = platform.nodes["hospital-0"]
        tool = node.call_view(
            platform.contracts.analytics_contract_id,
            "get_tool",
            {"tool_id": "prevalence"},
        )
        assert tool is not None

    def test_state_roots_identical(self, platform):
        roots = {node.state.state_root() for node in platform.nodes.values()}
        assert len(roots) == 1

    def test_unknown_consensus_rejected(self):
        with pytest.raises(Exception):
            MedicalBlockchainNetwork(PlatformConfig(site_count=1, consensus="magic"))


class TestDatasets:
    def test_catalog_lists_every_dataset(self, platform, multi_site_cohorts):
        catalog = platform.catalog()
        assert len(catalog) == 3
        assert {ref.site for ref in catalog} == set(multi_site_cohorts)

    def test_record_counts_match(self, platform, multi_site_cohorts):
        for ref in platform.catalog():
            assert ref.record_count == len(multi_site_cohorts[ref.site])

    def test_anchor_matches_store(self, platform):
        site = platform.sites["hospital-0"]
        entry = site.node.call_view(
            platform.contracts.data_contract_id,
            "get_dataset",
            {"dataset_id": "emr-hospital-0"},
        )
        assert entry["merkle_root"] == site.store.anchor("emr-hospital-0").root_hex

    def test_duplicate_registration_fails(self, platform, multi_site_cohorts):
        with pytest.raises(Exception):
            platform.register_dataset(
                "hospital-0", "emr-hospital-0", multi_site_cohorts["hospital-0"]
            )


class TestControlPath:
    def test_task_executes_with_grant(self, platform, researcher):
        """Full Figure 1 path: on-chain request -> event -> local execution
        -> on-chain result hash."""
        from repro.chain.transactions import make_call

        node = platform.nodes["hospital-0"]
        params_ref = platform.depot.put({"outcome": "stroke", "filters": {}})
        tx = make_call(
            researcher,
            platform.contracts.analytics_contract_id,
            "request_task",
            {
                "task_id": "ctl-test-1",
                "tool_id": "prevalence",
                "dataset_ids": ["emr-hospital-1"],
                "params": {"params_ref": params_ref},
                "purpose": "research",
            },
            nonce=node.state.nonce(researcher.address),
            timestamp_ms=int(platform.kernel.now * 1000),
        )
        node.submit_tx(tx)
        control = platform.sites["hospital-1"].control
        platform.kernel.run(
            until=platform.kernel.now + 120,
            stop_when=lambda: "ctl-test-1" in control.completed,
        )
        result = control.completed["ctl-test-1"]
        assert result.result["n"] > 0
        # Result hash is anchored on chain.
        task = node.call_view(
            platform.contracts.analytics_contract_id,
            "get_task",
            {"task_id": "ctl-test-1"},
        )
        platform.run(30)
        task = node.call_view(
            platform.contracts.analytics_contract_id,
            "get_task",
            {"task_id": "ctl-test-1"},
        )
        assert task["status"] == "completed"
        assert task["result_hash"] == result.result_hash

    def test_task_denied_without_grant(self, platform):
        from repro.chain.transactions import make_call

        stranger = KeyPair.generate("stranger-without-grant")
        node = platform.nodes["hospital-0"]
        params_ref = platform.depot.put({"outcome": "stroke", "filters": {}})
        tx = make_call(
            stranger,
            platform.contracts.analytics_contract_id,
            "request_task",
            {
                "task_id": "ctl-test-denied",
                "tool_id": "prevalence",
                "dataset_ids": ["emr-hospital-1"],
                "params": {"params_ref": params_ref},
                "purpose": "research",
            },
            nonce=node.state.nonce(stranger.address),
            timestamp_ms=int(platform.kernel.now * 1000),
        )
        node.submit_tx(tx)
        control = platform.sites["hospital-1"].control
        platform.kernel.run(
            until=platform.kernel.now + 120,
            stop_when=lambda: "ctl-test-denied" in control.rejected,
        )
        assert "ctl-test-denied" in control.rejected
        assert "no on-chain grant" in control.rejected["ctl-test-denied"]

    def test_monitor_saw_task_events(self, platform):
        monitor = platform.sites["hospital-1"].monitor
        assert monitor.events_named("TaskRequested")


class TestExchange:
    def test_exchange_respects_grants(self, platform, researcher):
        from repro.sharing.encryption import decrypt

        exchange = platform.sites["hospital-0"].exchange
        receipt = exchange.request_records(researcher, "emr-hospital-0", "research")
        payload = decrypt(researcher.private, receipt.envelope)
        assert len(payload["records"]) == receipt.record_count

    def test_exchange_denies_strangers(self, platform):
        stranger = KeyPair.generate("exchange-stranger")
        exchange = platform.sites["hospital-0"].exchange
        with pytest.raises(AccessDeniedError):
            exchange.request_records(stranger, "emr-hospital-0", "research")
        assert any(entry.action == "deny" for entry in exchange.audit.entries())

    def test_audit_chain_valid(self, platform):
        for site in platform.sites.values():
            assert site.exchange.audit.verify()

    def test_fda_collects_under_grants(self, platform):
        fda = platform.fda
        for site in platform.site_names:
            platform.grant_access(
                site, f"emr-{site}", fda.keypair.address, "regulatory-review"
            )
        receipts = fda.collect(
            [platform.sites[name].exchange for name in platform.site_names],
            {name: f"emr-{name}" for name in platform.site_names},
            "regulatory-review",
        )
        assert len(receipts) == 3
        pooled = fda.decrypt_all()
        assert len(pooled) == sum(r.record_count for r in receipts)


class TestSiteOracle:
    """Figure 3: each site's oracle bridges chain and external world."""

    def test_endpoints_registered(self, platform):
        oracle = platform.sites["hospital-0"].monitor.oracle
        assert {"list_datasets", "record_count", "verify_dataset"} <= set(
            oracle.endpoints()
        )

    def test_list_and_count(self, platform, multi_site_cohorts):
        oracle = platform.sites["hospital-0"].monitor.oracle
        listed = oracle.call("list_datasets")
        assert listed["dataset_ids"] == ["emr-hospital-0"]
        count = oracle.call("record_count", {"dataset_id": "emr-hospital-0"})
        assert count["count"] == len(multi_site_cohorts["hospital-0"])

    def test_verify_dataset_intact(self, platform):
        oracle = platform.sites["hospital-1"].monitor.oracle
        result = oracle.call("verify_dataset", {"dataset_id": "emr-hospital-1"})
        assert result == {
            "dataset_id": "emr-hospital-1", "registered": True, "intact": True,
        }

    def test_verify_dataset_unregistered(self, platform):
        oracle = platform.sites["hospital-0"].monitor.oracle
        result = oracle.call("verify_dataset", {"dataset_id": "ghost"})
        assert not result["registered"]

    def test_calls_are_audited(self, platform):
        oracle = platform.sites["hospital-0"].monitor.oracle
        before = len(oracle.call_log)
        oracle.call("list_datasets")
        assert len(oracle.call_log) == before + 1
        assert oracle.call_log[-1].ok
