"""Contract runtime tests: deploy, call, storage, events, rollback, views."""

import pytest

from repro.chain.executor import ExecutionContext
from repro.chain.state import StateDB
from repro.chain.transactions import make_call, make_deploy
from repro.common.errors import ContractError
from repro.contracts.library import COUNTER_SOURCE
from repro.contracts.runtime import ContractExecutor


@pytest.fixture()
def env(alice):
    state = StateDB()
    state.credit(alice.address, 10_000)
    executor = ContractExecutor()
    ctx = ExecutionContext(block_height=1, timestamp_ms=1000)
    return state, executor, ctx


def deploy_counter(state, executor, ctx, alice, nonce=0, start=0):
    tx = make_deploy(alice, "counter", COUNTER_SOURCE, init={"start": start}, nonce=nonce)
    receipt = executor.apply(state, tx, ctx)
    assert receipt.success, receipt.error
    return receipt.output


class TestDeploy:
    def test_deploy_returns_contract_id(self, env, alice):
        state, executor, ctx = env
        contract_id = deploy_counter(state, executor, ctx, alice)
        assert len(contract_id) == 40

    def test_init_runs_on_deploy(self, env, alice):
        state, executor, ctx = env
        contract_id = deploy_counter(state, executor, ctx, alice, start=42)
        assert executor.execute_view(state, contract_id, "get") == 42

    def test_metadata_recorded(self, env, alice):
        state, executor, ctx = env
        contract_id = deploy_counter(state, executor, ctx, alice)
        info = executor.contract_info(state, contract_id)
        assert info.owner == alice.address
        assert info.name == "counter"
        assert info.deployed_at_height == 1

    def test_bad_source_fails_cleanly(self, env, alice):
        state, executor, ctx = env
        tx = make_deploy(alice, "bad", "import os\n", nonce=0)
        receipt = executor.apply(state, tx, ctx)
        assert not receipt.success

    def test_contract_ids_distinct_per_nonce(self, env, alice):
        state, executor, ctx = env
        a = deploy_counter(state, executor, ctx, alice, nonce=0)
        b = deploy_counter(state, executor, ctx, alice, nonce=1)
        assert a != b

    def test_list_contracts(self, env, alice):
        state, executor, ctx = env
        deploy_counter(state, executor, ctx, alice)
        assert len(executor.list_contracts(state)) == 1


class TestCall:
    def test_call_mutates_storage(self, env, alice):
        state, executor, ctx = env
        contract_id = deploy_counter(state, executor, ctx, alice, start=5)
        tx = make_call(alice, contract_id, "increment", {"by": 3}, nonce=1)
        receipt = executor.apply(state, tx, ctx)
        assert receipt.success
        assert receipt.output == 8
        assert executor.execute_view(state, contract_id, "get") == 8

    def test_events_emitted(self, env, alice):
        state, executor, ctx = env
        contract_id = deploy_counter(state, executor, ctx, alice)
        tx = make_call(alice, contract_id, "increment", nonce=1)
        receipt = executor.apply(state, tx, ctx)
        assert len(receipt.events) == 1
        assert receipt.events[0].name == "Incremented"
        assert receipt.events[0].tx_id == tx.tx_id

    def test_unknown_contract(self, env, alice):
        state, executor, ctx = env
        tx = make_call(alice, "00" * 20, "get", nonce=0)
        receipt = executor.apply(state, tx, ctx)
        assert not receipt.success
        assert "unknown contract" in receipt.error

    def test_unknown_method(self, env, alice):
        state, executor, ctx = env
        contract_id = deploy_counter(state, executor, ctx, alice)
        tx = make_call(alice, contract_id, "destroy", nonce=1)
        receipt = executor.apply(state, tx, ctx)
        assert not receipt.success

    def test_failed_call_rolls_back_storage(self, env, alice):
        state, executor, ctx = env
        source = (
            "def init():\n"
            "    storage_set('v', 1)\n"
            "def bad():\n"
            "    storage_set('v', 999)\n"
            "    require(False, 'boom')\n"
            "def get():\n"
            "    return storage_get('v')\n"
        )
        tx = make_deploy(alice, "rollback", source, nonce=0)
        contract_id = executor.apply(state, tx, ctx).output
        call = make_call(alice, contract_id, "bad", nonce=1)
        receipt = executor.apply(state, call, ctx)
        assert not receipt.success
        assert "boom" in receipt.error
        assert executor.execute_view(state, contract_id, "get") == 1

    def test_failed_call_still_bumps_nonce(self, env, alice):
        state, executor, ctx = env
        contract_id = deploy_counter(state, executor, ctx, alice)
        call = make_call(alice, contract_id, "nope", nonce=1)
        executor.apply(state, call, ctx)
        assert state.nonce(alice.address) == 2

    def test_out_of_gas_call(self, env, alice):
        state, executor, ctx = env
        source = (
            "def spin():\n"
            "    i = 0\n"
            "    while i < 1000000:\n"
            "        i = i + 1\n"
            "    return i\n"
        )
        tx = make_deploy(alice, "spinner", source, nonce=0)
        contract_id = executor.apply(state, tx, ctx).output
        call = make_call(alice, contract_id, "spin", nonce=1, gas_limit=20_000)
        receipt = executor.apply(state, call, ctx)
        assert not receipt.success
        assert receipt.gas_used <= 20_000 + 5_000

    def test_sender_visible_to_contract(self, env, alice):
        state, executor, ctx = env
        source = "def who():\n    return sender()\n"
        tx = make_deploy(alice, "who", source, nonce=0)
        contract_id = executor.apply(state, tx, ctx).output
        call = make_call(alice, contract_id, "who", nonce=1)
        assert executor.apply(state, call, ctx).output == alice.address

    def test_block_context_visible(self, env, alice):
        state, executor, ctx = env
        source = "def h():\n    return block_height()\n"
        tx = make_deploy(alice, "ctx", source, nonce=0)
        contract_id = executor.apply(state, tx, ctx).output
        call = make_call(alice, contract_id, "h", nonce=1)
        assert executor.apply(state, call, ctx).output == 1

    def test_float_storage_write_rejected(self, env, alice):
        state, executor, ctx = env
        source = "def f(x):\n    storage_set('k', x)\n    return 1\n"
        tx = make_deploy(alice, "floaty", source, nonce=0)
        contract_id = executor.apply(state, tx, ctx).output
        # Host call receives a float through args -> _check_value rejects.
        call = make_call(alice, contract_id, "f", {"x": 1}, nonce=1)
        assert executor.apply(state, call, ctx).success


class TestViews:
    def test_view_does_not_mutate(self, env, alice):
        state, executor, ctx = env
        contract_id = deploy_counter(state, executor, ctx, alice, start=1)
        root_before = state.state_root()
        executor.execute_view(state, contract_id, "get")
        assert state.state_root() == root_before

    def test_view_write_rejected(self, env, alice):
        state, executor, ctx = env
        contract_id = deploy_counter(state, executor, ctx, alice)
        with pytest.raises(ContractError):
            executor.execute_view(state, contract_id, "increment")

    def test_view_unknown_contract(self, env, alice):
        state, executor, ctx = env
        with pytest.raises(ContractError):
            executor.execute_view(state, "ab" * 20, "get")


class TestDeterminismAcrossExecutors:
    def test_two_executors_same_state_root(self, alice):
        """Invariant 3: identical txs produce identical state on any node."""
        results = []
        for __ in range(2):
            state = StateDB()
            state.credit(alice.address, 10_000)
            executor = ContractExecutor()
            ctx = ExecutionContext(block_height=1, timestamp_ms=1000)
            contract_id = deploy_counter(state, executor, ctx, alice)
            for nonce in range(1, 6):
                tx = make_call(alice, contract_id, "increment", {"by": nonce}, nonce=nonce)
                executor.apply(state, tx, ctx)
            results.append(state.state_root())
        assert results[0] == results[1]
