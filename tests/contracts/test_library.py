"""Tests of the three built-in platform contracts (Figure 4 categories)."""

import pytest

from repro.chain.executor import ExecutionContext
from repro.chain.state import StateDB
from repro.chain.transactions import make_call, make_deploy
from repro.contracts.library import (
    ANALYTICS_SOURCE,
    CLINICAL_TRIAL_SOURCE,
    COMPUTE_CONTRACT_SOURCE,
    DATA_REGISTRY_SOURCE,
)
from repro.contracts.runtime import ContractExecutor


@pytest.fixture()
def world(alice):
    state = StateDB()
    state.credit(alice.address, 10**9)
    executor = ContractExecutor()
    ctx = ExecutionContext(block_height=3, timestamp_ms=5000)
    return state, executor, ctx


def deploy(world, alice, source, name, nonce):
    state, executor, ctx = world
    tx = make_deploy(alice, name, source, nonce=nonce, gas_limit=10**8)
    receipt = executor.apply(state, tx, ctx)
    assert receipt.success, receipt.error
    return receipt.output


def call(world, signer, contract_id, method, args, nonce, gas=10**8):
    state, executor, ctx = world
    tx = make_call(signer, contract_id, method, args, nonce=nonce, gas_limit=gas)
    return executor.apply(state, tx, ctx)


class TestDataRegistry:
    def test_register_and_get(self, world, alice):
        cid = deploy(world, alice, DATA_REGISTRY_SOURCE, "data", 0)
        receipt = call(
            world, alice, cid, "register_dataset",
            {"dataset_id": "ds1", "site": "h0", "schema": "v1",
             "record_count": 10, "merkle_root": "ab" * 32}, 1,
        )
        assert receipt.success
        state, executor, __ = world
        entry = executor.execute_view(state, cid, "get_dataset", {"dataset_id": "ds1"})
        assert entry["owner"] == alice.address
        assert entry["record_count"] == 10

    def test_double_registration_rejected(self, world, alice):
        cid = deploy(world, alice, DATA_REGISTRY_SOURCE, "data", 0)
        args = {"dataset_id": "ds1", "site": "h0", "schema": "v1",
                "record_count": 1, "merkle_root": "00" * 32}
        assert call(world, alice, cid, "register_dataset", args, 1).success
        assert not call(world, alice, cid, "register_dataset", args, 2).success

    def test_owner_access_implicit(self, world, alice):
        cid = deploy(world, alice, DATA_REGISTRY_SOURCE, "data", 0)
        call(world, alice, cid, "register_dataset",
             {"dataset_id": "ds1", "site": "h0", "schema": "v1",
              "record_count": 1, "merkle_root": "00" * 32}, 1)
        state, executor, __ = world
        assert executor.execute_view(
            state, cid, "check_access",
            {"dataset_id": "ds1", "grantee": alice.address,
             "purpose": "anything", "now_ms": 0},
        )

    def test_grant_and_check_access(self, world, alice, bob):
        cid = deploy(world, alice, DATA_REGISTRY_SOURCE, "data", 0)
        call(world, alice, cid, "register_dataset",
             {"dataset_id": "ds1", "site": "h0", "schema": "v1",
              "record_count": 1, "merkle_root": "00" * 32}, 1)
        state, executor, __ = world
        check = {"dataset_id": "ds1", "grantee": bob.address,
                 "purpose": "research", "now_ms": 10}
        assert not executor.execute_view(state, cid, "check_access", check)
        assert call(world, alice, cid, "grant_access",
                    {"dataset_id": "ds1", "grantee": bob.address,
                     "purpose": "research", "expires_ms": -1}, 2).success
        assert executor.execute_view(state, cid, "check_access", check)

    def test_purpose_is_fine_grained(self, world, alice, bob):
        cid = deploy(world, alice, DATA_REGISTRY_SOURCE, "data", 0)
        call(world, alice, cid, "register_dataset",
             {"dataset_id": "ds1", "site": "h0", "schema": "v1",
              "record_count": 1, "merkle_root": "00" * 32}, 1)
        call(world, alice, cid, "grant_access",
             {"dataset_id": "ds1", "grantee": bob.address,
              "purpose": "research", "expires_ms": -1}, 2)
        state, executor, __ = world
        assert not executor.execute_view(
            state, cid, "check_access",
            {"dataset_id": "ds1", "grantee": bob.address,
             "purpose": "marketing", "now_ms": 0},
        )

    def test_grant_expiry(self, world, alice, bob):
        cid = deploy(world, alice, DATA_REGISTRY_SOURCE, "data", 0)
        call(world, alice, cid, "register_dataset",
             {"dataset_id": "ds1", "site": "h0", "schema": "v1",
              "record_count": 1, "merkle_root": "00" * 32}, 1)
        call(world, alice, cid, "grant_access",
             {"dataset_id": "ds1", "grantee": bob.address,
              "purpose": "research", "expires_ms": 1000}, 2)
        state, executor, __ = world
        base = {"dataset_id": "ds1", "grantee": bob.address, "purpose": "research"}
        assert executor.execute_view(state, cid, "check_access", {**base, "now_ms": 999})
        assert not executor.execute_view(state, cid, "check_access", {**base, "now_ms": 1001})

    def test_only_owner_grants(self, world, alice, bob):
        cid = deploy(world, alice, DATA_REGISTRY_SOURCE, "data", 0)
        call(world, alice, cid, "register_dataset",
             {"dataset_id": "ds1", "site": "h0", "schema": "v1",
              "record_count": 1, "merkle_root": "00" * 32}, 1)
        receipt = call(world, bob, cid, "grant_access",
                       {"dataset_id": "ds1", "grantee": bob.address,
                        "purpose": "research", "expires_ms": -1}, 0)
        assert not receipt.success

    def test_revocation(self, world, alice, bob):
        cid = deploy(world, alice, DATA_REGISTRY_SOURCE, "data", 0)
        call(world, alice, cid, "register_dataset",
             {"dataset_id": "ds1", "site": "h0", "schema": "v1",
              "record_count": 1, "merkle_root": "00" * 32}, 1)
        call(world, alice, cid, "grant_access",
             {"dataset_id": "ds1", "grantee": bob.address,
              "purpose": "research", "expires_ms": -1}, 2)
        call(world, alice, cid, "revoke_access",
             {"dataset_id": "ds1", "grantee": bob.address, "purpose": "research"}, 3)
        state, executor, __ = world
        assert not executor.execute_view(
            state, cid, "check_access",
            {"dataset_id": "ds1", "grantee": bob.address,
             "purpose": "research", "now_ms": 0},
        )

    def test_list_datasets(self, world, alice):
        cid = deploy(world, alice, DATA_REGISTRY_SOURCE, "data", 0)
        for index in range(3):
            call(world, alice, cid, "register_dataset",
                 {"dataset_id": f"ds{index}", "site": "h0", "schema": "v1",
                  "record_count": index, "merkle_root": "00" * 32}, index + 1)
        state, executor, __ = world
        listed = executor.execute_view(state, cid, "list_datasets")
        assert [d["dataset_id"] for d in listed] == ["ds0", "ds1", "ds2"]


class TestAnalyticsContract:
    def _with_tool(self, world, alice):
        cid = deploy(world, alice, ANALYTICS_SOURCE, "analytics", 0)
        call(world, alice, cid, "register_tool",
             {"tool_id": "prevalence", "code_hash": "cc" * 32,
              "description": "outcome prevalence"}, 1)
        return cid

    def test_task_lifecycle(self, world, alice, bob):
        cid = self._with_tool(world, alice)
        receipt = call(world, bob, cid, "request_task",
                       {"task_id": "t1", "tool_id": "prevalence",
                        "dataset_ids": ["ds1"], "params": {}, "purpose": "research"}, 0)
        assert receipt.success
        assert any(event.name == "TaskRequested" for event in receipt.events)
        done = call(world, alice, cid, "post_result",
                    {"task_id": "t1", "result_hash": "dd" * 32, "summary": {"n": 5}}, 2)
        assert done.success
        state, executor, __ = world
        task = executor.execute_view(state, cid, "get_task", {"task_id": "t1"})
        assert task["status"] == "completed"
        assert task["executor"] == alice.address

    def test_unknown_tool_rejected(self, world, alice, bob):
        cid = self._with_tool(world, alice)
        receipt = call(world, bob, cid, "request_task",
                       {"task_id": "t1", "tool_id": "ghost", "dataset_ids": [],
                        "params": {}, "purpose": "x"}, 0)
        assert not receipt.success

    def test_duplicate_task_id_rejected(self, world, alice, bob):
        cid = self._with_tool(world, alice)
        args = {"task_id": "t1", "tool_id": "prevalence", "dataset_ids": [],
                "params": {}, "purpose": "x"}
        assert call(world, bob, cid, "request_task", args, 0).success
        assert not call(world, bob, cid, "request_task", args, 1).success

    def test_fail_task(self, world, alice, bob):
        cid = self._with_tool(world, alice)
        call(world, bob, cid, "request_task",
             {"task_id": "t1", "tool_id": "prevalence", "dataset_ids": [],
              "params": {}, "purpose": "x"}, 0)
        receipt = call(world, alice, cid, "fail_task",
                       {"task_id": "t1", "reason": "access denied"}, 2)
        assert receipt.success
        state, executor, __ = world
        assert executor.execute_view(state, cid, "get_task", {"task_id": "t1"})["status"] == "failed"

    def test_post_result_requires_pending(self, world, alice, bob):
        cid = self._with_tool(world, alice)
        call(world, bob, cid, "request_task",
             {"task_id": "t1", "tool_id": "prevalence", "dataset_ids": [],
              "params": {}, "purpose": "x"}, 0)
        call(world, alice, cid, "post_result",
             {"task_id": "t1", "result_hash": "aa" * 32, "summary": {}}, 2)
        again = call(world, alice, cid, "post_result",
                     {"task_id": "t1", "result_hash": "bb" * 32, "summary": {}}, 3)
        assert not again.success


class TestClinicalTrialContract:
    def _registered(self, world, alice):
        cid = deploy(world, alice, CLINICAL_TRIAL_SOURCE, "trial", 0)
        receipt = call(world, alice, cid, "register_trial",
                       {"trial_id": "T1", "protocol_hash": "ee" * 32,
                        "outcomes": ["stroke", "mortality"], "target_enrollment": 2}, 1)
        assert receipt.success
        return cid

    def test_enrollment_flow(self, world, alice, bob):
        cid = self._registered(world, alice)
        first = call(world, bob, cid, "enroll",
                     {"trial_id": "T1", "patient_pseudo_id": "p1",
                      "site": "h0", "arm": "treatment"}, 0)
        assert first.success and first.output == 1
        second = call(world, bob, cid, "enroll",
                      {"trial_id": "T1", "patient_pseudo_id": "p2",
                       "site": "h1", "arm": "control"}, 1)
        assert any(e.name == "RecruitmentComplete" for e in second.events)
        state, executor, __ = world
        assert executor.execute_view(state, cid, "get_trial", {"trial_id": "T1"})["status"] == "active"

    def test_double_enrollment_rejected(self, world, alice, bob):
        cid = self._registered(world, alice)
        args = {"trial_id": "T1", "patient_pseudo_id": "p1", "site": "h0", "arm": "treatment"}
        assert call(world, bob, cid, "enroll", args, 0).success
        assert not call(world, bob, cid, "enroll", args, 1).success

    def test_registered_outcome_reporting(self, world, alice, bob):
        cid = self._registered(world, alice)
        call(world, bob, cid, "enroll",
             {"trial_id": "T1", "patient_pseudo_id": "p1", "site": "h0",
              "arm": "treatment"}, 0)
        receipt = call(world, bob, cid, "report_outcome",
                       {"trial_id": "T1", "patient_pseudo_id": "p1",
                        "outcome": "stroke", "value_milli": 1000, "data_hash": "aa" * 32}, 1)
        assert receipt.success

    def test_outcome_switching_detected_and_rejected(self, world, alice, bob):
        cid = self._registered(world, alice)
        call(world, bob, cid, "enroll",
             {"trial_id": "T1", "patient_pseudo_id": "p1", "site": "h0",
              "arm": "treatment"}, 0)
        receipt = call(world, bob, cid, "report_outcome",
                       {"trial_id": "T1", "patient_pseudo_id": "p1",
                        "outcome": "surrogate_marker", "value_milli": 1,
                        "data_hash": "aa" * 32}, 1)
        assert not receipt.success  # rejected on chain

    def test_adverse_event_counting(self, world, alice, bob):
        cid = self._registered(world, alice)
        call(world, bob, cid, "enroll",
             {"trial_id": "T1", "patient_pseudo_id": "p1", "site": "h0",
              "arm": "treatment"}, 0)
        for index in range(3):
            receipt = call(world, bob, cid, "report_adverse_event",
                           {"trial_id": "T1", "patient_pseudo_id": "p1",
                            "severity": 2, "description_hash": "bb" * 32}, index + 1)
            assert receipt.success
        state, executor, __ = world
        assert executor.execute_view(state, cid, "adverse_event_count", {"trial_id": "T1"}) == 3

    def test_severity_bounds(self, world, alice, bob):
        cid = self._registered(world, alice)
        call(world, bob, cid, "enroll",
             {"trial_id": "T1", "patient_pseudo_id": "p1", "site": "h0",
              "arm": "treatment"}, 0)
        receipt = call(world, bob, cid, "report_adverse_event",
                       {"trial_id": "T1", "patient_pseudo_id": "p1",
                        "severity": 9, "description_hash": "bb" * 32}, 1)
        assert not receipt.success

    def test_only_sponsor_finalizes(self, world, alice, bob):
        cid = self._registered(world, alice)
        assert not call(world, bob, cid, "finalize",
                        {"trial_id": "T1", "results_hash": "ff" * 32}, 0).success
        assert call(world, alice, cid, "finalize",
                    {"trial_id": "T1", "results_hash": "ff" * 32}, 2).success


class TestComputeContract:
    def test_matmul_on_chain(self, world, alice):
        cid = deploy(world, alice, COMPUTE_CONTRACT_SOURCE, "compute", 0)
        a = [[1, 2], [3, 4]]
        b = [[5, 6], [7, 8]]
        receipt = call(world, alice, cid, "matmul", {"a": a, "b": b, "n": 2}, 1)
        assert receipt.success
        assert receipt.output == [[19, 22], [43, 50]]

    def test_train_step_updates_weights(self, world, alice):
        cid = deploy(world, alice, COMPUTE_CONTRACT_SOURCE, "compute", 0)
        receipt = call(world, alice, cid, "train_step",
                       {"features": [[1000, 2000], [3000, 1000]],
                        "labels": [1, 0], "weights": [0, 0], "lr_milli": 100}, 1)
        assert receipt.success
        assert len(receipt.output) == 2
        state, executor, __ = world
        assert executor.execute_view(state, cid, "get_weights") == receipt.output

    def test_compute_gas_scales_with_n(self, world, alice):
        cid = deploy(world, alice, COMPUTE_CONTRACT_SOURCE, "compute", 0)
        small = call(world, alice, cid, "matmul",
                     {"a": [[1] * 3] * 3, "b": [[1] * 3] * 3, "n": 3}, 1)
        big = call(world, alice, cid, "matmul",
                   {"a": [[1] * 6] * 6, "b": [[1] * 6] * 6, "n": 6}, 2)
        from repro.contracts.gas import GAS_CALL_BASE

        assert (big.gas_used - GAS_CALL_BASE) > 4 * (small.gas_used - GAS_CALL_BASE)
