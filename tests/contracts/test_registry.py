"""ContractRegistry tests: the deploy-time static-verification gate."""

import pytest

from repro.common.errors import ContractVerificationError
from repro.common.signatures import KeyPair
from repro.contracts.library import COUNTER_SOURCE
from repro.contracts.registry import ContractRegistry

NONDETERMINISTIC_SOURCE = (
    "def draw():\n"
    "    return random()\n"
)

UNBOUNDED_SOURCE = (
    "def spin(n):\n"
    "    while True:\n"
    "        n = n + 1\n"
    "    return n\n"
)

PHI_LEAK_SOURCE = (
    "def admit_patient(patient_id, record):\n"
    '    storage_set("phi/" + patient_id, record)\n'
    "    return True\n"
)


class FakeState:
    def __init__(self):
        self.nonces = {}

    def nonce(self, address):
        return self.nonces.get(address, 0)


class FakeNode:
    def __init__(self):
        self.txs = []
        self.state = FakeState()

    def submit_tx(self, tx):
        self.txs.append(tx)


@pytest.fixture
def registry():
    return ContractRegistry(node=FakeNode(), deployer=KeyPair.generate("deployer"))


class TestVerifyGate:
    def test_nondeterministic_contract_rejected_with_typed_error(self, registry):
        with pytest.raises(ContractVerificationError) as excinfo:
            registry.deploy("rng", NONDETERMINISTIC_SOURCE, verify=True)
        error = excinfo.value
        assert "MED001" in str(error)
        assert any(f.code == "MED001" for f in error.findings)
        # The gate fires before anything touches the chain.
        assert registry.node.txs == []
        assert registry.records == []

    def test_unbounded_loop_rejected(self, registry):
        with pytest.raises(ContractVerificationError) as excinfo:
            registry.deploy("spinner", UNBOUNDED_SOURCE, verify=True)
        assert any(f.code == "MED004" for f in excinfo.value.findings)

    def test_clean_contract_deploys_with_verified_record(self, registry):
        tx = registry.deploy("counter", COUNTER_SOURCE, verify=True)
        assert registry.node.txs == [tx]
        (record,) = registry.records
        assert record.name == "counter"
        assert record.verified
        assert record.tx_id == tx.tx_id

    def test_verify_false_skips_the_gate(self, registry):
        tx = registry.deploy("rng", NONDETERMINISTIC_SOURCE, verify=False)
        assert registry.node.txs == [tx]
        assert not registry.records[0].verified

    def test_verify_by_default(self):
        registry = ContractRegistry(
            node=FakeNode(),
            deployer=KeyPair.generate("deployer"),
            verify_by_default=True,
        )
        with pytest.raises(ContractVerificationError):
            registry.deploy("rng", NONDETERMINISTIC_SOURCE)
        # Explicit verify=False overrides the registry default.
        registry.deploy("rng", NONDETERMINISTIC_SOURCE, verify=False)
        assert len(registry.node.txs) == 1

    def test_phi_escaping_contract_rejected_with_taint_trace(self, registry):
        with pytest.raises(ContractVerificationError) as excinfo:
            registry.deploy("leaky", PHI_LEAK_SOURCE, verify=True)
        error = excinfo.value
        assert "MED201" in str(error)
        (finding,) = [f for f in error.findings if f.code == "MED201"]
        # The typed error carries the full source -> path -> sink trace.
        kinds = [step["kind"] for step in finding.trace]
        assert kinds[0] == "source"
        assert kinds[-1] == "sink"
        assert finding.trace[-1]["line"] == 2  # the storage_set line
        assert "record" in finding.trace[0]["detail"]
        # Nothing was signed or submitted.
        assert registry.node.txs == []

    def test_taint_false_registry_skips_the_phi_pass(self):
        registry = ContractRegistry(
            node=FakeNode(),
            deployer=KeyPair.generate("deployer"),
            taint=False,
        )
        tx = registry.deploy("leaky", PHI_LEAK_SOURCE, verify=True)
        assert registry.node.txs == [tx]

    def test_max_gas_ceiling_enforced_at_deploy(self):
        registry = ContractRegistry(
            node=FakeNode(),
            deployer=KeyPair.generate("deployer"),
            max_gas=50,
        )
        with pytest.raises(ContractVerificationError) as excinfo:
            registry.deploy("counter", COUNTER_SOURCE, verify=True)
        assert any(f.code == "MED008" for f in excinfo.value.findings)


class TestNonceTracking:
    def test_sequential_deploys_claim_increasing_nonces(self, registry):
        tx_a = registry.deploy("a", COUNTER_SOURCE)
        tx_b = registry.deploy("b", COUNTER_SOURCE)
        tx_c = registry.deploy("c", COUNTER_SOURCE)
        assert [tx_a.nonce, tx_b.nonce, tx_c.nonce] == [0, 1, 2]

    def test_chain_nonce_advances_local_counter(self, registry):
        registry.node.state.nonces[registry.deployer.address] = 7
        tx = registry.deploy("a", COUNTER_SOURCE)
        assert tx.nonce == 7

    def test_timestamp_source_used(self):
        registry = ContractRegistry(
            node=FakeNode(),
            deployer=KeyPair.generate("deployer"),
            timestamp_source=lambda: 123_456,
        )
        tx = registry.deploy("a", COUNTER_SOURCE)
        assert tx.timestamp_ms == 123_456
