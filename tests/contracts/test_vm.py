"""MedScript VM tests: compilation, execution, determinism, gas."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ContractError, OutOfGasError
from repro.contracts.vm import GasMeter, Interpreter, compile_contract


def run(source, method, args=None, gas=10_000_000, hosts=None):
    contract = compile_contract(source)
    meter = GasMeter(gas)
    interpreter = Interpreter(contract, hosts or {}, meter)
    return interpreter.call(method, args or {}), meter


class TestCompilation:
    def test_simple_function_compiles(self):
        compiled = compile_contract("def f():\n    return 1\n")
        assert compiled.methods == ["f"]

    def test_top_level_constants(self):
        compiled = compile_contract("LIMIT = 10\ndef f():\n    return LIMIT\n")
        assert compiled.constants == {"LIMIT": 10}

    def test_docstring_allowed(self):
        compile_contract('"""doc"""\ndef f():\n    return 0\n')

    def test_no_functions_rejected(self):
        with pytest.raises(ContractError):
            compile_contract("X = 1\n")

    def test_import_rejected(self):
        with pytest.raises(ContractError):
            compile_contract("def f():\n    import os\n    return 1\n")

    def test_attribute_access_rejected(self):
        with pytest.raises(ContractError):
            compile_contract("def f(x):\n    return x.append(1)\n")

    def test_float_literal_rejected(self):
        with pytest.raises(ContractError):
            compile_contract("def f():\n    return 1.5\n")

    def test_true_division_rejected(self):
        with pytest.raises(ContractError):
            compile_contract("def f():\n    return 4 / 2\n")

    def test_lambda_rejected(self):
        with pytest.raises(ContractError):
            compile_contract("def f():\n    g = lambda: 1\n    return g()\n")

    def test_comprehension_rejected(self):
        with pytest.raises(ContractError):
            compile_contract("def f():\n    return [i for i in range(3)]\n")

    def test_nested_function_rejected(self):
        with pytest.raises(ContractError):
            compile_contract("def f():\n    def g():\n        return 1\n    return g()\n")

    def test_syntax_error_wrapped(self):
        with pytest.raises(ContractError):
            compile_contract("def f(:\n")

    def test_private_methods_hidden(self):
        compiled = compile_contract(
            "def _helper():\n    return 1\ndef public():\n    return _helper()\n"
        )
        assert compiled.methods == ["public"]


class TestExecution:
    def test_arithmetic(self):
        result, __ = run("def f(a, b):\n    return a * b + a % b\n", "f", {"a": 7, "b": 3})
        assert result == 22

    def test_floor_division(self):
        result, __ = run("def f():\n    return 7 // 2\n", "f")
        assert result == 3

    def test_while_loop(self):
        source = "def f(n):\n    total = 0\n    i = 0\n    while i < n:\n        total = total + i\n        i = i + 1\n    return total\n"
        result, __ = run(source, "f", {"n": 10})
        assert result == 45

    def test_for_loop_over_range(self):
        source = "def f(n):\n    total = 0\n    for i in range(n):\n        total = total + i\n    return total\n"
        result, __ = run(source, "f", {"n": 5})
        assert result == 10

    def test_break_and_continue(self):
        source = (
            "def f():\n"
            "    total = 0\n"
            "    for i in range(10):\n"
            "        if i == 3:\n"
            "            continue\n"
            "        if i == 6:\n"
            "            break\n"
            "        total = total + i\n"
            "    return total\n"
        )
        result, __ = run(source, "f")
        assert result == 0 + 1 + 2 + 4 + 5

    def test_dict_and_list_literals(self):
        source = "def f():\n    d = {'a': [1, 2]}\n    d['a'] = d['a'] + [3]\n    return d\n"
        result, __ = run(source, "f")
        assert result == {"a": [1, 2, 3]}

    def test_tuple_unpacking(self):
        result, __ = run("def f():\n    a, b = 1, 2\n    return a + b\n", "f")
        assert result == 3

    def test_conditional_expression(self):
        result, __ = run("def f(x):\n    return 'big' if x > 5 else 'small'\n", "f", {"x": 9})
        assert result == "big"

    def test_builtin_whitelist(self):
        source = "def f(xs):\n    return [len(xs), min(xs), max(xs), sum(xs)]\n"
        result, __ = run(source, "f", {"xs": [3, 1, 2]})
        assert result == [3, 1, 3, 6]

    def test_string_concat_and_fstring(self):
        result, __ = run('def f(name):\n    return f"hi {name}"\n', "f", {"name": "bob"})
        assert result == "hi bob"

    def test_user_function_calls(self):
        source = "def _double(x):\n    return 2 * x\ndef f(x):\n    return _double(x) + 1\n"
        result, __ = run(source, "f", {"x": 5})
        assert result == 11

    def test_recursion_bounded(self):
        source = "def f(n):\n    if n <= 0:\n        return 0\n    return f(n - 1)\n"
        with pytest.raises(ContractError):
            run(source, "f", {"n": 100})

    def test_default_arguments(self):
        result, __ = run("def f(x=4):\n    return x\n", "f")
        assert result == 4

    def test_missing_argument_rejected(self):
        with pytest.raises(ContractError):
            run("def f(x):\n    return x\n", "f")

    def test_unexpected_argument_rejected(self):
        with pytest.raises(ContractError):
            run("def f():\n    return 1\n", "f", {"bogus": 1})

    def test_unknown_method_rejected(self):
        with pytest.raises(ContractError):
            run("def f():\n    return 1\n", "g")

    def test_private_method_not_callable_externally(self):
        with pytest.raises(ContractError):
            run("def _f():\n    return 1\ndef g():\n    return 2\n", "_f")

    def test_undefined_name_rejected(self):
        with pytest.raises(ContractError):
            run("def f():\n    return mystery\n", "f")

    def test_division_by_zero_wrapped(self):
        with pytest.raises(ContractError):
            run("def f():\n    return 1 // 0\n", "f")

    def test_float_argument_rejected(self):
        with pytest.raises(ContractError):
            run("def f(x):\n    return x\n", "f", {"x": 1.5})

    def test_assert_statement(self):
        with pytest.raises(ContractError):
            run("def f(x):\n    assert x > 0, 'must be positive'\n    return x\n", "f", {"x": -1})

    def test_is_none_comparison(self):
        result, __ = run("def f(x):\n    return x is None\n", "f", {"x": None})
        assert result is True

    def test_host_function_invocation(self):
        result, __ = run(
            "def f():\n    return magic(3)\n", "f", hosts={"magic": lambda x: x * 10}
        )
        assert result == 30


class TestGas:
    def test_gas_consumed(self):
        __, meter = run("def f():\n    return 1 + 1\n", "f")
        assert meter.used > 0

    def test_out_of_gas_raised(self):
        source = "def f():\n    i = 0\n    while i < 100000:\n        i = i + 1\n    return i\n"
        with pytest.raises(OutOfGasError):
            run(source, "f", gas=500)

    def test_gas_monotone_in_work(self):
        source = "def f(n):\n    total = 0\n    for i in range(n):\n        total = total + i\n    return total\n"
        __, small = run(source, "f", {"n": 10})
        __, big = run(source, "f", {"n": 100})
        assert big.used > small.used

    def test_same_inputs_same_gas(self):
        source = "def f(n):\n    total = 0\n    for i in range(n):\n        total = total + i * i\n    return total\n"
        __, a = run(source, "f", {"n": 50})
        __, b = run(source, "f", {"n": 50})
        assert a.used == b.used

    def test_loop_gas_exhaustion_mid_iteration(self):
        """Gas runs dry part-way through a loop, not only at loop heads."""
        source = "def f(n):\n    total = 0\n    for i in range(n):\n        total = total + i\n    return total\n"
        __, m10 = run(source, "f", {"n": 10})
        __, m20 = run(source, "f", {"n": 20})
        per_iteration = (m20.used - m10.used) // 10
        # Enough for ~15.5 iterations: the meter must trip inside the 16th.
        limit = m10.used + 5 * per_iteration + per_iteration // 2
        contract = compile_contract(source)
        meter = GasMeter(limit)
        interpreter = Interpreter(contract, {}, meter)
        with pytest.raises(OutOfGasError):
            interpreter.call("f", {"n": 1000})
        # The failing charge is recorded and the budget is fully spent.
        assert meter.used > meter.limit
        assert meter.remaining == 0
        # It got past the 10-iteration run's usage before dying.
        assert meter.used > m10.used


class TestStorageSubscripts:
    @staticmethod
    def make_hosts(storage):
        return {
            "storage_get": lambda key, default=None: storage.get(key, default),
            "storage_set": lambda key, value: storage.__setitem__(key, value),
        }

    def test_augmented_assign_on_storage_dict_entry(self):
        source = (
            "def bump(k):\n"
            '    entry = storage_get(k, {"n": 0})\n'
            '    entry["n"] += 5\n'
            "    storage_set(k, entry)\n"
            '    return entry["n"]\n'
        )
        storage = {}
        hosts = self.make_hosts(storage)
        first, __ = run(source, "bump", {"k": "acct"}, hosts=hosts)
        assert first == 5
        assert storage["acct"] == {"n": 5}
        second, __ = run(source, "bump", {"k": "acct"}, hosts=hosts)
        assert second == 10
        assert storage["acct"] == {"n": 10}

    def test_augmented_assign_on_list_subscript(self):
        source = (
            "def rotate(k):\n"
            "    values = storage_get(k, [1, 2, 3])\n"
            "    values[0] += values[2]\n"
            "    storage_set(k, values)\n"
            "    return values[0]\n"
        )
        storage = {}
        result, __ = run(source, "rotate", {"k": "v"}, hosts=self.make_hosts(storage))
        assert result == 4
        assert storage["v"] == [4, 2, 3]

    def test_augmented_subscript_charges_gas_deterministically(self):
        source = (
            "def bump(k):\n"
            '    entry = storage_get(k, {"n": 0})\n'
            '    entry["n"] += 1\n'
            "    storage_set(k, entry)\n"
            '    return entry["n"]\n'
        )
        __, a = run(source, "bump", {"k": "x"}, hosts=self.make_hosts({}))
        __, b = run(source, "bump", {"k": "x"}, hosts=self.make_hosts({}))
        assert a.used == b.used


class TestDeterminism:
    @settings(max_examples=30)
    @given(st.integers(min_value=0, max_value=200), st.integers(min_value=1, max_value=50))
    def test_property_same_result_and_gas_every_run(self, n, m):
        source = (
            "def f(n, m):\n"
            "    acc = 0\n"
            "    for i in range(n):\n"
            "        acc = (acc + i * m) % 1000003\n"
            "    return acc\n"
        )
        first = run(source, "f", {"n": n, "m": m})
        second = run(source, "f", {"n": n, "m": m})
        assert first[0] == second[0]
        assert first[1].used == second[1].used
