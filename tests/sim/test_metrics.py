"""Metrics and energy accounting tests."""

import pytest

from repro.sim.metrics import (
    EnergyModel,
    Histogram,
    MetricsRegistry,
    current_metrics,
    use_metrics,
)


class TestHistogram:
    def test_empty_defaults(self):
        histogram = Histogram()
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.percentile(0.5) == 0.0

    def test_summary_statistics(self):
        histogram = Histogram()
        for value in [1, 2, 3, 4]:
            histogram.record(value)
        assert histogram.count == 4
        assert histogram.mean == 2.5
        assert histogram.minimum == 1
        assert histogram.maximum == 4

    def test_percentiles(self):
        histogram = Histogram()
        for value in range(1, 101):
            histogram.record(value)
        assert histogram.percentile(0.0) == 1
        assert histogram.percentile(1.0) == 100
        assert 49 <= histogram.percentile(0.5) <= 52

    def test_percentile_on_empty_histogram_is_zero(self):
        histogram = Histogram()
        for fraction in (0.0, 0.5, 0.95, 1.0):
            assert histogram.percentile(fraction) == 0.0

    def test_percentile_single_sample_every_fraction(self):
        histogram = Histogram()
        histogram.record(42.0)
        for fraction in (0.0, 0.5, 0.95, 1.0):
            assert histogram.percentile(fraction) == 42.0

    def test_percentile_out_of_range_fractions_clamped(self):
        histogram = Histogram()
        for value in (1.0, 2.0, 3.0):
            histogram.record(value)
        assert histogram.percentile(-0.5) == 1.0
        assert histogram.percentile(2.0) == 3.0


class TestMetricsRegistry:
    def test_counters_scoped(self):
        metrics = MetricsRegistry()
        metrics.add("gas", 10, scope="node0")
        metrics.add("gas", 5, scope="node1")
        assert metrics.counter("gas", "node0") == 10
        assert metrics.counter_total("gas") == 15

    def test_counter_total_aggregates_default_and_named_scopes(self):
        metrics = MetricsRegistry()
        metrics.add("gas", 1)  # default ("") scope
        metrics.add("gas", 2, scope="n0")
        metrics.add("gas", 4, scope="n1")
        metrics.add("gasoline", 100, scope="n0")  # near-miss name excluded
        assert metrics.counter_total("gas") == 7
        assert metrics.scopes("gas") == {"": 1, "n0": 2, "n1": 4}

    def test_scopes_view(self):
        metrics = MetricsRegistry()
        metrics.add("hashes", 3, scope="a")
        metrics.add("hashes", 4, scope="b")
        assert metrics.scopes("hashes") == {"a": 3, "b": 4}

    def test_missing_counter_is_zero(self):
        assert MetricsRegistry().counter("nope") == 0.0

    def test_energy_model_combination(self):
        model = EnergyModel(
            joules_per_hash=1.0,
            joules_per_gas=2.0,
            joules_per_byte_transferred=3.0,
            joules_per_flop=4.0,
        )
        assert model.energy_joules(hashes=1, gas=1, bytes_transferred=1, flops=1) == 10.0

    def test_total_energy_from_counters(self):
        metrics = MetricsRegistry(EnergyModel(joules_per_hash=2.0))
        metrics.add_hashes(5, scope="miner")
        assert metrics.total_energy_joules() == pytest.approx(10.0)

    def test_node_energy_isolated(self):
        metrics = MetricsRegistry(EnergyModel(joules_per_gas=1.0))
        metrics.add_gas(7, scope="n0")
        metrics.add_gas(3, scope="n1")
        assert metrics.node_energy_joules("n0") == pytest.approx(7.0)

    def test_summary_includes_energy(self):
        metrics = MetricsRegistry()
        metrics.add_flops(100)
        summary = metrics.summary()
        assert "flops" in summary
        assert "energy_joules" in summary

    def test_histogram_access(self):
        metrics = MetricsRegistry()
        metrics.observe("latency", 0.2)
        metrics.observe("latency", 0.4)
        assert metrics.histogram("latency").mean == pytest.approx(0.3)


class TestWallClock:
    def test_stopwatch_records_counter_and_histogram(self):
        metrics = MetricsRegistry()
        with metrics.wallclock("phase") as watch:
            pass
        assert watch.elapsed_s >= 0.0
        assert metrics.wallclock_total("phase") == pytest.approx(watch.elapsed_s)
        assert metrics.histogram("wallclock_phase").count == 1

    def test_wallclock_totals_accumulate(self):
        metrics = MetricsRegistry()
        metrics.add_wallclock("fanout", 0.25)
        metrics.add_wallclock("fanout", 0.75, scope="site-b")
        assert metrics.wallclock_total("fanout") == pytest.approx(1.0)
        assert metrics.counter("wallclock_fanout_s", "site-b") == pytest.approx(0.75)

    def test_wallclock_appears_in_summary(self):
        metrics = MetricsRegistry()
        metrics.add_wallclock("bench", 1.5)
        assert metrics.summary()["wallclock_bench_s"] == pytest.approx(1.5)

    def test_wallclock_distinct_from_simulated_counters(self):
        metrics = MetricsRegistry()
        metrics.add_wallclock("x", 2.0)
        assert metrics.total_energy_joules() == 0.0

    def test_nested_stopwatches_accumulate_independently(self):
        metrics = MetricsRegistry()
        with metrics.wallclock("outer") as outer:
            with metrics.wallclock("inner") as inner:
                sum(range(1000))
        assert inner.elapsed_s <= outer.elapsed_s
        assert metrics.wallclock_total("outer") == pytest.approx(outer.elapsed_s)
        assert metrics.wallclock_total("inner") == pytest.approx(inner.elapsed_s)
        assert metrics.histogram("wallclock_outer").count == 1
        assert metrics.histogram("wallclock_inner").count == 1

    def test_nested_stopwatches_same_name_sum(self):
        metrics = MetricsRegistry()
        with metrics.wallclock("phase") as outer:
            with metrics.wallclock("phase") as inner:
                pass
        assert metrics.wallclock_total("phase") == pytest.approx(
            outer.elapsed_s + inner.elapsed_s
        )
        assert metrics.histogram("wallclock_phase").count == 2


class TestSnapshotMerge:
    def test_snapshot_round_trip(self):
        source = MetricsRegistry()
        source.add("gas", 5, scope="n0")
        source.observe("lat", 0.5)
        target = MetricsRegistry()
        target.merge_snapshot(source.snapshot())
        assert target.counter("gas", "n0") == 5
        assert target.histogram("lat").values == [0.5]

    def test_merge_sums_counters_and_extends_histograms(self):
        first = MetricsRegistry()
        first.add("gas", 5, scope="n0")
        first.observe("lat", 1.0)
        second = MetricsRegistry()
        second.add("gas", 3, scope="n0")
        second.add("gas", 2, scope="n1")
        second.observe("lat", 2.0)
        first.merge(second)
        assert first.counter("gas", "n0") == 8
        assert first.counter("gas", "n1") == 2
        assert first.histogram("lat").values == [1.0, 2.0]

    def test_merge_empty_snapshot_is_noop(self):
        metrics = MetricsRegistry()
        metrics.add("gas", 1)
        metrics.merge_snapshot({})
        assert metrics.counter_total("gas") == 1


class TestAmbientRegistry:
    def test_current_metrics_never_none(self):
        assert current_metrics() is not None

    def test_use_metrics_overrides_and_restores(self):
        override = MetricsRegistry()
        ambient_before = current_metrics()
        with use_metrics(override):
            assert current_metrics() is override
            current_metrics().add("gas", 1)
        assert current_metrics() is ambient_before
        assert override.counter_total("gas") == 1

    def test_use_metrics_nests(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with use_metrics(outer):
            with use_metrics(inner):
                assert current_metrics() is inner
            assert current_metrics() is outer
