"""Simulated network tests."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.kernel import Kernel
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import LinkSpec, Network


def _pair():
    kernel = Kernel(seed=1)
    network = Network(kernel, MetricsRegistry())
    inbox = {"a": [], "b": [], "c": []}
    for name in inbox:
        network.register(name, lambda s, m, n=name: inbox[n].append(m))
    return kernel, network, inbox


def test_point_to_point_delivery():
    kernel, network, inbox = _pair()
    network.send("a", "b", "ping", {"x": 1})
    kernel.run()
    assert len(inbox["b"]) == 1
    assert inbox["b"][0].payload == {"x": 1}
    assert inbox["b"][0].sender == "a"


def test_latency_applied():
    kernel, network, inbox = _pair()
    network.set_link("a", "b", LinkSpec(latency_s=0.5, bandwidth_bps=1e12))
    network.send("a", "b", "ping", None, size_bytes=1)
    kernel.run()
    assert inbox["b"][0].delivered_at == pytest.approx(0.5, abs=1e-6)


def test_bandwidth_serialization_delay():
    kernel, network, inbox = _pair()
    network.set_link("a", "b", LinkSpec(latency_s=0.0, bandwidth_bps=8_000))
    network.send("a", "b", "blob", None, size_bytes=1_000)  # 8000 bits / 8000 bps
    kernel.run()
    assert inbox["b"][0].delivered_at == pytest.approx(1.0, abs=1e-6)


def test_broadcast_excludes_sender_by_default():
    kernel, network, inbox = _pair()
    count = network.broadcast("a", "hello", None)
    kernel.run()
    assert count == 2
    assert len(inbox["a"]) == 0
    assert len(inbox["b"]) == len(inbox["c"]) == 1


def test_broadcast_include_self():
    kernel, network, inbox = _pair()
    network.broadcast("a", "hello", None, include_self=True)
    kernel.run()
    assert len(inbox["a"]) == 1


def test_unknown_recipient_raises():
    __, network, __ = _pair()
    with pytest.raises(SimulationError):
        network.send("a", "ghost", "x", None)


def test_duplicate_registration_rejected():
    kernel = Kernel()
    network = Network(kernel)
    network.register("x", lambda s, m: None)
    with pytest.raises(SimulationError):
        network.register("x", lambda s, m: None)


def test_partition_drops_cross_group_traffic():
    kernel, network, inbox = _pair()
    network.partition({"a"}, {"b", "c"})
    assert not network.send("a", "b", "ping", None)
    assert network.send("b", "c", "ping", None)
    kernel.run()
    assert len(inbox["b"]) == 0
    assert len(inbox["c"]) == 1


def test_partition_is_symmetric_for_ungrouped_endpoints():
    # Regression: the old check only consulted the sender's group, so an
    # ungrouped sender could reach a grouped peer while the reply dropped.
    kernel, network, inbox = _pair()
    network.partition({"a"}, {"b"})  # c belongs to no group
    assert not network.send("c", "a", "ping", None)
    assert not network.send("a", "c", "pong", None)
    kernel.run()
    assert len(inbox["a"]) == 0
    assert len(inbox["c"]) == 0


def test_two_ungrouped_endpoints_still_reach_each_other():
    kernel, network, inbox = _pair()
    network.partition({"a"})  # b and c are both outside every group
    assert network.send("b", "c", "ping", None)
    assert network.send("c", "b", "pong", None)
    kernel.run()
    assert len(inbox["b"]) == 1
    assert len(inbox["c"]) == 1


def test_heal_restores_delivery():
    kernel, network, inbox = _pair()
    network.partition({"a"}, {"b"})
    network.heal()
    network.send("a", "b", "ping", None)
    kernel.run()
    assert len(inbox["b"]) == 1


def test_lossy_link_drops_probabilistically():
    kernel = Kernel(seed=7)
    network = Network(kernel, default_link=LinkSpec(loss_rate=0.5))
    received = []
    network.register("a", lambda s, m: None)
    network.register("b", lambda s, m: received.append(m))
    for __ in range(200):
        network.send("a", "b", "p", None)
    kernel.run()
    assert 60 < len(received) < 140  # ~100 expected


def test_bytes_charged_to_sender_scope():
    kernel, network, __ = _pair()
    network.send("a", "b", "data", None, size_bytes=512)
    kernel.run()
    assert network.metrics.counter("bytes_transferred", scope="a") == 512


def test_delivery_counters():
    kernel, network, __ = _pair()
    network.send("a", "b", "x", None)
    network.send("a", "c", "x", None)
    kernel.run()
    assert network.messages_sent == 2
    assert network.messages_delivered == 2
    assert network.messages_dropped == 0
