"""Discrete-event kernel tests."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.kernel import Kernel, Process, run_to_completion


def test_events_run_in_time_order():
    kernel = Kernel()
    order = []
    kernel.schedule(2.0, lambda: order.append("late"))
    kernel.schedule(1.0, lambda: order.append("early"))
    kernel.run()
    assert order == ["early", "late"]


def test_ties_broken_by_scheduling_order():
    kernel = Kernel()
    order = []
    kernel.schedule(1.0, lambda: order.append("first"))
    kernel.schedule(1.0, lambda: order.append("second"))
    kernel.run()
    assert order == ["first", "second"]


def test_clock_advances_to_event_time():
    kernel = Kernel()
    seen = []
    kernel.schedule(3.5, lambda: seen.append(kernel.now))
    kernel.run()
    assert seen == [3.5]


def test_negative_delay_rejected():
    kernel = Kernel()
    with pytest.raises(SimulationError):
        kernel.schedule(-0.1, lambda: None)


def test_cancelled_events_do_not_run():
    kernel = Kernel()
    ran = []
    handle = kernel.schedule(1.0, lambda: ran.append(1))
    handle.cancel()
    kernel.run()
    assert ran == []
    assert handle.cancelled


def test_run_until_stops_before_future_events():
    kernel = Kernel()
    ran = []
    kernel.schedule(1.0, lambda: ran.append("a"))
    kernel.schedule(10.0, lambda: ran.append("b"))
    kernel.run(until=5.0)
    assert ran == ["a"]
    assert kernel.now == 5.0
    assert kernel.pending == 1


def test_run_max_events():
    kernel = Kernel()
    for __ in range(10):
        kernel.schedule(1.0, lambda: None)
    assert kernel.run(max_events=3) == 3
    assert kernel.pending == 7


def test_stop_when_predicate():
    kernel = Kernel()
    counter = []
    for __ in range(10):
        kernel.schedule(1.0, lambda: counter.append(1))
    kernel.run(stop_when=lambda: len(counter) >= 4)
    assert len(counter) == 4


def test_events_can_schedule_events():
    kernel = Kernel()
    results = []

    def chain(depth):
        results.append(depth)
        if depth < 3:
            kernel.schedule(1.0, lambda: chain(depth + 1))

    kernel.schedule(0.0, lambda: chain(0))
    kernel.run()
    assert results == [0, 1, 2, 3]
    assert kernel.now == 3.0


def test_schedule_at_absolute_time():
    kernel = Kernel()
    seen = []
    kernel.schedule_at(7.0, lambda: seen.append(kernel.now))
    kernel.run()
    assert seen == [7.0]


def test_run_is_not_reentrant():
    kernel = Kernel()

    def reenter():
        with pytest.raises(SimulationError):
            kernel.run()

    kernel.schedule(1.0, reenter)
    kernel.run()


def test_same_seed_same_rng_sequence():
    a, b = Kernel(seed=9), Kernel(seed=9)
    assert [a.rng.random() for __ in range(5)] == [b.rng.random() for __ in range(5)]


def test_run_to_completion_guard():
    kernel = Kernel()

    def forever():
        kernel.schedule(1.0, forever)

    kernel.schedule(1.0, forever)
    with pytest.raises(SimulationError):
        run_to_completion(kernel, max_events=100)


def test_cancelling_already_fired_event_is_harmless():
    kernel = Kernel()
    ran = []
    handle = kernel.schedule(1.0, lambda: ran.append("fired"))
    kernel.run()
    assert ran == ["fired"]
    # Cancel after the event already ran: no error, no double-run, and the
    # handle just reports cancelled.
    handle.cancel()
    assert handle.cancelled
    assert kernel.pending == 0
    kernel.run()
    assert ran == ["fired"]
    assert kernel.events_run == 1


def test_cancel_is_idempotent():
    kernel = Kernel()
    handle = kernel.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert handle.cancelled
    assert kernel.pending == 0
    assert kernel.run() == 0


def test_simultaneous_events_interleaved_with_callback_scheduling():
    # B is scheduled before A fires, so at the shared timestamp the order is
    # strictly by scheduling sequence: A (seq 0), B (seq 1), then C which A
    # scheduled at the same instant (seq 2).
    kernel = Kernel()
    order = []

    def fire_a():
        order.append("a")
        kernel.schedule(0.0, lambda: order.append("c"))

    kernel.schedule(1.0, fire_a)
    kernel.schedule(1.0, lambda: order.append("b"))
    kernel.run()
    assert order == ["a", "b", "c"]
    assert kernel.now == 1.0


def test_tie_break_survives_cancellation_of_middle_event():
    kernel = Kernel()
    order = []
    kernel.schedule(1.0, lambda: order.append("first"))
    middle = kernel.schedule(1.0, lambda: order.append("middle"))
    kernel.schedule(1.0, lambda: order.append("last"))
    middle.cancel()
    kernel.run()
    assert order == ["first", "last"]


def test_schedule_at_in_the_past_raises():
    kernel = Kernel()
    kernel.schedule(5.0, lambda: None)
    kernel.run()
    assert kernel.now == 5.0
    with pytest.raises(SimulationError):
        kernel.schedule_at(4.0, lambda: None)


def test_schedule_at_now_is_allowed():
    kernel = Kernel()
    kernel.schedule(2.0, lambda: None)
    kernel.run()
    seen = []
    kernel.schedule_at(kernel.now, lambda: seen.append(kernel.now))
    kernel.run()
    assert seen == [2.0]


def test_process_after_helper():
    kernel = Kernel()
    actor = Process(kernel, "actor")
    seen = []
    actor.after(2.0, lambda: seen.append(actor.now))
    kernel.run()
    assert seen == [2.0]
