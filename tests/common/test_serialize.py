"""Canonical serialization tests."""

import dataclasses

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import SerializationError
from repro.common.serialize import (
    canonical_bytes,
    canonical_json,
    decode_decimal,
    decode_hex_fields,
    encode_decimal,
    from_json,
    to_jsonable,
)


def test_sorted_keys_and_no_whitespace():
    assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'


def test_key_order_does_not_change_encoding():
    assert canonical_json({"x": 1, "y": 2}) == canonical_json({"y": 2, "x": 1})


def test_bytes_encode_as_hex():
    assert canonical_json({"k": b"\x01\xff"}) == '{"k":"0x01ff"}'


def test_dataclass_encoding():
    @dataclasses.dataclass
    class Point:
        x: int
        y: int

    assert canonical_json(Point(1, 2)) == '{"x":1,"y":2}'


def test_nested_structures():
    value = {"list": [1, {"deep": (2, 3)}], "none": None, "flag": True}
    parsed = from_json(canonical_json(value))
    assert parsed == {"list": [1, {"deep": [2, 3]}], "none": None, "flag": True}


def test_floats_rejected_when_disallowed():
    with pytest.raises(SerializationError):
        canonical_json({"x": 1.5}, allow_float=False)


def test_floats_allowed_by_default():
    assert from_json(canonical_json({"x": 1.5})) == {"x": 1.5}


def test_non_string_dict_keys_rejected():
    with pytest.raises(SerializationError):
        canonical_json({1: "a"})


def test_unserializable_type_rejected():
    with pytest.raises(SerializationError):
        canonical_json(object())


def test_sets_are_sorted():
    assert to_jsonable({3, 1, 2}) == [1, 2, 3]


def test_decode_hex_fields_round_trip():
    encoded = to_jsonable({"inner": {"blob": b"\xab\xcd"}})
    decoded = decode_hex_fields(encoded)
    assert decoded["inner"]["blob"] == b"\xab\xcd"


def test_decimal_round_trip():
    value = 3.14159
    assert abs(decode_decimal(encode_decimal(value)) - value) < 1e-9


def test_from_json_rejects_garbage():
    with pytest.raises(SerializationError):
        from_json("{not json")


@given(
    st.recursive(
        st.one_of(
            st.none(),
            st.booleans(),
            st.integers(min_value=-(2**53), max_value=2**53),
            st.text(max_size=20),
        ),
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.dictionaries(st.text(max_size=8), children, max_size=4),
        ),
        max_leaves=20,
    )
)
def test_property_round_trip(value):
    """Any JSON-ish value survives encode/parse unchanged."""
    assert from_json(canonical_json(value)) == to_jsonable(value)


@given(st.dictionaries(st.text(max_size=8), st.integers(), max_size=6))
def test_property_encoding_is_deterministic(value):
    assert canonical_bytes(value) == canonical_bytes(dict(reversed(list(value.items()))))
