"""Schnorr signature and ECDH tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import CryptoError
from repro.common.signatures import (
    KeyPair,
    PrivateKey,
    PublicKey,
    Signature,
    shared_secret,
)


def test_sign_verify_round_trip(alice):
    signature = alice.sign(b"message")
    assert alice.public.verify(b"message", signature)


def test_verify_rejects_different_message(alice):
    signature = alice.sign(b"message")
    assert not alice.public.verify(b"other", signature)


def test_verify_rejects_wrong_key(alice, bob):
    signature = alice.sign(b"message")
    assert not bob.public.verify(b"message", signature)


def test_signing_is_deterministic(alice):
    assert alice.sign(b"m") == alice.sign(b"m")


def test_different_messages_different_signatures(alice):
    assert alice.sign(b"m1") != alice.sign(b"m2")


def test_keypair_from_label_is_deterministic():
    assert KeyPair.generate("label").address == KeyPair.generate("label").address


def test_different_labels_different_addresses():
    assert KeyPair.generate("a").address != KeyPair.generate("b").address


def test_address_is_40_hex_chars(alice):
    address = alice.address
    assert len(address) == 40
    int(address, 16)  # parses as hex


def test_signature_bytes_round_trip(alice):
    signature = alice.sign(b"x")
    assert Signature.from_bytes(signature.to_bytes()) == signature


def test_signature_from_bad_length_rejected():
    with pytest.raises(CryptoError):
        Signature.from_bytes(b"\x00" * 10)


def test_tampered_signature_fails(alice):
    signature = alice.sign(b"msg")
    tampered = Signature(r=signature.r, s=(signature.s + 1))
    assert not alice.public.verify(b"msg", tampered)


def test_public_key_rejects_invalid_encoding():
    with pytest.raises(CryptoError):
        PublicKey(b"\x05" + b"\x00" * 32)


def test_private_key_range_enforced():
    with pytest.raises(CryptoError):
        PrivateKey(0)


def test_ecdh_is_symmetric(alice, bob):
    assert shared_secret(alice.private, bob.public) == shared_secret(
        bob.private, alice.public
    )


def test_ecdh_differs_per_pair(alice, bob):
    carol = KeyPair.generate("carol")
    assert shared_secret(alice.private, bob.public) != shared_secret(
        alice.private, carol.public
    )


@settings(max_examples=10, deadline=None)
@given(st.binary(min_size=0, max_size=64), st.text(min_size=1, max_size=10))
def test_property_sign_verify(message, label):
    keypair = KeyPair.generate(label)
    assert keypair.public.verify(message, keypair.sign(message))


@settings(max_examples=10, deadline=None)
@given(st.binary(min_size=1, max_size=32))
def test_property_bitflip_breaks_verification(message):
    keypair = KeyPair.generate("flipper")
    signature = keypair.sign(message)
    flipped = bytes([message[0] ^ 0x01]) + message[1:]
    assert not keypair.public.verify(flipped, signature)
