"""Merkle tree and inclusion proof tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ValidationError
from repro.common.hashing import ZERO_HASH, sha256
from repro.common.merkle import MerkleProof, MerkleTree, merkle_root


def _leaves(count):
    return [sha256(f"leaf-{i}".encode()) for i in range(count)]


def test_empty_tree_root_is_zero_hash():
    assert MerkleTree([]).root == ZERO_HASH


def test_single_leaf_root_is_leaf():
    leaf = sha256(b"only")
    assert MerkleTree([leaf]).root == leaf


def test_root_changes_with_any_leaf():
    base = _leaves(4)
    mutated = list(base)
    mutated[2] = sha256(b"tampered")
    assert MerkleTree(base).root != MerkleTree(mutated).root


def test_root_depends_on_leaf_order():
    leaves = _leaves(4)
    swapped = [leaves[1], leaves[0]] + leaves[2:]
    assert MerkleTree(leaves).root != MerkleTree(swapped).root


def test_odd_leaf_count_handled():
    tree = MerkleTree(_leaves(5))
    assert len(tree.root) == 32


def test_rejects_non_digest_leaves():
    with pytest.raises(ValidationError):
        MerkleTree([b"short"])


def test_proof_verifies_for_every_leaf():
    leaves = _leaves(7)
    tree = MerkleTree(leaves)
    for index in range(7):
        proof = tree.proof(index)
        assert proof.verify(tree.root)


def test_proof_fails_against_wrong_root():
    tree = MerkleTree(_leaves(4))
    other = MerkleTree(_leaves(5))
    assert not tree.proof(0).verify(other.root)


def test_proof_fails_for_tampered_leaf():
    tree = MerkleTree(_leaves(4))
    proof = tree.proof(1)
    forged = MerkleProof(leaf=sha256(b"fake"), index=1, path=proof.path)
    assert not forged.verify(tree.root)


def test_proof_index_out_of_range():
    tree = MerkleTree(_leaves(3))
    with pytest.raises(ValidationError):
        tree.proof(3)


def test_from_items_hashes_raw_bytes():
    tree = MerkleTree.from_items([b"a", b"b"])
    assert tree.root == MerkleTree([sha256(b"a"), sha256(b"b")]).root


def test_merkle_root_helper_matches_tree():
    leaves = _leaves(6)
    assert merkle_root(leaves) == MerkleTree(leaves).root


class TestProofForgery:
    """A proof must break under every classic splice attack."""

    def test_wrong_index_flips_hash_order(self):
        tree = MerkleTree(_leaves(8))
        proof = tree.proof(2)
        forged = MerkleProof(leaf=proof.leaf, index=3, path=proof.path)
        assert not forged.verify(tree.root)

    def test_wrong_index_at_upper_level(self):
        tree = MerkleTree(_leaves(8))
        proof = tree.proof(1)
        # same leaf-level parity, different subtree at the next level up
        forged = MerkleProof(leaf=proof.leaf, index=5, path=proof.path)
        assert not forged.verify(tree.root)

    def test_truncated_path_stops_at_interior_node(self):
        tree = MerkleTree(_leaves(8))
        proof = tree.proof(4)
        forged = MerkleProof(leaf=proof.leaf, index=4, path=proof.path[:-1])
        assert not forged.verify(tree.root)

    def test_extended_path_overshoots_root(self):
        tree = MerkleTree(_leaves(8))
        proof = tree.proof(4)
        forged = MerkleProof(
            leaf=proof.leaf, index=4, path=proof.path + [sha256(b"extra")]
        )
        assert not forged.verify(tree.root)

    def test_sibling_swap_breaks_proof(self):
        tree = MerkleTree(_leaves(8))
        proof = tree.proof(0)
        swapped = [proof.path[1], proof.path[0]] + proof.path[2:]
        forged = MerkleProof(leaf=proof.leaf, index=0, path=swapped)
        assert not forged.verify(tree.root)

    def test_proof_transplanted_to_other_leaf_fails(self):
        tree = MerkleTree(_leaves(8))
        donor = tree.proof(3)
        victim = tree.proof(6)
        forged = MerkleProof(leaf=victim.leaf, index=3, path=donor.path)
        assert not forged.verify(tree.root)

    def test_odd_tree_duplicate_tail_proofs_still_verify(self):
        # 5 leaves: the build duplicates leaf 4; its proof must still
        # verify and a forged neighbour index must not.
        tree = MerkleTree(_leaves(5))
        proof = tree.proof(4)
        assert proof.verify(tree.root)
        forged = MerkleProof(leaf=sha256(b"ghost"), index=4, path=proof.path)
        assert not forged.verify(tree.root)


@settings(max_examples=40)
@given(st.integers(min_value=1, max_value=33))
def test_property_all_proofs_verify(count):
    leaves = _leaves(count)
    tree = MerkleTree(leaves)
    for index in range(count):
        assert tree.proof(index).verify(tree.root)


@settings(max_examples=25)
@given(st.integers(min_value=2, max_value=20), st.data())
def test_property_mutating_any_leaf_breaks_its_proof(count, data):
    leaves = _leaves(count)
    tree = MerkleTree(leaves)
    victim = data.draw(st.integers(min_value=0, max_value=count - 1))
    proof = tree.proof(victim)
    forged = MerkleProof(leaf=sha256(b"evil"), index=victim, path=proof.path)
    assert not forged.verify(tree.root)
