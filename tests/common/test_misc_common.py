"""Clock, id, and hashing helper tests."""

import pytest

from repro.common.clock import SimClock, WallClock
from repro.common.errors import SimulationError
from repro.common.hashing import (
    ZERO_HASH,
    hash_pair,
    hash_value,
    hash_value_hex,
    sha256,
    short_hash,
)
from repro.common.ids import content_id, next_id, reset_ids


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now() == 0.0

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(5.0)
        assert clock.now() == 5.0

    def test_advance_by(self):
        clock = SimClock(10.0)
        clock.advance_by(2.5)
        assert clock.now() == 12.5

    def test_time_never_flows_backwards(self):
        clock = SimClock(10.0)
        with pytest.raises(SimulationError):
            clock.advance_to(9.0)

    def test_negative_delta_rejected(self):
        with pytest.raises(SimulationError):
            SimClock().advance_by(-1.0)


class TestWallClock:
    def test_monotonically_non_decreasing(self):
        clock = WallClock()
        first = clock.now()
        second = clock.now()
        assert second >= first >= 0.0


class TestIds:
    def test_sequential_within_namespace(self):
        reset_ids()
        assert next_id("tx") == "tx-000001"
        assert next_id("tx") == "tx-000002"

    def test_namespaces_independent(self):
        reset_ids()
        next_id("a")
        assert next_id("b") == "b-000001"

    def test_reset_restarts_counters(self):
        next_id("x")
        reset_ids()
        assert next_id("x") == "x-000001"

    def test_content_id_stable(self):
        assert content_id("ds", {"a": 1}) == content_id("ds", {"a": 1})

    def test_content_id_distinguishes_values(self):
        assert content_id("ds", {"a": 1}) != content_id("ds", {"a": 2})


class TestHashing:
    def test_sha256_known_vector(self):
        assert (
            sha256(b"abc").hex()
            == "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )

    def test_zero_hash_is_32_zero_bytes(self):
        assert ZERO_HASH == b"\x00" * 32

    def test_hash_value_deterministic(self):
        assert hash_value({"k": [1, 2]}) == hash_value({"k": [1, 2]})

    def test_hash_value_hex_matches(self):
        assert hash_value_hex({"x": 1}) == hash_value({"x": 1}).hex()

    def test_hash_pair_is_order_sensitive(self):
        a, b = sha256(b"a"), sha256(b"b")
        assert hash_pair(a, b) != hash_pair(b, a)

    def test_short_hash_length(self):
        assert len(short_hash(b"data", 12)) == 12
