"""Executor backends: ordering, timeout, retry/backoff, crash containment."""

import os
import time

import pytest

from repro.parallel import (
    ExecutorError,
    ProcessExecutor,
    RetryPolicy,
    SerialExecutor,
    TaskFailure,
    TaskSpec,
    ThreadExecutor,
    available_workers,
    make_executor,
    map_tasks,
)


# Module-level task bodies so the process backend can pickle them.
def square(x):
    return x * x


def boom(message="kaboom"):
    raise ValueError(message)


def slow_square(x, delay):
    time.sleep(delay)
    return x * x


def kill_worker():
    os._exit(3)  # simulates a segfault/OOM-killed worker


def fail_until_marker(marker_path, value):
    """Fails until a marker file exists; creates it on first call.

    File-based state survives process boundaries, so this exercises retry
    under every backend.
    """
    if os.path.exists(marker_path):
        return value
    with open(marker_path, "w") as handle:
        handle.write("attempted")
    raise RuntimeError("transient failure")


def _specs(values):
    return [TaskSpec(key=f"t{v}", fn=square, args=(v,)) for v in values]


ALL_BACKENDS = ["serial", "thread", "process"]


@pytest.fixture(params=ALL_BACKENDS)
def executor(request):
    backend = make_executor(request.param, max_workers=2)
    yield backend
    backend.shutdown()


class TestOrderingAndResults:
    def test_results_in_submission_order(self, executor):
        values = list(range(8))
        assert executor.map_tasks(_specs(values)) == [v * v for v in values]

    def test_empty_batch(self, executor):
        assert executor.map_tasks([]) == []

    def test_exception_becomes_structured_failure(self, executor):
        specs = [
            TaskSpec(key="ok", fn=square, args=(3,)),
            TaskSpec(key="bad", fn=boom),
            TaskSpec(key="ok2", fn=square, args=(4,)),
        ]
        results = executor.map_tasks(specs)
        assert results[0] == 9
        assert results[2] == 16
        failure = results[1]
        assert isinstance(failure, TaskFailure)
        assert failure.key == "bad"
        assert failure.error_type == "ValueError"
        assert "kaboom" in failure.message
        assert failure.backend == executor.name

    def test_map_tasks_function_defaults_to_serial(self):
        assert map_tasks(_specs([2, 3])) == [4, 9]


class TestRetry:
    def test_transient_failure_retried_to_success(self, executor, tmp_path):
        marker = str(tmp_path / f"marker-{executor.name}")
        delays = []
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.01, sleep=delays.append)
        spec = TaskSpec(key="flaky", fn=fail_until_marker, args=(marker, 7))
        assert executor.map_tasks([spec], retry=policy) == [7]
        assert delays == [0.01]  # one backoff between the two attempts

    def test_exhausted_retries_report_attempt_count(self, executor):
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0, sleep=lambda s: None)
        (failure,) = executor.map_tasks([TaskSpec(key="b", fn=boom)], retry=policy)
        assert isinstance(failure, TaskFailure)
        assert failure.attempts == 3

    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=0.1, factor=2.0, max_delay_s=0.3
        )
        assert [policy.delay(n) for n in (1, 2, 3, 4)] == [0.1, 0.2, 0.3, 0.3]

    def test_zero_attempts_rejected(self):
        with pytest.raises(ExecutorError):
            RetryPolicy(max_attempts=0)


class TestTimeout:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_slow_task_times_out(self, backend):
        with make_executor(backend, max_workers=2) as executor:
            specs = [
                TaskSpec(key="fast", fn=square, args=(2,)),
                TaskSpec(key="slow", fn=slow_square, args=(5, 0.6)),
            ]
            policy = RetryPolicy(max_attempts=1)
            results = executor.map_tasks(specs, timeout_s=0.2, retry=policy)
        assert results[0] == 4
        failure = results[1]
        assert isinstance(failure, TaskFailure)
        assert failure.timed_out

    def test_timeout_not_retried_when_disabled(self):
        delays = []
        policy = RetryPolicy(
            max_attempts=3, base_delay_s=0.01, retry_on_timeout=False,
            sleep=delays.append,
        )
        with ThreadExecutor(max_workers=1) as executor:
            (failure,) = executor.map_tasks(
                [TaskSpec(key="slow", fn=slow_square, args=(1, 0.5))],
                timeout_s=0.05,
                retry=policy,
            )
        assert isinstance(failure, TaskFailure)
        assert failure.timed_out
        assert failure.attempts == 1
        assert delays == []


class TestCrashContainment:
    def test_worker_crash_is_contained(self):
        with ProcessExecutor(max_workers=1) as executor:
            results = executor.map_tasks(
                [
                    TaskSpec(key="crash", fn=kill_worker),
                    TaskSpec(key="ok", fn=square, args=(6,)),
                ],
                retry=RetryPolicy(max_attempts=2, base_delay_s=0.0,
                                  sleep=lambda s: None),
            )
        # The crasher fails structurally; the innocent task survives via
        # retry on a rebuilt pool.
        failure = results[0]
        assert isinstance(failure, TaskFailure)
        assert failure.worker_crashed
        assert results[1] == 36

    def test_pool_usable_after_crash_batch(self):
        with ProcessExecutor(max_workers=1) as executor:
            executor.map_tasks([TaskSpec(key="crash", fn=kill_worker)])
            assert executor.map_tasks(_specs([5])) == [25]


class TestLifecycle:
    def test_shutdown_then_use_raises(self):
        executor = ThreadExecutor(max_workers=1)
        executor.shutdown()
        with pytest.raises(ExecutorError):
            executor.map_tasks(_specs([1]))

    def test_unknown_backend_rejected(self):
        with pytest.raises(ExecutorError):
            make_executor("quantum")

    def test_available_workers_positive(self):
        assert available_workers() >= 1

    def test_serial_executor_is_default(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
