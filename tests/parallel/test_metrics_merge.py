"""Cross-process telemetry collection through the task result envelope.

The process backend used to be a blind spot: counters recorded inside a
``ProcessExecutor`` worker died with the worker process, so experiment
totals silently depended on which backend ran the batch.  Every task now
runs against a fresh capture registry whose snapshot rides back in the
result envelope, and ``map_tasks`` merges it into the submitting context's
registry — these tests pin the invariant that serial, thread, and process
backends report *identical* counter totals (and, when tracing is on,
connected span trees).
"""

import os

import pytest

from repro.obs.tracer import disable, enable, trace_span
from repro.parallel.executor import (
    RetryPolicy,
    TaskSpec,
    make_executor,
)
from repro.sim.metrics import MetricsRegistry, current_metrics, use_metrics

BACKENDS = ("serial", "thread", "process")
TASK_COUNT = 10


@pytest.fixture(autouse=True)
def _clean_tracer_state():
    disable()
    yield
    disable()


def _counting_worker(value):
    """Module-level (picklable) task that records ambient counters."""
    metrics = current_metrics()
    metrics.add("units", 1, scope=f"shard-{value % 2}")
    metrics.add("value_sum", value)
    metrics.observe("task_value", float(value))
    return value * value


def _traced_worker(value):
    with trace_span("leaf.work", value=value):
        pass
    return value


def _flaky_worker(marker_path, value):
    """Fails on the first attempt (per marker file), succeeds after.

    File-based state so the retry is visible across *processes*, not just
    threads.  The counter is recorded before the failure is raised — the
    envelope must drop it so only the successful attempt's delta merges.
    """
    current_metrics().add("attempts_recorded", 1)
    if not os.path.exists(marker_path):
        with open(marker_path, "w") as handle:
            handle.write("tried")
        raise RuntimeError("transient failure (first attempt)")
    return value


def _run_counting_batch(backend):
    specs = [
        TaskSpec(key=f"t{value}", fn=_counting_worker, args=(value,))
        for value in range(TASK_COUNT)
    ]
    registry = MetricsRegistry()
    with make_executor(backend, max_workers=2) as executor:
        with use_metrics(registry):
            results = executor.map_tasks(specs)
    return results, registry


class TestCrossBackendCounterTotals:
    def test_identical_totals_on_every_backend(self):
        totals = {}
        results = {}
        for backend in BACKENDS:
            outcome, registry = _run_counting_batch(backend)
            results[backend] = outcome
            totals[backend] = {
                "units": registry.counter_total("units"),
                "value_sum": registry.counter_total("value_sum"),
                "scopes": registry.scopes("units"),
                "histogram_count": registry.histogram("task_value").count,
            }
        assert results["thread"] == results["serial"]
        assert results["process"] == results["serial"]
        assert totals["serial"]["units"] == TASK_COUNT
        assert totals["serial"]["value_sum"] == sum(range(TASK_COUNT))
        assert totals["serial"]["scopes"] == {"shard-0": 5, "shard-1": 5}
        assert totals["serial"]["histogram_count"] == TASK_COUNT
        assert totals["thread"] == totals["serial"]
        assert totals["process"] == totals["serial"]

    def test_worker_counters_do_not_leak_into_global_registry(self):
        ambient = MetricsRegistry()
        with use_metrics(ambient):
            __, captured = _run_counting_batch("process")
        # Everything landed in the registry active at submission time...
        assert captured.counter_total("units") == TASK_COUNT
        # ...not the one that happened to be ambient around the helper.
        assert ambient.counter_total("units") == 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_retried_task_counts_merge_exactly_once(self, backend, tmp_path):
        marker = str(tmp_path / f"flaky-{backend}.marker")
        registry = MetricsRegistry()
        policy = RetryPolicy(max_attempts=3, sleep=lambda __: None)
        with make_executor(backend, max_workers=2) as executor:
            with use_metrics(registry):
                results = executor.map_tasks(
                    [TaskSpec(key="flaky", fn=_flaky_worker, args=(marker, 7))],
                    retry=policy,
                )
        assert results == [7]
        # First (failed) attempt's counter was dropped with its envelope.
        assert registry.counter_total("attempts_recorded") == 1


class TestCrossProcessSpans:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_worker_spans_adopted_under_batch_span(self, backend):
        tracer = enable()
        specs = [
            TaskSpec(key=f"t{value}", fn=_traced_worker, args=(value,))
            for value in range(3)
        ]
        with make_executor(backend, max_workers=2) as executor:
            with trace_span("batch.root"):
                executor.map_tasks(specs)
        by_name = {}
        for span in tracer.spans:
            by_name.setdefault(span.name, []).append(span)
        assert len(by_name["parallel.task"]) == 3
        assert len(by_name["leaf.work"]) == 3
        map_span = by_name["parallel.map_tasks"][0]
        assert map_span.parent_id == by_name["batch.root"][0].span_id
        task_ids = set()
        for task_span in by_name["parallel.task"]:
            assert task_span.parent_id == map_span.span_id
            task_ids.add(task_span.span_id)
        for leaf in by_name["leaf.work"]:
            assert leaf.parent_id in task_ids

    def test_process_spans_carry_foreign_pids(self):
        tracer = enable()
        specs = [
            TaskSpec(key=f"t{value}", fn=_traced_worker, args=(value,))
            for value in range(4)
        ]
        with make_executor("process", max_workers=2) as executor:
            executor.map_tasks(specs)
        worker_pids = {
            span.pid for span in tracer.spans if span.name == "leaf.work"
        }
        assert worker_pids, "no worker spans shipped back"
        assert os.getpid() not in worker_pids
