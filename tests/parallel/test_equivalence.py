"""Cross-backend equivalence: serial, thread, and process must agree bit-for-bit.

This is the regression gate for the paper's parallel-fabric claim: swapping
the execution backend may change *wall-clock time only* — never result
hashes, FedAvg parameters, or flop accounting.
"""

import numpy as np
import pytest

from repro.analytics.models import LogisticModel
from repro.learning.federated import FederatedConfig, FederatedTrainer
from repro.offchain.tasks import (
    TaskRequest,
    TaskResult,
    TaskRunner,
    ToolRegistry,
    ToolSpec,
    batch_flops,
    run_many_across_sites,
)
from repro.parallel import make_executor

BACKENDS = ("serial", "thread", "process")
FEATURES = 6


# Module-level (picklable) analytics tool and model factory.
def risk_tool(records, params):
    scale = params.get("scale", 1.0)
    total = sum(rec["value"] for rec in records)
    return {"count": len(records), "weighted": round(total * scale, 9)}


def model_factory():
    return LogisticModel(FEATURES, seed=11)


def _site_batches(sites=4, records_per_site=5):
    registry = ToolRegistry()
    registry.register(ToolSpec("risk", risk_tool, flops_per_record=50.0))
    runners = {}
    site_requests = []
    for index in range(sites):
        site = f"site-{index}"
        runners[site] = TaskRunner(site, registry)
        records = [
            {"id": f"{site}-{row}", "value": index * 10 + row * 0.5}
            for row in range(records_per_site)
        ]
        site_requests.append(
            (site, TaskRequest(f"task-{index}", "risk", records, {"scale": 2.0}))
        )
    return runners, site_requests


def _site_data(sites=3, rows=24):
    rng = np.random.default_rng(5)
    data = {}
    for index in range(sites):
        X = rng.normal(size=(rows, FEATURES))
        logits = X @ rng.normal(size=FEATURES)
        y = (logits > 0).astype(float)
        data[f"hospital-{index}"] = (X, y)
    return data


class TestRunManyEquivalence:
    def test_identical_hashes_across_backends(self):
        runners, site_requests = _site_batches()
        outcomes_by_backend = {}
        for backend in BACKENDS:
            with make_executor(backend, max_workers=4) as executor:
                outcomes_by_backend[backend] = run_many_across_sites(
                    runners, site_requests, executor
                )
        reference = outcomes_by_backend["serial"]
        assert all(isinstance(o, TaskResult) for o in reference)
        for backend in BACKENDS[1:]:
            outcomes = outcomes_by_backend[backend]
            assert [o.result_hash for o in outcomes] == [
                o.result_hash for o in reference
            ]
            assert [o.result for o in outcomes] == [o.result for o in reference]
            assert [o.site for o in outcomes] == [o.site for o in reference]
            assert batch_flops(outcomes) == batch_flops(reference)

    def test_runner_run_many_matches_run(self):
        runners, site_requests = _site_batches(sites=1)
        runner = runners["site-0"]
        __, request = site_requests[0]
        single = runner.run(request.task_id, request.tool_id, request.records,
                            request.params)
        (batched,) = runner.run_many([request])
        assert batched.result_hash == single.result_hash
        assert batched.flops == single.flops


class TestFederatedEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS[1:])
    def test_global_model_bit_identical(self, backend):
        site_data = _site_data()
        config = FederatedConfig(rounds=3, local_epochs=1, lr=0.2, seed=4)
        serial_result = FederatedTrainer(model_factory, config).train(site_data)
        with make_executor(backend, max_workers=3) as executor:
            parallel_result = FederatedTrainer(
                model_factory, config, executor=executor
            ).train(site_data)
        serial_params = serial_result.model.get_params()
        parallel_params = parallel_result.model.get_params()
        assert len(serial_params) == len(parallel_params)
        for a, b in zip(serial_params, parallel_params):
            np.testing.assert_array_equal(a, b)
        assert parallel_result.total_local_flops == serial_result.total_local_flops
        assert parallel_result.total_bytes_on_wire == serial_result.total_bytes_on_wire
        assert [r.mean_local_loss for r in parallel_result.history] == [
            r.mean_local_loss for r in serial_result.history
        ]
