"""Federated learning, transfer learning, aggregation, baselines."""

import numpy as np
import pytest

from repro.analytics.features import FEATURE_DIM, dataset_for
from repro.analytics.models import LogisticModel, MLPModel
from repro.common.errors import LearningError
from repro.datamgmt.cohort import CohortGenerator, default_site_profiles
from repro.learning.aggregation import mask_update, masked_round
from repro.learning.baseline import local_only_baselines, train_centralized
from repro.learning.federated import (
    FederatedConfig,
    FederatedTrainer,
    non_iid_severity,
    single_shot_average,
)
from repro.learning.transfer import (
    pretrain_core_model,
    train_from_scratch,
    transfer_fine_tune,
    transfer_learning_curve,
)


@pytest.fixture(scope="module")
def site_data(multi_site_cohorts):
    return {
        site: dataset_for(records, "stroke")
        for site, records in multi_site_cohorts.items()
    }


@pytest.fixture(scope="module")
def eval_data():
    generator = CohortGenerator(seed=404)
    profiles = default_site_profiles(2)
    records = generator.generate_cohort(profiles[0], 400) + generator.generate_cohort(
        profiles[1], 400
    )
    return dataset_for(records, "stroke")


def logistic_factory():
    return LogisticModel(FEATURE_DIM, seed=7)


class TestFederatedTrainer:
    def test_runs_configured_rounds(self, site_data, eval_data):
        trainer = FederatedTrainer(
            logistic_factory, FederatedConfig(rounds=4, local_epochs=1, lr=0.2)
        )
        result = trainer.train(site_data, eval_data)
        assert len(result.history) == 4
        assert result.total_bytes_on_wire > 0

    def test_learning_improves_over_rounds(self, site_data, eval_data):
        trainer = FederatedTrainer(
            logistic_factory, FederatedConfig(rounds=12, local_epochs=2, lr=0.3)
        )
        result = trainer.train(site_data, eval_data)
        first = result.history[0].eval_metrics["loss"]
        last = result.history[-1].eval_metrics["loss"]
        assert last < first

    def test_approaches_centralized_auc(self, site_data, eval_data):
        """E8's core claim: FedAvg ~ centralized accuracy without moving data."""
        fed = FederatedTrainer(
            logistic_factory, FederatedConfig(rounds=15, local_epochs=2, lr=0.3)
        ).train(site_data, eval_data)
        central = train_centralized(
            logistic_factory, site_data, eval_data, epochs=30, lr=0.3
        )
        assert fed.final_metric("auc") > central.eval_metrics["auc"] - 0.03

    def test_beats_local_only(self, site_data, eval_data):
        fed = FederatedTrainer(
            logistic_factory, FederatedConfig(rounds=15, local_epochs=2, lr=0.3)
        ).train(site_data, eval_data)
        local = local_only_baselines(
            logistic_factory, site_data, eval_data, epochs=10, lr=0.3
        )
        mean_local_auc = np.mean([m["auc"] for m in local.values()])
        assert fed.final_metric("auc") >= mean_local_auc - 0.02

    def test_bytes_far_below_centralized(self, site_data, eval_data):
        fed = FederatedTrainer(
            logistic_factory, FederatedConfig(rounds=10, local_epochs=1, lr=0.2)
        ).train(site_data)
        central = train_centralized(logistic_factory, site_data, epochs=5)
        assert fed.total_bytes_on_wire < central.bytes_moved / 2

    def test_partial_participation(self, site_data):
        trainer = FederatedTrainer(
            logistic_factory,
            FederatedConfig(rounds=6, participation=0.5, seed=3),
        )
        result = trainer.train(site_data)
        participant_counts = {len(record.participants) for record in result.history}
        assert participant_counts == {max(1, round(0.5 * len(site_data)))}

    def test_fedsgd_variant_runs(self, site_data, eval_data):
        trainer = FederatedTrainer(
            logistic_factory, FederatedConfig(rounds=8, fedsgd=True, lr=0.5)
        )
        result = trainer.train(site_data, eval_data)
        assert result.final_metric("auc") > 0.5

    def test_deterministic_given_seed(self, site_data):
        results = []
        for __ in range(2):
            trainer = FederatedTrainer(
                logistic_factory, FederatedConfig(rounds=3, seed=11)
            )
            result = trainer.train(site_data)
            results.append(result.model.get_params())
        assert np.allclose(results[0][0], results[1][0])

    def test_empty_sites_rejected(self):
        trainer = FederatedTrainer(logistic_factory)
        with pytest.raises(LearningError):
            trainer.train({})

    def test_on_round_callback(self, site_data):
        seen = []
        trainer = FederatedTrainer(logistic_factory, FederatedConfig(rounds=3))
        trainer.train(site_data, on_round=lambda record: seen.append(record.round_index))
        assert seen == [0, 1, 2]

    def test_fedavg_identical_data_matches_single_site(self, eval_data):
        """Invariant: with identical shards and full participation, FedAvg's
        average equals any single site's update."""
        X, y = eval_data
        shard = (X[:200], y[:200])
        data = {"a": shard, "b": shard, "c": shard}
        fed = FederatedTrainer(
            logistic_factory, FederatedConfig(rounds=1, local_epochs=1, lr=0.2, seed=5)
        ).train(data)
        solo = logistic_factory()
        solo.train_epochs(*shard, epochs=1, lr=0.2, seed=5 * 1000)
        assert np.allclose(fed.model.get_params()[0], solo.get_params()[0])

    def test_non_iid_severity_zero_for_identical(self):
        y = np.array([1.0, 0.0])
        X = np.zeros((2, 3))
        assert non_iid_severity({"a": (X, y), "b": (X, y)}) == 0.0

    def test_single_shot_average(self, site_data, eval_data):
        model = single_shot_average(logistic_factory, site_data, epochs=10, lr=0.3)
        assert model.evaluate(*eval_data)["auc"] > 0.6


class TestTransfer:
    @pytest.fixture(scope="class")
    def core_model(self, site_data):
        return pretrain_core_model(site_data, hidden=12, rounds=10, lr=0.3, seed=1)

    def test_pretrained_model_is_mlp(self, core_model):
        assert isinstance(core_model, MLPModel)

    def test_fine_tune_beats_scratch_on_small_data(self, core_model, eval_data):
        generator = CohortGenerator(seed=909)
        profile = default_site_profiles(1)[0]
        pool = generator.generate_cohort(profile, 400)
        X_pool, y_pool = dataset_for(pool, "diabetes")
        X_test, y_test = dataset_for(
            generator.generate_cohort(profile, 600), "diabetes"
        )
        results = transfer_learning_curve(
            core_model, X_pool, y_pool, X_test, y_test, sizes=[40], epochs=40, seed=2
        )
        # With 40 samples, pretrained features should not be much worse and
        # usually better; allow slack for stochasticity.
        assert results[0].transfer_metrics["auc"] > results[0].scratch_metrics["auc"] - 0.05

    def test_fine_tune_preserves_hidden_layer(self, core_model, eval_data):
        X, y = eval_data
        tuned = transfer_fine_tune(core_model, X[:100], y[:100], epochs=5)
        assert np.allclose(tuned.w1, core_model.w1)

    def test_full_fine_tune_changes_hidden_layer(self, core_model, eval_data):
        X, y = eval_data
        tuned = transfer_fine_tune(
            core_model, X[:100], y[:100], epochs=5, head_only=False
        )
        assert not np.allclose(tuned.w1, core_model.w1)

    def test_curve_size_validation(self, core_model, eval_data):
        X, y = eval_data
        with pytest.raises(LearningError):
            transfer_learning_curve(core_model, X[:10], y[:10], X, y, sizes=[100])

    def test_scratch_baseline_runs(self, eval_data):
        X, y = eval_data
        model = train_from_scratch(X[:100], y[:100], epochs=5)
        assert 0.0 <= model.evaluate(X, y)["auc"] <= 1.0

    def test_centralized_pretraining_variant(self, site_data):
        model = pretrain_core_model(site_data, federated=False, rounds=3)
        assert isinstance(model, MLPModel)


class TestSecureAggregation:
    def _params(self, seed):
        rng = np.random.default_rng(seed)
        return [rng.normal(0, 1, 5), rng.normal(0, 1, (2, 2))]

    def test_masks_cancel_in_aggregate(self):
        site_params = {f"s{i}": self._params(i) for i in range(4)}
        aggregate, __ = masked_round(site_params, round_index=1)
        expected = [
            np.mean([params[j] for params in site_params.values()], axis=0)
            for j in range(2)
        ]
        for got, want in zip(aggregate, expected):
            assert np.allclose(got, want, atol=1e-9)

    def test_individual_updates_are_masked(self):
        site_params = {f"s{i}": self._params(i) for i in range(3)}
        __, masked = masked_round(site_params, round_index=0, mask_scale=10.0)
        for site, params in site_params.items():
            assert not np.allclose(masked[site][0], params[0], atol=1.0)

    def test_masks_differ_per_round(self):
        params = {f"s{i}": self._params(i) for i in range(2)}
        __, round0 = masked_round(params, round_index=0)
        __, round1 = masked_round(params, round_index=1)
        assert not np.allclose(round0["s0"][0], round1["s0"][0])

    def test_unknown_site_rejected(self):
        with pytest.raises(LearningError):
            mask_update("ghost", ["a", "b"], self._params(0), 0)

    def test_two_party_masking_symmetric(self):
        a = mask_update("a", ["a", "b"], [np.zeros(3)], 5)
        b = mask_update("b", ["a", "b"], [np.zeros(3)], 5)
        assert np.allclose(a[0] + b[0], np.zeros(3), atol=1e-12)


class TestCentralizedBaseline:
    def test_bytes_moved_counts_every_record(self, site_data):
        result = train_centralized(logistic_factory, site_data, epochs=1)
        total_records = sum(len(y) for __, y in site_data.values())
        assert result.bytes_moved == total_records * 900

    def test_empty_rejected(self):
        with pytest.raises(LearningError):
            train_centralized(logistic_factory, {})

    def test_local_only_reports_per_site(self, site_data, eval_data):
        out = local_only_baselines(logistic_factory, site_data, eval_data, epochs=2)
        assert set(out) == set(site_data)
