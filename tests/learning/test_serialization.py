"""Model serialization round trips and hash anchoring."""

import numpy as np
import pytest

from repro.analytics.features import FEATURE_DIM
from repro.analytics.models import LogisticModel, MLPModel, MultiTaskMLP
from repro.common.errors import LearningError
from repro.learning.serialization import (
    model_from_dict,
    model_hash,
    model_to_dict,
    verify_model,
)


def _probe():
    return np.random.default_rng(0).normal(0, 1, (10, FEATURE_DIM))


@pytest.mark.parametrize(
    "model",
    [
        LogisticModel(FEATURE_DIM, seed=3),
        MLPModel(FEATURE_DIM, hidden=8, seed=3),
        MultiTaskMLP(FEATURE_DIM, ["stroke", "cancer"], hidden=8, seed=3),
    ],
    ids=["logistic", "mlp", "multitask"],
)
def test_round_trip_preserves_predictions(model):
    restored = model_from_dict(model_to_dict(model))
    X = _probe()
    assert np.allclose(model.predict_proba(X), restored.predict_proba(X))


def test_hash_stable_and_content_addressed():
    a = LogisticModel(FEATURE_DIM, seed=1)
    b = LogisticModel(FEATURE_DIM, seed=1)
    c = LogisticModel(FEATURE_DIM, seed=2)
    assert model_hash(a) == model_hash(b)
    assert model_hash(a) != model_hash(c)


def test_verify_model_detects_tampering():
    model = MLPModel(FEATURE_DIM, hidden=6, seed=0)
    anchored = model_hash(model)
    assert verify_model(model, anchored)
    model.w2[0] += 0.5
    assert not verify_model(model, anchored)


def test_serialized_form_is_canonical_json_safe():
    from repro.common.serialize import canonical_bytes

    payload = model_to_dict(MLPModel(FEATURE_DIM, hidden=4))
    canonical_bytes(payload)  # floats allowed here; must not raise


def test_unknown_kind_rejected():
    with pytest.raises(LearningError):
        model_from_dict({"kind": "transformer", "params": []})


def test_training_survives_round_trip():
    rng = np.random.default_rng(5)
    X = rng.normal(0, 1, (200, FEATURE_DIM))
    y = (X[:, 0] > 0).astype(float)
    model = LogisticModel(FEATURE_DIM, seed=0)
    model.train_epochs(X, y, epochs=10, lr=0.5)
    restored = model_from_dict(model_to_dict(model))
    assert restored.evaluate(X, y)["auc"] == pytest.approx(
        model.evaluate(X, y)["auc"]
    )
