"""Clinical trial tests: protocol, simulation, RWE monitor, auditor."""

import pytest

from repro.common.errors import TrialError
from repro.datamgmt.cohort import CohortGenerator, default_site_profiles
from repro.offchain.anchoring import DatasetAnchor
from repro.trial.auditor import PublishedReport, TrialAuditor
from repro.trial.monitor import RWEMonitor
from repro.trial.protocol import TrialProtocol
from repro.trial.simulation import (
    TrialEffect,
    assign_arms,
    simulate_follow_up,
    true_effect_summary,
)


@pytest.fixture(scope="module")
def protocol():
    return TrialProtocol(
        trial_id="NCT-REPRO-1",
        title="Anticoagulant X vs standard of care",
        drug="anticoag-x",
        primary_outcomes=["stroke"],
        secondary_outcomes=["mortality"],
        subgroups=["rs2200733"],
        target_enrollment=600,
        follow_up_days=365,
    )


@pytest.fixture(scope="module")
def enrolled(protocol):
    generator = CohortGenerator(seed=31)
    profiles = default_site_profiles(3)
    patients = []
    for profile in profiles:
        patients.extend(generator.generate_cohort(profile, 200))
    return patients[: protocol.target_enrollment]


@pytest.fixture(scope="module")
def outcomes(protocol, enrolled):
    arms = assign_arms(enrolled, protocol, seed=1)
    return simulate_follow_up(enrolled, arms, protocol, seed=2)


class TestProtocol:
    def test_hash_is_deterministic(self, protocol):
        assert protocol.protocol_hash() == protocol.protocol_hash()

    def test_hash_changes_with_outcomes(self, protocol):
        import dataclasses

        other = dataclasses.replace(protocol, primary_outcomes=["myocardial_infarction"])
        assert other.protocol_hash() != protocol.protocol_hash()

    def test_validation_requires_outcomes(self):
        with pytest.raises(TrialError):
            TrialProtocol(trial_id="x", title="t", drug="d").validate()

    def test_validation_rejects_duplicate_outcomes(self):
        with pytest.raises(TrialError):
            TrialProtocol(
                trial_id="x", title="t", drug="d",
                primary_outcomes=["a"], secondary_outcomes=["a"],
            ).validate()

    def test_validation_requires_two_arms(self):
        with pytest.raises(TrialError):
            TrialProtocol(
                trial_id="x", title="t", drug="d",
                arms=["only"], primary_outcomes=["a"],
            ).validate()

    def test_registration_args(self, protocol):
        args = protocol.to_registration_args()
        assert args["outcomes"] == ["stroke", "mortality"]
        assert args["target_enrollment"] == 600


class TestSimulation:
    def test_arms_balanced(self, protocol, enrolled):
        arms = assign_arms(enrolled, protocol, seed=1)
        counts = {arm: list(arms.values()).count(arm) for arm in protocol.arms}
        assert abs(counts["treatment"] - counts["control"]) <= 1

    def test_all_patients_assigned(self, protocol, enrolled):
        arms = assign_arms(enrolled, protocol, seed=1)
        assert set(arms) == {patient["patient_id"] for patient in enrolled}

    def test_subgroup_effect_present(self, outcomes):
        """Ground truth: the drug works in carriers, not in non-carriers."""
        summary = true_effect_summary(outcomes)
        carrier_benefit = (
            summary["control_rate_carriers"] - summary["treatment_rate_carriers"]
        )
        noncarrier_benefit = (
            summary["control_rate_noncarriers"] - summary["treatment_rate_noncarriers"]
        )
        assert carrier_benefit > 0.08
        assert noncarrier_benefit < carrier_benefit

    def test_safety_signal_present(self, outcomes):
        summary = true_effect_summary(outcomes)
        assert summary["ae_rate_treatment"] > summary["ae_rate_control"]

    def test_unassigned_patient_rejected(self, protocol, enrolled):
        with pytest.raises(TrialError):
            simulate_follow_up(enrolled, {}, protocol)

    def test_deterministic(self, protocol, enrolled):
        arms = assign_arms(enrolled, protocol, seed=1)
        a = simulate_follow_up(enrolled, arms, protocol, seed=2)
        b = simulate_follow_up(enrolled, arms, protocol, seed=2)
        assert a == b

    def test_report_days_within_follow_up(self, protocol, outcomes):
        assert all(1 <= o.report_day <= protocol.follow_up_days for o in outcomes)


class TestRWEMonitor:
    def test_continuous_detects_subgroup_efficacy(self, outcomes):
        monitor = RWEMonitor(alpha=0.05, subgroup_min_per_arm=15)
        monitor.run_stream(outcomes)
        day = monitor.detection_day("subgroup_efficacy_carriers")
        assert day is not None

    def test_continuous_beats_batch_timing(self, protocol, outcomes):
        """The paper's RWE pitch: signals surface before the trial ends."""
        monitor = RWEMonitor(alpha=0.05, subgroup_min_per_arm=15)
        monitor.run_stream(outcomes)
        days = [signal.day for signal in monitor.signals]
        assert days and min(days) < protocol.follow_up_days

    def test_batch_analysis_confirms_subgroup(self, outcomes):
        results = RWEMonitor.batch_analysis(outcomes)
        assert results["subgroup_efficacy_carriers"].p_value < 0.05

    def test_batch_noncarriers_not_significant(self, outcomes):
        results = RWEMonitor.batch_analysis(outcomes)
        assert results["subgroup_efficacy_noncarriers"].p_value > 0.01

    def test_signals_fire_once(self, outcomes):
        monitor = RWEMonitor(alpha=0.1, subgroup_min_per_arm=10)
        monitor.run_stream(outcomes)
        kinds = [signal.kind for signal in monitor.signals]
        assert len(kinds) == len(set(kinds))

    def test_min_sample_gate(self, outcomes):
        monitor = RWEMonitor(alpha=0.9, min_per_arm=10**6)
        monitor.run_stream(outcomes)
        assert monitor.detection_day("efficacy") is None

    def test_no_effect_no_signal(self, protocol, enrolled):
        neutral = TrialEffect(
            treatment_rr_carriers=1.0,
            treatment_rr_noncarriers=1.0,
            adverse_rate_treatment=0.04,
        )
        arms = assign_arms(enrolled, protocol, seed=1)
        quiet = simulate_follow_up(enrolled, arms, protocol, effect=neutral, seed=3)
        monitor = RWEMonitor(alpha=0.001)
        monitor.run_stream(quiet)
        assert not monitor.signals


class TestAuditor:
    def test_clean_report(self):
        auditor = TrialAuditor()
        finding = auditor.audit(
            ["stroke", "mortality"],
            PublishedReport("T1", ["stroke", "mortality"]),
        )
        assert finding.clean

    def test_outcome_switching_detected(self):
        auditor = TrialAuditor()
        finding = auditor.audit(
            ["stroke"], PublishedReport("T1", ["quality_of_life"])
        )
        assert not finding.reported_correctly
        assert finding.switched_in == ["quality_of_life"]
        assert finding.silently_dropped == ["stroke"]

    def test_partial_drop_detected(self):
        auditor = TrialAuditor()
        finding = auditor.audit(
            ["stroke", "mortality"], PublishedReport("T1", ["stroke"])
        )
        assert finding.silently_dropped == ["mortality"]
        assert not finding.switched_in

    def test_data_tampering_detected(self):
        records = [{"patient": f"p{i}", "value": i} for i in range(10)]
        anchor = DatasetAnchor.build(records)
        tampered = [dict(record) for record in records]
        tampered[4]["value"] = 999
        auditor = TrialAuditor()
        finding = auditor.audit(
            ["stroke"],
            PublishedReport("T1", ["stroke"], raw_records=tampered),
            anchored_root_hex=anchor.root_hex,
        )
        assert not finding.data_intact
        assert not finding.clean

    def test_intact_data_passes(self):
        records = [{"patient": f"p{i}", "value": i} for i in range(10)]
        anchor = DatasetAnchor.build(records)
        auditor = TrialAuditor()
        finding = auditor.audit(
            ["stroke"],
            PublishedReport("T1", ["stroke"], raw_records=records),
            anchored_root_hex=anchor.root_hex,
        )
        assert finding.clean

    def test_audit_many_aggregates(self):
        auditor = TrialAuditor()
        registrations = {"T1": ["a"], "T2": ["b"], "T3": ["c"]}
        reports = [
            PublishedReport("T1", ["a"]),
            PublishedReport("T2", ["z"]),   # switched
            PublishedReport("T3", ["c"]),
        ]
        summary = auditor.audit_many(registrations, reports, anchors={})
        assert summary["total"] == 3
        assert summary["reported_correctly"] == 2
        assert summary["outcome_switching"] == 1
