"""JSON-RPC 2.0 codec: parsing, validation, and typed error round trips."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rpc import codec
from repro.rpc.codec import NO_ID, Request, Response
from repro.rpc.errors import (
    InvalidRequestError,
    MethodNotFoundError,
    OverloadedError,
    ParseError,
    RpcError,
    ServerRpcError,
    error_from_wire,
)

jsonables = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**31), max_value=2**31)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=10,
)


@given(params=st.dictionaries(st.text(min_size=1, max_size=8), jsonables, max_size=4))
@settings(max_examples=100, deadline=None)
def test_request_wire_roundtrip(params):
    request = Request(method="site.query", params=params, request_id=7)
    data = codec.encode_payload(request.to_wire())
    parsed = codec.parse_request(codec.decode_payload(data))
    assert parsed.method == "site.query"
    assert parsed.request_id == 7
    assert parsed.params == params


def test_notification_has_no_id_on_the_wire():
    wire = Request(method="ping", request_id=NO_ID).to_wire()
    assert "id" not in wire
    assert codec.parse_request(wire).is_notification


def test_malformed_json_is_parse_error():
    with pytest.raises(ParseError) as err:
        codec.decode_payload(b'{"jsonrpc": "2.0", "method": ')
    assert err.value.code == -32700


def test_non_utf8_is_parse_error():
    with pytest.raises(ParseError):
        codec.decode_payload(b"\xff\xfe{}")


@pytest.mark.parametrize(
    "wire",
    [
        42,
        "hello",
        {"method": "m"},  # missing jsonrpc version
        {"jsonrpc": "1.0", "method": "m"},
        {"jsonrpc": "2.0"},  # missing method
        {"jsonrpc": "2.0", "method": ""},
        {"jsonrpc": "2.0", "method": 5},
        {"jsonrpc": "2.0", "method": "m", "params": "positional-ish"},
        {"jsonrpc": "2.0", "method": "m", "id": [1]},
    ],
)
def test_invalid_requests_rejected(wire):
    with pytest.raises(InvalidRequestError):
        codec.parse_request(wire)


def test_parse_batch_distinguishes_batch_and_single():
    single = Request(method="a", request_id=1).to_wire()
    objs, was_batch = codec.parse_batch(single)
    assert not was_batch and len(objs) == 1
    objs, was_batch = codec.parse_batch([single, single])
    assert was_batch and len(objs) == 2


def test_empty_batch_is_invalid_request():
    with pytest.raises(InvalidRequestError):
        codec.parse_batch([])


def test_response_roundtrip_with_result():
    wire = Response(request_id=3, result={"count": 9}).to_wire()
    parsed = codec.parse_response(wire)
    assert parsed.result == {"count": 9}
    assert parsed.error is None


def test_response_roundtrip_with_error_restores_type_and_data():
    error = OverloadedError(data={"inflight": 64, "limit": 64})
    wire = codec.error_response(5, error).to_wire()
    parsed = codec.parse_response(wire)
    assert isinstance(parsed.error, OverloadedError)
    assert parsed.error.code == -32001
    assert parsed.error.data == {"inflight": 64, "limit": 64}


def test_unknown_error_code_degrades_to_server_error():
    error = error_from_wire({"code": -32099, "message": "mystery"})
    assert isinstance(error, ServerRpcError)
    assert error.code == -32099
    assert isinstance(error, RpcError)


def test_error_from_wire_maps_spec_codes():
    assert isinstance(error_from_wire({"code": -32601, "message": "x"}),
                      MethodNotFoundError)


def test_bytes_params_serialize_deterministically():
    request = Request(method="m", params={"blob": b"\x00\x01"}, request_id=1)
    first = codec.encode_payload(request.to_wire())
    second = codec.encode_payload(request.to_wire())
    assert first == second
