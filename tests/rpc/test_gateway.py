"""Gateway: inproc/tcp equivalence, query-service integration, tracing."""

from __future__ import annotations

import asyncio
import os

import pytest

from repro.common.errors import QueryError
from repro.core.queryservice import GlobalQueryService
from repro.obs.tracer import Tracer, tracer_override, trace_span
from repro.query.parser import parse_query
from repro.rpc.demo import build_demo_network, build_inproc_gateway, build_site_server
from repro.rpc.errors import MethodNotFoundError
from repro.rpc.gateway import TcpGateway

QUERIES = (
    "how many patients have diabetes",
    "prevalence of stroke among smokers",
    "average systolic blood pressure for women over 50",
    "histogram of bmi between 15 and 55 with 4 bins",
)


@pytest.fixture(scope="module")
def demo():
    return build_demo_network(site_count=2, records_per_site=40, seed=77)


def test_tcp_and_inproc_compose_identical_hashes(demo):
    platform, _ = demo
    inproc = build_inproc_gateway(platform)

    async def over_tcp():
        servers, addrs = [], {}
        for site in platform.site_names:
            server = build_site_server(platform, site)
            host, port = await server.start()
            servers.append(server)
            addrs[site] = (host, port)
        gateway = TcpGateway(addrs)
        try:
            return [
                (await gateway.aexecute(parse_query(text))) for text in QUERIES
            ]
        finally:
            await gateway.aclose()
            for server in servers:
                await server.close()

    tcp_answers = asyncio.run(over_tcp())
    for text, tcp_answer in zip(QUERIES, tcp_answers):
        inproc_answer = inproc.execute(parse_query(text))
        assert tcp_answer.result_hash == inproc_answer.result_hash, text
        assert tcp_answer.result == inproc_answer.result
        assert tcp_answer.transport == "tcp"
        assert inproc_answer.transport == "inproc"
    inproc.close()


def test_gateway_backed_query_service_matches_simulated_path(demo):
    platform, researcher = demo
    gateway = build_inproc_gateway(platform)
    via_gateway = GlobalQueryService(platform, researcher, gateway=gateway)
    simulated = GlobalQueryService(platform, researcher)
    for text in QUERIES[:2]:
        gw_answer = via_gateway.ask(text)
        sim_answer = simulated.ask(text)
        assert gw_answer.result == sim_answer.result, text
        assert sorted(gw_answer.site_partials) == sorted(sim_answer.site_partials)
    gateway.close()


def test_gateway_catalog_matches_platform_catalog(demo):
    platform, _ = demo
    gateway = build_inproc_gateway(platform)
    served = {(r.site, r.dataset_id, r.record_count) for r in gateway.catalog()}
    registered = {
        (r.site, r.dataset_id, r.record_count) for r in platform.catalog()
    }
    assert served == registered
    gateway.close()


def test_unknown_site_raises_query_error(demo):
    platform, _ = demo
    gateway = build_inproc_gateway(platform)
    with pytest.raises(QueryError):
        gateway.call("no-such-hospital", "health")
    with pytest.raises(MethodNotFoundError):
        gateway.call(platform.site_names[0], "no.such.method")
    gateway.close()


def test_inproc_gateway_adopts_server_spans(demo):
    platform, _ = demo
    gateway = build_inproc_gateway(platform)
    tracer = Tracer()
    with tracer_override(tracer):
        with trace_span("test.root"):
            gateway.execute(parse_query(QUERIES[0]))
    gateway.close()
    by_id = {span.span_id: span for span in tracer.spans}
    serves = [span for span in tracer.spans if span.name == "rpc.serve"]
    assert len(serves) == len(platform.site_names) + len(platform.site_names)
    for span in serves:  # every server-side span re-parented under rpc.call
        assert by_id[span.parent_id].name == "rpc.call"
    calls = [span for span in tracer.spans if span.name == "rpc.call"]
    roots = [span for span in tracer.spans if span.parent_id is None]
    assert [root.name for root in roots] == ["test.root"]
    assert all(span.pid == os.getpid() for span in calls)
