"""Server/client behavior over real sockets: backpressure, timeouts,
pipelining, retries, batches, and leak-free graceful shutdown.

No pytest-asyncio in the image, so each test drives its own loop via
``asyncio.run`` — which doubles as the leak check: ``asyncio.run`` closes
the loop, so any lingering task or open socket surfaces immediately, and
the shutdown test asserts the absence explicitly.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.rpc.client import ConnectionPool, RetryPolicy, RpcClient
from repro.rpc.errors import (
    FrameTooLargeError,
    InvalidParamsError,
    MethodNotFoundError,
    OverloadedError,
    RpcError,
    RpcTimeoutError,
    ShuttingDownError,
)
from repro.rpc.framing import encode_frame, read_frame
from repro.rpc.server import MethodRegistry, RpcServer
from repro.rpc import codec


def make_registry(gate: asyncio.Event = None) -> MethodRegistry:
    registry = MethodRegistry()
    registry.register("add", lambda a, b: {"sum": a + b}, idempotent=True)
    registry.register("echo", lambda payload=None: {"payload": payload}, idempotent=True)

    async def wait_gate():
        await gate.wait()
        return {"done": True}

    if gate is not None:
        registry.register("gate.wait", wait_gate, idempotent=True)

    async def crawl():
        await asyncio.sleep(30)

    registry.register("slow.crawl", crawl, timeout_s=0.05, idempotent=True)

    def boom():
        raise RuntimeError("kaput")

    registry.register("boom", boom, idempotent=True)
    return registry


async def serve(registry=None, **server_kwargs):
    server = RpcServer(registry or make_registry(), **server_kwargs)
    host, port = await server.start()
    return server, host, port


def test_call_and_typed_errors():
    async def scenario():
        server, host, port = await serve()
        client = await RpcClient.connect(host, port)
        assert await client.call("add", {"a": 2, "b": 3}) == {"sum": 5}
        with pytest.raises(MethodNotFoundError):
            await client.call("no.such.method")
        with pytest.raises(InvalidParamsError):
            await client.call("add", {"a": 2})  # missing b -> TypeError
        with pytest.raises(RpcError) as err:
            await client.call("boom")
        assert err.value.code == -32603  # internal, class name only
        assert err.value.data == {"type": "RuntimeError"}
        await client.close()
        await server.close()

    asyncio.run(scenario())


def test_positional_params_rejected():
    async def scenario():
        server, host, port = await serve()
        client = await RpcClient.connect(host, port)
        with pytest.raises(InvalidParamsError):
            await client.call("add", [2, 3])
        await client.close()
        await server.close()

    asyncio.run(scenario())


def test_per_method_timeout_answers_timeout_code():
    async def scenario():
        server, host, port = await serve()
        client = await RpcClient.connect(host, port)
        with pytest.raises(RpcTimeoutError) as err:
            await client.call("slow.crawl")
        assert err.value.code == -32002
        assert err.value.data["timeout_s"] == 0.05
        await client.close()
        await server.close()

    asyncio.run(scenario())


def test_overload_rejects_immediately_instead_of_queueing():
    async def scenario():
        gate = asyncio.Event()
        server, host, port = await serve(make_registry(gate), max_inflight=1)
        client = await RpcClient.connect(host, port)
        blocked = asyncio.create_task(client.call("gate.wait"))
        await asyncio.sleep(0.05)  # let it occupy the single slot
        started = asyncio.get_running_loop().time()
        with pytest.raises(OverloadedError) as err:
            await client.call("add", {"a": 1, "b": 1})
        elapsed = asyncio.get_running_loop().time() - started
        assert elapsed < 1.0  # rejected now, not parked behind gate.wait
        assert err.value.data["limit"] == 1
        gate.set()
        assert await blocked == {"done": True}
        await client.close()
        await server.close()

    asyncio.run(scenario())


def test_pipelining_no_head_of_line_blocking():
    async def scenario():
        gate = asyncio.Event()
        server, host, port = await serve(make_registry(gate))
        client = await RpcClient.connect(host, port)
        slow = asyncio.create_task(client.call("gate.wait"))
        # Issued after the slow call on the SAME connection, completes first.
        assert await client.call("add", {"a": 1, "b": 2}) == {"sum": 3}
        assert not slow.done()
        gate.set()
        assert await slow == {"done": True}
        await client.close()
        await server.close()

    asyncio.run(scenario())


def test_batch_mixes_results_and_errors_in_order():
    async def scenario():
        server, host, port = await serve()
        client = await RpcClient.connect(host, port)
        results = await client.call_batch(
            [
                ("add", {"a": 1, "b": 1}),
                ("no.such", None),
                ("echo", {"payload": "x"}),
            ]
        )
        assert results[0] == {"sum": 2}
        assert isinstance(results[1], MethodNotFoundError)
        assert results[2] == {"payload": "x"}
        await client.close()
        await server.close()

    asyncio.run(scenario())


def test_notifications_produce_no_response():
    async def scenario():
        server, host, port = await serve()
        client = await RpcClient.connect(host, port)
        await client.notify("echo", {"payload": "fire-and-forget"})
        # The connection still works afterwards: no stray frame desynced it.
        assert await client.call("add", {"a": 0, "b": 0}) == {"sum": 0}
        await client.close()
        await server.close()

    asyncio.run(scenario())


def test_pool_retries_idempotent_overload_then_succeeds():
    attempts = {"n": 0}

    def flaky():
        attempts["n"] += 1
        if attempts["n"] == 1:
            raise OverloadedError()
        return {"ok": True}

    registry = MethodRegistry()
    registry.register("flaky", flaky, idempotent=True)

    async def scenario():
        server, host, port = await serve(registry)
        pool = ConnectionPool(
            host, port, retry=RetryPolicy(attempts=3, base_delay_s=0.01)
        )
        assert await pool.call("flaky", idempotent=True) == {"ok": True}
        assert attempts["n"] == 2
        await pool.close()
        await server.close()

    asyncio.run(scenario())


def test_pool_never_retries_non_idempotent():
    attempts = {"n": 0}

    def flaky():
        attempts["n"] += 1
        raise OverloadedError()

    registry = MethodRegistry()
    registry.register("flaky", flaky)

    async def scenario():
        server, host, port = await serve(registry)
        pool = ConnectionPool(
            host, port, retry=RetryPolicy(attempts=3, base_delay_s=0.01)
        )
        with pytest.raises(OverloadedError):
            await pool.call("flaky", idempotent=False)
        assert attempts["n"] == 1
        await pool.close()
        await server.close()

    asyncio.run(scenario())


def test_pool_reconnects_after_server_restart():
    async def scenario():
        registry = make_registry()
        server, host, port = await serve(registry)
        pool = ConnectionPool(
            host, port, retry=RetryPolicy(attempts=5, base_delay_s=0.02)
        )
        assert await pool.call("add", {"a": 1, "b": 1}, idempotent=True) == {"sum": 2}
        await server.close()
        # Same port, fresh server: the pooled (now dead) connection fails,
        # the retry path reconnects transparently.
        server2 = RpcServer(registry)
        await server2.start(host, port)
        assert await pool.call("add", {"a": 2, "b": 2}, idempotent=True) == {"sum": 4}
        await pool.close()
        await server2.close()

    asyncio.run(scenario())


def test_oversized_request_frame_answered_then_closed():
    async def scenario():
        server, host, port = await serve(max_frame_bytes=256)
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(encode_frame(b"x" * 300))  # client-side limit not applied
        await writer.drain()
        frame = await read_frame(reader)
        response = codec.parse_response(codec.decode_payload(frame))
        assert isinstance(response.error, FrameTooLargeError)
        assert await reader.read() == b""  # server closed the connection
        writer.close()
        await writer.wait_closed()
        await server.close()

    asyncio.run(scenario())


def test_graceful_shutdown_drains_inflight_and_leaks_nothing():
    async def scenario():
        registry = MethodRegistry()

        async def slowish():
            await asyncio.sleep(0.2)
            return {"drained": True}

        registry.register("slowish", slowish, idempotent=True)
        server, host, port = await serve(registry, drain_timeout_s=2.0)
        client = await RpcClient.connect(host, port)
        inflight = asyncio.create_task(client.call("slowish"))
        await asyncio.sleep(0.05)
        await server.close()  # must wait for the in-flight call
        assert await inflight == {"drained": True}
        with pytest.raises((ShuttingDownError, ConnectionError, OSError)):
            await RpcClient.connect(host, port)  # not accepting anymore
        await client.close()
        assert server.connection_count == 0
        await asyncio.sleep(0)
        current = asyncio.current_task()
        leftover = [
            t for t in asyncio.all_tasks() if t is not current and not t.done()
        ]
        assert leftover == []

    asyncio.run(scenario())


def test_requests_during_drain_rejected_with_shutting_down():
    async def scenario():
        gate = asyncio.Event()
        server, host, port = await serve(make_registry(gate), drain_timeout_s=1.0)
        client = await RpcClient.connect(host, port)
        blocked = asyncio.create_task(client.call("gate.wait"))
        await asyncio.sleep(0.05)
        closing = asyncio.create_task(server.close())
        await asyncio.sleep(0.05)
        gate.set()
        assert await blocked == {"done": True}
        await closing
        await client.close()

    asyncio.run(scenario())


def test_client_close_fails_pending_calls():
    async def scenario():
        gate = asyncio.Event()
        server, host, port = await serve(make_registry(gate))
        client = await RpcClient.connect(host, port)
        pending = asyncio.create_task(client.call("gate.wait"))
        await asyncio.sleep(0.05)
        await client.close()
        with pytest.raises((ConnectionError, RpcError)):
            await pending
        gate.set()
        await server.close()

    asyncio.run(scenario())


def test_server_metrics_count_calls_and_errors():
    async def scenario():
        server, host, port = await serve(name="metrics-site")
        client = await RpcClient.connect(host, port)
        await client.call("add", {"a": 1, "b": 1})
        with pytest.raises(MethodNotFoundError):
            await client.call("nope")
        await client.close()
        await server.close()
        return server.metrics

    metrics = asyncio.run(scenario())
    assert metrics.counter("rpc_calls[add]", scope="metrics-site") == 1
    assert metrics.counter("rpc_errors[nope:method_not_found]", scope="metrics-site") == 1
    assert metrics.counter("rpc_latency_s[add]", scope="metrics-site") > 0
