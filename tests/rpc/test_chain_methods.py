"""Site-registry chain.get_headers / chain.get_blocks (the sync serve side)."""

from __future__ import annotations

import pytest

from repro.chain.blocks import build_block, make_genesis
from repro.chain.state import StateDB
from repro.chain.store import ChainStore
from repro.chain.transactions import make_transfer
from repro.p2p.wire import block_from_wire, header_from_wire
from repro.rpc.errors import InvalidParamsError
from repro.rpc.methods import SiteService, build_site_registry


class _DataStore:
    def dataset_ids(self):
        return []

    def get_records(self, dataset_id):
        return []


class _Node:
    def __init__(self, store):
        self.store = store

    @property
    def head(self):
        return self.store.head


def _registry(alice, length=5):
    state = StateDB()
    genesis = make_genesis(state.state_root())
    store = ChainStore(genesis)
    parent = genesis
    for i in range(length):
        parent = build_block(
            parent=parent,
            transactions=[make_transfer(alice, "r", 1, nonce=i)],
            state_root=parent.header.state_root,
            proposer="tester",
            timestamp_ms=1000 + i,
        )
        store.add(parent)
    service = SiteService(
        name="site-a", store=_DataStore(), runner=None, node=_Node(store)
    )
    return build_site_registry(service), store


def test_get_headers_from_genesis(alice):
    registry, store = _registry(alice)
    reply = registry.get("chain.get_headers").handler(locator=[], limit=256)
    chain = store.canonical_chain()
    assert [h["block_id"] for h in reply["headers"]] == [
        b.block_id for b in chain[1:]
    ]
    # Wire headers decode back to real headers with verifiable ids.
    for wire, block in zip(reply["headers"], chain[1:]):
        header = header_from_wire(wire)
        assert header.block_hash().hex() == block.block_id


def test_get_headers_respects_locator_and_limit(alice):
    registry, store = _registry(alice)
    chain = store.canonical_chain()
    reply = registry.get("chain.get_headers").handler(
        locator=[chain[2].block_id], limit=2
    )
    assert [h["block_id"] for h in reply["headers"]] == [
        chain[3].block_id,
        chain[4].block_id,
    ]


def test_get_headers_ignores_non_string_locator_entries(alice):
    registry, store = _registry(alice, length=2)
    reply = registry.get("chain.get_headers").handler(
        locator=[None, 7, store.canonical_chain()[1].block_id], limit=256
    )
    assert len(reply["headers"]) == 1  # anchored at the one valid entry


def test_get_blocks_returns_decodable_bodies(alice):
    registry, store = _registry(alice)
    chain = store.canonical_chain()
    ids = [chain[1].block_id, "ff" * 32, chain[2].block_id]
    reply = registry.get("chain.get_blocks").handler(ids=ids)
    blocks = [block_from_wire(w) for w in reply["blocks"]]
    # Unknown ids are skipped, known ones round-trip bit-exactly.
    assert [b.block_id for b in blocks] == [chain[1].block_id, chain[2].block_id]
    assert blocks[0].transactions[0].tx_id == chain[1].transactions[0].tx_id


def test_chain_methods_require_a_node(alice):
    service = SiteService(name="data-only", store=_DataStore(), runner=None)
    registry = build_site_registry(service)
    with pytest.raises(InvalidParamsError):
        registry.get("chain.get_headers").handler(locator=[])
    with pytest.raises(InvalidParamsError):
        registry.get("chain.get_blocks").handler(ids=["aa" * 32])
