"""node.submit_tx / mempool.status conformance over BOTH transports.

Every :class:`AdmissionResult` variant must surface identically whether
the call travels through a real TCP socket or the in-process dispatch
path (``RpcServer.dispatch_raw``): same result shape on admit, same
stable integer error code and machine-usable ``data`` on refusal.  The
two paths share the server's dispatch code by construction — this suite
pins the *wire contract* so client SDKs can branch on codes alone.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.chain.blocks import make_genesis
from repro.chain.mempool import Mempool, MempoolConfig
from repro.chain.state import StateDB
from repro.chain.transactions import make_transfer
from repro.common.signatures import KeyPair
from repro.consensus.node import BlockchainNode, NodeConfig
from repro.consensus.poa import ProofOfAuthority
from repro.p2p.wire import tx_to_wire
from repro.sim.kernel import Kernel
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import Network
from repro.rpc import codec
from repro.rpc.client import RpcClient
from repro.rpc.errors import (
    OVERLOADED,
    RATE_LIMITED,
    STALE_NONCE,
    TX_UNDERPRICED,
    OverloadedError,
    RateLimitedError,
    RpcError,
    StaleNonceError,
    TxUnderpricedError,
    error_from_wire,
)
from repro.rpc.methods import SiteService, build_site_registry
from repro.rpc.server import RpcServer

TRANSPORTS = ["inproc", "tcp"]


class _DataStore:
    def dataset_ids(self):
        return []

    def get_records(self, dataset_id):
        return []


class _PoolNode:
    """The slice of a blockchain node the submit path needs."""

    def __init__(self, config=None):
        self.mempool = Mempool(config=config)
        self.nonces = {}

    def submit_tx(self, tx):
        return self.mempool.add(tx, account_nonce=self.nonces.get(tx.sender, 0))


def _real_node(config=None):
    """A full :class:`BlockchainNode` on a one-node sim network.

    The stub above pins the pool's admission codes; this pins the *node*
    layer stacked in front of it (duplicate gating, gossip suppression,
    retry-after-rejection), which is what production RPC servers serve.
    """
    kernel = Kernel(seed=0)
    network = Network(kernel, MetricsRegistry())
    state = StateDB()
    genesis = make_genesis(state.state_root())
    engine = ProofOfAuthority(
        ["site-a"], {"site-a": KeyPair.generate("site-a")}, block_interval_s=0.5
    )
    return BlockchainNode(
        kernel,
        network,
        "site-a",
        genesis,
        state,
        engine,
        config=NodeConfig(mempool=config),
    )


def _paid(keypair, nonce, fee, amount=1):
    return make_transfer(
        keypair,
        "sink",
        amount,
        nonce=nonce,
        max_fee_per_gas=fee,
        priority_fee_per_gas=fee,
    )


def run_conformance(transport, scenario, config=None, node_factory=_PoolNode):
    """Boot a site server, run ``scenario(call, node)``, tear down."""

    async def main():
        node = node_factory(config)
        service = SiteService(
            name="site-a", store=_DataStore(), runner=None, node=node
        )
        server = RpcServer(build_site_registry(service), name="site-a")
        if transport == "tcp":
            host, port = await server.start()
            client = await RpcClient.connect(host, port)

            async def call(method, params):
                return await client.call(method, params)

        else:

            async def call(method, params):
                request = codec.encode_payload(
                    {"jsonrpc": "2.0", "id": 1, "method": method, "params": params}
                )
                raw = await server.dispatch_raw(request)
                payload = codec.decode_payload(raw)
                if "error" in payload:
                    raise error_from_wire(payload["error"])
                return payload["result"]

        try:
            await scenario(call, node)
        finally:
            if transport == "tcp":
                await client.close()
            await server.close()

    asyncio.run(main())


def submit(call, tx):
    return call("node.submit_tx", {"tx": tx_to_wire(tx)})


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_accepted_and_duplicate(transport, alice):
    async def scenario(call, node):
        tx = _paid(alice, 0, fee=1)
        reply = await submit(call, tx)
        assert reply == {"accepted": True, "status": "accepted", "tx_id": tx.tx_id}
        again = await submit(call, tx)
        assert again == {"accepted": False, "status": "duplicate", "tx_id": tx.tx_id}

    run_conformance(transport, scenario)


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_replaced_reports_displaced_tx(transport, alice):
    async def scenario(call, node):
        old = _paid(alice, 0, fee=100)
        new = _paid(alice, 0, fee=110, amount=2)
        await submit(call, old)
        reply = await submit(call, new)
        assert reply["accepted"] is True
        assert reply["status"] == "replaced"
        assert reply["tx_id"] == new.tx_id
        assert reply["replaced_tx_id"] == old.tx_id

    run_conformance(transport, scenario)


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_underpriced_quotes_fee_floor(transport, alice):
    async def scenario(call, node):
        with pytest.raises(TxUnderpricedError) as err:
            await submit(call, _paid(alice, 0, fee=3))
        assert err.value.code == TX_UNDERPRICED == -32015
        assert err.value.data["fee_floor"] == 10

    run_conformance(
        transport, scenario, config=MempoolConfig(min_fee_per_gas=10)
    )


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_pool_full_maps_to_overloaded(transport, alice, bob):
    async def scenario(call, node):
        await submit(call, _paid(bob, 0, fee=5))
        with pytest.raises(OverloadedError) as err:
            await submit(call, _paid(alice, 0, fee=5))
        assert err.value.code == OVERLOADED == -32001
        assert err.value.data["reason"] == "at capacity"
        assert err.value.data["fee_floor"] == 6

    run_conformance(
        transport,
        scenario,
        config=MempoolConfig(max_size=1, high_watermark=1.0, low_watermark=0.5),
    )


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_shedding_maps_to_overloaded(transport, alice, bob):
    async def scenario(call, node):
        for nonce in range(5):
            await submit(call, _paid(bob, nonce, fee=10))
        with pytest.raises(OverloadedError) as err:
            await submit(call, _paid(alice, 0, fee=0))
        assert err.value.data["reason"] == "shedding"
        assert err.value.data["fee_floor"] >= 1

    run_conformance(
        transport,
        scenario,
        config=MempoolConfig(max_size=10, high_watermark=0.5, low_watermark=0.2),
    )


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_rate_limited(transport, alice):
    async def scenario(call, node):
        assert (await submit(call, _paid(alice, 0, fee=1)))["accepted"]
        with pytest.raises(RateLimitedError) as err:
            await submit(call, _paid(alice, 1, fee=1))
        assert err.value.code == RATE_LIMITED == -32016

    run_conformance(
        transport,
        scenario,
        config=MempoolConfig(rate_limit_rate=0.001, rate_limit_burst=1),
    )


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_stale_nonce(transport, alice):
    async def scenario(call, node):
        node.nonces[alice.address] = 5
        with pytest.raises(StaleNonceError) as err:
            await submit(call, _paid(alice, 2, fee=1))
        assert err.value.code == STALE_NONCE == -32017

    run_conformance(transport, scenario)


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_malformed_fee_bid_is_invalid_tx(transport, alice):
    async def scenario(call, node):
        tx = make_transfer(
            alice, "sink", 1, nonce=0, max_fee_per_gas=1, priority_fee_per_gas=2
        )
        with pytest.raises(RpcError) as err:
            await submit(call, tx)
        assert err.value.code == -32014  # INVALID_TX, priority > max

    run_conformance(transport, scenario)


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_real_node_accepted_and_duplicate(transport, alice):
    """The full node keeps the same wire contract the stub pins."""

    async def scenario(call, node):
        tx = _paid(alice, 0, fee=1)
        reply = await submit(call, tx)
        assert reply == {"accepted": True, "status": "accepted", "tx_id": tx.tx_id}
        again = await submit(call, tx)
        assert again == {"accepted": False, "status": "duplicate", "tx_id": tx.tx_id}

    run_conformance(transport, scenario, node_factory=_real_node)


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_real_node_resubmission_after_overloaded_succeeds(transport, alice, bob):
    """Regression: a tx shed as OVERLOADED must be admittable on retry.

    The node used to mark every submission as seen *before* admission,
    so the retry its own error message asked for came back as a
    'duplicate' no-op and the tx was blackholed forever.
    """

    async def scenario(call, node):
        for nonce in range(3):
            await submit(call, _paid(bob, nonce, fee=10))
        assert node.mempool.shedding
        cheap = _paid(alice, 0, fee=0)
        with pytest.raises(OverloadedError) as err:
            await submit(call, cheap)
        assert err.value.data["reason"] == "shedding"
        # Pressure clears (blocks commit / entries drain)...
        node.mempool.remove_all(node.mempool.all_ids())
        assert not node.mempool.shedding
        # ...and the very same transaction is now admitted.
        reply = await submit(call, cheap)
        assert reply == {
            "accepted": True,
            "status": "accepted",
            "tx_id": cheap.tx_id,
        }

    run_conformance(
        transport,
        scenario,
        config=MempoolConfig(max_size=10, high_watermark=0.3, low_watermark=0.2),
        node_factory=_real_node,
    )


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_real_node_resubmission_after_rate_limited_succeeds(transport, alice):
    """Regression: backing off after RATE_LIMITED must actually work."""

    async def scenario(call, node):
        assert (await submit(call, _paid(alice, 0, fee=1)))["accepted"]
        retry = _paid(alice, 1, fee=1)
        with pytest.raises(RateLimitedError):
            await submit(call, retry)
        # Back off: advance the node's (simulated) clock so the sender's
        # token bucket refills, then resubmit the identical transaction.
        node.kernel.schedule(2.0, lambda: None)
        node.kernel.run()
        reply = await submit(call, retry)
        assert reply == {
            "accepted": True,
            "status": "accepted",
            "tx_id": retry.tx_id,
        }

    run_conformance(
        transport,
        scenario,
        config=MempoolConfig(rate_limit_rate=1.0, rate_limit_burst=1),
        node_factory=_real_node,
    )


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_mempool_status_surface(transport, alice):
    async def scenario(call, node):
        await submit(call, _paid(alice, 0, fee=7))
        status = await call("mempool.status", {})
        assert status["depth"] == 1
        assert status["capacity"] == node.mempool.max_size
        assert status["shedding"] is False
        assert status["fee_hint"] >= 0
        assert set(status["fee_percentiles"]) == {"p10", "p50", "p90"}

    run_conformance(transport, scenario)
