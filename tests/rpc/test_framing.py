"""Property tests for the length-prefixed frame layer.

TCP delivers a byte *stream*: one write may arrive split across many reads,
and many writes may arrive concatenated in one read.  The decoder must
reassemble the exact frame sequence under every chunking, which is what the
hypothesis properties below drive.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rpc.framing import (
    HEADER,
    FrameDecoder,
    FrameTooLargeError,
    encode_frame,
    read_frame,
)

payloads = st.lists(st.binary(min_size=0, max_size=200), min_size=1, max_size=8)


def chunkings(data: bytes):
    """Strategy producing arbitrary splits of ``data`` into chunks."""
    return st.lists(
        st.integers(min_value=1, max_value=max(1, len(data))),
        min_size=0,
        max_size=len(data) + 1,
    ).map(lambda sizes: _split(data, sizes))


def _split(data: bytes, sizes):
    chunks, index = [], 0
    for size in sizes:
        if index >= len(data):
            break
        chunks.append(data[index : index + size])
        index += size
    if index < len(data):
        chunks.append(data[index:])
    return chunks


@given(payloads=payloads, data=st.data())
@settings(max_examples=200, deadline=None)
def test_any_chunking_reassembles_the_exact_frame_sequence(payloads, data):
    stream = b"".join(encode_frame(p) for p in payloads)
    chunks = data.draw(chunkings(stream))
    decoder = FrameDecoder()
    out = []
    for chunk in chunks:
        out.extend(decoder.feed(chunk))
    assert out == payloads
    assert decoder.at_boundary()


@given(payload=st.binary(min_size=0, max_size=500))
@settings(max_examples=100, deadline=None)
def test_single_byte_feed_roundtrip(payload):
    decoder = FrameDecoder()
    out = []
    for index in range(len(encode_frame(payload))):
        out.extend(decoder.feed(encode_frame(payload)[index : index + 1]))
    assert out == [payload]


def test_oversized_frame_rejected_from_header_alone():
    decoder = FrameDecoder(max_frame_bytes=64)
    header = HEADER.pack(65)  # body never sent — length alone is enough
    with pytest.raises(FrameTooLargeError) as err:
        decoder.feed(header)
    assert err.value.code == -32004


def test_encode_rejects_oversized_payload():
    with pytest.raises(FrameTooLargeError):
        encode_frame(b"x" * 65, max_frame_bytes=64)


def test_limit_sized_frame_is_accepted():
    decoder = FrameDecoder(max_frame_bytes=64)
    assert decoder.feed(encode_frame(b"x" * 64, max_frame_bytes=64)) == [b"x" * 64]


def test_decoder_not_at_boundary_mid_frame():
    decoder = FrameDecoder()
    frame = encode_frame(b"hello")
    decoder.feed(frame[:3])
    assert not decoder.at_boundary()
    decoder.feed(frame[3:])
    assert decoder.at_boundary()


def test_async_read_frame_clean_eof_returns_none():
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(encode_frame(b"last"))
        reader.feed_eof()
        assert await read_frame(reader) == b"last"
        assert await read_frame(reader) is None

    asyncio.run(scenario())


def test_async_read_frame_mid_frame_eof_is_connection_error():
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(encode_frame(b"truncated")[:6])
        reader.feed_eof()
        with pytest.raises(ConnectionError):
            await read_frame(reader)

    asyncio.run(scenario())
