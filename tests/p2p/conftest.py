"""Shared builders for p2p tests: a PoA network speaking gossip over the sim."""

from __future__ import annotations

import pytest

from repro.chain.blocks import make_genesis
from repro.chain.state import StateDB
from repro.common.signatures import KeyPair
from repro.consensus.node import BlockchainNode, NodeConfig, make_network_nodes
from repro.consensus.poa import ProofOfAuthority
from repro.p2p.config import P2PConfig
from repro.p2p.service import P2PService
from repro.p2p.transport import SimTransport
from repro.sim.kernel import Kernel
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import Network


def attach_sim_p2p(network, node, seeds, **overrides) -> P2PService:
    """Wire one node's p2p stack over the shared sim network."""
    settings = dict(fanout=2, ping_interval_s=2.0, request_timeout_s=3.0)
    settings.update(overrides)
    transport = SimTransport(network, node.name, register=False)
    return P2PService(node, transport, P2PConfig(seeds=list(seeds), **settings))


class P2PWorld:
    """A PoA validator network where dissemination runs through repro.p2p."""

    def __init__(self, alice, n_validators: int = 3, seed: int = 31, **p2p_overrides):
        self.kernel = Kernel(seed=seed)
        self.metrics = MetricsRegistry()
        self.network = Network(self.kernel, self.metrics)
        self.alice = alice
        self.genesis_state = StateDB()
        self.genesis_state.credit(alice.address, 10**9)
        self.genesis = make_genesis(self.genesis_state.state_root())
        self.names = [f"n{i}" for i in range(n_validators)]
        keypairs = {name: KeyPair.generate(name) for name in self.names}
        self.engine = ProofOfAuthority(self.names, keypairs, block_interval_s=0.5)
        self.nodes = make_network_nodes(
            self.kernel,
            self.network,
            self.names,
            self.genesis,
            self.genesis_state,
            lambda: self.engine,
            metrics=self.metrics,
            config=NodeConfig(max_txs_per_block=3),
        )
        self.services = {}
        for name, node in self.nodes.items():
            seeds = [n for n in self.names if n != name]
            self.services[name] = attach_sim_p2p(
                self.network, node, seeds, **p2p_overrides
            )
        for node in self.nodes.values():
            node.start()
        for service in self.services.values():
            service.start()
        self.kernel.run(until=2.0)  # let handshakes settle

    def add_observer(self, name: str, seeds, **p2p_overrides) -> BlockchainNode:
        """A fresh non-validator node joining the running network."""
        node = BlockchainNode(
            kernel=self.kernel,
            network=self.network,
            name=name,
            genesis=self.genesis,
            genesis_state=self.genesis_state,
            consensus=self.engine,
            metrics=self.metrics,
            config=NodeConfig(),
        )
        self.nodes[name] = node
        self.services[name] = attach_sim_p2p(
            self.network, node, seeds, **p2p_overrides
        )
        node.start()
        self.services[name].start()
        return node

    def crash(self, name: str) -> None:
        """Kill a node mid-run: it stops scheduling and leaves the network."""
        self.nodes[name].stop()
        self.services[name].stop()
        self.network.unregister(name)
        del self.nodes[name]
        del self.services[name]

    def commit(self, tx, names=None, timeout: float = 300.0) -> None:
        wanted = names or list(self.nodes)
        self.kernel.run(
            until=self.kernel.now + timeout,
            stop_when=lambda: all(
                self.nodes[name].receipt(tx.tx_id) for name in wanted
            ),
        )

    def converged(self, names=None) -> bool:
        wanted = names or list(self.nodes)
        heads = {self.nodes[name].head.block_id for name in wanted}
        roots = {self.nodes[name].state.state_root() for name in wanted}
        return len(heads) == 1 and len(roots) == 1


@pytest.fixture()
def p2p_world(alice):
    return P2PWorld(alice)
