"""SimTransport: request/response correlation, timeouts, crash fail-fast."""

from __future__ import annotations

import pytest

from repro.p2p.transport import P2PError, PeerUnreachable, SimTransport
from repro.sim.kernel import Kernel
from repro.sim.network import Network


@pytest.fixture()
def net():
    kernel = Kernel(seed=1)
    return kernel, Network(kernel)


def make_pair(network):
    a = SimTransport(network, "a", register=True)
    b = SimTransport(network, "b", register=True)
    return a, b


def test_request_response_roundtrip(net):
    kernel, network = net
    a, b = make_pair(network)
    b.dispatch = lambda sender, method, params: {"echo": params, "via": method}
    results = []
    a.request("b", "p2p.ping", {"x": 1}, on_result=results.append)
    kernel.run(until=5.0)
    assert results == [{"echo": {"x": 1}, "via": "p2p.ping"}]


def test_server_exception_becomes_p2p_error(net):
    kernel, network = net
    a, b = make_pair(network)

    def boom(sender, method, params):
        raise ValueError("genesis mismatch")

    b.dispatch = boom
    errors = []
    a.request("b", "p2p.hello", {}, on_result=lambda r: None, on_error=errors.append)
    kernel.run(until=5.0)
    assert len(errors) == 1
    assert isinstance(errors[0], P2PError)
    assert "genesis mismatch" in str(errors[0])


def test_timeout_fires_when_peer_never_answers(net):
    kernel, network = net
    a, _ = make_pair(network)
    # b has no dispatch bound: the request is swallowed, no response comes.
    errors = []
    a.request("b", "p2p.ping", {}, on_result=lambda r: None,
              on_error=errors.append, timeout_s=2.0)
    kernel.run(until=10.0)
    assert len(errors) == 1
    assert isinstance(errors[0], PeerUnreachable)


def test_unknown_endpoint_fails_fast_without_burning_timeout(net):
    kernel, network = net
    a = SimTransport(network, "a", register=True)
    errors = []
    a.request("ghost", "p2p.hello", {}, on_result=lambda r: None,
              on_error=errors.append, timeout_s=60.0)
    kernel.run(until=1.0)  # far less than the timeout
    assert len(errors) == 1
    assert isinstance(errors[0], PeerUnreachable)


def test_crashed_endpoint_fails_fast(net):
    kernel, network = net
    a, b = make_pair(network)
    network.unregister("b")
    errors = []
    a.request("b", "p2p.ping", {}, on_result=lambda r: None,
              on_error=errors.append, timeout_s=60.0)
    kernel.run(until=1.0)
    assert len(errors) == 1 and isinstance(errors[0], PeerUnreachable)


def test_late_response_after_timeout_is_ignored(net):
    kernel, network = net
    a, b = make_pair(network)
    replies = []

    def slow(sender, method, params):
        return {"ok": True}

    b.dispatch = slow
    network.default_link = type(network.default_link)(latency_s=5.0)
    errors = []
    a.request("b", "p2p.ping", {}, on_result=replies.append,
              on_error=errors.append, timeout_s=1.0)
    kernel.run(until=30.0)
    assert errors and not replies  # timed out; the late frame was dropped


def test_close_cancels_pending(net):
    kernel, network = net
    a, b = make_pair(network)
    outcomes = []
    a.request("b", "p2p.ping", {}, on_result=outcomes.append,
              on_error=outcomes.append, timeout_s=2.0)
    a.close()
    kernel.run(until=10.0)
    assert outcomes == []  # neither result nor timeout after close
