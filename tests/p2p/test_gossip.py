"""Gossip: announce-by-hash semantics, dedup, and the zero-flood property."""

from __future__ import annotations

from repro.chain.transactions import make_transfer
from repro.p2p.gossip import SeenCache


def test_seen_cache_is_a_bounded_lru():
    cache = SeenCache(3)
    assert cache.add("a") and cache.add("b") and cache.add("c")
    assert not cache.add("a")  # duplicate, refreshed
    cache.add("d")  # evicts b (a was refreshed)
    assert "a" in cache and "b" not in cache
    assert len(cache) == 3


def test_tx_gossip_propagates_via_fetch_on_miss(p2p_world):
    world = p2p_world
    tx = make_transfer(world.alice, "sink", 1, nonce=0)
    world.nodes["n0"].submit_tx(tx)
    world.kernel.run(
        until=world.kernel.now + 30,
        stop_when=lambda: all(tx.tx_id in n.mempool or n.receipt(tx.tx_id)
                              for n in world.nodes.values()),
    )
    assert all(
        tx.tx_id in node.mempool or node.receipt(tx.tx_id)
        for node in world.nodes.values()
    )
    assert world.metrics.counter_total("p2p_announce_sent") > 0
    assert world.metrics.counter_total("p2p_fetches") > 0


def test_block_propagation_never_duplicates_bodies(p2p_world):
    world = p2p_world
    txs = [make_transfer(world.alice, "sink", 1, nonce=n) for n in range(9)]
    for tx in txs:
        world.nodes["n0"].submit_tx(tx)
    world.commit(txs[-1])
    assert world.converged()
    assert world.nodes["n0"].head.height >= 3
    # The zero-flood property: every node received each block body at most
    # once; redundant announcements were deduplicated by id.
    assert world.metrics.counter_total("p2p_duplicate_bodies") == 0
    assert world.metrics.counter_total("p2p_announce_duplicate") > 0


def test_bodies_are_never_flooded_full_size(p2p_world):
    """Announcements are id-sized; bodies move only via explicit fetch."""
    world = p2p_world
    tx = make_transfer(world.alice, "sink", 1, nonce=0)
    world.nodes["n0"].submit_tx(tx)
    world.commit(tx)
    fetches = world.metrics.counter_total("p2p_fetches")
    served = world.metrics.counter_total("p2p_bodies_served")
    assert fetches > 0
    assert served <= fetches  # one body per fetch, never pushed unrequested
