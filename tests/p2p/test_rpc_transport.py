"""The same protocol over real framed TCP: convergence, cold sync, rejoin.

These tests run several :class:`P2PHost` instances in one process with
real sockets and wall-clock pumps, so they are time-bounded rather than
deterministic — assertions poll with deadlines.
"""

from __future__ import annotations

import time

import pytest

from repro.chain.transactions import make_transfer
from repro.common.clock import WallClock
from repro.common.signatures import KeyPair
from repro.p2p.config import P2PConfig
from repro.p2p.host import P2PHost
from repro.p2p.node_server import build_world
from repro.p2p.wire import tx_to_wire
from repro.rpc.client import ConnectionPool
from repro.rpc.runtime import EventLoopThread

BASE_PORT = 9461
VALIDATORS = ["v0", "v1", "v2"]


def make_host(name, port, seeds, world, clock, seed):
    genesis, state, engine = world
    return P2PHost(
        name=name,
        listen_addr=f"127.0.0.1:{port}",
        genesis=genesis,
        genesis_state=state,
        consensus=engine,
        p2p_config=P2PConfig(
            seeds=seeds,
            fanout=2,
            ping_interval_s=0.5,
            request_timeout_s=3.0,
            reconnect_backoff_s=0.2,
            reconnect_backoff_max_s=1.0,
        ),
        seed=seed,
        time_source=clock.now,
    )


class Client:
    """Minimal sync JSON-RPC caller for the control endpoints."""

    def __init__(self):
        self.loop = EventLoopThread(name="p2p-test-client")

    def call(self, addr, method, params=None):
        host, port = addr.rsplit(":", 1)

        async def go():
            pool = ConnectionPool(host, int(port), request_timeout_s=5.0)
            try:
                return await pool.call(method, params or {}, timeout_s=5.0)
            finally:
                await pool.close()

        return self.loop.run(go(), timeout_s=10.0)

    def close(self):
        self.loop.close()


def wait_for(predicate, timeout_s=30.0, interval_s=0.25):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


@pytest.fixture(scope="module")
def tcp_net():
    alice = KeyPair.generate("alice")
    world = build_world(VALIDATORS, {"alice": 10**9}, block_interval_s=0.2)
    clock = WallClock()
    addrs = [f"127.0.0.1:{BASE_PORT + i}" for i in range(len(VALIDATORS))]
    hosts = []
    for i, name in enumerate(VALIDATORS):
        seeds = [a for j, a in enumerate(addrs) if j != i]
        hosts.append(make_host(name, BASE_PORT + i, seeds, world, clock, seed=i))
    for host in hosts:
        host.start()
    client = Client()
    try:
        assert wait_for(
            lambda: all(
                client.call(a, "ctl.status")["peers"] for a in addrs
            ),
            timeout_s=15.0,
        ), "validators never interconnected"
        yield {
            "alice": alice,
            "world": world,
            "clock": clock,
            "addrs": addrs,
            "hosts": hosts,
            "client": client,
            "nonce": [0],
        }
    finally:
        for host in hosts:
            host.stop()
        client.close()


def grow_chain(net, count):
    client, addrs = net["client"], net["addrs"]
    nonce = net["nonce"]
    txs = []
    for _ in range(count):
        tx = make_transfer(net["alice"], "sink", 1, nonce=nonce[0])
        nonce[0] += 1
        txs.append(tx)
        reply = client.call(addrs[0], "ctl.submit_tx", {"tx": tx_to_wire(tx)})
        assert reply["accepted"]
    assert wait_for(
        lambda: all(
            client.call(a, "ctl.status")["mempool"] == 0 for a in addrs
        )
        and len({client.call(a, "ctl.status")["head_id"] for a in addrs}) == 1,
        timeout_s=45.0,
    ), "validators did not converge after submitting txs"
    return txs


def test_validators_converge_over_tcp(tcp_net):
    grow_chain(tcp_net, 6)
    client, addrs = tcp_net["client"], tcp_net["addrs"]
    stats = [client.call(a, "ctl.status") for a in addrs]
    assert len({s["head_id"] for s in stats}) == 1
    assert len({s["state_root"] for s in stats}) == 1
    assert stats[0]["height"] >= 1
    # Zero full-body floods across the whole network.
    for addr in addrs:
        counters = client.call(addr, "ctl.counters")
        assert counters["p2p_duplicate_bodies"] == 0


def test_fresh_node_joins_mid_chain_and_crash_rejoins(tcp_net):
    """Satellite: cold sync to head, then kill/restart, on RpcTransport."""
    client, addrs = tcp_net["client"], tcp_net["addrs"]
    grow_chain(tcp_net, 4)
    joiner_port = BASE_PORT + 7
    joiner_addr = f"127.0.0.1:{joiner_port}"

    def synced():
        js = client.call(joiner_addr, "ctl.status")
        v0 = client.call(addrs[0], "ctl.status")
        return js["head_id"] == v0["head_id"] and js["state_root"] == v0["state_root"]

    joiner = make_host(
        "joiner", joiner_port, [addrs[0]], tcp_net["world"], tcp_net["clock"], seed=90
    )
    joiner.start()
    try:
        assert wait_for(synced, timeout_s=30.0), "joiner never cold-synced"
        counters = client.call(joiner_addr, "ctl.counters")
        assert counters["p2p_sync_completed"] >= 1
        assert counters["p2p_duplicate_bodies"] == 0  # announce/fetch dedup held
    finally:
        joiner.stop()  # crash mid-run

    grow_chain(tcp_net, 4)  # history the dead node misses

    reborn = make_host(
        "joiner", joiner_port, [addrs[0]], tcp_net["world"], tcp_net["clock"], seed=91
    )
    reborn.start()
    try:
        assert wait_for(synced, timeout_s=30.0), "restarted node never re-synced"
        js = client.call(joiner_addr, "ctl.status")
        v0 = client.call(addrs[0], "ctl.status")
        assert js["head_id"] == v0["head_id"]
        assert js["state_root"] == v0["state_root"]  # bit-identical state
    finally:
        reborn.stop()
