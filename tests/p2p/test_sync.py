"""Headers-first sync: locators, cold joins, crash/rejoin, partition heal."""

from __future__ import annotations

from repro.chain.transactions import make_transfer
from repro.p2p.sync import build_locator


def test_locator_is_dense_then_exponential():
    ids = [f"b{i}" for i in range(100)]
    locator = build_locator(ids)
    assert locator[0] == "b99"  # newest first
    assert locator[:8] == [f"b{99 - i}" for i in range(8)]  # dense head
    assert locator[-1] == "b0"  # genesis always anchors
    assert len(locator) <= 24
    # Gaps grow monotonically after the dense prefix.
    positions = [int(x[1:]) for x in locator]
    gaps = [a - b for a, b in zip(positions, positions[1:])]
    assert gaps[:7] == [1] * 7
    assert all(b >= a for a, b in zip(gaps[7:-1], gaps[8:-1]))


def test_locator_short_chain_is_complete():
    assert build_locator(["g"]) == ["g"]
    assert build_locator(["g", "a", "b"]) == ["b", "a", "g"]
    assert build_locator([]) == []


def _grow_chain(world, count, start_nonce=0, names=None):
    txs = [
        make_transfer(world.alice, "sink", 1, nonce=start_nonce + n)
        for n in range(count)
    ]
    for tx in txs:
        world.nodes["n0"].submit_tx(tx)
    world.commit(txs[-1], names=names)
    return txs


def test_fresh_node_cold_syncs_to_network_head(p2p_world):
    world = p2p_world
    _grow_chain(world, 15)
    head_before = world.nodes["n0"].head
    assert head_before.height >= 5
    joiner = world.add_observer("joiner", seeds=["n0"])
    world.kernel.run(
        until=world.kernel.now + 120,
        stop_when=lambda: joiner.head.height >= world.nodes["n0"].head.height,
    )
    assert joiner.head.block_id == world.nodes["n0"].head.block_id
    assert (
        joiner.state.state_root() == world.nodes["n0"].state.state_root()
    )  # bit-identical state
    assert world.metrics.counter("p2p_sync_completed", scope="joiner") >= 1
    assert world.metrics.counter("p2p_sync_blocks", scope="joiner") >= 5
    # Cold sync must not double-deliver bodies through gossip.
    assert world.metrics.counter("p2p_duplicate_bodies", scope="joiner") == 0


def test_sync_spans_multiple_header_windows(alice):
    from tests.p2p.conftest import P2PWorld

    world = P2PWorld(alice, sync_headers_window=4, sync_batch_size=2)
    _grow_chain(world, 24)
    assert world.nodes["n0"].head.height >= 8  # > 2 windows of 4
    joiner = world.add_observer(
        "joiner", seeds=["n0"], sync_headers_window=4, sync_batch_size=2
    )
    world.kernel.run(
        until=world.kernel.now + 180,
        stop_when=lambda: joiner.head.height >= world.nodes["n0"].head.height,
    )
    assert joiner.head.block_id == world.nodes["n0"].head.block_id
    assert world.metrics.counter("p2p_sync_rounds", scope="joiner") >= 2


def test_crashed_node_rejoins_and_converges(p2p_world):
    """Satellite: kill a node mid-run, restart it, assert full convergence."""
    world = p2p_world
    _grow_chain(world, 6)
    world.crash("n2")
    _grow_chain(world, 6, start_nonce=6, names=["n0", "n1"])
    assert world.nodes["n0"].head.height >= 4
    # Restart n2 from genesis (fresh store, fresh state) under the same name.
    reborn = world.add_observer("n2", seeds=["n0", "n1"])
    world.kernel.run(
        until=world.kernel.now + 180,
        stop_when=lambda: reborn.head.block_id
        == world.nodes["n0"].head.block_id,
    )
    assert reborn.head.block_id == world.nodes["n0"].head.block_id
    assert reborn.state.state_root() == world.nodes["n0"].state.state_root()


def test_partition_heals_to_single_head(p2p_world):
    world = p2p_world
    world.network.partition({"n0", "n1"}, {"n2"})
    _grow_chain(world, 6, names=["n0", "n1"])
    assert world.nodes["n0"].head.height > world.nodes["n2"].head.height
    world.network.heal()
    # Anti-entropy pings advertise the head; n2 must headers-first sync.
    world.kernel.run(
        until=world.kernel.now + 120,
        stop_when=lambda: world.converged(),
    )
    assert world.converged()
    assert world.nodes["n2"].head.height == world.nodes["n0"].head.height
