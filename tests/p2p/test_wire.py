"""Wire codecs: round trips must re-hash to identical ids."""

from __future__ import annotations

import pytest

from repro.chain.blocks import build_block, make_genesis
from repro.chain.state import StateDB
from repro.chain.transactions import make_transfer
from repro.common.errors import ValidationError
from repro.common.serialize import canonical_bytes
from repro.p2p.wire import (
    block_from_wire,
    block_to_wire,
    header_from_wire,
    header_to_wire,
    payload_size,
    tx_from_wire,
    tx_to_wire,
)


@pytest.fixture()
def sample_block(alice):
    state = StateDB()
    state.credit(alice.address, 10**9)
    genesis = make_genesis(state.state_root())
    txs = [make_transfer(alice, "sink", 5, nonce=n) for n in range(3)]
    return build_block(
        parent=genesis,
        transactions=txs,
        state_root=state.state_root(),
        proposer="n0",
        timestamp_ms=1234,
    )


def test_tx_roundtrip_preserves_id(alice):
    tx = make_transfer(alice, "sink", 7, nonce=0)
    decoded = tx_from_wire(tx_to_wire(tx))
    assert decoded.tx_id == tx.tx_id
    decoded.validate()  # signature survives the hex round trip


def test_tx_wire_is_json_clean(alice):
    wire = tx_to_wire(make_transfer(alice, "sink", 7, nonce=0))
    canonical_bytes(wire)  # would raise on non-jsonable values


def test_header_roundtrip_preserves_hash(sample_block):
    header = sample_block.header
    decoded = header_from_wire(header_to_wire(header))
    assert decoded.block_hash() == header.block_hash()


def test_block_roundtrip_preserves_id(sample_block):
    decoded = block_from_wire(block_to_wire(sample_block))
    assert decoded.block_id == sample_block.block_id
    assert len(decoded.transactions) == 3
    decoded.validate_structure()


def test_block_with_forged_id_is_rejected(sample_block):
    wire = block_to_wire(sample_block)
    wire["block_id"] = "ab" * 32
    with pytest.raises(ValidationError):
        block_from_wire(wire)


def test_tampered_block_body_changes_decoded_id(sample_block):
    wire = block_to_wire(sample_block)
    wire["header"]["timestamp_ms"] = 9999
    with pytest.raises(ValidationError):  # claimed id no longer matches
        block_from_wire(wire)


@pytest.mark.parametrize("garbage", [None, 7, "x", [], {"header": {}}])
def test_malformed_wire_raises_validation_error(garbage):
    with pytest.raises(ValidationError):
        block_from_wire(garbage)
    with pytest.raises(ValidationError):
        tx_from_wire(garbage)


def test_payload_size_is_positive_and_tracks_content():
    small = payload_size({"a": 1})
    big = payload_size({"a": "x" * 1000})
    assert 0 < small < big
