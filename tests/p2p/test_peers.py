"""PeerManager: handshake, discovery, liveness, and eviction."""

from __future__ import annotations

import pytest

from repro.p2p.config import P2PConfig
from repro.p2p.peer import PeerManager
from repro.p2p.transport import SimTransport
from repro.sim.kernel import Kernel
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import Network

GENESIS = "aa" * 32


def make_manager(network, name, seeds, genesis=GENESIS, **overrides):
    settings = dict(
        ping_interval_s=1.0,
        request_timeout_s=1.0,
        reconnect_backoff_s=0.5,
        reconnect_backoff_max_s=2.0,
        max_ping_failures=2,
        max_connect_attempts=3,
    )
    settings.update(overrides)
    transport = SimTransport(network, name, register=True)
    metrics = MetricsRegistry()
    manager = PeerManager(
        transport,
        P2PConfig(seeds=list(seeds), **settings),
        genesis_id=genesis,
        head_info=lambda: (0, GENESIS),
        metrics=metrics,
        scope=name,
    )
    transport.dispatch = lambda sender, method, params: {
        "p2p.hello": manager.serve_hello,
        "p2p.ping": manager.serve_ping,
    }[method](params)
    return manager, metrics


@pytest.fixture()
def net():
    kernel = Kernel(seed=5)
    return kernel, Network(kernel)


def test_seed_handshake_connects_both_sides(net):
    kernel, network = net
    a, _ = make_manager(network, "a", seeds=["b"])
    b, _ = make_manager(network, "b", seeds=[])
    a.start()
    b.start()
    kernel.run(until=5.0)
    assert a.connected() == ["b"]
    assert b.connected() == ["a"]  # dial-back from serve_hello


def test_genesis_mismatch_is_rejected_for_good(net):
    kernel, network = net
    a, metrics = make_manager(network, "a", seeds=["b"])
    b, _ = make_manager(network, "b", seeds=[], genesis="bb" * 32)
    a.start()
    b.start()
    kernel.run(until=5.0)
    assert a.connected() == []
    assert "b" not in a.peers  # dropped, not retried
    assert metrics.counter("p2p_handshake_rejected", scope="a") >= 1


def test_peers_learned_transitively_from_hello(net):
    kernel, network = net
    # a knows only b; b knows c; a must learn c through b's hello/ping reply.
    a, _ = make_manager(network, "a", seeds=["b"])
    b, _ = make_manager(network, "b", seeds=["c"])
    c, _ = make_manager(network, "c", seeds=[])
    for manager in (b, c, a):
        manager.start()
    kernel.run(until=10.0)
    assert "c" in a.connected()


def test_dead_peer_evicted_after_ping_failures(net):
    kernel, network = net
    a, metrics = make_manager(network, "a", seeds=["b"])
    b, _ = make_manager(network, "b", seeds=[])
    a.start()
    b.start()
    kernel.run(until=3.0)
    assert a.connected() == ["b"]
    network.unregister("b")  # crash
    kernel.run(until=kernel.now + 10.0)
    assert a.connected() == []
    assert metrics.counter("p2p_peers_evicted", scope="a") >= 1
    assert "b" in a.peers  # seeds are never forgotten, only backed off


def test_learned_peer_forgotten_after_dial_failures(net):
    kernel, network = net
    a, _ = make_manager(network, "a", seeds=["b"])
    b, _ = make_manager(network, "b", seeds=[])
    a.start()
    b.start()
    kernel.run(until=3.0)
    a.learn("ghost")  # never registered on the network
    kernel.run(until=kernel.now + 30.0)
    assert "ghost" not in a.peers


def test_crashed_seed_reconnects_after_restart(net):
    kernel, network = net
    a, _ = make_manager(network, "a", seeds=["b"])
    b, _ = make_manager(network, "b", seeds=[])
    a.start()
    b.start()
    kernel.run(until=3.0)
    network.unregister("b")
    kernel.run(until=kernel.now + 8.0)
    assert a.connected() == []
    # Restart b under the same name; a's redial backoff must find it again.
    b2, _ = make_manager(network, "b", seeds=[])
    b2.start()
    kernel.run(until=kernel.now + 15.0)
    assert a.connected() == ["b"]


def test_sample_excludes_and_bounds(net):
    kernel, network = net
    a, _ = make_manager(network, "a", seeds=["b", "c"])
    b, _ = make_manager(network, "b", seeds=[])
    c, _ = make_manager(network, "c", seeds=[])
    for manager in (b, c, a):
        manager.start()
    kernel.run(until=5.0)
    assert sorted(a.sample(10)) == ["b", "c"]
    assert a.sample(10, exclude=("b",)) == ["c"]
    assert len(a.sample(1)) == 1
