"""Tracer core: nesting, dual clocks, no-op mode, cross-process adoption."""

import pickle

import pytest

from repro.obs.tracer import (
    NOOP_SPAN,
    Span,
    Tracer,
    current_span_id,
    current_tracer,
    disable,
    enable,
    set_tracer,
    trace_span,
    tracer_override,
    tracing_enabled,
)


@pytest.fixture(autouse=True)
def _clean_tracer_state():
    yield
    disable()


class TestNesting:
    def test_parent_child_linking(self):
        tracer = enable()
        with trace_span("outer") as outer:
            with trace_span("inner"):
                pass
        by_name = {span.name: span for span in tracer.spans}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id is None
        assert outer.span_id == by_name["outer"].span_id

    def test_children_close_before_parents(self):
        tracer = enable()
        with trace_span("a"):
            with trace_span("b"):
                pass
        assert [span.name for span in tracer.spans] == ["b", "a"]

    def test_sibling_spans_share_parent(self):
        tracer = enable()
        with trace_span("parent"):
            with trace_span("first"):
                pass
            with trace_span("second"):
                pass
        by_name = {span.name: span for span in tracer.spans}
        assert by_name["first"].parent_id == by_name["parent"].span_id
        assert by_name["second"].parent_id == by_name["parent"].span_id

    def test_current_span_id_tracks_innermost(self):
        enable()
        assert current_span_id() is None
        with trace_span("outer") as outer:
            assert current_span_id() == outer.span_id
            with trace_span("inner") as inner:
                assert current_span_id() == inner.span_id
            assert current_span_id() == outer.span_id
        assert current_span_id() is None

    def test_explicit_parent_wins_over_context(self):
        tracer = enable()
        with trace_span("ambient"):
            with tracer.span("pinned", parent_id="remote-1"):
                pass
        pinned = next(s for s in tracer.spans if s.name == "pinned")
        assert pinned.parent_id == "remote-1"


class TestAttrsAndClocks:
    def test_attrs_from_kwargs_and_set_attr(self):
        tracer = enable()
        with trace_span("op", kind="call") as span:
            span.set_attr("gas", 42)
            span.set_attrs(node="n0", ok=True)
        recorded = tracer.spans[0]
        assert recorded.attrs == {"kind": "call", "gas": 42, "node": "n0", "ok": True}

    def test_wall_clock_positive(self):
        tracer = enable()
        with trace_span("op"):
            sum(range(1000))
        span = tracer.spans[0]
        assert span.end_wall_s >= span.start_wall_s
        assert span.wall_s >= 0.0

    def test_sim_time_source_recorded(self):
        clock = {"now": 5.0}
        tracer = enable(sim_time_source=lambda: clock["now"])
        with trace_span("op"):
            clock["now"] = 7.5
        span = tracer.spans[0]
        assert span.start_sim_s == 5.0
        assert span.end_sim_s == 7.5
        assert span.sim_s == pytest.approx(2.5)

    def test_no_sim_source_leaves_sim_none(self):
        tracer = enable()
        with trace_span("op"):
            pass
        span = tracer.spans[0]
        assert span.start_sim_s is None
        assert span.sim_s == 0.0

    def test_bind_kernel_uses_kernel_now(self):
        from repro.sim.kernel import Kernel

        kernel = Kernel(seed=1)
        tracer = enable()
        tracer.bind_kernel(kernel)
        with trace_span("op"):
            pass
        assert tracer.spans[0].start_sim_s == kernel.now


class TestDisabledMode:
    def test_disabled_returns_shared_noop(self):
        disable()
        assert trace_span("anything") is NOOP_SPAN
        assert trace_span("else", k=1) is NOOP_SPAN

    def test_noop_span_accepts_full_protocol(self):
        with trace_span("x") as span:
            span.set_attr("a", 1)
            span.set_attrs(b=2)
        assert span.span_id is None

    def test_disabled_records_nothing(self):
        tracer = enable()
        disable()
        with trace_span("ghost"):
            pass
        assert tracer.spans == []
        assert not tracing_enabled()

    def test_enable_returns_installed_tracer(self):
        tracer = enable()
        assert current_tracer() is tracer
        assert tracing_enabled()

    def test_set_tracer_installs_existing(self):
        tracer = Tracer()
        set_tracer(tracer)
        with trace_span("op"):
            pass
        assert [s.name for s in tracer.spans] == ["op"]


class TestOverride:
    def test_override_shadows_default(self):
        default = enable()
        worker = Tracer()
        with tracer_override(worker):
            with trace_span("captured"):
                pass
        assert [s.name for s in worker.spans] == ["captured"]
        assert default.spans == []

    def test_override_restored_after_block(self):
        default = enable()
        with tracer_override(Tracer()):
            pass
        with trace_span("after"):
            pass
        assert [s.name for s in default.spans] == ["after"]


class TestAdoptAndPortability:
    def test_adopt_reparents_orphan_roots_only(self):
        tracer = Tracer()
        root = Span(name="worker-root", span_id="w-1")
        child = Span(name="worker-child", span_id="w-2", parent_id="w-1")
        tracer.adopt([root, child], parent_id="coord-9")
        assert root.parent_id == "coord-9"
        assert child.parent_id == "w-1"
        assert len(tracer.spans) == 2

    def test_span_dict_round_trip(self):
        span = Span(
            name="op", span_id="1-2", parent_id="1-1",
            start_wall_s=1.0, end_wall_s=2.5,
            start_sim_s=0.0, end_sim_s=4.0,
            attrs={"gas": 3}, pid=77,
        )
        clone = Span.from_dict(span.to_dict())
        assert clone == span

    def test_span_is_picklable(self):
        span = Span(name="op", span_id="1-2", attrs={"k": "v"})
        assert pickle.loads(pickle.dumps(span)) == span

    def test_span_ids_unique_and_pid_tagged(self):
        import os

        tracer = enable()
        with trace_span("a"):
            pass
        with trace_span("b"):
            pass
        ids = [span.span_id for span in tracer.spans]
        assert len(set(ids)) == 2
        assert all(sid.startswith(f"{os.getpid():x}-") for sid in ids)

    def test_clear_and_export(self):
        tracer = enable()
        with trace_span("op", k=1):
            pass
        exported = tracer.export()
        assert exported[0]["name"] == "op"
        assert exported[0]["attrs"] == {"k": 1}
        tracer.clear()
        assert tracer.spans == []
