"""Exporters and the trace-summary CLI."""

import json

import pytest

from repro.obs.export import (
    prometheus_text,
    read_trace_jsonl,
    sanitize_metric_name,
    span_tree,
    write_prometheus,
    write_trace_jsonl,
)
from repro.obs.summary import main as summary_main
from repro.obs.summary import render, summarize
from repro.obs.tracer import Span, Tracer, disable, enable, trace_span
from repro.sim.metrics import EnergyModel, MetricsRegistry


@pytest.fixture(autouse=True)
def _clean_tracer_state():
    yield
    disable()


def _sample_spans():
    return [
        Span(name="outer", span_id="a-1", start_wall_s=0.0, end_wall_s=0.5),
        Span(name="inner", span_id="a-2", parent_id="a-1",
             start_wall_s=0.1, end_wall_s=0.2, attrs={"gas": 100}),
        Span(name="inner", span_id="b-1", parent_id="a-1",
             start_wall_s=0.2, end_wall_s=0.4,
             start_sim_s=0.0, end_sim_s=3.0, attrs={"gas": 50, "flops": 1e6}),
    ]


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        count = write_trace_jsonl(_sample_spans(), path)
        assert count == 3
        loaded = read_trace_jsonl(path)
        assert loaded == _sample_spans()

    def test_accepts_tracer_and_skips_blank_lines(self, tmp_path):
        tracer = enable()
        with trace_span("op"):
            pass
        path = str(tmp_path / "trace.jsonl")
        write_trace_jsonl(tracer, path)
        with open(path, "a") as handle:
            handle.write("\n\n")
        loaded = read_trace_jsonl(path)
        assert [span.name for span in loaded] == ["op"]

    def test_one_json_object_per_line(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_trace_jsonl(_sample_spans(), path)
        with open(path) as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 3
        for line in lines:
            assert json.loads(line)["span_id"]


class TestPrometheus:
    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("tx.commit-latency s") == (
            "repro_tx_commit_latency_s"
        )
        assert sanitize_metric_name("9lives").startswith("repro__9lives")
        assert sanitize_metric_name("ok", prefix="") == "ok"

    def test_counters_with_scope_labels(self):
        registry = MetricsRegistry()
        registry.add("gas", 10, scope="n0")
        registry.add("gas", 5, scope="n1")
        registry.add("txs", 3)
        text = prometheus_text(registry)
        assert "# TYPE repro_gas counter" in text
        assert 'repro_gas{scope="n0"} 10' in text
        assert 'repro_gas{scope="n1"} 5' in text
        assert "repro_txs 3" in text  # empty scope -> no label

    def test_histograms_as_summaries(self):
        registry = MetricsRegistry()
        for value in (1.0, 2.0, 3.0, 4.0):
            registry.observe("lat", value)
        text = prometheus_text(registry)
        assert "# TYPE repro_lat summary" in text
        assert 'repro_lat{quantile="0.5"}' in text
        assert "repro_lat_sum 10" in text
        assert "repro_lat_count 4" in text

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.add("gas", 1, scope='si"te\n2')
        text = prometheus_text(registry)
        assert '{scope="si\\"te\\n2"}' in text

    def test_write_prometheus(self, tmp_path):
        registry = MetricsRegistry()
        registry.add("gas", 1)
        path = str(tmp_path / "metrics.prom")
        write_prometheus(registry, path)
        with open(path) as handle:
            assert "repro_gas 1" in handle.read()


class TestSummarize:
    def test_groups_by_name_and_sums_resources(self):
        rows = summarize(_sample_spans())
        by_scope = {row["scope"]: row for row in rows}
        inner = by_scope["inner"]
        assert inner["count"] == 2
        assert inner["gas"] == 150
        assert inner["flops"] == 1e6
        assert inner["wall_total_s"] == pytest.approx(0.3)
        assert inner["sim_total_s"] == pytest.approx(3.0)
        assert by_scope["outer"]["count"] == 1

    def test_energy_from_resource_attrs(self):
        model = EnergyModel(joules_per_gas=1.0, joules_per_flop=0.0)
        rows = summarize(_sample_spans(), model)
        inner = next(row for row in rows if row["scope"] == "inner")
        assert inner["energy_j"] == pytest.approx(150.0)

    def test_non_numeric_resource_attrs_ignored(self):
        spans = [Span(name="op", span_id="x", attrs={"gas": "lots"})]
        assert summarize(spans)[0]["gas"] == 0.0

    def test_render_empty_and_populated(self):
        assert "scope" in render([])
        text = render(summarize(_sample_spans()))
        assert "inner" in text and "outer" in text


class TestSpanTree:
    def test_children_indexed_by_parent(self):
        tree = span_tree(_sample_spans())
        assert [span.span_id for span in tree[""]] == ["a-1"]
        assert {span.span_id for span in tree["a-1"]} == {"a-2", "b-1"}


class TestCli:
    def test_table_output(self, tmp_path, capsys):
        path = str(tmp_path / "trace.jsonl")
        write_trace_jsonl(_sample_spans(), path)
        assert summary_main([path]) == 0
        out = capsys.readouterr().out
        assert "3 span(s), 2 scope(s)" in out
        assert "inner" in out

    def test_json_output_sorted_by_count(self, tmp_path, capsys):
        path = str(tmp_path / "trace.jsonl")
        write_trace_jsonl(_sample_spans(), path)
        assert summary_main([path, "--json", "--sort", "count"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["scope"] == "inner"

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert summary_main([str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read trace" in capsys.readouterr().err
