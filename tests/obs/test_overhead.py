"""Disabled-tracer overhead guard.

The instrumentation contract (ISSUE: repro.obs) is near-zero cost when
tracing is off: ``trace_span`` returns a shared no-op and the executor's
telemetry envelope adds only a registry allocation and an empty snapshot
merge per task.  This guard runs an instrumented ``map_tasks`` batch over a
workload of a few milliseconds per task and requires it to stay within 5%
of a bare Python loop over the same functions (a *stricter* baseline than
pre-instrumentation ``map_tasks``, which already carried retry/ordering
machinery).  Best-of-several-trials timing on both sides resists scheduler
noise on shared CI boxes.
"""

import time

from repro.obs.tracer import NOOP_SPAN, disable, trace_span
from repro.parallel.executor import SerialExecutor, TaskSpec

TASK_ITERS = 50000
TASK_COUNT = 20
TRIALS = 3
MAX_OVERHEAD = 1.05


def _busy_task(iters):
    total = 0
    for value in range(iters):
        total += value * value
    return total


def _best_of(trials, run):
    best = float("inf")
    for __ in range(trials):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_tracer_map_tasks_overhead_within_5_percent():
    disable()
    assert trace_span("probe") is NOOP_SPAN  # precondition: tracing is off

    specs = [
        TaskSpec(key=f"t{i}", fn=_busy_task, args=(TASK_ITERS,))
        for i in range(TASK_COUNT)
    ]
    expected = [_busy_task(TASK_ITERS)] * TASK_COUNT
    executor = SerialExecutor()

    def raw_loop():
        return [_busy_task(TASK_ITERS) for __ in range(TASK_COUNT)]

    def instrumented():
        assert executor.map_tasks(specs) == expected

    # Warm both paths (bytecode caches, allocator) before timing.
    raw_loop()
    instrumented()

    baseline = _best_of(TRIALS, raw_loop)
    traced = _best_of(TRIALS, instrumented)
    overhead = traced / baseline
    assert overhead <= MAX_OVERHEAD, (
        f"disabled-tracer map_tasks took {overhead:.3f}x the raw loop "
        f"({traced * 1000:.1f}ms vs {baseline * 1000:.1f}ms baseline; "
        f"limit {MAX_OVERHEAD}x)"
    )
