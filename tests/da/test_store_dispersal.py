"""ChunkStore verify-on-ingest plus the disperse → lose → retrieve → repair
lifecycle over in-process site clients."""

import pytest

from repro.common.errors import DataAvailabilityError, IntegrityError
from repro.common.hashing import sha256
from repro.common.merkle import MerkleProof
from repro.da.clients import LocalSiteClient, clients_for_stores
from repro.da.dispersal import Disperser, Repairer, Retriever
from repro.da.manifest import encode_blob
from repro.da.store import ChunkStore, stored_chunk_wire


def _blob(size, salt=0):
    return bytes((i * 13 + salt) % 256 for i in range(size))


@pytest.fixture
def fleet():
    stores = [ChunkStore(f"site-{i}") for i in range(5)]
    return stores, clients_for_stores(stores)


def _disperse(fleet, blob, k=3, n=5, chunk_size=128):
    stores, clients = fleet
    receipt = Disperser(list(clients.values())).disperse(
        blob, k=k, n=n, chunk_size=chunk_size
    )
    return receipt


class TestChunkStore:
    def test_put_verifies_and_is_idempotent(self):
        manifest, shares = encode_blob(_blob(512), chunk_size=64, k=2, n=3)
        store = ChunkStore("s")
        index = manifest.leaf_index(0, 0)
        proof = manifest.proof(index)
        assert store.put_chunk(
            manifest.blob_id, manifest.root_hex, index, shares[0][0], proof
        )
        # identical re-put: accepted, not double-stored
        assert not store.put_chunk(
            manifest.blob_id, manifest.root_hex, index, shares[0][0], proof
        )
        assert store.indices(manifest.blob_id) == [index]

    def test_put_rejects_wrong_index_or_data_or_root(self):
        manifest, shares = encode_blob(_blob(512), chunk_size=64, k=2, n=3)
        store = ChunkStore("s")
        index = manifest.leaf_index(0, 0)
        proof = manifest.proof(index)
        with pytest.raises(IntegrityError):
            store.put_chunk(
                manifest.blob_id, manifest.root_hex, index + 1, shares[0][0], proof
            )
        with pytest.raises(IntegrityError):
            store.put_chunk(
                manifest.blob_id, manifest.root_hex, index, b"\x00" * 64, proof
            )
        with pytest.raises(IntegrityError):
            store.put_chunk(manifest.blob_id, "ab" * 32, index, shares[0][0], proof)
        assert store.indices(manifest.blob_id) == []

    def test_put_rejects_forged_proof_path(self):
        manifest, shares = encode_blob(_blob(512), chunk_size=64, k=2, n=3)
        store = ChunkStore("s")
        index = manifest.leaf_index(0, 1)
        proof = manifest.proof(index)
        forged = MerkleProof(
            leaf=proof.leaf, index=proof.index, path=[sha256(b"evil")] * len(proof.path)
        )
        with pytest.raises(IntegrityError):
            store.put_chunk(
                manifest.blob_id, manifest.root_hex, index, shares[1][0], forged
            )

    def test_root_conflict_rejected(self):
        first, shares_a = encode_blob(_blob(256), chunk_size=64, k=2, n=3)
        second, shares_b = encode_blob(_blob(256, salt=9), chunk_size=64, k=2, n=3)
        store = ChunkStore("s")
        store.put_chunk(
            first.blob_id, first.root_hex, 0, shares_a[0][0], first.proof(0)
        )
        with pytest.raises(IntegrityError, match="different root"):
            store.put_chunk(
                first.blob_id, second.root_hex, 1, shares_b[1][0], second.proof(1)
            )

    def test_reads_sample_and_stats(self):
        manifest, shares = encode_blob(_blob(256), chunk_size=64, k=2, n=3)
        store = ChunkStore("s")
        store.put_chunk(
            manifest.blob_id, manifest.root_hex, 0, shares[0][0], manifest.proof(0)
        )
        chunk = store.get_chunk(manifest.blob_id, 0)
        assert chunk.data == shares[0][0]
        data_hex, proof_wire = stored_chunk_wire(chunk)
        assert bytes.fromhex(data_hex) == shares[0][0]
        assert proof_wire["index"] == 0
        assert store.sample(manifest.blob_id, [0, 1])[1] is None
        assert store.sample("unknown", [0]) == [None]
        with pytest.raises(DataAvailabilityError):
            store.get_chunk(manifest.blob_id, 1)
        with pytest.raises(DataAvailabilityError):
            store.root_of("unknown")
        assert store.stats()["chunks"] == 1
        assert store.blob_ids() == [manifest.blob_id]

    def test_drop_chunks_and_blob(self):
        manifest, shares = encode_blob(_blob(256), chunk_size=64, k=2, n=3)
        store = ChunkStore("s")
        for index in range(3):
            store.put_chunk(
                manifest.blob_id,
                manifest.root_hex,
                index,
                shares[index][0],
                manifest.proof(index),
            )
        assert store.drop_chunks(manifest.blob_id, [0, 99]) == 1
        assert store.drop_blob(manifest.blob_id) == 2
        assert store.drop_blob(manifest.blob_id) == 0


class TestDisperser:
    def test_disperse_places_one_column_per_site(self, fleet):
        stores, _ = fleet
        blob = _blob(3000)
        receipt = _disperse(fleet, blob)
        manifest = receipt.manifest
        assert receipt.sites == [store.site for store in stores]
        assert receipt.chunks_put == manifest.stripes * manifest.n
        for share, store in enumerate(stores):
            held = store.indices(manifest.blob_id)
            assert held == [
                manifest.leaf_index(stripe, share)
                for stripe in range(manifest.stripes)
            ]

    def test_disperse_needs_enough_sites(self, fleet):
        _, clients = fleet
        disperser = Disperser(list(clients.values()))
        with pytest.raises(DataAvailabilityError):
            disperser.disperse(_blob(100), k=2, n=9)
        with pytest.raises(DataAvailabilityError):
            Disperser([])

    def test_disperse_records(self, fleet):
        records = [{"id": i, "v": i * 1.5} for i in range(10)]
        _, clients = fleet
        receipt = Disperser(list(clients.values())).disperse_records(
            records, k=2, n=4, chunk_size=64
        )
        assert receipt.manifest.stripes > 0


class TestRetriever:
    def test_retrieves_with_all_sites_up(self, fleet):
        blob = _blob(5000)
        receipt = _disperse(fleet, blob)
        _, clients = fleet
        assert Retriever(clients).retrieve(receipt.manifest) == blob

    def test_survives_n_minus_k_site_loss(self, fleet):
        stores, clients = fleet
        blob = _blob(5000)
        receipt = _disperse(fleet, blob, k=3, n=5)
        # kill n - k = 2 whole sites (one data, one parity column)
        survivors = {
            name: client
            for name, client in clients.items()
            if name not in ("site-0", "site-4")
        }
        assert Retriever(survivors).retrieve(receipt.manifest) == blob

    def test_fails_loudly_beyond_tolerance(self, fleet):
        _, clients = fleet
        receipt = _disperse(fleet, _blob(1000), k=3, n=5)
        survivors = {
            name: client for name, client in clients.items()
            if name in ("site-1", "site-3")
        }
        with pytest.raises(DataAvailabilityError):
            Retriever(survivors).retrieve(receipt.manifest)

    def test_ignores_corrupt_responses(self, fleet):
        stores, clients = fleet
        blob = _blob(2000)
        receipt = _disperse(fleet, blob, k=2, n=5)

        class LyingClient:
            """Returns garbage bytes with plausible-looking proofs."""

            def __init__(self, inner):
                self._inner = inner
                self.name = inner.name

            def sample(self, blob_id, indices):
                out = []
                for entry in self._inner.sample(blob_id, indices):
                    if entry is None:
                        out.append(None)
                    else:
                        out.append((b"\x00" * len(entry[0]), entry[1]))
                return out

            def put_chunk(self, *args, **kwargs):
                return self._inner.put_chunk(*args, **kwargs)

            def get_chunk(self, blob_id, index):
                return self._inner.get_chunk(blob_id, index)

        patched = dict(clients)
        patched["site-0"] = LyingClient(clients["site-0"])
        assert Retriever(patched).retrieve(receipt.manifest) == blob

    def test_requires_placement(self, fleet):
        _, clients = fleet
        manifest, _ = encode_blob(_blob(100), chunk_size=64, k=1, n=2)
        with pytest.raises(DataAvailabilityError, match="placement"):
            Retriever(clients).retrieve(manifest)


class TestRepairer:
    def test_repair_restores_dropped_columns(self, fleet):
        stores, clients = fleet
        blob = _blob(4000)
        receipt = _disperse(fleet, blob, k=3, n=5)
        manifest = receipt.manifest
        lost = stores[1].drop_blob(manifest.blob_id)
        lost += stores[4].drop_chunks(
            manifest.blob_id,
            [manifest.leaf_index(0, 4), manifest.leaf_index(1, 4)],
        )
        report = Repairer(clients).repair(manifest)
        assert report.missing_before == lost
        assert report.restored == lost
        assert report.fully_repaired
        assert report.bytes_moved == lost * manifest.chunk_size
        # every site holds its full column again
        for share, store in enumerate(stores):
            assert len(store.indices(manifest.blob_id)) == manifest.stripes
        # and a second pass is a no-op
        assert Repairer(clients).repair(manifest).missing_before == 0

    def test_repair_reports_unreachable_sites(self, fleet):
        stores, clients = fleet
        receipt = _disperse(fleet, _blob(1500), k=2, n=5)
        manifest = receipt.manifest
        stores[0].drop_blob(manifest.blob_id)
        reachable = {k: v for k, v in clients.items() if k != "site-0"}
        report = Repairer(reachable).repair(manifest)
        assert report.unreachable_sites == ["site-0"]
        assert not report.fully_repaired

    def test_repaired_chunks_verify_against_original_root(self, fleet):
        stores, clients = fleet
        receipt = _disperse(fleet, _blob(2500), k=2, n=5)
        manifest = receipt.manifest
        stores[2].drop_blob(manifest.blob_id)
        Repairer(clients).repair(manifest)
        for index in stores[2].indices(manifest.blob_id):
            chunk = stores[2].get_chunk(manifest.blob_id, index)
            assert manifest.verify_chunk(index, chunk.data)


def test_local_client_exposes_store_name():
    store = ChunkStore("hospital-9")
    assert LocalSiteClient(store).name == "hospital-9"
    assert LocalSiteClient(store, name="alias").name == "alias"
