"""Erasure coder contract: systematic layout, any-k reconstruction, and
byte-for-byte agreement between the reference and NumPy implementations."""

from itertools import combinations

import pytest

from repro.common.errors import DataAvailabilityError
from repro.da.erasure import (
    CODER_KINDS,
    CodingParams,
    ReferenceCoder,
    default_coder,
)
from repro.da.gf256 import have_numpy

pytestmark = []

CODERS = list(CODER_KINDS) if have_numpy() else ["reference"]


def _rows(k, length, salt=0):
    return [
        bytes((i * 31 + j * 7 + salt) % 256 for j in range(length))
        for i in range(k)
    ]


@pytest.fixture(params=CODERS)
def coder_kind(request):
    return request.param


class TestParams:
    def test_valid_shapes(self):
        assert CodingParams(1, 1).parity == 0
        assert CodingParams(4, 6).parity == 2

    @pytest.mark.parametrize("k,n", [(0, 3), (5, 4), (-1, 2), (3, 300)])
    def test_invalid_shapes_rejected(self, k, n):
        with pytest.raises(DataAvailabilityError):
            CodingParams(k, n)

    def test_unknown_kind_rejected(self):
        with pytest.raises(DataAvailabilityError):
            default_coder(2, 4, "turbocode")


class TestEncode:
    def test_systematic_prefix_is_the_data(self, coder_kind):
        coder = default_coder(3, 5, coder_kind)
        rows = _rows(3, 64)
        shares = coder.encode(rows)
        assert len(shares) == 5
        assert shares[:3] == rows

    def test_parity_is_deterministic(self, coder_kind):
        coder = default_coder(2, 4, coder_kind)
        rows = _rows(2, 32)
        assert coder.encode(rows) == coder.encode(rows)

    def test_wrong_row_count_rejected(self, coder_kind):
        coder = default_coder(3, 5, coder_kind)
        with pytest.raises(DataAvailabilityError):
            coder.encode(_rows(2, 16))

    def test_ragged_rows_rejected(self, coder_kind):
        coder = default_coder(2, 3, coder_kind)
        with pytest.raises(DataAvailabilityError):
            coder.encode([b"aaaa", b"bb"])

    def test_empty_rows_allowed(self, coder_kind):
        coder = default_coder(2, 4, coder_kind)
        shares = coder.encode([b"", b""])
        assert shares == [b""] * 4


class TestDecode:
    @pytest.mark.parametrize("k,n", [(1, 1), (1, 3), (2, 3), (2, 4), (3, 5), (4, 6)])
    def test_every_k_subset_reconstructs(self, coder_kind, k, n):
        coder = default_coder(k, n, coder_kind)
        rows = _rows(k, 48, salt=k * n)
        shares = coder.encode(rows)
        for subset in combinations(range(n), k):
            decoded = coder.decode({i: shares[i] for i in subset})
            assert decoded == rows, f"subset {subset} failed"

    def test_fewer_than_k_fails_loudly(self, coder_kind):
        coder = default_coder(3, 5, coder_kind)
        shares = coder.encode(_rows(3, 16))
        with pytest.raises(DataAvailabilityError, match="k=3"):
            coder.decode({0: shares[0], 4: shares[4]})

    def test_out_of_range_share_index_rejected(self, coder_kind):
        coder = default_coder(2, 3, coder_kind)
        shares = coder.encode(_rows(2, 16))
        with pytest.raises(DataAvailabilityError):
            coder.decode({0: shares[0], 7: shares[1]})

    def test_systematic_fast_path_matches_general(self, coder_kind):
        coder = default_coder(3, 6, coder_kind)
        rows = _rows(3, 80)
        shares = coder.encode(rows)
        fast = coder.decode({i: shares[i] for i in range(3)})
        slow = coder.decode({3: shares[3], 4: shares[4], 5: shares[5]})
        assert fast == slow == rows


@pytest.mark.skipif(not have_numpy(), reason="numpy unavailable")
class TestCoderAgreement:
    """The vectorized coder must be byte-for-byte the reference coder."""

    @pytest.mark.parametrize("k,n", [(1, 2), (2, 4), (3, 5), (4, 6), (6, 10)])
    def test_encode_agrees(self, k, n):
        reference = default_coder(k, n, "reference")
        vector = default_coder(k, n, "numpy")
        rows = _rows(k, 96, salt=n)
        assert reference.encode(rows) == vector.encode(rows)

    @pytest.mark.parametrize("k,n", [(2, 4), (3, 5), (4, 6)])
    def test_decode_agrees_on_every_subset(self, k, n):
        reference = default_coder(k, n, "reference")
        vector = default_coder(k, n, "numpy")
        shares = reference.encode(_rows(k, 40, salt=k))
        for subset in combinations(range(n), k):
            held = {i: shares[i] for i in subset}
            assert reference.decode(held) == vector.decode(held)

    def test_default_prefers_numpy(self):
        assert default_coder(2, 4).name == "numpy"


def test_reference_always_available():
    assert isinstance(default_coder(2, 4, "reference"), ReferenceCoder)
