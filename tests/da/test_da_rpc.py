"""da.put_chunk / da.get_chunk / da.sample conformance over BOTH transports.

Mirrors the submit-tx conformance suite: the same handler code serves a
real TCP socket and the in-process dispatch path, so the wire contract —
result shapes, hex encodings, and the stable ``DA_UNAVAILABLE`` /
``INVALID_PARAMS`` codes — must be transport-invariant.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.da.clients import RpcSiteClient
from repro.da.dispersal import Retriever
from repro.da.manifest import encode_blob, proof_to_wire
from repro.da.store import ChunkStore
from repro.rpc import codec
from repro.rpc.client import RpcClient
from repro.rpc.errors import (
    DA_UNAVAILABLE,
    INVALID_PARAMS,
    RpcError,
    error_from_wire,
)
from repro.rpc.methods import SiteService, build_site_registry
from repro.rpc.server import RpcServer

TRANSPORTS = ["inproc", "tcp"]

BLOB = bytes((i * 11) % 256 for i in range(4000))


def _encoded(placement=("site-a",) * 4):
    return encode_blob(BLOB, chunk_size=200, k=2, n=4, placement=list(placement))


def run_da(transport, scenario):
    """Boot a chunk-serving site server, run ``scenario(call, store)``."""

    async def main():
        store = ChunkStore("site-a")
        service = SiteService(name="site-a", store=None, runner=None, chunks=store)
        server = RpcServer(build_site_registry(service), name="site-a")
        if transport == "tcp":
            host, port = await server.start()
            client = await RpcClient.connect(host, port)

            async def call(method, params):
                return await client.call(method, params)

        else:

            async def call(method, params):
                request = codec.encode_payload(
                    {"jsonrpc": "2.0", "id": 1, "method": method, "params": params}
                )
                raw = await server.dispatch_raw(request)
                payload = codec.decode_payload(raw)
                if "error" in payload:
                    raise error_from_wire(payload["error"])
                return payload["result"]

        try:
            await scenario(call, store)
        finally:
            if transport == "tcp":
                await client.close()
            await server.close()

    asyncio.run(main())


async def _put(call, manifest, shares, stripe, share):
    index = manifest.leaf_index(stripe, share)
    return await call(
        "da.put_chunk",
        {
            "blob_id": manifest.blob_id,
            "root": manifest.root_hex,
            "index": index,
            "data": shares[share][stripe].hex(),
            "proof": proof_to_wire(manifest.proof(index)),
        },
    )


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_put_get_sample_round_trip(transport):
    manifest, shares = _encoded()

    async def scenario(call, store):
        reply = await _put(call, manifest, shares, 0, 1)
        assert reply == {"stored": True, "site": "site-a", "index": manifest.leaf_index(0, 1)}
        again = await _put(call, manifest, shares, 0, 1)
        assert again["stored"] is False  # idempotent re-put

        got = await call(
            "da.get_chunk",
            {"blob_id": manifest.blob_id, "index": manifest.leaf_index(0, 1)},
        )
        assert bytes.fromhex(got["data"]) == shares[1][0]
        assert got["proof"]["index"] == manifest.leaf_index(0, 1)

        sampled = await call(
            "da.sample",
            {
                "blob_id": manifest.blob_id,
                "indices": [manifest.leaf_index(0, 1), manifest.leaf_index(0, 2)],
            },
        )
        held, missing = sampled["chunks"]
        assert bytes.fromhex(held["data"]) == shares[1][0]
        assert missing is None

    run_da(transport, scenario)


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_missing_chunk_maps_to_da_unavailable(transport):
    manifest, _ = _encoded()

    async def scenario(call, store):
        with pytest.raises(RpcError) as err:
            await call(
                "da.get_chunk", {"blob_id": manifest.blob_id, "index": 0}
            )
        assert err.value.code == DA_UNAVAILABLE

    run_da(transport, scenario)


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_bad_proof_maps_to_invalid_params(transport):
    manifest, shares = _encoded()

    async def scenario(call, store):
        wrong = proof_to_wire(manifest.proof(manifest.leaf_index(0, 0)))
        with pytest.raises(RpcError) as err:
            await call(
                "da.put_chunk",
                {
                    "blob_id": manifest.blob_id,
                    "root": manifest.root_hex,
                    "index": manifest.leaf_index(0, 1),
                    "data": shares[1][0].hex(),
                    "proof": wrong,
                },
            )
        assert err.value.code == INVALID_PARAMS
        assert store.indices(manifest.blob_id) == []

        with pytest.raises(RpcError) as err:
            await call(
                "da.put_chunk",
                {
                    "blob_id": manifest.blob_id,
                    "root": manifest.root_hex,
                    "index": manifest.leaf_index(0, 1),
                    "data": "not-hex!!",
                    "proof": proof_to_wire(manifest.proof(manifest.leaf_index(0, 1))),
                },
            )
        assert err.value.code == INVALID_PARAMS

    run_da(transport, scenario)


def test_rpc_site_client_drives_retriever_end_to_end():
    """RpcSiteClient + Retriever over a registry-backed synchronous caller."""
    manifest, shares = _encoded()
    store = ChunkStore("site-a")
    registry = build_site_registry(
        SiteService(name="site-a", store=None, runner=None, chunks=store)
    )

    class DirectCaller:
        def call(self, method, params):
            return registry.get(method).handler(**params)

    client = RpcSiteClient(DirectCaller(), "site-a")
    for share in range(3):
        for stripe in range(manifest.stripes):
            index = manifest.leaf_index(stripe, share)
            assert client.put_chunk(
                manifest.blob_id,
                manifest.root_hex,
                index,
                shares[share][stripe],
                manifest.proof(index),
            )
    assert Retriever({"site-a": client}).retrieve(manifest) == BLOB
    data, proof = client.get_chunk(manifest.blob_id, 0)
    assert data == shares[0][0] and proof.index == 0
