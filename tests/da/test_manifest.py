"""Blob manifest: chunking geometry, commitments, wire forms, decode paths."""

import pytest

from repro.common.errors import DataAvailabilityError, IntegrityError
from repro.common.hashing import sha256, sha256_hex
from repro.da.manifest import (
    BlobManifest,
    decode_blob,
    encode_blob,
    proof_from_wire,
    proof_to_wire,
    records_blob,
    records_from_blob,
)


def _blob(size, salt=0):
    return bytes((i * 17 + salt) % 256 for i in range(size))


def _all_chunks(manifest, shares):
    return {
        manifest.leaf_index(stripe, share): shares[share][stripe]
        for stripe in range(manifest.stripes)
        for share in range(manifest.n)
    }


class TestGeometry:
    def test_stripe_and_share_of_invert_leaf_index(self):
        manifest, _ = encode_blob(_blob(5000), chunk_size=512, k=3, n=5)
        for stripe in range(manifest.stripes):
            for share in range(manifest.n):
                index = manifest.leaf_index(stripe, share)
                assert manifest.stripe_of(index) == stripe
                assert manifest.share_of(index) == share

    def test_leaf_index_bounds_checked(self):
        manifest, _ = encode_blob(_blob(100), chunk_size=64, k=2, n=3)
        with pytest.raises(DataAvailabilityError):
            manifest.leaf_index(manifest.stripes, 0)
        with pytest.raises(DataAvailabilityError):
            manifest.leaf_index(0, 3)

    def test_padding_rounds_up_to_whole_stripes(self):
        manifest, shares = encode_blob(_blob(1000), chunk_size=256, k=3, n=4)
        assert manifest.stripes == 2  # 1000 bytes over 768-byte stripes
        assert all(len(chunk) == 256 for row in shares for chunk in row)

    def test_empty_blob_has_zero_stripes(self):
        manifest, shares = encode_blob(b"", chunk_size=64, k=2, n=3)
        assert manifest.stripes == 0
        assert shares == [[], [], []]
        assert decode_blob(manifest, {}) == b""

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(DataAvailabilityError):
            encode_blob(b"x", chunk_size=0, k=1, n=1)

    def test_placement_must_match_n(self):
        with pytest.raises(DataAvailabilityError):
            encode_blob(b"x", chunk_size=4, k=1, n=2, placement=["only-one"])

    def test_site_for_requires_placement(self):
        manifest, _ = encode_blob(_blob(64), chunk_size=16, k=2, n=3)
        with pytest.raises(DataAvailabilityError):
            manifest.site_for(0)
        placed, _ = encode_blob(
            _blob(64), chunk_size=16, k=2, n=3, placement=["a", "b", "c"]
        )
        assert placed.site_for(placed.leaf_index(0, 1)) == "b"


class TestCommitments:
    def test_blob_id_is_payload_hash(self):
        blob = _blob(777)
        manifest, _ = encode_blob(blob, chunk_size=128, k=2, n=3)
        assert manifest.blob_id == sha256_hex(blob)
        assert manifest.size == 777

    def test_every_chunk_proof_reaches_root(self):
        manifest, shares = encode_blob(_blob(2048), chunk_size=256, k=2, n=4)
        for index, chunk in _all_chunks(manifest, shares).items():
            proof = manifest.proof(index)
            assert proof.leaf == sha256(chunk)
            assert proof.root().hex() == manifest.root_hex

    def test_verify_chunk_detects_tampering(self):
        manifest, shares = encode_blob(_blob(512), chunk_size=128, k=2, n=3)
        index = manifest.leaf_index(0, 1)
        good = shares[1][0]
        assert manifest.verify_chunk(index, good)
        assert not manifest.verify_chunk(index, b"\x00" + good[1:])
        assert not manifest.verify_chunk(-1, good)
        assert not manifest.verify_chunk(manifest.leaf_count, good)

    def test_tampered_leaf_list_refuses_to_build_tree(self):
        manifest, _ = encode_blob(_blob(512), chunk_size=128, k=2, n=3)
        wire = manifest.to_wire()
        wire["leaves"][0] = sha256(b"evil").hex()
        with pytest.raises(IntegrityError):
            BlobManifest.from_wire(wire).tree()


class TestRootOnlyManifests:
    """An auditor holding just the chain entry verifies via shipped proofs."""

    def test_chunk_valid_accepts_proofed_chunk(self):
        full, shares = encode_blob(_blob(1024), chunk_size=128, k=2, n=4)
        light = BlobManifest.from_wire(full.chain_entry())
        assert light.leaves == []
        index = full.leaf_index(1, 2)
        chunk = shares[2][1]
        assert light.chunk_valid(index, chunk, full.proof(index))

    def test_chunk_valid_rejects_mismatched_proof(self):
        full, shares = encode_blob(_blob(1024), chunk_size=128, k=2, n=4)
        light = BlobManifest.from_wire(full.chain_entry())
        index = full.leaf_index(0, 0)
        wrong_index_proof = full.proof(full.leaf_index(0, 1))
        assert not light.chunk_valid(index, shares[0][0], wrong_index_proof)
        assert not light.chunk_valid(index, shares[0][0], None)

    def test_verify_chunk_raises_without_leaves(self):
        full, shares = encode_blob(_blob(256), chunk_size=64, k=2, n=3)
        light = BlobManifest.from_wire(full.chain_entry())
        with pytest.raises(DataAvailabilityError):
            light.verify_chunk(0, shares[0][0])

    def test_tree_requires_full_leaf_set(self):
        full, _ = encode_blob(_blob(256), chunk_size=64, k=2, n=3)
        light = BlobManifest.from_wire(full.chain_entry())
        with pytest.raises(DataAvailabilityError):
            light.tree()


class TestWire:
    def test_manifest_round_trips(self):
        manifest, _ = encode_blob(
            _blob(900), chunk_size=128, k=3, n=5, placement=list("abcde")
        )
        clone = BlobManifest.from_wire(manifest.to_wire())
        assert clone == manifest

    def test_chain_entry_drops_leaves_only(self):
        manifest, _ = encode_blob(_blob(900), chunk_size=128, k=3, n=5)
        entry = manifest.chain_entry()
        assert "leaves" not in entry
        assert entry["root"] == manifest.root_hex

    def test_malformed_wire_raises_da_error(self):
        with pytest.raises(DataAvailabilityError):
            BlobManifest.from_wire({"blob_id": "x"})
        with pytest.raises(DataAvailabilityError):
            proof_from_wire({"leaf": "zz"})

    def test_proof_wire_round_trips(self):
        manifest, _ = encode_blob(_blob(640), chunk_size=64, k=2, n=4)
        proof = manifest.proof(3)
        clone = proof_from_wire(proof_to_wire(proof))
        assert clone == proof
        assert clone.root().hex() == manifest.root_hex


class TestDecode:
    @pytest.mark.parametrize("size", [1, 255, 256, 1000, 4096, 10_000])
    def test_round_trip_exact_sizes(self, size):
        blob = _blob(size, salt=size)
        manifest, shares = encode_blob(blob, chunk_size=256, k=3, n=5)
        assert decode_blob(manifest, _all_chunks(manifest, shares)) == blob

    def test_decodes_from_parity_only(self):
        blob = _blob(3000)
        manifest, shares = encode_blob(blob, chunk_size=250, k=2, n=5)
        parity_chunks = {
            index: chunk
            for index, chunk in _all_chunks(manifest, shares).items()
            if manifest.share_of(index) >= manifest.k
        }
        assert decode_blob(manifest, parity_chunks) == blob

    def test_mixed_availability_per_stripe(self):
        blob = _blob(4000)
        manifest, shares = encode_blob(blob, chunk_size=200, k=2, n=4)
        chunks = {}
        for stripe in range(manifest.stripes):
            lost = stripe % manifest.n  # a different share column per stripe
            for share in range(manifest.n):
                if share != lost:
                    chunks[manifest.leaf_index(stripe, share)] = shares[share][stripe]
        assert decode_blob(manifest, chunks) == blob

    def test_short_stripe_raises_with_stripe_detail(self):
        manifest, shares = encode_blob(_blob(2000), chunk_size=100, k=3, n=5)
        chunks = _all_chunks(manifest, shares)
        for share in range(1, manifest.n):  # leave stripe 1 only share 0
            chunks.pop(manifest.leaf_index(1, share))
        with pytest.raises(DataAvailabilityError, match="stripe 1"):
            decode_blob(manifest, chunks)

    def test_corrupt_chunk_rejected_before_decode(self):
        manifest, shares = encode_blob(_blob(600), chunk_size=100, k=2, n=3)
        chunks = _all_chunks(manifest, shares)
        index = manifest.leaf_index(0, 0)
        chunks[index] = bytes(len(chunks[index]))
        with pytest.raises(IntegrityError, match="committed digests"):
            decode_blob(manifest, chunks)

    def test_verify_false_skips_digest_checks_but_not_blob_id(self):
        manifest, shares = encode_blob(_blob(600), chunk_size=100, k=2, n=3)
        chunks = _all_chunks(manifest, shares)
        assert decode_blob(manifest, chunks, verify=False) == _blob(600)


class TestRecordsBlob:
    def test_record_set_round_trips(self):
        records = [
            {"patient": f"p{i}", "value": i * 0.5, "tags": ["a", "b"]}
            for i in range(20)
        ]
        blob = records_blob(records)
        manifest, shares = encode_blob(blob, chunk_size=64, k=2, n=4)
        decoded = decode_blob(manifest, _all_chunks(manifest, shares))
        assert records_from_blob(decoded) == records

    def test_non_list_blob_rejected(self):
        with pytest.raises(DataAvailabilityError):
            records_from_blob(b'{"not": "a list"}')
