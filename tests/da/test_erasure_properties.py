"""Hypothesis property suite for the erasure coder.

The load-bearing invariants, fuzzed over geometry, payload, and subset
choice (the nightly ``ci-stress`` profile runs these at 500 examples):

- round-trip: *any* k-subset of the n shares reconstructs the data exactly;
- insufficiency: any k−1 shares fail loudly, never silently corrupt;
- implementation agreement: NumPy and reference coders are byte-identical.
"""

from hypothesis import given
from hypothesis import strategies as st
import pytest

from repro.common.errors import DataAvailabilityError
from repro.da.erasure import default_coder
from repro.da.gf256 import have_numpy

geometry = st.tuples(
    st.integers(min_value=1, max_value=6),  # k
    st.integers(min_value=0, max_value=4),  # parity
).map(lambda kp: (kp[0], kp[0] + kp[1]))


@st.composite
def coding_case(draw):
    k, n = draw(geometry)
    length = draw(st.integers(min_value=0, max_value=160))
    rows = [
        draw(st.binary(min_size=length, max_size=length)) for _ in range(k)
    ]
    subset = draw(st.permutations(list(range(n)))).copy()[:k]
    return k, n, rows, sorted(subset)


@given(coding_case())
def test_any_k_subset_round_trips(case):
    k, n, rows, subset = case
    coder = default_coder(k, n, "reference")
    shares = coder.encode(rows)
    assert coder.decode({i: shares[i] for i in subset}) == rows


@given(coding_case())
def test_any_k_minus_1_subset_fails_loudly(case):
    k, n, rows, subset = case
    coder = default_coder(k, n, "reference")
    shares = coder.encode(rows)
    held = {i: shares[i] for i in subset[: k - 1]}
    with pytest.raises(DataAvailabilityError):
        coder.decode(held)


@pytest.mark.skipif(not have_numpy(), reason="numpy unavailable")
@given(coding_case())
def test_vectorized_coder_matches_reference(case):
    k, n, rows, subset = case
    reference = default_coder(k, n, "reference")
    vector = default_coder(k, n, "numpy")
    ref_shares = reference.encode(rows)
    assert ref_shares == vector.encode(rows)
    held = {i: ref_shares[i] for i in subset}
    assert reference.decode(held) == vector.decode(held)


@given(
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=0, max_value=3),
    st.binary(max_size=120),
)
def test_share_tampering_never_silently_corrupts_round_trip(k, parity, noise):
    """Decoding only parity shares of zero data yields zero data again —
    linearity means any nonzero output would betray a table error."""
    n = k + parity
    coder = default_coder(k, n, "reference")
    rows = [bytes(len(noise)) for _ in range(k)]
    shares = coder.encode(rows)
    held = {n - 1 - i: shares[n - 1 - i] for i in range(k)}
    assert coder.decode(held) == rows
