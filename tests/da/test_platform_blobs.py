"""Blob custody through the platform: BlobRegistry contract + DA engines.

One module-scoped platform (boot is expensive); tests that mutate chunk
stores disperse their own blobs so they never race each other's state.
"""

import pytest

from repro.common.errors import ChainError, DataAvailabilityError
from repro.core.platform import MedicalBlockchainNetwork, PlatformConfig

BLOB = bytes((i * 23 + 5) % 256 for i in range(20_000))


@pytest.fixture(scope="module")
def platform():
    return MedicalBlockchainNetwork(
        PlatformConfig(site_count=4, consensus="poa", seed=1234)
    )


@pytest.fixture(scope="module")
def registered(platform):
    receipt = platform.disperse_blob(
        platform.site_names[0], BLOB, k=2, chunk_size=512
    )
    return receipt.manifest.blob_id, receipt


def test_boot_deploys_blob_registry(platform):
    assert platform.contracts.blob_contract_id


def test_disperse_registers_on_chain(platform, registered):
    blob_id, receipt = registered
    entry = platform.blob_entry(blob_id)
    assert entry["merkle_root"] == receipt.manifest.root_hex
    assert entry["size"] == len(BLOB)
    assert entry["k"] == 2 and entry["n"] == 4
    assert entry["placement"] == list(platform.site_names)
    assert entry["owner"]
    assert any(e["blob_id"] == blob_id for e in platform.blob_catalog())


def test_retrieve_from_chain_entry_alone(platform, registered):
    blob_id, _ = registered
    assert platform.retrieve_blob(blob_id) == BLOB


def test_retrieve_survives_n_minus_k_site_loss(platform):
    receipt = platform.disperse_blob(
        platform.site_names[1], BLOB[:5000], k=2, chunk_size=256
    )
    blob_id = receipt.manifest.blob_id
    for name in platform.site_names[:2]:  # n - k = 2 sites fail
        platform.sites[name].chunks.drop_blob(blob_id)
    assert platform.retrieve_blob(blob_id) == BLOB[:5000]
    # a third site failure crosses the tolerance and fails loudly
    platform.sites[platform.site_names[2]].chunks.drop_blob(blob_id)
    with pytest.raises(DataAvailabilityError):
        platform.retrieve_blob(blob_id)


def test_audit_clean_blob_and_report_on_chain(platform, registered):
    blob_id, _ = registered
    report = platform.audit_blob(platform.site_names[1], blob_id, samples=32)
    assert report.ok
    entry = platform.blob_entry(blob_id)
    assert entry["last_audit"]["samples"] == 32
    assert entry["last_audit"]["flagged_sites"] == []


def test_audit_flags_withholding_site(platform):
    receipt = platform.disperse_blob(
        platform.site_names[2], BLOB[:8000], k=2, chunk_size=200
    )
    blob_id = receipt.manifest.blob_id
    victim = platform.site_names[3]
    platform.sites[victim].chunks.drop_blob(blob_id)
    report = platform.audit_blob(platform.site_names[0], blob_id, samples=64, seed=0)
    assert report.flagged_sites == [victim]
    assert platform.blob_entry(blob_id)["last_audit"]["flagged_sites"] == [victim]


def test_repair_restores_and_logs(platform):
    receipt = platform.disperse_blob(
        platform.site_names[0], BLOB[:6000], k=2, chunk_size=300
    )
    blob_id = receipt.manifest.blob_id
    victim = platform.sites[platform.site_names[1]]
    lost = victim.chunks.drop_blob(blob_id)
    assert lost > 0
    report = platform.repair_blob(platform.site_names[0], blob_id)
    assert report.fully_repaired and report.restored == lost
    assert platform.blob_entry(blob_id)["repairs"] == 1
    assert len(victim.chunks.indices(blob_id)) == receipt.manifest.stripes
    # blob retrieves clean again and a clean repair pass is a no-op on chain
    assert platform.retrieve_blob(blob_id) == BLOB[:6000]
    assert platform.repair_blob(platform.site_names[0], blob_id).missing_before == 0
    assert platform.blob_entry(blob_id)["repairs"] == 1


def test_duplicate_registration_rejected(platform, registered):
    blob_id, _ = registered
    with pytest.raises(ChainError, match="registration failed"):
        platform.disperse_blob(platform.site_names[0], BLOB, k=2, chunk_size=512)


def test_unknown_blob_raises(platform):
    with pytest.raises(ChainError, match="not registered"):
        platform.blob_entry("ff" * 32)
