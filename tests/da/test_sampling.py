"""Sampling audits: the confidence bound and withholding detection."""

import pytest

from repro.common.errors import DataAvailabilityError
from repro.da.clients import clients_for_stores
from repro.da.dispersal import Disperser
from repro.da.manifest import BlobManifest
from repro.da.sampling import Sampler, confidence, miss_probability
from repro.da.store import ChunkStore


def _fleet(n=4):
    stores = [ChunkStore(f"site-{i}") for i in range(n)]
    return stores, clients_for_stores(stores)


def _dispersed(stores, clients, size=6000, k=2, chunk_size=100):
    blob = bytes((i * 7) % 256 for i in range(size))
    receipt = Disperser(list(clients.values())).disperse(
        blob, k=k, chunk_size=chunk_size
    )
    return receipt.manifest


class TestConfidenceMath:
    def test_bound_values(self):
        assert miss_probability(0.0, 64) == 1.0
        assert miss_probability(1.0, 1) == 0.0
        assert miss_probability(0.05, 0) == 1.0
        # the headline number: 5% withholding, 64 samples
        assert confidence(0.05, 64) == pytest.approx(1 - 0.95**64)
        assert confidence(0.05, 64) > 0.96

    def test_confidence_monotone_in_samples(self):
        values = [confidence(0.05, s) for s in (1, 8, 32, 64, 128)]
        assert values == sorted(values)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(DataAvailabilityError):
            miss_probability(-0.1, 10)
        with pytest.raises(DataAvailabilityError):
            miss_probability(1.5, 10)
        with pytest.raises(DataAvailabilityError):
            miss_probability(0.5, -1)


class TestAudit:
    def test_clean_fleet_passes(self):
        stores, clients = _fleet()
        manifest = _dispersed(stores, clients)
        report = Sampler(clients, seed=42).audit(manifest, samples=64)
        assert report.ok
        assert report.verified == report.samples == 64
        assert report.flagged_sites == []
        assert sum(s["sampled"] for s in report.per_site.values()) == 64

    def test_draw_is_seed_deterministic(self):
        stores, clients = _fleet()
        manifest = _dispersed(stores, clients)
        sampler = Sampler(clients, seed=7)
        assert sampler.draw(manifest, 32) == sampler.draw(manifest, 32)
        assert sampler.draw(manifest, 32) != sampler.draw(manifest, 32, seed=8)

    def test_withholding_site_is_flagged(self):
        stores, clients = _fleet()
        manifest = _dispersed(stores, clients)
        # site-1 drops its whole column: every sample landing there fails
        stores[1].drop_blob(manifest.blob_id)
        report = Sampler(clients, seed=3).audit(manifest, samples=64)
        assert not report.ok
        assert report.flagged_sites == ["site-1"]
        assert all(f.reason == "missing" for f in report.failures)
        assert report.per_site["site-1"]["missing"] > 0

    def test_partial_withholding_detection_rate_beats_bound(self):
        """Empirical detection across seeded audits ≥ the analytic bound."""
        stores, clients = _fleet()
        manifest = _dispersed(stores, clients, size=12_000, chunk_size=100)
        total = manifest.leaf_count
        withheld = max(1, int(total * 0.05))
        victim = stores[2]
        victim_indices = victim.indices(manifest.blob_id)[:withheld]
        victim.drop_chunks(manifest.blob_id, victim_indices)
        frac = withheld / total
        sampler = Sampler(clients)
        detections = sum(
            1
            for seed in range(100)
            if not sampler.audit(manifest, samples=64, seed=seed).ok
        )
        bound = confidence(frac, 64)
        assert detections / 100 >= bound - 0.10  # sampling-noise slack

    def test_corrupt_response_reported_invalid(self):
        stores, clients = _fleet()
        manifest = _dispersed(stores, clients)

        class Corruptor:
            name = "site-0"

            def sample(self, blob_id, indices):
                return [
                    (bytes(len(e[0])), e[1]) if e is not None else None
                    for e in clients["site-0"].sample(blob_id, indices)
                ]

        patched = dict(clients)
        patched["site-0"] = Corruptor()
        report = Sampler(patched, seed=5).audit(manifest, samples=40)
        assert "site-0" in report.flagged_sites
        assert any(f.reason == "invalid" for f in report.failures)

    def test_unreachable_and_erroring_sites(self):
        stores, clients = _fleet()
        manifest = _dispersed(stores, clients)

        class Exploder:
            name = "site-3"

            def sample(self, blob_id, indices):
                raise DataAvailabilityError("site offline")

        patched = {k: v for k, v in clients.items() if k != "site-1"}
        patched["site-3"] = Exploder()
        report = Sampler(patched, seed=1).audit(manifest, samples=48)
        reasons = {f.reason for f in report.failures}
        assert "unplaced" in reasons  # site-1 has no client at all
        assert "site_error" in reasons

    def test_audit_report_wire_and_bounds(self):
        stores, clients = _fleet()
        manifest = _dispersed(stores, clients)
        report = Sampler(clients, seed=9).audit(manifest, samples=16)
        wire = report.to_wire()
        assert wire["ok"] and wire["samples"] == 16
        assert report.confidence(0.5) == pytest.approx(1 - 0.5**16)
        assert report.miss_probability(0.5) == pytest.approx(0.5**16)

    def test_empty_blob_audit_is_vacuously_ok(self):
        stores, clients = _fleet()
        receipt = Disperser(list(clients.values())).disperse(b"", k=2)
        report = Sampler(clients).audit(receipt.manifest, samples=64)
        assert report.ok and report.samples == 0
