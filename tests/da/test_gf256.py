"""GF(256) arithmetic: field axioms, matrix algebra, Cauchy invertibility."""

import random

import pytest

from repro.common.errors import DataAvailabilityError
from repro.da import gf256
from repro.da.gf256 import (
    cauchy_matrix,
    gf_div,
    gf_inv,
    gf_mat_inv,
    gf_mat_vec,
    gf_mul,
    gf_mul_bytes,
    xor_bytes,
)


def test_tables_are_consistent():
    # exp and log are mutual inverses on the nonzero field elements.
    for value in range(1, 256):
        assert gf256.GF_EXP[gf256.GF_LOG[value]] == value
    # the doubled exp table repeats with period 255
    for power in range(255):
        assert gf256.GF_EXP[power] == gf256.GF_EXP[power + 255]


def test_mul_identity_and_zero():
    for a in range(256):
        assert gf_mul(a, 1) == a
        assert gf_mul(1, a) == a
        assert gf_mul(a, 0) == 0
        assert gf_mul(0, a) == 0


def test_mul_commutative_and_associative_sampled():
    rng = random.Random(7)
    for _ in range(200):
        a, b, c = rng.randrange(256), rng.randrange(256), rng.randrange(256)
        assert gf_mul(a, b) == gf_mul(b, a)
        assert gf_mul(a, gf_mul(b, c)) == gf_mul(gf_mul(a, b), c)


def test_mul_distributes_over_xor_sampled():
    rng = random.Random(11)
    for _ in range(200):
        a, b, c = rng.randrange(256), rng.randrange(256), rng.randrange(256)
        assert gf_mul(a, b ^ c) == gf_mul(a, b) ^ gf_mul(a, c)


def test_inverse_and_division():
    for a in range(1, 256):
        assert gf_mul(a, gf_inv(a)) == 1
        assert gf_div(a, a) == 1
    assert gf_div(0, 5) == 0
    with pytest.raises(DataAvailabilityError):
        gf_inv(0)
    with pytest.raises(DataAvailabilityError):
        gf_div(3, 0)


def test_mul_matches_carryless_reference():
    """Table lookups agree with shift-and-reduce multiplication."""

    def slow_mul(a, b):
        product = 0
        while b:
            if b & 1:
                product ^= a
            a <<= 1
            if a & 0x100:
                a ^= 0x11D
            b >>= 1
        return product

    rng = random.Random(13)
    for _ in range(300):
        a, b = rng.randrange(256), rng.randrange(256)
        assert gf_mul(a, b) == slow_mul(a, b)


def test_gf_mul_bytes_scales_elementwise():
    data = bytes(range(256))
    assert gf_mul_bytes(0, data) == bytes(256)
    assert gf_mul_bytes(1, data) == data
    scaled = gf_mul_bytes(29, data)
    assert [gf_mul(29, b) for b in data] == list(scaled)


def test_xor_bytes_is_involution():
    a, b = b"\x01\x02\x03", b"\xff\x00\x10"
    assert xor_bytes(xor_bytes(a, b), b) == a


def test_mat_inv_round_trips():
    for size in (1, 2, 3, 5):
        matrix = cauchy_matrix(size, size)  # always invertible
        inverse = gf_mat_inv(matrix)
        # matrix @ inverse == identity, checked via action on basis vectors
        for col in range(size):
            basis = [bytes([1 if i == col else 0]) for i in range(size)]
            assert gf_mat_vec(matrix, gf_mat_vec(inverse, basis)) == basis


def test_mat_inv_rejects_singular():
    with pytest.raises(DataAvailabilityError):
        gf_mat_inv([[1, 2], [1, 2]])
    with pytest.raises(DataAvailabilityError):
        gf_mat_inv([[1, 2, 3], [4, 5]])


def test_cauchy_every_square_submatrix_invertible():
    """The k-of-n guarantee: any k rows of [I; C] form an invertible matrix."""
    from itertools import combinations

    k, parity = 3, 3
    cauchy = cauchy_matrix(k, parity)
    identity = [[1 if j == i else 0 for j in range(k)] for i in range(k)]
    generator = identity + cauchy
    for rows in combinations(range(k + parity), k):
        gf_mat_inv([generator[r] for r in rows])  # raises if singular


def test_cauchy_rejects_oversized_field_usage():
    with pytest.raises(DataAvailabilityError):
        cauchy_matrix(200, 100)


@pytest.mark.skipif(not gf256.have_numpy(), reason="numpy unavailable")
def test_mul_table_matches_scalar_mul():
    table = gf256.mul_table()
    rng = random.Random(19)
    for _ in range(500):
        a, b = rng.randrange(256), rng.randrange(256)
        assert int(table[a][b]) == gf_mul(a, b)
