"""Difficulty retargeting tests."""

import pytest

from repro.chain.blocks import build_block, make_genesis
from repro.chain.state import StateDB
from repro.common.errors import ConsensusError
from repro.consensus.difficulty import (
    DifficultySchedule,
    RetargetConfig,
    next_difficulty_bits,
)

CONFIG = RetargetConfig(target_block_time_s=10.0, window=4, min_bits=4, max_bits=20)


def _timestamps(interval_s: float, count: int = 5):
    return [int(i * interval_s * 1000) for i in range(count)]


class TestNextDifficulty:
    def test_on_target_unchanged(self):
        assert next_difficulty_bits(10, _timestamps(10.0), CONFIG) == 10

    def test_too_fast_raises_difficulty(self):
        assert next_difficulty_bits(10, _timestamps(2.0), CONFIG) == 11

    def test_too_slow_lowers_difficulty(self):
        assert next_difficulty_bits(10, _timestamps(50.0), CONFIG) == 9

    def test_adjustment_clamped_to_one_bit(self):
        assert next_difficulty_bits(10, _timestamps(0.001), CONFIG) == 11
        assert next_difficulty_bits(10, _timestamps(10000.0), CONFIG) == 9

    def test_bounds_respected(self):
        assert next_difficulty_bits(CONFIG.max_bits, _timestamps(0.1), CONFIG) == CONFIG.max_bits
        assert next_difficulty_bits(CONFIG.min_bits, _timestamps(1000.0), CONFIG) == CONFIG.min_bits

    def test_mild_deviation_tolerated(self):
        assert next_difficulty_bits(10, _timestamps(14.0), CONFIG) == 10
        assert next_difficulty_bits(10, _timestamps(6.0), CONFIG) == 10

    def test_out_of_range_current_rejected(self):
        with pytest.raises(ConsensusError):
            next_difficulty_bits(50, _timestamps(10.0), CONFIG)

    def test_short_window_unchanged(self):
        assert next_difficulty_bits(10, [0], CONFIG) == 10

    def test_zero_elapsed_raises_difficulty(self):
        assert next_difficulty_bits(10, [0, 0, 0, 0, 0], CONFIG) == 11


class TestSchedule:
    def _chain(self, interval_s: float, length: int):
        state = StateDB()
        blocks = [make_genesis(state.state_root())]
        for height in range(1, length):
            blocks.append(
                build_block(
                    parent=blocks[-1],
                    transactions=[],
                    state_root=state.state_root(),
                    proposer="p",
                    timestamp_ms=int(height * interval_s * 1000),
                )
            )
        return blocks

    def test_stable_chain_keeps_bits(self):
        schedule = DifficultySchedule(10, CONFIG)
        chain = self._chain(10.0, 20)
        assert schedule.bits_at_height(19, chain) == 10

    def test_fast_chain_ratchets_up(self):
        schedule = DifficultySchedule(10, CONFIG)
        chain = self._chain(1.0, 20)
        assert schedule.bits_at_height(19, chain) > 10

    def test_slow_chain_ratchets_down(self):
        schedule = DifficultySchedule(10, CONFIG)
        chain = self._chain(100.0, 20)
        assert schedule.bits_at_height(19, chain) < 10

    def test_genesis_period_uses_initial(self):
        schedule = DifficultySchedule(12, CONFIG)
        chain = self._chain(1.0, 3)
        assert schedule.bits_at_height(2, chain) == 12

    def test_initial_out_of_range_rejected(self):
        with pytest.raises(ConsensusError):
            DifficultySchedule(2, CONFIG)
