"""Blockchain node tests: gossip, consensus convergence, duplicated work."""


from repro.chain.state import StateDB
from repro.chain.blocks import make_genesis
from repro.chain.transactions import make_deploy, make_call, make_transfer
from repro.common.signatures import KeyPair
from repro.consensus.node import make_network_nodes
from repro.consensus.poa import ProofOfAuthority
from repro.consensus.pow import ProofOfWork
from repro.contracts.library import COUNTER_SOURCE
from repro.sim.kernel import Kernel
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import Network


def build_network(n_nodes=3, consensus="poa", seed=0, funder=None):
    kernel = Kernel(seed=seed)
    metrics = MetricsRegistry()
    network = Network(kernel, metrics)
    state = StateDB()
    if funder is not None:
        state.credit(funder.address, 10**9)
    genesis = make_genesis(state.state_root())
    names = [f"n{i}" for i in range(n_nodes)]
    if consensus == "poa":
        keypairs = {name: KeyPair.generate(name) for name in names}
        engine = ProofOfAuthority(names, keypairs, block_interval_s=0.5)
    else:
        engine = ProofOfWork(difficulty_bits=8, default_hash_rate=1e4)
    nodes = make_network_nodes(
        kernel, network, names, genesis, state, lambda: engine, metrics=metrics
    )
    for node in nodes.values():
        node.start()
    return kernel, network, metrics, nodes


def commit(kernel, nodes, tx, timeout=120.0):
    deadline = kernel.now + timeout
    kernel.run(
        until=deadline,
        stop_when=lambda: all(n.receipt(tx.tx_id) for n in nodes.values()),
    )


class TestConvergence:
    def test_all_nodes_agree_on_state_root(self, alice):
        kernel, __, ___, nodes = build_network(4, funder=alice)
        tx = make_transfer(alice, "dest", 100, nonce=0)
        nodes["n0"].submit_tx(tx)
        commit(kernel, nodes, tx)
        roots = {node.state.state_root() for node in nodes.values()}
        assert len(roots) == 1
        assert nodes["n3"].state.balance("dest") == 100

    def test_receipt_available_on_every_node(self, alice):
        kernel, __, ___, nodes = build_network(3, funder=alice)
        tx = make_transfer(alice, "dest", 1, nonce=0)
        nodes["n2"].submit_tx(tx)
        commit(kernel, nodes, tx)
        for node in nodes.values():
            receipt = node.receipt(tx.tx_id)
            assert receipt is not None and receipt.success

    def test_pow_network_converges(self, alice):
        kernel, __, ___, nodes = build_network(3, consensus="pow", funder=alice)
        tx = make_transfer(alice, "dest", 5, nonce=0)
        nodes["n0"].submit_tx(tx)
        commit(kernel, nodes, tx, timeout=600.0)
        kernel.run(until=kernel.now + 30.0)  # drain in-flight blocks
        assert len({node.head.block_id for node in nodes.values()}) == 1

    def test_sequence_of_txs_applied_in_nonce_order(self, alice):
        kernel, __, ___, nodes = build_network(3, funder=alice)
        txs = [make_transfer(alice, "dest", 10, nonce=n) for n in range(5)]
        for tx in reversed(txs):  # submit out of order
            nodes["n0"].submit_tx(tx)
        commit(kernel, nodes, txs[-1], timeout=300.0)
        assert nodes["n1"].state.balance("dest") == 50


class TestContractsOnChain:
    def test_deploy_and_call_across_nodes(self, alice):
        kernel, __, ___, nodes = build_network(3, funder=alice)
        deploy = make_deploy(alice, "counter", COUNTER_SOURCE, init={"start": 0}, nonce=0)
        nodes["n0"].submit_tx(deploy)
        commit(kernel, nodes, deploy)
        contract_id = nodes["n1"].receipt(deploy.tx_id).output
        call = make_call(alice, contract_id, "increment", {"by": 2}, nonce=1)
        nodes["n2"].submit_tx(call)
        commit(kernel, nodes, call)
        for node in nodes.values():
            assert node.call_view(contract_id, "get") == 2

    def test_events_reach_subscribers_on_every_node(self, alice):
        kernel, __, ___, nodes = build_network(3, funder=alice)
        seen = {name: [] for name in nodes}
        for name, node in nodes.items():
            node.subscribe_events(lambda e, n=name: seen[n].append(e.name))
        deploy = make_deploy(alice, "counter", COUNTER_SOURCE, nonce=0)
        nodes["n0"].submit_tx(deploy)
        commit(kernel, nodes, deploy)
        contract_id = nodes["n0"].receipt(deploy.tx_id).output
        call = make_call(alice, contract_id, "increment", nonce=1)
        nodes["n0"].submit_tx(call)
        commit(kernel, nodes, call)
        assert all(names == ["Incremented"] for names in seen.values())


class TestDuplicatedWork:
    def test_every_node_burns_the_same_gas(self, alice):
        """The paper's core complaint: contract gas is duplicated N times."""
        kernel, __, metrics, nodes = build_network(4, funder=alice)
        deploy = make_deploy(alice, "counter", COUNTER_SOURCE, nonce=0)
        nodes["n0"].submit_tx(deploy)
        commit(kernel, nodes, deploy)
        contract_id = nodes["n0"].receipt(deploy.tx_id).output
        call = make_call(alice, contract_id, "increment", nonce=1)
        nodes["n0"].submit_tx(call)
        commit(kernel, nodes, call)
        per_node = metrics.scopes("gas")
        assert len(per_node) == 4
        assert len(set(per_node.values())) == 1  # identical duplicated work
        assert metrics.counter_total("gas") == 4 * next(iter(per_node.values()))

    def test_pow_burns_hashes_on_losers_too(self, alice):
        kernel, __, metrics, nodes = build_network(3, consensus="pow", funder=alice)
        tx = make_transfer(alice, "d", 1, nonce=0)
        nodes["n0"].submit_tx(tx)
        commit(kernel, nodes, tx, timeout=600.0)
        assert metrics.counter_total("hashes") > 0


class TestRobustness:
    def test_invalid_tx_not_propagated(self, alice):
        import dataclasses

        kernel, network, __, nodes = build_network(2, funder=alice)
        tx = make_transfer(alice, "d", 1, nonce=0)
        bad = dataclasses.replace(tx, payload={"to": "evil", "amount": 1})
        # inject the tampered tx directly through the network layer
        network.send("n0", "n1", "tx", bad)
        kernel.run(until=5.0)
        assert len(nodes["n1"].mempool) == 0

    def test_partition_stalls_then_heals(self, alice):
        kernel, network, __, nodes = build_network(2, funder=alice)
        network.partition({"n0"}, {"n1"})
        tx = make_transfer(alice, "d", 1, nonce=0)
        nodes["n0"].submit_tx(tx)
        kernel.run(until=kernel.now + 10.0)
        # n1 is the proposer for some heights but never saw the tx
        assert nodes["n1"].receipt(tx.tx_id) is None
        network.heal()
        # n0 rebroadcasts nothing automatically; resubmit through n1's side
        nodes["n1"]._handle_gossip_tx(tx)
        commit(kernel, nodes, tx)
        assert nodes["n1"].receipt(tx.tx_id).success

    def test_node_config_block_size_respected(self, alice):
        kernel, __, ___, nodes = build_network(2, funder=alice)
        for node in nodes.values():
            node.config.max_txs_per_block = 2
        txs = [make_transfer(alice, "d", 1, nonce=n) for n in range(6)]
        for tx in txs:
            nodes["n0"].submit_tx(tx)
        commit(kernel, nodes, txs[-1], timeout=300.0)
        for block in nodes["n0"].store.canonical_chain():
            assert len(block.transactions) <= 2


class TestMempoolHygiene:
    def test_losing_same_nonce_tx_purged_everywhere_on_commit(self, alice):
        """Regression: the old FIFO pool leaked same-nonce losers forever.

        Two competing nonce-0 transactions enter the network at different
        nodes (RBF refuses the zero-fee cross-gossip, so each pool holds
        only its own).  Once either commits, every pool must be empty —
        the loser's nonce is stale and can never execute.
        """
        kernel, __, metrics, nodes = build_network(3, funder=alice)
        winner = make_transfer(alice, "dest", 10, nonce=0)
        loser = make_transfer(alice, "other", 10, nonce=0)
        nodes["n0"].submit_tx(winner)
        nodes["n1"].submit_tx(loser)
        kernel.run(
            until=kernel.now + 120.0,
            stop_when=lambda: all(
                n.receipt(winner.tx_id) or n.receipt(loser.tx_id)
                for n in nodes.values()
            ),
        )
        kernel.run(until=kernel.now + 5.0)  # let commits drain the pools
        for node in nodes.values():
            assert winner.tx_id not in node.mempool
            assert loser.tx_id not in node.mempool
            assert len(node.mempool) == 0
        assert metrics.counter_total("mempool_stale_purged") >= 1

    def test_stale_nonce_rejected_at_submission(self, alice):
        from repro.chain.mempool import STALE_NONCE

        kernel, __, ___, nodes = build_network(2, funder=alice)
        tx = make_transfer(alice, "dest", 1, nonce=0)
        nodes["n0"].submit_tx(tx)
        commit(kernel, nodes, tx)
        replay = make_transfer(alice, "late", 1, nonce=0)
        result = nodes["n0"].submit_tx(replay)
        assert not result and result.code == STALE_NONCE
        assert replay.tx_id not in nodes["n0"].mempool

    def test_resubmitting_committed_tx_is_duplicate_noop(self, alice):
        from repro.chain.mempool import DUPLICATE

        kernel, __, ___, nodes = build_network(2, funder=alice)
        tx = make_transfer(alice, "dest", 1, nonce=0)
        nodes["n0"].submit_tx(tx)
        commit(kernel, nodes, tx)
        again = nodes["n0"].submit_tx(tx)
        assert not again and again.code == DUPLICATE
        assert tx.tx_id not in nodes["n0"].mempool

    def test_tx_shed_under_overload_can_be_readmitted(self, alice, bob):
        """Regression: a transient POOL_FULL/RATE_LIMITED rejection used
        to blackhole the tx forever — submit_tx marked it seen before
        admission, so the retry its error message asked for came back as
        a 'duplicate' no-op, and peer re-announcements were dropped too.
        """
        from repro.chain.mempool import MempoolConfig, POOL_FULL
        from repro.consensus.node import NodeConfig

        kernel = Kernel(seed=7)
        metrics = MetricsRegistry()
        network = Network(kernel, metrics)
        state = StateDB()
        state.credit(alice.address, 10**9)
        state.credit(bob.address, 10**9)
        genesis = make_genesis(state.state_root())
        names = ["n0"]
        engine = ProofOfAuthority(
            names, {"n0": KeyPair.generate("n0")}, block_interval_s=0.5
        )
        nodes = make_network_nodes(
            kernel,
            network,
            names,
            genesis,
            state,
            lambda: engine,
            metrics=metrics,
            config=NodeConfig(
                mempool=MempoolConfig(
                    max_size=10, high_watermark=0.3, low_watermark=0.2
                )
            ),
        )
        node = nodes["n0"]
        for nonce in range(3):
            node.submit_tx(
                make_transfer(
                    bob, "sink", 1, nonce=nonce,
                    max_fee_per_gas=10, priority_fee_per_gas=10,
                )
            )
        assert node.mempool.shedding
        cheap = make_transfer(alice, "dest", 1, nonce=0)
        refused = node.submit_tx(cheap)
        assert not refused and refused.code == POOL_FULL
        # Pressure clears; both the local resubmit and the gossip path
        # must now give the same tx a fresh admission decision.
        node.mempool.remove_all(node.mempool.all_ids())
        assert not node.mempool.shedding
        node._handle_gossip_tx(cheap)  # peer re-announcement
        assert cheap.tx_id in node.mempool
        node.mempool.remove_all(node.mempool.all_ids())
        assert node.submit_tx(cheap)
        assert cheap.tx_id in node.mempool

    def test_rejected_tx_not_gossiped(self, alice):
        """Admission-gated gossip: a refused tx dies at the first hop."""
        from repro.chain.mempool import MempoolConfig
        from repro.consensus.node import NodeConfig

        kernel = Kernel(seed=3)
        metrics = MetricsRegistry()
        network = Network(kernel, metrics)
        state = StateDB()
        state.credit(alice.address, 10**9)
        genesis = make_genesis(state.state_root())
        names = ["n0", "n1"]
        keypairs = {name: KeyPair.generate(name) for name in names}
        engine = ProofOfAuthority(names, keypairs, block_interval_s=0.5)
        nodes = make_network_nodes(
            kernel,
            network,
            names,
            genesis,
            state,
            lambda: engine,
            metrics=metrics,
            config=NodeConfig(mempool=MempoolConfig(min_fee_per_gas=5)),
        )
        for node in nodes.values():
            node.start()
        free = make_transfer(alice, "dest", 1, nonce=0)
        result = nodes["n0"].submit_tx(free)
        assert not result
        kernel.run(until=5.0)
        assert free.tx_id not in nodes["n0"].mempool
        assert free.tx_id not in nodes["n1"].mempool
        paid = make_transfer(
            alice, "dest", 1, nonce=0, max_fee_per_gas=5, priority_fee_per_gas=5
        )
        assert nodes["n0"].submit_tx(paid)
        kernel.run(until=kernel.now + 5.0)
        assert paid.tx_id in nodes["n1"].mempool or nodes["n1"].receipt(paid.tx_id)


class TestStateRecovery:
    def _grow(self, kernel, nodes, alice, count, start_nonce=0, submit_to="n0"):
        for node in nodes.values():
            node.config.max_txs_per_block = 1  # one block per tx
        txs = [make_transfer(alice, "d", 1, nonce=start_nonce + n) for n in range(count)]
        for tx in txs:
            nodes[submit_to].submit_tx(tx)
        commit(kernel, nodes, txs[-1], timeout=300.0)
        return txs

    def test_recover_states_reexecutes_forward(self, alice):
        kernel, __, metrics, nodes = build_network(2, funder=alice)
        self._grow(kernel, nodes, alice, 3)
        node = nodes["n0"]
        chain = node.store.canonical_chain()
        assert len(chain) >= 3
        # Simulate a restart that lost every non-genesis state.
        for block in chain[1:]:
            node._states.pop(block.block_id, None)
        assert node._recover_states(node.head.block_id)
        assert node.head.block_id in node._states
        assert metrics.counter("states_recovered", scope="n0") >= len(chain) - 1
        # Recomputed state matches what consensus agreed on.
        assert (
            node._states[node.head.block_id].state_root()
            == node.head.header.state_root
        )

    def test_recover_states_fails_below_retained_window(self, alice):
        kernel, __, ___, nodes = build_network(2, funder=alice)
        self._grow(kernel, nodes, alice, 3)
        node = nodes["n0"]
        for block in node.store.canonical_chain()[1:]:
            node._states.pop(block.block_id, None)
        # A depth bound tighter than the gap must refuse, not loop.
        assert not node._recover_states(node.head.block_id, max_depth=1)

    def test_gossip_block_with_missing_parent_state_is_not_dropped(self, alice):
        """Regression: a block whose parent *block* is stored but whose
        parent *state* is gone used to be silently discarded."""
        kernel, network, metrics, nodes = build_network(3, funder=alice)
        self._grow(kernel, nodes, alice, 2)
        base_height = nodes["n0"].head.height
        network.partition({"n0", "n1"}, {"n2"})
        txs = [make_transfer(alice, "d", 1, nonce=2 + n) for n in range(2)]
        for tx in txs:
            nodes["n0"].submit_tx(tx)
        kernel.run(
            until=kernel.now + 120.0,
            stop_when=lambda: all(
                nodes[n].receipt(txs[-1].tx_id) for n in ("n0", "n1")
            ),
        )
        assert nodes["n0"].head.height > base_height
        laggard = nodes["n2"]
        assert laggard.head.height == base_height
        # Lose the laggard's recent states while it keeps the blocks.
        for block in laggard.store.canonical_chain()[1:]:
            laggard._states.pop(block.block_id, None)
        # Deliver the missed blocks directly (the partition stays up, so
        # this is the only path they can arrive by), oldest first.
        for block in nodes["n0"].store.canonical_chain()[base_height + 1 :]:
            laggard._handle_gossip_block(block)
        kernel.run(until=kernel.now + 5.0)
        assert laggard.head.block_id == nodes["n0"].head.block_id
        assert laggard.state.state_root() == nodes["n0"].state.state_root()
        assert metrics.counter("states_recovered", scope="n2") >= 1


class TestStatePruning:
    def test_state_retention_bounded_by_window(self, alice):
        kernel, __, metrics, nodes = build_network(3, funder=alice)
        for node in nodes.values():
            node.config.state_prune_window = 2
            node.config.max_txs_per_block = 1  # force one block per transfer
        txs = [make_transfer(alice, "dest", 1, nonce=n) for n in range(6)]
        for tx in txs:
            nodes["n0"].submit_tx(tx)
        commit(kernel, nodes, txs[-1], timeout=300.0)
        for node in nodes.values():
            height = node.store.height
            assert height > 4  # chain kept growing past the window
            # Retained states: window boundary + blocks inside the window
            # (plus recent fork tips) — never the whole chain.
            assert len(node._states) <= node.config.state_prune_window + 3
            assert len(node._block_receipts) <= len(node._states)
        assert metrics.counter("state_entries_pruned", scope="n0") > 0

    def test_boundary_collapse_deferred_by_interval(self, alice):
        # The boundary state is collapsed only every state_collapse_interval
        # blocks (amortizing the O(state) collapse), so overlay chains stay
        # bounded by interval + window and nodes still converge.
        kernel, __, ___, nodes = build_network(3, funder=alice)
        for node in nodes.values():
            node.config.state_prune_window = 2
            node.config.state_collapse_interval = 3
            node.config.max_txs_per_block = 1
        txs = [make_transfer(alice, "dest", 1, nonce=n) for n in range(8)]
        for tx in txs:
            nodes["n0"].submit_tx(tx)
        commit(kernel, nodes, txs[-1], timeout=300.0)
        for node in nodes.values():
            bound = (
                node.config.state_prune_window
                + node.config.state_collapse_interval
            )
            assert node.state.overlay_depth <= bound
        roots = {node.state.state_root() for node in nodes.values()}
        assert len(roots) == 1
        assert nodes["n0"].state.balance("dest") == 8

    def test_collapse_interval_one_restores_per_block_collapse(self, alice):
        kernel, __, ___, nodes = build_network(2, funder=alice)
        for node in nodes.values():
            node.config.state_prune_window = 2
            node.config.state_collapse_interval = 1
            node.config.max_txs_per_block = 1
        txs = [make_transfer(alice, "dest", 1, nonce=n) for n in range(6)]
        for tx in txs:
            nodes["n0"].submit_tx(tx)
        commit(kernel, nodes, txs[-1], timeout=300.0)
        for node in nodes.values():
            # Boundary collapsed on every head change: depth never exceeds
            # the window itself.
            assert node.state.overlay_depth <= node.config.state_prune_window
        roots = {node.state.state_root() for node in nodes.values()}
        assert len(roots) == 1

    def test_pruned_node_still_converges_and_serves_receipts(self, alice):
        kernel, __, ___, nodes = build_network(3, funder=alice)
        for node in nodes.values():
            node.config.state_prune_window = 2
        txs = [make_transfer(alice, "dest", 10, nonce=n) for n in range(5)]
        for tx in txs:
            nodes["n0"].submit_tx(tx)
        commit(kernel, nodes, txs[-1], timeout=300.0)
        roots = {node.state.state_root() for node in nodes.values()}
        assert len(roots) == 1
        for node in nodes.values():
            assert node.state.balance("dest") == 50
            for tx in txs:
                assert node.receipt(tx.tx_id).success
