"""Block back-fill: a node that missed history catches up via get_block."""

import pytest

from repro.chain.blocks import make_genesis
from repro.chain.state import StateDB
from repro.chain.transactions import make_transfer
from repro.common.signatures import KeyPair
from repro.consensus.node import NodeConfig, make_network_nodes
from repro.consensus.poa import ProofOfAuthority
from repro.sim.kernel import Kernel
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import Network


@pytest.fixture()
def world(alice):
    kernel = Kernel(seed=31)
    metrics = MetricsRegistry()
    network = Network(kernel, metrics)
    state = StateDB()
    state.credit(alice.address, 10**9)
    genesis = make_genesis(state.state_root())
    names = ["n0", "n1", "n2"]
    keypairs = {name: KeyPair.generate(name) for name in names}
    engine = ProofOfAuthority(names, keypairs, block_interval_s=0.5)
    nodes = make_network_nodes(
        kernel, network, names, genesis, state, lambda: engine,
        metrics=metrics, config=NodeConfig(max_txs_per_block=3),
    )
    for node in nodes.values():
        node.start()
    return kernel, network, nodes


def _commit(kernel, nodes, tx, names=None, timeout=120.0):
    wanted = names or list(nodes)
    kernel.run(
        until=kernel.now + timeout,
        stop_when=lambda: all(nodes[name].receipt(tx.tx_id) for name in wanted),
    )


def test_partitioned_node_backfills_after_heal(world, alice):
    kernel, network, nodes = world
    network.partition({"n0", "n1"}, {"n2"})
    txs = [make_transfer(alice, "sink", 1, nonce=n) for n in range(6)]
    for tx in txs:
        nodes["n0"].submit_tx(tx)
    _commit(kernel, nodes, txs[-1], names=["n0", "n1"], timeout=300.0)
    behind = nodes["n2"].head.height
    ahead = nodes["n0"].head.height
    assert ahead > behind
    network.heal()
    # New activity after the heal triggers gossip; n2 receives a block with
    # an unknown parent and back-fills the whole gap.
    catch_up = make_transfer(alice, "sink", 1, nonce=6)
    nodes["n0"].submit_tx(catch_up)
    _commit(kernel, nodes, catch_up, timeout=300.0)
    kernel.run(until=kernel.now + 30)
    assert nodes["n2"].head.height == nodes["n0"].head.height
    assert nodes["n2"].state.state_root() == nodes["n0"].state.state_root()
    # Every pre-heal tx is now visible on the previously-isolated node.
    for tx in txs:
        assert nodes["n2"].receipt(tx.tx_id) is not None


def test_backfill_depth_greater_than_one(world, alice):
    kernel, network, nodes = world
    network.partition({"n0", "n1"}, {"n2"})
    txs = [make_transfer(alice, "sink", 1, nonce=n) for n in range(12)]
    for tx in txs:
        nodes["n0"].submit_tx(tx)
    _commit(kernel, nodes, txs[-1], names=["n0", "n1"], timeout=600.0)
    assert nodes["n0"].head.height - nodes["n2"].head.height >= 3
    network.heal()
    catch_up = make_transfer(alice, "sink", 1, nonce=12)
    nodes["n0"].submit_tx(catch_up)
    _commit(kernel, nodes, catch_up, timeout=600.0)
    kernel.run(until=kernel.now + 30)
    assert nodes["n2"].state.state_root() == nodes["n0"].state.state_root()


def test_get_block_for_unknown_id_ignored(world):
    kernel, network, nodes = world
    network.send("n1", "n0", "get_block", "ff" * 32)
    kernel.run(until=kernel.now + 5)  # must not raise or respond wrongly


def test_get_block_serves_known_blocks(world, alice):
    kernel, network, nodes = world
    tx = make_transfer(alice, "sink", 1, nonce=0)
    nodes["n0"].submit_tx(tx)
    _commit(kernel, nodes, tx)
    block_id = nodes["n0"].head.block_id
    received = []
    network.register("observer", lambda s, m: received.append(m))
    network.send("observer", "n0", "get_block", block_id)
    kernel.run(until=kernel.now + 5)
    assert any(
        m.kind == "block" and m.payload.block_id == block_id for m in received
    )
