"""Consensus engine tests: PoW puzzle, PoA signatures, PoS lottery."""

import pytest

from repro.chain.blocks import build_block, make_genesis
from repro.chain.state import StateDB
from repro.common.errors import ConsensusError
from repro.common.signatures import KeyPair
from repro.consensus.poa import ProofOfAuthority
from repro.consensus.pos import ProofOfStake
from repro.consensus.pow import ProofOfWork, check_pow, grind, pow_target


@pytest.fixture()
def genesis():
    return make_genesis(StateDB().state_root())


def _block(parent):
    return build_block(
        parent=parent,
        transactions=[],
        state_root=parent.header.state_root,
        proposer="p",
        timestamp_ms=1,
    )


class TestPoW:
    def test_grind_finds_valid_nonce(self):
        digest = b"\x01" * 32
        nonce, attempts = grind(digest, bits=8)
        assert check_pow(digest, nonce, bits=8)
        assert attempts >= 1

    def test_target_halves_per_bit(self):
        assert pow_target(9) * 2 == pow_target(8)

    def test_seal_and_verify(self, genesis):
        engine = ProofOfWork(difficulty_bits=8)
        sealed = engine.seal("miner", _block(genesis))
        assert engine.verify(sealed, genesis)

    def test_wrong_nonce_rejected(self, genesis):
        engine = ProofOfWork(difficulty_bits=8)
        sealed = engine.seal("miner", _block(genesis))
        bad_consensus = dict(sealed.header.consensus)
        bad_consensus["nonce"] = sealed.header.consensus["nonce"] + 10**6
        forged = sealed.with_consensus(bad_consensus)
        # Forged block *might* accidentally satisfy PoW; overwhelmingly not at 8 bits.
        assert not engine.verify(forged, genesis) or check_pow(
            forged.header.mining_digest(), bad_consensus["nonce"], 8
        )

    def test_difficulty_mismatch_rejected(self, genesis):
        low = ProofOfWork(difficulty_bits=8)
        high = ProofOfWork(difficulty_bits=12)
        sealed = low.seal("miner", _block(genesis))
        assert not high.verify(sealed, genesis)

    def test_plan_delay_scales_with_hash_rate(self, genesis):
        engine = ProofOfWork(difficulty_bits=16, hash_rates={"fast": 1e6, "slow": 1e3})
        fast = engine.plan_proposal("fast", genesis, 0.5)
        slow = engine.plan_proposal("slow", genesis, 0.5)
        assert fast.delay_s < slow.delay_s

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            ProofOfWork(difficulty_bits=0)

    def test_work_per_second_reports_hash_rate(self):
        engine = ProofOfWork(difficulty_bits=8, default_hash_rate=123.0)
        assert engine.work_per_second("anyone") == 123.0


class TestPoA:
    def _engine(self, names=("v0", "v1", "v2")):
        keypairs = {name: KeyPair.generate(name) for name in names}
        return ProofOfAuthority(list(names), keypairs), keypairs

    def test_round_robin_schedule(self, genesis):
        engine, __ = self._engine()
        assert engine.proposer_at(1) == "v1"
        assert engine.proposer_at(3) == "v0"

    def test_primary_plans_soonest(self, genesis):
        engine, __ = self._engine()
        primary = engine.plan_proposal("v1", genesis, 0.5)   # in-turn at height 1
        backup = engine.plan_proposal("v0", genesis, 0.5)
        assert primary.delay_s is not None and backup.delay_s is not None
        assert primary.delay_s < backup.delay_s

    def test_backup_ranks_ordered(self, genesis):
        engine, __ = self._engine()
        delays = {
            name: engine.plan_proposal(name, genesis, 0.5).delay_s
            for name in ("v0", "v1", "v2")
        }
        # height 1: in-turn v1, then v2, then v0.
        assert delays["v1"] < delays["v2"] < delays["v0"]

    def test_non_validator_never_plans(self, genesis):
        engine, __ = self._engine()
        assert engine.plan_proposal("stranger", genesis, 0.5).delay_s is None

    def test_seal_verify_round_trip(self, genesis):
        engine, __ = self._engine()
        sealed = engine.seal("v1", _block(genesis))
        assert engine.verify(sealed, genesis)
        assert sealed.header.consensus["in_turn"] is True

    def test_backup_seal_verifies_out_of_turn(self, genesis):
        engine, __ = self._engine()
        sealed = engine.seal("v0", _block(genesis))  # backup for height 1
        assert engine.verify(sealed, genesis)
        assert sealed.header.consensus["in_turn"] is False

    def test_non_validator_cannot_seal(self, genesis):
        engine, __ = self._engine()
        with pytest.raises(ConsensusError):
            engine.seal("stranger", _block(genesis))

    def test_forged_signature_rejected(self, genesis):
        engine, __ = self._engine()
        sealed = engine.seal("v1", _block(genesis))
        consensus = dict(sealed.header.consensus)
        signature = bytearray(consensus["signature"])
        signature[-1] ^= 0xFF
        consensus["signature"] = bytes(signature)
        assert not engine.verify(sealed.with_consensus(consensus), genesis)

    def test_impersonation_rejected(self, genesis):
        engine, keypairs = self._engine()
        block = _block(genesis)
        forged_sig = keypairs["v0"].sign(block.header.mining_digest())
        forged = block.with_consensus(
            {"type": "poa", "validator": "v1", "signature": forged_sig.to_bytes()}
        )
        assert not engine.verify(forged, genesis)

    def test_empty_validator_set_rejected(self):
        with pytest.raises(ConsensusError):
            ProofOfAuthority([], {})


class TestPoS:
    def _engine(self):
        return ProofOfStake({"a": 100, "b": 100, "c": 100})

    def test_winner_is_deterministic(self, genesis):
        engine = self._engine()
        assert engine.winner_at(genesis, 1) == engine.winner_at(genesis, 1)

    def test_only_winner_plans(self, genesis):
        engine = self._engine()
        winner = engine.winner_at(genesis, 1)
        for staker in ("a", "b", "c"):
            plan = engine.plan_proposal(staker, genesis, 0.5)
            assert (plan.delay_s is not None) == (staker == winner)

    def test_seal_verify_round_trip(self, genesis):
        engine = self._engine()
        winner = engine.winner_at(genesis, 1)
        sealed = engine.seal(winner, _block(genesis))
        assert engine.verify(sealed, genesis)

    def test_non_winner_seal_rejected_on_verify(self, genesis):
        engine = self._engine()
        losers = [s for s in ("a", "b", "c") if s != engine.winner_at(genesis, 1)]
        sealed = engine.seal(losers[0], _block(genesis))
        assert not engine.verify(sealed, genesis)

    def test_stake_weighting_statistical(self, genesis):
        """A staker with 10x stake should win the large majority of heights."""
        engine = ProofOfStake({"whale": 1000, "minnow": 100})
        wins = sum(
            1 for height in range(1, 201) if engine.winner_at(genesis, height) == "whale"
        )
        assert wins > 140  # expectation ~182 of 200

    def test_non_staker_cannot_seal(self, genesis):
        engine = self._engine()
        with pytest.raises(ConsensusError):
            engine.seal("outsider", _block(genesis))

    def test_zero_stake_rejected(self):
        with pytest.raises(ConsensusError):
            ProofOfStake({"a": 0})

    def test_no_hash_work(self):
        assert self._engine().work_per_second("a") == 0.0
