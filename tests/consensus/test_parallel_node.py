"""Node-level parallel execution: `NodeConfig.parallel_execution`.

Two identical simulated networks — one executing blocks serially, one
through the optimistic parallel scheduler — must converge to the same
heads, state roots, and receipts.
"""

from repro.chain.blocks import make_genesis
from repro.chain.state import StateDB
from repro.chain.transactions import make_call, make_deploy, make_transfer
from repro.common.signatures import KeyPair
from repro.consensus.node import NodeConfig, make_network_nodes
from repro.consensus.poa import ProofOfAuthority
from repro.contracts.library import COUNTER_SOURCE
from repro.sim.kernel import Kernel
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import Network


def build_network(funder, config=None, n_nodes=3, seed=11):
    kernel = Kernel(seed=seed)
    network = Network(kernel, MetricsRegistry())
    state = StateDB()
    state.credit(funder.address, 10**9)
    genesis = make_genesis(state.state_root())
    names = [f"n{i}" for i in range(n_nodes)]
    keypairs = {name: KeyPair.generate(name) for name in names}
    engine = ProofOfAuthority(names, keypairs, block_interval_s=0.5)
    nodes = make_network_nodes(
        kernel, network, names, genesis, state, lambda: engine, config=config
    )
    for node in nodes.values():
        node.start()
    return kernel, nodes


def run_workload(kernel, nodes, alice):
    deploy = make_deploy(alice, "counter", COUNTER_SOURCE, nonce=0)
    nodes["n0"].submit_tx(deploy)
    kernel.run(
        until=kernel.now + 120.0,
        stop_when=lambda: all(n.receipt(deploy.tx_id) for n in nodes.values()),
    )
    contract_id = nodes["n0"].receipt(deploy.tx_id).output
    txs = [make_call(alice, contract_id, "increment", {"by": 2}, nonce=1)]
    txs += [
        make_transfer(alice, f"dest{i}", 10 + i, nonce=2 + i) for i in range(6)
    ]
    for tx in txs:
        nodes["n1"].submit_tx(tx)
    kernel.run(
        until=kernel.now + 240.0,
        stop_when=lambda: all(
            n.receipt(txs[-1].tx_id) for n in nodes.values()
        ),
    )
    return txs


class TestParallelNode:
    def test_parallel_network_matches_serial_network(self, alice):
        serial_kernel, serial_nodes = build_network(alice)
        parallel_kernel, parallel_nodes = build_network(
            alice,
            config=NodeConfig(parallel_execution=True,
                              parallel_backend="thread"),
        )
        serial_txs = run_workload(serial_kernel, serial_nodes, alice)
        parallel_txs = run_workload(parallel_kernel, parallel_nodes, alice)

        serial_roots = {n.state.state_root() for n in serial_nodes.values()}
        parallel_roots = {
            n.state.state_root() for n in parallel_nodes.values()
        }
        assert serial_roots == parallel_roots and len(serial_roots) == 1
        for serial_tx, parallel_tx in zip(serial_txs, parallel_txs):
            serial_receipt = serial_nodes["n0"].receipt(serial_tx.tx_id)
            parallel_receipt = parallel_nodes["n0"].receipt(parallel_tx.tx_id)
            assert serial_receipt.success and parallel_receipt.success
            assert serial_receipt.output == parallel_receipt.output

        for node in parallel_nodes.values():
            assert node._scheduler is not None  # scheduler actually used
            assert node._scheduler.stats["blocks"] > 0
        for nodes in (serial_nodes, parallel_nodes):
            for node in nodes.values():
                node.stop()
        # stop() releases the worker pool
        assert all(n._scheduler is None for n in parallel_nodes.values())

    def test_serial_config_never_builds_scheduler(self, alice):
        kernel, nodes = build_network(alice)
        tx = make_transfer(alice, "dest", 5, nonce=0)
        nodes["n0"].submit_tx(tx)
        kernel.run(
            until=kernel.now + 120.0,
            stop_when=lambda: all(n.receipt(tx.tx_id) for n in nodes.values()),
        )
        assert all(n._scheduler is None for n in nodes.values())
        for node in nodes.values():
            node.stop()
