"""Site-tool and pipeline tests."""

import numpy as np
import pytest

from repro.analytics.clustering import kmeans
from repro.analytics.features import FEATURE_DIM
from repro.analytics.pipeline import AnalyticsPipeline
from repro.analytics.tools import (
    standard_registry,
    tool_count,
    tool_evaluate_model,
    tool_histogram,
    tool_local_train,
    tool_numeric_summary,
    tool_prevalence,
)
from repro.common.errors import MedchainError, OracleError


class TestFilters:
    def test_count_no_filters(self, small_cohort):
        assert tool_count(small_cohort, {})["count"] == len(small_cohort)

    def test_age_filter(self, small_cohort):
        count = tool_count(small_cohort, {"filters": {"age_min": 60}})["count"]
        expected = sum(1 for r in small_cohort if 2018 - r["birth_year"] >= 60)
        assert count == expected

    def test_sex_filter(self, small_cohort):
        count = tool_count(small_cohort, {"filters": {"sex": "F"}})["count"]
        assert count == sum(1 for r in small_cohort if r["sex"] == "F")

    def test_nested_field_filter(self, small_cohort):
        count = tool_count(small_cohort, {"filters": {"lifestyle.smoker": 1}})["count"]
        assert count == sum(1 for r in small_cohort if r["lifestyle"]["smoker"] == 1)

    def test_outcome_filter(self, small_cohort):
        count = tool_count(small_cohort, {"filters": {"has_outcome_stroke": 1}})["count"]
        assert count == sum(1 for r in small_cohort if r["outcomes"]["stroke"])

    def test_diagnosis_filter(self, small_cohort):
        count = tool_count(small_cohort, {"filters": {"diagnosis": "I10"}})["count"]
        assert count == sum(1 for r in small_cohort if "I10" in r["diagnoses"])


class TestTools:
    def test_prevalence_counts(self, small_cohort):
        out = tool_prevalence(small_cohort, {"outcome": "stroke"})
        assert out["n"] == len(small_cohort)
        assert out["positives"] == sum(r["outcomes"]["stroke"] for r in small_cohort)

    def test_prevalence_requires_outcome(self, small_cohort):
        with pytest.raises(OracleError):
            tool_prevalence(small_cohort, {})

    def test_numeric_summary_matches_numpy(self, small_cohort):
        out = tool_numeric_summary(small_cohort, {"field": "vitals.bmi"})
        values = [r["vitals"]["bmi"] for r in small_cohort]
        assert out["summary"]["mean"] == pytest.approx(np.mean(values))
        assert out["summary"]["count"] == len(values)

    def test_histogram_totals(self, small_cohort):
        out = tool_histogram(
            small_cohort, {"field": "vitals.sbp", "low": 90, "high": 220, "bins": 13}
        )
        assert sum(out["counts"]) == len(small_cohort)
        assert len(out["counts"]) == 13

    def test_histogram_validates_range(self, small_cohort):
        with pytest.raises(OracleError):
            tool_histogram(small_cohort, {"field": "vitals.sbp", "low": 10, "high": 5})

    def test_local_train_returns_params(self, small_cohort):
        out = tool_local_train(small_cohort, {"outcome": "stroke", "epochs": 2})
        assert out["n"] == len(small_cohort)
        assert len(out["params"]) == 2  # weights + bias
        assert len(out["params"][0]) == FEATURE_DIM
        assert out["flops"] > 0

    def test_local_train_continues_from_global(self, small_cohort):
        first = tool_local_train(small_cohort, {"outcome": "stroke", "epochs": 1})
        second = tool_local_train(
            small_cohort,
            {"outcome": "stroke", "epochs": 1, "global_params": first["params"]},
        )
        assert second["loss"] <= first["loss"] + 0.05

    def test_local_train_mlp(self, small_cohort):
        out = tool_local_train(
            small_cohort, {"outcome": "stroke", "model": "mlp", "hidden": 4, "epochs": 1}
        )
        assert len(out["params"]) == 4

    def test_local_train_unknown_model(self, small_cohort):
        with pytest.raises(OracleError):
            tool_local_train(small_cohort, {"model": "transformer"})

    def test_evaluate_model(self, small_cohort):
        trained = tool_local_train(small_cohort, {"outcome": "stroke", "epochs": 3})
        out = tool_evaluate_model(
            small_cohort, {"outcome": "stroke", "global_params": trained["params"]}
        )
        assert 0.0 <= out["auc"] <= 1.0
        assert out["n"] == len(small_cohort)

    def test_standard_registry_complete(self):
        registry = standard_registry()
        assert set(registry.tool_ids()) == {
            "cluster", "compare_groups", "count", "describe", "evaluate_model",
            "histogram", "local_train", "numeric_summary", "prevalence",
        }


class TestKMeans:
    def test_separated_clusters_found(self):
        rng = np.random.default_rng(0)
        X = np.vstack(
            [rng.normal(center, 0.3, (50, 2)) for center in [(0, 0), (5, 5), (-5, 5)]]
        )
        result = kmeans(X, 3, seed=1)
        assert sorted(result.cluster_sizes) == [50, 50, 50]

    def test_too_few_points_rejected(self):
        from repro.common.errors import LearningError

        with pytest.raises(LearningError):
            kmeans(np.zeros((2, 2)), 3)

    def test_deterministic_with_seed(self):
        rng = np.random.default_rng(4)
        X = rng.normal(0, 1, (60, 3))
        a = kmeans(X, 4, seed=2)
        b = kmeans(X, 4, seed=2)
        assert np.allclose(a.centroids, b.centroids)


class TestPipeline:
    def test_steps_run_in_order(self):
        pipeline = AnalyticsPipeline("p")
        pipeline.add_step("one", lambda ctx: 1)
        pipeline.add_step("two", lambda ctx: ctx["one"] + 1)
        context = pipeline.run()
        assert context["two"] == 2

    def test_guard_skips_steps(self):
        pipeline = AnalyticsPipeline("p")
        pipeline.add_step("screen", lambda ctx: {"positives": 0})
        pipeline.add_step(
            "deep_dive",
            lambda ctx: "ran",
            guard=lambda ctx: ctx["screen"]["positives"] > 0,
        )
        context = pipeline.run()
        assert "deep_dive" not in context
        trace = {outcome.name: outcome.ran for outcome in context["__trace__"]}
        assert trace == {"screen": True, "deep_dive": False}

    def test_dynamic_branching_on_results(self):
        """The paper's 'analytics decision tree': later tools depend on
        earlier results."""
        pipeline = AnalyticsPipeline("p")
        pipeline.add_step("prevalence", lambda ctx: 0.4)
        pipeline.add_step(
            "high_prev_path", lambda ctx: "subtype",
            guard=lambda ctx: ctx["prevalence"] > 0.2,
        )
        pipeline.add_step(
            "low_prev_path", lambda ctx: "expand cohort",
            guard=lambda ctx: ctx["prevalence"] <= 0.2,
        )
        context = pipeline.run()
        assert context["high_prev_path"] == "subtype"
        assert "low_prev_path" not in context

    def test_error_stops_pipeline(self):
        def boom(ctx):
            raise MedchainError("bad step")

        pipeline = AnalyticsPipeline("p")
        pipeline.add_step("boom", boom)
        pipeline.add_step("after", lambda ctx: 1)
        context = pipeline.run()
        assert "__error__" in context
        assert "after" not in context

    def test_duplicate_step_names_rejected(self):
        pipeline = AnalyticsPipeline("p")
        pipeline.add_step("x", lambda ctx: 1)
        with pytest.raises(MedchainError):
            pipeline.add_step("x", lambda ctx: 2)

    def test_initial_context_passed_through(self):
        pipeline = AnalyticsPipeline("p")
        pipeline.add_step("use", lambda ctx: ctx["seedval"] * 2)
        assert pipeline.run({"seedval": 21})["use"] == 42
