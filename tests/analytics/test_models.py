"""Model tests: logistic, MLP, metrics, parameter averaging."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics.models import (
    LogisticModel,
    MLPModel,
    accuracy,
    auc_score,
    average_params,
    log_loss,
    params_size_bytes,
    sigmoid,
)
from repro.common.errors import LearningError


def _separable(n=400, dim=4, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 1, (n, dim))
    w = np.arange(1, dim + 1, dtype=float)
    y = (X @ w + rng.normal(0, 0.5, n) > 0).astype(float)
    return X, y


class TestMetrics:
    def test_sigmoid_bounds_and_midpoint(self):
        z = np.array([-100.0, 0.0, 100.0])
        out = sigmoid(z)
        assert out[0] < 1e-20
        assert out[1] == pytest.approx(0.5)
        assert out[2] >= 1 - 1e-15

    def test_log_loss_perfect_prediction(self):
        y = np.array([0.0, 1.0])
        assert log_loss(y, np.array([0.0, 1.0])) < 1e-10

    def test_log_loss_penalizes_confident_errors(self):
        y = np.array([1.0])
        assert log_loss(y, np.array([0.01])) > log_loss(y, np.array([0.4]))

    def test_accuracy(self):
        y = np.array([1.0, 0.0, 1.0, 0.0])
        probs = np.array([0.9, 0.2, 0.4, 0.6])
        assert accuracy(y, probs) == 0.5

    def test_auc_perfect_ranking(self):
        y = np.array([0.0, 0.0, 1.0, 1.0])
        assert auc_score(y, np.array([0.1, 0.2, 0.8, 0.9])) == 1.0

    def test_auc_random_is_half(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, 2000).astype(float)
        probs = rng.random(2000)
        assert auc_score(y, probs) == pytest.approx(0.5, abs=0.05)

    def test_auc_with_ties(self):
        y = np.array([0.0, 1.0, 0.0, 1.0])
        assert auc_score(y, np.array([0.5, 0.5, 0.5, 0.5])) == pytest.approx(0.5)

    def test_auc_degenerate_classes(self):
        assert auc_score(np.array([1.0, 1.0]), np.array([0.2, 0.3])) == 0.5


class TestLogisticModel:
    def test_learns_separable_data(self):
        X, y = _separable()
        model = LogisticModel(X.shape[1], seed=0)
        model.train_epochs(X, y, epochs=20, lr=0.5)
        assert model.evaluate(X, y)["auc"] > 0.95

    def test_training_reduces_loss(self):
        X, y = _separable()
        model = LogisticModel(X.shape[1], seed=0)
        before = model.evaluate(X, y)["loss"]
        model.train_epochs(X, y, epochs=10, lr=0.5)
        assert model.evaluate(X, y)["loss"] < before

    def test_params_round_trip(self):
        model = LogisticModel(4, seed=1)
        clone = LogisticModel(4, seed=2)
        clone.set_params(model.get_params())
        X = np.random.default_rng(0).normal(0, 1, (10, 4))
        assert np.allclose(model.predict_proba(X), clone.predict_proba(X))

    def test_param_shape_validated(self):
        model = LogisticModel(4)
        with pytest.raises(LearningError):
            model.set_params([np.zeros(5), np.zeros(1)])

    def test_clone_is_independent(self):
        model = LogisticModel(3, seed=0)
        clone = model.clone()
        clone.weights[0] = 99.0
        assert model.weights[0] != 99.0

    def test_training_is_deterministic(self):
        X, y = _separable()
        runs = []
        for __ in range(2):
            model = LogisticModel(X.shape[1], seed=3)
            model.train_epochs(X, y, epochs=3, lr=0.2, seed=7)
            runs.append(model.get_params())
        assert np.allclose(runs[0][0], runs[1][0])

    def test_flops_accumulate(self):
        X, y = _separable(100)
        model = LogisticModel(X.shape[1])
        model.train_epochs(X, y, epochs=1)
        assert model.flops > 0

    def test_empty_data_is_noop(self):
        model = LogisticModel(4)
        assert model.train_epochs(np.zeros((0, 4)), np.zeros(0)) == 0.0


class TestMLPModel:
    def test_learns_nonlinear_boundary(self):
        rng = np.random.default_rng(2)
        X = rng.normal(0, 1, (600, 2))
        y = ((X[:, 0] * X[:, 1]) > 0).astype(float)  # XOR-ish
        model = MLPModel(2, hidden=12, seed=0)
        model.train_epochs(X, y, epochs=150, lr=0.5, seed=0)
        assert model.evaluate(X, y)["auc"] > 0.9

    def test_params_round_trip(self):
        model = MLPModel(4, hidden=8, seed=1)
        clone = MLPModel(4, hidden=8, seed=9)
        clone.set_params(model.get_params())
        X = np.random.default_rng(0).normal(0, 1, (5, 4))
        assert np.allclose(model.predict_proba(X), clone.predict_proba(X))

    def test_param_shape_validated(self):
        model = MLPModel(4, hidden=8)
        with pytest.raises(LearningError):
            model.set_params([np.zeros((4, 9)), np.zeros(8), np.zeros(8), np.zeros(1)])

    def test_reset_head_keeps_features(self):
        model = MLPModel(4, hidden=8, seed=0)
        w1_before = model.w1.copy()
        model.reset_head(seed=5)
        assert np.allclose(model.w1, w1_before)

    def test_head_only_training_freezes_features(self):
        X, y = _separable()
        model = MLPModel(X.shape[1], hidden=8, seed=0)
        w1_before = model.w1.copy()
        model.train_head_only(X, y, epochs=5, lr=0.3)
        assert np.allclose(model.w1, w1_before)

    def test_clone_preserves_architecture(self):
        model = MLPModel(4, hidden=6)
        clone = model.clone()
        assert clone.hidden == 6
        assert np.allclose(clone.w1, model.w1)


class TestAverageParams:
    def test_equal_weights_is_mean(self):
        a = [np.array([1.0, 3.0])]
        b = [np.array([3.0, 5.0])]
        merged = average_params([a, b], [1.0, 1.0])
        assert np.allclose(merged[0], [2.0, 4.0])

    def test_weighted_average(self):
        a = [np.array([0.0])]
        b = [np.array([10.0])]
        merged = average_params([a, b], [3.0, 1.0])
        assert merged[0][0] == pytest.approx(2.5)

    def test_single_set_identity(self):
        a = [np.array([1.0, 2.0]), np.array([3.0])]
        merged = average_params([a], [5.0])
        assert np.allclose(merged[0], a[0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(LearningError):
            average_params([[np.zeros(2)], [np.zeros(3)]], [1.0, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(LearningError):
            average_params([], [])

    def test_zero_weights_rejected(self):
        with pytest.raises(LearningError):
            average_params([[np.zeros(2)]], [0.0])

    def test_params_size_counts_floats(self):
        params = [np.zeros((2, 3)), np.zeros(4)]
        assert params_size_bytes(params) == 10 * 8 + 2 * 64

    @settings(max_examples=20)
    @given(st.integers(min_value=1, max_value=5))
    def test_property_averaging_identical_params_is_identity(self, copies):
        params = [np.array([1.5, -2.5, 0.25])]
        merged = average_params([params] * copies, [1.0] * copies)
        assert np.allclose(merged[0], params[0])
