"""Stats toolkit and feature extraction tests."""


import numpy as np
import pytest

from repro.analytics.features import FEATURE_DIM, FEATURE_NAMES, dataset_for, featurize
from repro.analytics.stats import (
    KaplanMeier,
    chi_square_2x2,
    describe,
    log_rank_test,
    normal_sf,
    two_proportion_test,
    welch_t_test,
)
from repro.common.errors import LearningError, MedchainError


class TestFeatures:
    def test_matrix_shape(self, small_cohort):
        X = featurize(small_cohort)
        assert X.shape == (len(small_cohort), FEATURE_DIM)

    def test_empty_records(self):
        assert featurize([]).shape == (0, FEATURE_DIM)

    def test_standardization_centers_values(self, multi_site_cohorts):
        records = [r for cohort in multi_site_cohorts.values() for r in cohort]
        X = featurize(records)
        assert np.all(np.abs(X.mean(axis=0)) < 3.0)

    def test_feature_names_match_dim(self):
        assert len(FEATURE_NAMES) == FEATURE_DIM

    def test_deterministic(self, small_cohort):
        assert np.array_equal(featurize(small_cohort), featurize(small_cohort))

    def test_labels_extracted(self, small_cohort):
        X, y = dataset_for(small_cohort, "stroke")
        assert set(np.unique(y)) <= {0.0, 1.0}
        assert len(y) == len(X)

    def test_missing_outcome_rejected(self, small_cohort):
        with pytest.raises(LearningError):
            dataset_for(small_cohort, "alzheimers")


class TestDescribe:
    def test_basic_statistics(self):
        stats = describe([1.0, 2.0, 3.0, 4.0])
        assert stats["n"] == 4
        assert stats["mean"] == 2.5
        assert stats["median"] == 2.5
        assert stats["min"] == 1.0
        assert stats["max"] == 4.0

    def test_empty_sample(self):
        assert describe([])["n"] == 0


class TestNormal:
    def test_sf_symmetry(self):
        assert normal_sf(0.0) == pytest.approx(0.5)
        assert normal_sf(1.96) == pytest.approx(0.025, abs=1e-3)


class TestWelch:
    def test_identical_groups_not_significant(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 1, 200)
        b = rng.normal(0, 1, 200)
        assert welch_t_test(a, b).p_value > 0.01

    def test_shifted_groups_significant(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 1, 200)
        b = rng.normal(1.0, 1, 200)
        result = welch_t_test(a, b)
        assert result.p_value < 1e-6
        assert result.significant_05

    def test_too_small_sample_rejected(self):
        with pytest.raises(MedchainError):
            welch_t_test([1.0], [2.0, 3.0])

    def test_zero_variance_degenerate(self):
        assert welch_t_test([1.0, 1.0], [1.0, 1.0]).p_value == 1.0


class TestProportions:
    def test_clear_difference_detected(self):
        result = two_proportion_test(80, 100, 40, 100)
        assert result.p_value < 1e-6

    def test_no_difference(self):
        result = two_proportion_test(50, 100, 50, 100)
        assert result.p_value == pytest.approx(1.0)

    def test_empty_group_rejected(self):
        with pytest.raises(MedchainError):
            two_proportion_test(1, 0, 1, 10)

    def test_chi_square_matches_z_squared(self):
        z = two_proportion_test(30, 100, 20, 100).statistic
        chi = chi_square_2x2([[30, 70], [20, 80]]).statistic
        assert chi == pytest.approx(z * z, rel=1e-6)

    def test_chi_square_shape_enforced(self):
        with pytest.raises(MedchainError):
            chi_square_2x2([[1, 2, 3], [4, 5, 6]])

    def test_chi_square_degenerate_table(self):
        assert chi_square_2x2([[0, 0], [0, 0]]).p_value == 1.0


class TestSurvival:
    def test_km_no_events_flat(self):
        km = KaplanMeier.fit([10, 20, 30], [0, 0, 0])
        assert km.at(25) == 1.0

    def test_km_all_events_reaches_zero(self):
        km = KaplanMeier.fit([1, 2, 3], [1, 1, 1])
        assert km.at(3) == pytest.approx(0.0)

    def test_km_monotone_decreasing(self):
        rng = np.random.default_rng(3)
        durations = rng.integers(1, 100, 50)
        events = rng.integers(0, 2, 50)
        km = KaplanMeier.fit(durations, events)
        assert all(
            earlier >= later
            for earlier, later in zip(km.survival, km.survival[1:])
        )

    def test_km_known_value(self):
        # 4 subjects, event at t=1 (4 at risk) then t=2 (3 at risk)
        km = KaplanMeier.fit([1, 2, 3, 4], [1, 1, 0, 0])
        assert km.at(1) == pytest.approx(0.75)
        assert km.at(2) == pytest.approx(0.75 * (1 - 1 / 3))

    def test_log_rank_same_distribution(self):
        rng = np.random.default_rng(5)
        d1 = rng.exponential(50, 150)
        d2 = rng.exponential(50, 150)
        result = log_rank_test(d1, [1] * 150, d2, [1] * 150)
        assert result.p_value > 0.01

    def test_log_rank_different_hazards(self):
        rng = np.random.default_rng(5)
        d1 = rng.exponential(20, 150)
        d2 = rng.exponential(80, 150)
        result = log_rank_test(d1, [1] * 150, d2, [1] * 150)
        assert result.p_value < 1e-4

    def test_log_rank_no_events(self):
        result = log_rank_test([1, 2], [0, 0], [3, 4], [0, 0])
        assert result.p_value == 1.0
