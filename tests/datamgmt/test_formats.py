"""Legacy EMR format mapper tests (Figure 3's heterogeneous integration)."""

import pytest

from repro.common.errors import DataFormatError
from repro.datamgmt.formats import (
    KNOWN_FORMATS,
    export_record,
    hl7v2_to_canonical,
    legacycsv_to_canonical,
    parse_record,
)

ANALYTIC_FIELDS = ("birth_year", "sex", "zip3", "site", "diagnoses", "medications")


@pytest.mark.parametrize("fmt", KNOWN_FORMATS)
def test_round_trip_preserves_identity_fields(fmt, small_cohort):
    for record in small_cohort[:10]:
        round_tripped = parse_record(export_record(record, fmt), fmt)
        for field in ANALYTIC_FIELDS:
            assert round_tripped[field] == record[field], (fmt, field)


@pytest.mark.parametrize("fmt", KNOWN_FORMATS)
def test_round_trip_preserves_numeric_values(fmt, small_cohort):
    for record in small_cohort[:10]:
        round_tripped = parse_record(export_record(record, fmt), fmt)
        for lab, value in record["labs"].items():
            # hl7v2 stores glucose in mmol/L rounded to 4 decimals, so the
            # round trip is lossy at the 1e-4 relative level (realistic).
            assert round_tripped["labs"][lab] == pytest.approx(value, rel=1e-3)
        for vital, value in record["vitals"].items():
            assert round_tripped["vitals"][vital] == pytest.approx(value, rel=1e-6)


@pytest.mark.parametrize("fmt", KNOWN_FORMATS)
def test_round_trip_preserves_genomics_and_outcomes(fmt, small_cohort):
    for record in small_cohort[:10]:
        round_tripped = parse_record(export_record(record, fmt), fmt)
        assert round_tripped["genomics"] == record["genomics"]
        assert round_tripped["outcomes"] == record["outcomes"]


def test_hl7_glucose_unit_conversion(small_cohort):
    record = small_cohort[0]
    message = export_record(record, "hl7v2")
    glucose_obx = [o for o in message["OBX"] if o["code"] == "GLU^mmol/L"]
    assert len(glucose_obx) == 1
    # mmol/L value is smaller than mg/dL by the conversion factor
    assert glucose_obx[0]["value"] < record["labs"]["glucose"]


def test_csv_numeric_sex_coding(small_cohort):
    record = small_cohort[0]
    row = export_record(record, "legacycsv")
    assert row["sx"] in ("1", "2")
    assert parse_record(row, "legacycsv")["sex"] == record["sex"]


def test_csv_semicolon_lists(small_cohort):
    record = next(r for r in small_cohort if len(r["diagnoses"]) >= 1)
    row = export_record(record, "legacycsv")
    assert ";".join(record["diagnoses"]) == row["dx_list"]


def test_fhir_bundle_structure(small_cohort):
    bundle = export_record(small_cohort[0], "fhirjson")
    assert bundle["resourceType"] == "Bundle"
    types = [entry["resource"]["resourceType"] for entry in bundle["entry"]]
    assert "Patient" in types
    assert "MolecularSequence" in types


def test_unknown_format_rejected(small_cohort):
    with pytest.raises(DataFormatError):
        export_record(small_cohort[0], "dicom")
    with pytest.raises(DataFormatError):
        parse_record({}, "dicom")


def test_malformed_hl7_rejected():
    with pytest.raises(DataFormatError):
        hl7v2_to_canonical({"MSH": {}})


def test_malformed_csv_rejected():
    with pytest.raises(DataFormatError):
        legacycsv_to_canonical({"pt_id": "x"})


def test_parse_validates_schema(small_cohort):
    record = export_record(small_cohort[0], "legacycsv")
    del record["bp_sys"]  # drop a required vital
    with pytest.raises(DataFormatError):
        parse_record(record, "legacycsv")


def test_canonical_passthrough(small_cohort):
    assert parse_record(small_cohort[0], "canonical") is small_cohort[0]
