"""Canonical schema and cohort generator tests."""

import numpy as np

from repro.datamgmt.cohort import (
    CohortGenerator,
    default_disease_models,
    default_site_profiles,
    shared_patients,
)
from repro.datamgmt.schema import (
    CANONICAL_FIELDS,
    VARIANT_PANEL,
    age_in,
    empty_record,
    is_canonical,
    validate_canonical,
)


class TestSchema:
    def test_empty_record_has_all_fields(self):
        record = empty_record()
        for field in CANONICAL_FIELDS:
            assert field in record

    def test_empty_record_fails_validation(self):
        assert validate_canonical(empty_record())  # missing vitals etc.

    def test_generated_record_is_canonical(self, small_cohort):
        assert is_canonical(small_cohort[0])

    def test_bad_sex_flagged(self, small_cohort):
        record = dict(small_cohort[0])
        record["sex"] = "X"
        assert any("sex" in problem for problem in validate_canonical(record))

    def test_bad_birth_year_flagged(self, small_cohort):
        record = dict(small_cohort[0])
        record["birth_year"] = 1700
        assert validate_canonical(record)

    def test_unknown_lab_flagged(self, small_cohort):
        record = {**small_cohort[0], "labs": {**small_cohort[0]["labs"], "mystery": 1.0}}
        assert validate_canonical(record)

    def test_age_computation(self):
        record = {**empty_record(), "birth_year": 1958}
        assert age_in(record, 2018) == 60


class TestCohortGenerator:
    def test_deterministic_for_seed(self):
        profiles = default_site_profiles(1)
        a = CohortGenerator(seed=5).generate_cohort(profiles[0], 10)
        b = CohortGenerator(seed=5).generate_cohort(profiles[0], 10)
        assert a == b

    def test_different_seeds_differ(self):
        profiles = default_site_profiles(1)
        a = CohortGenerator(seed=5).generate_cohort(profiles[0], 10)
        b = CohortGenerator(seed=6).generate_cohort(profiles[0], 10)
        assert a != b

    def test_every_record_valid(self, small_cohort):
        assert all(is_canonical(record) for record in small_cohort)

    def test_patient_ids_unique(self, multi_site_cohorts):
        ids = [
            record["patient_id"]
            for cohort in multi_site_cohorts.values()
            for record in cohort
        ]
        assert len(ids) == len(set(ids))

    def test_variant_panel_complete(self, small_cohort):
        for record in small_cohort:
            assert set(record["genomics"]) == set(VARIANT_PANEL)
            assert all(dose in (0, 1, 2) for dose in record["genomics"].values())

    def test_outcome_prevalence_reasonable(self, multi_site_cohorts):
        records = [r for cohort in multi_site_cohorts.values() for r in cohort]
        stroke = np.mean([r["outcomes"]["stroke"] for r in records])
        assert 0.05 < stroke < 0.6

    def test_risk_factors_raise_stroke_rate(self):
        """The generative signal is learnable: smokers with hypertension
        must have a materially higher stroke rate."""
        generator = CohortGenerator(seed=77)
        profile = default_site_profiles(1)[0]
        records = generator.generate_cohort(profile, 3000)
        high = [
            r["outcomes"]["stroke"]
            for r in records
            if r["lifestyle"]["smoker"] and r["vitals"]["sbp"] > 140
        ]
        low = [
            r["outcomes"]["stroke"]
            for r in records
            if not r["lifestyle"]["smoker"] and r["vitals"]["sbp"] < 125
        ]
        assert np.mean(high) > np.mean(low) + 0.1

    def test_sites_are_non_iid(self):
        generator = CohortGenerator(seed=3)
        profiles = default_site_profiles(4)
        cohorts = generator.generate_multi_site(profiles, 400)
        mean_birth_years = [
            np.mean([r["birth_year"] for r in cohort]) for cohort in cohorts.values()
        ]
        assert max(mean_birth_years) - min(mean_birth_years) > 5

    def test_diagnoses_follow_outcomes(self, small_cohort):
        for record in small_cohort:
            if record["outcomes"]["diabetes"]:
                assert "E11.9" in record["diagnoses"]
            if record["outcomes"]["stroke"]:
                assert "I63.9" in record["diagnoses"]

    def test_disease_models_monotone_in_risk(self):
        models = default_disease_models()
        low = models["stroke"].probability({"age_decades": 4.0, "sbp_per10": 0.0})
        high = models["stroke"].probability({"age_decades": 8.0, "sbp_per10": 4.0})
        assert high > low


class TestSharedPatients:
    def test_same_person_same_identity_fields(self):
        generator = CohortGenerator(seed=9)
        profiles = default_site_profiles(3)
        groups = shared_patients(generator, profiles, 10, sites_per_patient=2)
        for group in groups:
            assert len(group) == 2
            assert len({record["national_id_hash"] for record in group}) == 1
            assert len({record["birth_year"] for record in group}) == 1
            assert len({record["sex"] for record in group}) == 1

    def test_site_local_ids_differ(self):
        generator = CohortGenerator(seed=9)
        profiles = default_site_profiles(3)
        groups = shared_patients(generator, profiles, 10, sites_per_patient=2)
        for group in groups:
            assert group[0]["patient_id"] != group[1]["patient_id"]

    def test_measurements_drift_between_visits(self):
        generator = CohortGenerator(seed=9)
        profiles = default_site_profiles(2)
        groups = shared_patients(generator, profiles, 5, sites_per_patient=2)
        drifted = any(
            group[0]["vitals"]["sbp"] != group[1]["vitals"]["sbp"] for group in groups
        )
        assert drifted
