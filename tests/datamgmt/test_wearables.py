"""Wearable-stream generation and mergeable summaries."""

import numpy as np
import pytest

from repro.common.errors import DataFormatError
from repro.datamgmt.wearables import (
    WearableGenerator,
    WearableSeries,
    merge_wearable_summaries,
    tool_wearable_summary,
)


@pytest.fixture(scope="module")
def streams(small_cohort):
    return WearableGenerator(seed=5).cohort_streams(small_cohort, days=28)


class TestGeneration:
    def test_series_lengths(self, streams):
        for raw in streams:
            series = WearableSeries.from_record(raw)
            assert series.days == 28
            assert len(series.steps) == 28

    def test_deterministic(self, small_cohort):
        a = WearableGenerator(seed=5).cohort_streams(small_cohort[:5])
        b = WearableGenerator(seed=5).cohort_streams(small_cohort[:5])
        assert a == b

    def test_exercise_raises_steps(self, small_cohort):
        generator = WearableGenerator(seed=1)
        active = dict(small_cohort[0])
        active["lifestyle"] = {**active["lifestyle"], "exercise_hours_week": 10.0}
        sedentary = dict(small_cohort[0])
        sedentary["lifestyle"] = {**sedentary["lifestyle"], "exercise_hours_week": 0.0}
        steps_active = np.mean(generator.series_for(active, days=60).steps)
        steps_sedentary = np.mean(generator.series_for(sedentary, days=60).steps)
        assert steps_active > steps_sedentary + 5000

    def test_smoking_raises_resting_hr(self, small_cohort):
        generator = WearableGenerator(seed=1)
        smoker = dict(small_cohort[0])
        smoker["lifestyle"] = {**smoker["lifestyle"], "smoker": 1}
        nonsmoker = dict(small_cohort[0])
        nonsmoker["lifestyle"] = {**nonsmoker["lifestyle"], "smoker": 0}
        hr_smoker = np.mean(generator.series_for(smoker, days=60).resting_hr)
        hr_nonsmoker = np.mean(generator.series_for(nonsmoker, days=60).resting_hr)
        assert hr_smoker > hr_nonsmoker + 1.0

    def test_record_round_trip(self, streams):
        series = WearableSeries.from_record(streams[0])
        assert series.to_record() == streams[0]

    def test_length_mismatch_rejected(self):
        with pytest.raises(DataFormatError):
            WearableSeries(
                patient_id="p", days=3, steps=[1, 2], resting_hr=[60.0] * 3,
                sleep_hours=[7.0] * 3,
            ).validate()


class TestSummaries:
    def test_tool_summary_counts(self, streams):
        summary = tool_wearable_summary(streams, {})
        assert summary["patients"] == len(streams)
        assert summary["steps"]["count"] == 28 * len(streams)
        assert 0.0 <= summary["active_day_fraction"] <= 1.0

    def test_merge_equals_pooled(self, streams):
        half = len(streams) // 2
        partials = [
            tool_wearable_summary(streams[:half], {}),
            tool_wearable_summary(streams[half:], {}),
        ]
        merged = merge_wearable_summaries(partials)
        pooled = tool_wearable_summary(streams, {})
        assert merged["patients"] == pooled["patients"]
        assert merged["steps"]["mean"] == pytest.approx(pooled["steps"]["mean"])
        assert merged["resting_hr"]["variance"] == pytest.approx(
            pooled["resting_hr"]["variance"]
        )
        assert merged["active_day_fraction"] == pytest.approx(
            pooled["active_day_fraction"]
        )

    def test_empty_cohort(self):
        summary = tool_wearable_summary([], {})
        assert summary["patients"] == 0
        assert summary["active_day_fraction"] == 0.0
