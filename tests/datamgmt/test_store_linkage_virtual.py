"""Hospital store, record linkage, and virtual cohort tests."""

import numpy as np
import pytest

from repro.common.errors import DataFormatError, OracleError
from repro.datamgmt.cohort import CohortGenerator, default_site_profiles, shared_patients
from repro.datamgmt.linkage import (
    LinkageWeights,
    RecordLinker,
    evaluate_linkage,
    pair_score,
)
from repro.datamgmt.store import HospitalDataStore
from repro.datamgmt.virtual import DatasetRef, NumericSummary, VirtualCohort, get_field


class TestHospitalDataStore:
    def test_add_and_read_canonical(self, small_cohort):
        store = HospitalDataStore("h0")
        store.add_canonical("ds", small_cohort)
        assert store.has_dataset("ds")
        assert store.get_records("ds") == list(small_cohort)

    def test_legacy_format_round_trip_on_access(self, small_cohort):
        store = HospitalDataStore("h0")
        store.add_canonical("ds", small_cohort, fmt="hl7v2")
        records = store.get_records("ds")
        assert records[0]["birth_year"] == small_cohort[0]["birth_year"]
        assert store.dataset_format("ds") == "hl7v2"

    def test_duplicate_dataset_rejected(self, small_cohort):
        store = HospitalDataStore("h0")
        store.add_canonical("ds", small_cohort)
        with pytest.raises(OracleError):
            store.add_canonical("ds", small_cohort)

    def test_unknown_format_rejected(self, small_cohort):
        store = HospitalDataStore("h0")
        with pytest.raises(DataFormatError):
            store.add_canonical("ds", small_cohort, fmt="nope")

    def test_missing_dataset_raises(self):
        with pytest.raises(OracleError):
            HospitalDataStore("h0").get_records("ghost")

    def test_anchor_detects_tampering(self, small_cohort):
        store = HospitalDataStore("h0")
        store.add_canonical("ds", small_cohort, fmt="legacycsv")
        anchor = store.anchor("ds")
        store.tamper("ds", 3, "bp_sys", 999.0)
        from repro.offchain.anchoring import verify_dataset

        assert not verify_dataset(store.get_records("ds"), anchor.root_hex)

    def test_record_count(self, small_cohort):
        store = HospitalDataStore("h0")
        store.add_canonical("ds", small_cohort)
        assert store.record_count("ds") == len(small_cohort)


class TestLinkage:
    def _records(self, mask_fraction, count=40, seed=0):
        generator = CohortGenerator(seed=13)
        profiles = default_site_profiles(3)
        groups = shared_patients(generator, profiles, count, sites_per_patient=2)
        rng = np.random.default_rng(seed)
        records = []
        for person, group in enumerate(groups):
            for record in group:
                record["_person"] = person
                if rng.random() < mask_fraction:
                    record["national_id_hash"] = ""
                records.append(record)
        return records

    def test_deterministic_linkage_perfect_with_ids(self):
        records = self._records(mask_fraction=0.0)
        result = RecordLinker().link(records)
        metrics = evaluate_linkage(result)
        assert metrics["precision"] == 1.0
        assert metrics["recall"] == 1.0

    def test_probabilistic_linkage_with_masked_ids(self):
        records = self._records(mask_fraction=1.0)
        result = RecordLinker().link(records)
        metrics = evaluate_linkage(result)
        assert metrics["f1"] > 0.8  # genomics panel makes matching strong
        assert result.probabilistic_links > 0

    def test_partial_masking_mixes_mechanisms(self):
        records = self._records(mask_fraction=0.5)
        result = RecordLinker().link(records)
        assert result.deterministic_links > 0
        metrics = evaluate_linkage(result)
        assert metrics["f1"] > 0.8

    def test_pair_score_higher_for_same_person(self):
        records = self._records(mask_fraction=0.0, count=10)
        same = [r for r in records if r["_person"] == 0]
        different = [records[0], next(r for r in records if r["_person"] == 5)]
        assert pair_score(same[0], same[1]) > pair_score(different[0], different[1])

    def test_threshold_controls_aggressiveness(self):
        records = self._records(mask_fraction=1.0)
        strict = RecordLinker(LinkageWeights(threshold=50.0)).link(records)
        loose = RecordLinker(LinkageWeights(threshold=3.0)).link(records)
        assert strict.probabilistic_links <= loose.probabilistic_links

    def test_unrelated_records_not_linked(self, multi_site_cohorts):
        records = [
            {**record, "_person": index}
            for index, record in enumerate(
                [r for cohort in multi_site_cohorts.values() for r in cohort][:100]
            )
        ]
        for record in records:
            record["national_id_hash"] = ""
        result = RecordLinker().link(records)
        # Probabilistic matching has a small inherent false-positive rate
        # (two strangers can agree on every quasi-identifier); what matters
        # is that it stays rare relative to the candidate-pair count.
        assert result.deterministic_links == 0
        assert result.probabilistic_links <= 0.05 * len(records)


class TestNumericSummary:
    def test_merge_equals_pooled(self):
        values_a = [1.0, 2.0, 3.0]
        values_b = [10.0, 20.0]
        merged = NumericSummary.from_values(values_a).merge(
            NumericSummary.from_values(values_b)
        )
        pooled = NumericSummary.from_values(values_a + values_b)
        assert merged.count == pooled.count
        assert merged.mean == pytest.approx(pooled.mean)
        assert merged.variance == pytest.approx(pooled.variance)
        assert merged.minimum == pooled.minimum
        assert merged.maximum == pooled.maximum

    def test_dict_round_trip(self):
        summary = NumericSummary.from_values([2.0, 4.0, 6.0])
        restored = NumericSummary.from_dict_parts(summary.to_dict())
        assert restored.mean == pytest.approx(summary.mean)
        assert restored.count == summary.count

    def test_empty_summary(self):
        summary = NumericSummary()
        assert summary.mean == 0.0
        assert summary.variance == 0.0


class TestVirtualCohort:
    def _cohort(self, multi_site_cohorts):
        stores = {}
        cohort = VirtualCohort(lambda site: stores[site])
        for site, records in multi_site_cohorts.items():
            store = HospitalDataStore(site)
            store.add_canonical(f"ds-{site}", records)
            stores[site] = store
            cohort.add_ref(DatasetRef(site, f"ds-{site}", len(records)))
        return cohort

    def test_total_records(self, multi_site_cohorts):
        cohort = self._cohort(multi_site_cohorts)
        expected = sum(len(records) for records in multi_site_cohorts.values())
        assert cohort.total_records == expected

    def test_distributed_mean_equals_pooled(self, multi_site_cohorts):
        cohort = self._cohort(multi_site_cohorts)
        pooled = [
            record["vitals"]["sbp"]
            for records in multi_site_cohorts.values()
            for record in records
        ]
        summary = cohort.numeric_summary("vitals.sbp")
        assert summary.mean == pytest.approx(np.mean(pooled))
        assert summary.count == len(pooled)

    def test_count_where_matches_pooled(self, multi_site_cohorts):
        cohort = self._cohort(multi_site_cohorts)
        pooled = sum(
            1
            for records in multi_site_cohorts.values()
            for record in records
            if record["sex"] == "F"
        )
        assert cohort.count_where(lambda record: record["sex"] == "F") == pooled

    def test_prevalence(self, multi_site_cohorts):
        cohort = self._cohort(multi_site_cohorts)
        prevalence = cohort.prevalence("stroke")
        assert 0.0 <= prevalence <= 1.0

    def test_get_field_nested(self, small_cohort):
        assert get_field(small_cohort[0], "vitals.sbp") == small_cohort[0]["vitals"]["sbp"]

    def test_get_field_missing(self, small_cohort):
        from repro.common.errors import QueryError

        with pytest.raises(QueryError):
            get_field(small_cohort[0], "vitals.missing")
