"""Run one hospital site as a standalone RPC server process.

    PYTHONPATH=src python -m repro.rpc.site_server --site hospital-0 \
        --sites 3 --records 120 --seed 2026 --port 0

The process boots the deterministic demo network (see
:mod:`repro.rpc.demo`), serves the named site's method surface on the
given address, and prints one machine-readable line to stdout once bound::

    LISTENING 127.0.0.1 43571

It exits cleanly — draining in-flight requests — when its stdin reaches
EOF (the supervisor closed the pipe) or on SIGTERM/SIGINT.  The E15
benchmark and the CI smoke job supervise fleets of these processes.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys

from repro.rpc.demo import DEFAULT_SEED, build_demo_network, build_site_server


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--site", required=True, help="site name, e.g. hospital-0")
    parser.add_argument("--sites", type=int, default=3, help="sites in the demo network")
    parser.add_argument("--records", type=int, default=120, help="records per site")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 = ephemeral")
    parser.add_argument("--max-inflight", type=int, default=64)
    parser.add_argument("--default-timeout-s", type=float, default=30.0)
    return parser.parse_args(argv)


async def _watch_stdin(stop: asyncio.Event) -> None:
    """Set ``stop`` when stdin reaches EOF (supervisor closed the pipe)."""
    loop = asyncio.get_running_loop()
    try:
        at_eof = await loop.run_in_executor(None, _stdin_at_eof)
    except Exception:
        at_eof = True
    if at_eof:
        stop.set()


def _stdin_at_eof() -> bool:
    try:
        while sys.stdin.buffer.read(4096):
            pass
    except Exception:
        pass
    return True


async def serve(args: argparse.Namespace) -> int:
    platform, _researcher = build_demo_network(
        site_count=args.sites, records_per_site=args.records, seed=args.seed
    )
    if args.site not in platform.sites:
        print(f"unknown site {args.site!r}; have {platform.site_names}", file=sys.stderr)
        return 2
    server = build_site_server(
        platform,
        args.site,
        max_inflight=args.max_inflight,
        default_timeout_s=args.default_timeout_s,
    )
    host, port = await server.start(args.host, args.port)
    print(f"LISTENING {host} {port}", flush=True)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        with contextlib.suppress(NotImplementedError, ValueError):
            loop.add_signal_handler(signum, stop.set)
    watcher = asyncio.create_task(_watch_stdin(stop))
    await stop.wait()
    watcher.cancel()
    with contextlib.suppress(asyncio.CancelledError):
        await watcher
    await server.close()
    return 0


def main(argv=None) -> int:
    return asyncio.run(serve(parse_args(argv)))


if __name__ == "__main__":
    sys.exit(main())
