"""Length-prefixed framing over a byte stream.

TCP delivers an undifferentiated byte stream; the RPC layer needs message
boundaries.  Every frame is a 4-byte big-endian unsigned payload length
followed by the payload bytes.  The decoder is sans-io (feed bytes, pop
complete frames) so the same state machine serves the asyncio transport,
the in-process transport, and the property tests, which replay arbitrary
split/partial/concatenated reads against it.

Oversized frames are rejected *from the length prefix alone*, before any
payload buffering, so a misbehaving peer cannot make the server allocate
unbounded memory.
"""

from __future__ import annotations

import asyncio
import struct
from typing import List, Optional

from repro.rpc.errors import FrameTooLargeError

HEADER = struct.Struct(">I")
HEADER_BYTES = HEADER.size

#: Default ceiling on one frame's payload (8 MiB) — generous for model
#: parameters, small enough that a bad length prefix cannot balloon memory.
DEFAULT_MAX_FRAME_BYTES = 8 * 1024 * 1024


def encode_frame(payload: bytes, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> bytes:
    """Wrap ``payload`` in a length prefix, enforcing the size ceiling."""
    if len(payload) > max_frame_bytes:
        raise FrameTooLargeError(
            f"frame of {len(payload)} bytes exceeds limit {max_frame_bytes}",
            data={"size": len(payload), "limit": max_frame_bytes},
        )
    return HEADER.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental frame reassembly from arbitrary byte chunks."""

    def __init__(self, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES):
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        self._expected: Optional[int] = None

    def feed(self, data: bytes) -> List[bytes]:
        """Absorb ``data``; return every frame completed by it, in order."""
        self._buffer.extend(data)
        frames: List[bytes] = []
        while True:
            if self._expected is None:
                if len(self._buffer) < HEADER_BYTES:
                    break
                (length,) = HEADER.unpack_from(self._buffer)
                if length > self.max_frame_bytes:
                    raise FrameTooLargeError(
                        f"peer announced a {length}-byte frame "
                        f"(limit {self.max_frame_bytes})",
                        data={"size": length, "limit": self.max_frame_bytes},
                    )
                del self._buffer[:HEADER_BYTES]
                self._expected = length
            if len(self._buffer) < self._expected:
                break
            frames.append(bytes(self._buffer[: self._expected]))
            del self._buffer[: self._expected]
            self._expected = None
        return frames

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame (0 when clean)."""
        return len(self._buffer) + (0 if self._expected is None else 0)

    def at_boundary(self) -> bool:
        """True when no partial frame is buffered (clean EOF point)."""
        return not self._buffer and self._expected is None


async def read_frame(
    reader: asyncio.StreamReader,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> Optional[bytes]:
    """Read one frame; ``None`` on clean EOF before any header byte."""
    try:
        header = await reader.readexactly(HEADER_BYTES)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ConnectionError("connection closed mid-header") from exc
    (length,) = HEADER.unpack(header)
    if length > max_frame_bytes:
        raise FrameTooLargeError(
            f"peer announced a {length}-byte frame (limit {max_frame_bytes})",
            data={"size": length, "limit": max_frame_bytes},
        )
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ConnectionError("connection closed mid-frame") from exc


async def write_frame(
    writer: asyncio.StreamWriter,
    payload: bytes,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> None:
    """Write one frame and drain (flow control against slow readers)."""
    writer.write(encode_frame(payload, max_frame_bytes))
    await writer.drain()
