"""The global query gateway: dispatch decomposed sub-queries to site servers.

Figure 5's Global Query Service decomposes a research query into per-site
work; the :class:`Gateway` is the transport boundary that carries each
sub-query to the site that must run it.  Two interchangeable transports:

- :class:`InprocGateway` — dispatches through each site's
  :class:`~repro.rpc.server.RpcServer` *dispatch path* in-process (codec
  and method layer included, sockets excluded).  Default: keeps every
  existing test and benchmark hermetic and fast.
- :class:`TcpGateway` — dispatches over pooled, pipelined framed-TCP
  connections to real site server processes (see
  :mod:`repro.rpc.site_server`).

Both share one execution algorithm (catalog -> decompose -> concurrent
``site.query`` fan-out -> compose), and both serialize through the same
canonical codec, so a query's composed result — and its content hash — is
transport-invariant.  The E15 benchmark and CI gate on exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import QueryError
from repro.common.hashing import hash_value_hex
from repro.common.serialize import canonical_bytes
from repro.datamgmt.virtual import DatasetRef
from repro.obs.tracer import trace_span
from repro.query.compose import SiteTask, compose, decompose
from repro.query.vector import QueryVector
from repro.rpc import codec
from repro.rpc.client import (
    ConnectionPool,
    RetryPolicy,
    _trace_meta,
    adopt_remote_spans,
)
from repro.rpc.errors import RpcError
from repro.rpc.methods import vector_to_wire
from repro.rpc.runtime import EventLoopThread
from repro.rpc.server import RpcServer


@dataclass
class GatewayAnswer:
    """Composed result of one gateway-dispatched query."""

    query_id: str
    result: Dict[str, Any]
    result_hash: str
    site_partials: Dict[str, Dict[str, Any]]
    failed_sites: Dict[str, str] = field(default_factory=dict)
    latency_s: float = 0.0
    bytes_on_wire: int = 0
    transport: str = "inproc"


class Gateway:
    """Shared fan-out/compose algorithm over an abstract per-site call."""

    transport = "abstract"

    def __init__(self) -> None:
        self._runner: Optional[EventLoopThread] = None

    # -- transport hooks ---------------------------------------------------
    async def acall(
        self,
        site: str,
        method: str,
        params: Optional[Dict[str, Any]] = None,
        *,
        idempotent: bool = True,
        timeout_s: Optional[float] = None,
    ) -> Any:
        raise NotImplementedError

    def site_names(self) -> List[str]:
        raise NotImplementedError

    async def aclose(self) -> None:
        pass

    # -- query execution ---------------------------------------------------
    async def acatalog(self) -> List[DatasetRef]:
        """Every dataset served by any site, via ``site.catalog`` fan-out."""
        refs: List[DatasetRef] = []
        for site in self.site_names():
            listing = await self.acall(site, "site.catalog")
            for entry in listing["datasets"]:
                refs.append(
                    DatasetRef(
                        site=entry["site"],
                        dataset_id=entry["dataset_id"],
                        record_count=entry["record_count"],
                        schema=entry["schema"],
                    )
                )
        return refs

    async def aexecute(
        self, vector: QueryVector, timeout_s: Optional[float] = None
    ) -> GatewayAnswer:
        """Decompose, dispatch concurrently, compose, hash."""
        import asyncio

        vector.validate()
        started = perf_counter()
        with trace_span(
            "gateway.execute", transport=self.transport, intent=vector.intent
        ) as span:
            catalog = await self.acatalog()
            tasks = decompose(vector, catalog)
            span.set_attr("tasks", len(tasks))
            outcomes = await asyncio.gather(
                *(self._run_site_task(vector, task, timeout_s) for task in tasks)
            )
            partials: Dict[str, Dict[str, Any]] = {}
            failures: Dict[str, str] = {}
            bytes_on_wire = 0
            for task, (partial, error, size) in zip(tasks, outcomes):
                bytes_on_wire += size
                if error is not None:
                    failures[task.site] = error
                else:
                    partials[task.site] = partial
            if not partials:
                raise QueryError(
                    f"query {vector.query_id} produced no results over "
                    f"{self.transport}; failures: {failures}"
                )
            # Site order is deterministic (decompose sorts), so composition
            # and its hash are reproducible across transports and runs.
            composed = compose(
                vector, [partials[site] for site in sorted(partials)]
            )
            span.set_attr("sites", len(partials))
            span.set_attr("bytes", bytes_on_wire)
        return GatewayAnswer(
            query_id=vector.query_id,
            result=composed,
            result_hash=hash_value_hex(composed),
            site_partials=partials,
            failed_sites=failures,
            latency_s=perf_counter() - started,
            bytes_on_wire=bytes_on_wire,
            transport=self.transport,
        )

    async def _run_site_task(
        self,
        vector: QueryVector,
        task: SiteTask,
        timeout_s: Optional[float],
    ) -> Tuple[Optional[Dict[str, Any]], Optional[str], int]:
        params = {
            "vector": vector_to_wire(vector),
            "dataset_ids": list(task.dataset_ids),
            "task_id": task.task_id,
        }
        down = len(canonical_bytes(params))
        try:
            outcome = await self.acall(
                task.site, "site.query", params, idempotent=True, timeout_s=timeout_s
            )
        except RpcError as exc:
            return None, f"[{exc.code}] {exc.message}", down
        partial = outcome["result"]
        return partial, None, down + len(canonical_bytes(partial))

    # -- sync facade -------------------------------------------------------
    def _loop_runner(self) -> EventLoopThread:
        if self._runner is None:
            self._runner = EventLoopThread(name=f"repro-rpc-{self.transport}")
        return self._runner

    def call(
        self,
        site: str,
        method: str,
        params: Optional[Dict[str, Any]] = None,
        *,
        idempotent: bool = True,
        timeout_s: Optional[float] = None,
    ) -> Any:
        return self._loop_runner().run(
            self.acall(site, method, params, idempotent=idempotent, timeout_s=timeout_s)
        )

    def execute(
        self, vector: QueryVector, timeout_s: Optional[float] = None
    ) -> GatewayAnswer:
        return self._loop_runner().run(self.aexecute(vector, timeout_s))

    def catalog(self) -> List[DatasetRef]:
        return self._loop_runner().run(self.acatalog())

    def close(self) -> None:
        if self._runner is not None:
            self._runner.run(self.aclose())
            self._runner.close()
            self._runner = None


class InprocGateway(Gateway):
    """Dispatch through in-process site servers (no sockets, same codec)."""

    transport = "inproc"

    def __init__(self, servers: Dict[str, RpcServer]):
        super().__init__()
        self.servers = dict(servers)

    def site_names(self) -> List[str]:
        return sorted(self.servers)

    async def acall(
        self,
        site: str,
        method: str,
        params: Optional[Dict[str, Any]] = None,
        *,
        idempotent: bool = True,
        timeout_s: Optional[float] = None,
    ) -> Any:
        server = self.servers.get(site)
        if server is None:
            raise QueryError(f"gateway knows no site {site!r}")
        request = codec.Request(
            method=method, params=params, request_id=1, meta=_trace_meta()
        )
        with trace_span("rpc.call", method=method, transport=self.transport) as span:
            raw = await server.dispatch_raw(
                codec.encode_payload(request.to_wire())
            )
            assert raw is not None  # request had an id, so a response exists
            response = codec.parse_response(codec.decode_payload(raw))
            if response.meta:
                span.set_attr("remote_spans", adopt_remote_spans(response.meta))
            if response.error is not None:
                raise response.error
            return response.result

    async def aclose(self) -> None:
        for server in self.servers.values():
            await server.close()


class TcpGateway(Gateway):
    """Dispatch over pooled framed-TCP connections to site server processes."""

    transport = "tcp"

    def __init__(
        self,
        addresses: Dict[str, Tuple[str, int]],
        *,
        max_connections_per_site: int = 4,
        connect_timeout_s: float = 5.0,
        request_timeout_s: float = 30.0,
        retry: Optional[RetryPolicy] = None,
    ):
        super().__init__()
        self.addresses = dict(addresses)
        self.pools: Dict[str, ConnectionPool] = {
            site: ConnectionPool(
                host,
                port,
                max_connections=max_connections_per_site,
                connect_timeout_s=connect_timeout_s,
                request_timeout_s=request_timeout_s,
                retry=retry,
            )
            for site, (host, port) in self.addresses.items()
        }

    def site_names(self) -> List[str]:
        return sorted(self.pools)

    async def acall(
        self,
        site: str,
        method: str,
        params: Optional[Dict[str, Any]] = None,
        *,
        idempotent: bool = True,
        timeout_s: Optional[float] = None,
    ) -> Any:
        pool = self.pools.get(site)
        if pool is None:
            raise QueryError(f"gateway knows no site {site!r}")
        return await pool.call(
            method, params, timeout_s=timeout_s, idempotent=idempotent
        )

    async def aclose(self) -> None:
        for pool in self.pools.values():
            await pool.close()
