"""RPC client: pipelined connections, a pool, timeouts, and retries.

One :class:`RpcClient` multiplexes many concurrent calls over a single
framed TCP connection — requests carry monotonically increasing ids, a
background reader task resolves each response future as its frame arrives,
so callers pipeline without waiting for each other (the wire analogue of
the paper's parallel dispatch).  :class:`ConnectionPool` keeps a small set
of connections per server, reconnects lazily, and retries *idempotent*
calls with exponential backoff after connection failures or overload
rejections — never non-idempotent ones, which could double-apply.

Trace propagation: when tracing is enabled, every call opens an
``rpc.call`` span, ships its span id in the request ``meta``, and adopts
the server-side spans returned in the response ``meta`` under that span —
so one trace tree covers both sides of the wire.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.tracer import Span, current_span_id, current_tracer, trace_span
from repro.rpc import codec
from repro.rpc.codec import NO_ID, Request, Response
from repro.rpc.errors import (
    OverloadedError,
    RpcError,
    RpcTimeoutError,
    ShuttingDownError,
)
from repro.rpc.framing import DEFAULT_MAX_FRAME_BYTES, read_frame, write_frame


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff for idempotent calls."""

    attempts: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 1.0

    def delay(self, attempt: int) -> float:
        return min(self.max_delay_s, self.base_delay_s * self.multiplier**attempt)


def _trace_meta() -> Optional[Dict[str, Any]]:
    """Request meta asking the server to collect and return its spans."""
    if current_tracer() is None:
        return None
    meta: Dict[str, Any] = {"trace": {"collect": True}}
    parent = current_span_id()
    if parent is not None:
        meta["trace"]["parent"] = parent
    return meta


def adopt_remote_spans(meta: Dict[str, Any]) -> int:
    """Re-parent server-side spans from a response meta under the caller.

    Returns the number of spans adopted (0 when tracing is off or the
    response carried none).
    """
    tracer = current_tracer()
    span_dicts = (meta or {}).get("spans")
    if tracer is None or not span_dicts:
        return 0
    spans = [Span.from_dict(item) for item in span_dicts]
    tracer.adopt(spans, parent_id=current_span_id())
    return len(spans)


class RpcClient:
    """One pipelined connection to an RPC server."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ):
        self._reader = reader
        self._writer = writer
        self.max_frame_bytes = max_frame_bytes
        self._ids = itertools.count(1)
        self._pending: Dict[Any, asyncio.Future] = {}
        self._write_lock = asyncio.Lock()
        self._closed = False
        self._read_task = asyncio.get_running_loop().create_task(self._read_loop())

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        connect_timeout_s: float = 5.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> "RpcClient":
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), connect_timeout_s
        )
        return cls(reader, writer, max_frame_bytes=max_frame_bytes)

    @property
    def closed(self) -> bool:
        return self._closed

    # -- calls -------------------------------------------------------------
    async def call(
        self,
        method: str,
        params: Optional[Dict[str, Any]] = None,
        *,
        timeout_s: Optional[float] = 30.0,
    ) -> Any:
        """One request/response; raises the typed :class:`RpcError` on error."""
        with trace_span("rpc.call", method=method, transport="tcp") as span:
            response = await self._roundtrip(method, params, timeout_s)
            if response.meta:
                adopted = adopt_remote_spans(response.meta)
                span.set_attr("remote_spans", adopted)
            if response.error is not None:
                raise response.error
            return response.result

    async def _roundtrip(
        self,
        method: str,
        params: Optional[Dict[str, Any]],
        timeout_s: Optional[float],
    ) -> Response:
        request = Request(
            method=method,
            params=params,
            request_id=next(self._ids),
            meta=_trace_meta(),
        )
        future = self._register(request.request_id)
        await self._send(request.to_wire())
        try:
            return await asyncio.wait_for(future, timeout_s)
        except asyncio.TimeoutError:
            self._pending.pop(request.request_id, None)
            raise RpcTimeoutError(
                f"no response to {method!r} within {timeout_s}s",
                data={"timeout_s": timeout_s},
            ) from None

    async def call_batch(
        self,
        calls: Sequence[Tuple[str, Optional[Dict[str, Any]]]],
        *,
        timeout_s: Optional[float] = 30.0,
    ) -> List[Any]:
        """One wire frame carrying many requests; results in call order.

        Failed entries come back as :class:`RpcError` instances (not
        raised), so one bad call cannot discard its siblings' results.
        """
        if not calls:
            return []
        meta = _trace_meta()
        requests = [
            Request(method=method, params=params, request_id=next(self._ids), meta=meta)
            for method, params in calls
        ]
        futures = [self._register(request.request_id) for request in requests]
        await self._send([request.to_wire() for request in requests])
        try:
            responses = await asyncio.wait_for(
                asyncio.gather(*futures), timeout_s
            )
        except asyncio.TimeoutError:
            for request in requests:
                self._pending.pop(request.request_id, None)
            raise RpcTimeoutError(
                f"no batch response within {timeout_s}s",
                data={"timeout_s": timeout_s},
            ) from None
        results: List[Any] = []
        for response in responses:
            if response.meta:
                adopt_remote_spans(response.meta)
            results.append(response.error if response.error is not None else response.result)
        return results

    async def notify(self, method: str, params: Optional[Dict[str, Any]] = None) -> None:
        """Fire-and-forget notification (no id, no response)."""
        await self._send(Request(method=method, params=params, request_id=NO_ID).to_wire())

    # -- plumbing ----------------------------------------------------------
    def _register(self, request_id: Any) -> asyncio.Future:
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        return future

    async def _send(self, payload: Any) -> None:
        if self._closed:
            raise ConnectionError("client is closed")
        data = codec.encode_payload(payload)
        async with self._write_lock:
            await write_frame(self._writer, data, self.max_frame_bytes)

    async def _read_loop(self) -> None:
        error: Optional[BaseException] = None
        try:
            while True:
                frame = await read_frame(self._reader, self.max_frame_bytes)
                if frame is None:
                    break
                payload = codec.decode_payload(frame)
                items = payload if isinstance(payload, list) else [payload]
                for item in items:
                    response = codec.parse_response(item)
                    future = self._pending.pop(response.request_id, None)
                    if future is not None and not future.done():
                        future.set_result(response)
        except asyncio.CancelledError:
            error = ConnectionError("client closed")
        except BaseException as exc:
            error = exc
        finally:
            self._closed = True
            failure = error or ConnectionError("connection closed by server")
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(failure)
            self._pending.clear()

    async def close(self) -> None:
        """Close the socket and stop the reader task (idempotent)."""
        self._closed = True
        self._read_task.cancel()
        try:
            await self._read_task
        except (asyncio.CancelledError, Exception):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except Exception:
            pass


class ConnectionPool:
    """A bounded pool of pipelined connections to one server address."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        max_connections: int = 4,
        connect_timeout_s: float = 5.0,
        request_timeout_s: float = 30.0,
        retry: Optional[RetryPolicy] = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ):
        self.host = host
        self.port = port
        self.max_connections = max_connections
        self.connect_timeout_s = connect_timeout_s
        self.request_timeout_s = request_timeout_s
        self.retry = retry or RetryPolicy()
        self.max_frame_bytes = max_frame_bytes
        self._clients: List[RpcClient] = []
        self._next = 0
        self._lock: Optional[asyncio.Lock] = None

    def _get_lock(self) -> asyncio.Lock:
        # Created lazily so the pool can be built outside a running loop.
        if self._lock is None:
            self._lock = asyncio.Lock()
        return self._lock

    async def _acquire(self) -> RpcClient:
        async with self._get_lock():
            self._clients = [c for c in self._clients if not c.closed]
            if len(self._clients) < self.max_connections:
                client = await RpcClient.connect(
                    self.host,
                    self.port,
                    connect_timeout_s=self.connect_timeout_s,
                    max_frame_bytes=self.max_frame_bytes,
                )
                self._clients.append(client)
                return client
            # Round-robin over healthy connections (all are pipelined).
            self._next = (self._next + 1) % len(self._clients)
            return self._clients[self._next]

    async def call(
        self,
        method: str,
        params: Optional[Dict[str, Any]] = None,
        *,
        timeout_s: Optional[float] = None,
        idempotent: bool = False,
    ) -> Any:
        """Call with automatic retry (idempotent methods only).

        Retries cover connection failures, connect/request timeouts, and
        explicit overload/shutdown rejections — the cases where backing off
        and trying a fresh connection can succeed.  Application errors
        (method not found, invalid params, domain failures) never retry.
        """
        timeout = self.request_timeout_s if timeout_s is None else timeout_s
        attempts = self.retry.attempts if idempotent else 1
        last_error: Optional[BaseException] = None
        for attempt in range(attempts):
            if attempt:
                await asyncio.sleep(self.retry.delay(attempt - 1))
            try:
                client = await self._acquire()
                return await client.call(method, params, timeout_s=timeout)
            except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
                last_error = exc
            except (OverloadedError, ShuttingDownError, RpcTimeoutError) as exc:
                last_error = exc
            except RpcError:
                raise
        assert last_error is not None
        raise last_error

    async def call_batch(
        self,
        calls: Sequence[Tuple[str, Optional[Dict[str, Any]]]],
        *,
        timeout_s: Optional[float] = None,
    ) -> List[Any]:
        client = await self._acquire()
        timeout = self.request_timeout_s if timeout_s is None else timeout_s
        return await client.call_batch(calls, timeout_s=timeout)

    async def close(self) -> None:
        """Close every pooled connection (idle or not)."""
        clients, self._clients = self._clients, []
        for client in clients:
            await client.close()

    async def close_idle(self) -> None:
        """Drop connections with no in-flight requests."""
        async with self._get_lock():
            keep: List[RpcClient] = []
            for client in self._clients:
                if client.closed or not client._pending:
                    await client.close()
                else:
                    keep.append(client)
            self._clients = keep
