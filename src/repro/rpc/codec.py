"""JSON-RPC 2.0 codec over canonical serialization.

Requests, notifications (no ``id``), batches, responses, and typed error
objects — plus one protocol extension: an optional ``meta`` member on both
requests and responses.  ``meta.trace`` carries the caller's span id across
the wire and ``meta.spans`` ships the server-side spans back, which is how
:mod:`repro.obs` trace trees stay connected across processes.  ``meta`` is
ignored by any strict JSON-RPC peer, and absent entirely when tracing is
off, so the extension costs nothing on the hot path.

Payload bytes always come from :func:`repro.common.serialize.canonical_bytes`
so both transports (TCP and in-process) produce byte-identical envelopes for
the same logical call — the property the tcp/inproc equivalence gate rests on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.common.serialize import canonical_bytes
from repro.rpc.errors import (
    InvalidRequestError,
    ParseError,
    RpcError,
    error_from_wire,
)

JSONRPC_VERSION = "2.0"

Params = Union[Dict[str, Any], List[Any], None]
RequestId = Union[str, int, None]

#: Sentinel distinguishing "id absent" (notification) from "id: null".
NO_ID = object()


@dataclass
class Request:
    """One parsed request or notification."""

    method: str
    params: Params = None
    request_id: Any = NO_ID
    meta: Optional[Dict[str, Any]] = None

    @property
    def is_notification(self) -> bool:
        return self.request_id is NO_ID

    def to_wire(self) -> Dict[str, Any]:
        obj: Dict[str, Any] = {"jsonrpc": JSONRPC_VERSION, "method": self.method}
        if self.params is not None:
            obj["params"] = self.params
        if self.request_id is not NO_ID:
            obj["id"] = self.request_id
        if self.meta:
            obj["meta"] = self.meta
        return obj


@dataclass
class Response:
    """One parsed response: exactly one of ``result`` / ``error`` is set."""

    request_id: RequestId
    result: Any = None
    error: Optional[RpcError] = None
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_wire(self) -> Dict[str, Any]:
        obj: Dict[str, Any] = {"jsonrpc": JSONRPC_VERSION, "id": self.request_id}
        if self.error is not None:
            obj["error"] = self.error.to_wire()
        else:
            obj["result"] = self.result
        if self.meta:
            obj["meta"] = self.meta
        return obj


def encode_payload(obj: Any) -> bytes:
    """Canonical UTF-8 JSON bytes for one envelope (or batch list)."""
    return canonical_bytes(obj)


def decode_payload(data: bytes) -> Any:
    """Parse raw frame bytes; malformed JSON becomes a typed parse error."""
    try:
        return json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ParseError(f"malformed JSON payload: {exc}") from exc


def _validate_id(value: Any) -> Any:
    if value is None or isinstance(value, (str, int)):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    raise InvalidRequestError("id must be a string, integer, or null")


def parse_request(obj: Any) -> Request:
    """Validate one request object (spec §4); raises typed errors."""
    if not isinstance(obj, dict):
        raise InvalidRequestError("request must be an object")
    if obj.get("jsonrpc") != JSONRPC_VERSION:
        raise InvalidRequestError("jsonrpc member must be '2.0'")
    method = obj.get("method")
    if not isinstance(method, str) or not method:
        raise InvalidRequestError("method must be a non-empty string")
    params = obj.get("params")
    if params is not None and not isinstance(params, (dict, list)):
        raise InvalidRequestError("params must be an object or array")
    meta = obj.get("meta")
    if meta is not None and not isinstance(meta, dict):
        raise InvalidRequestError("meta must be an object")
    request_id = _validate_id(obj["id"]) if "id" in obj else NO_ID
    return Request(method=method, params=params, request_id=request_id, meta=meta)


def parse_response(obj: Any) -> Response:
    """Validate one response object; the error member becomes a typed error."""
    if not isinstance(obj, dict):
        raise InvalidRequestError("response must be an object")
    if obj.get("jsonrpc") != JSONRPC_VERSION:
        raise InvalidRequestError("response jsonrpc member must be '2.0'")
    if "id" not in obj:
        raise InvalidRequestError("response is missing id")
    meta = obj.get("meta") or {}
    if "error" in obj:
        error_obj = obj["error"]
        if not isinstance(error_obj, dict) or "code" not in error_obj:
            raise InvalidRequestError("error member must carry a code")
        return Response(
            request_id=obj["id"], error=error_from_wire(error_obj), meta=meta
        )
    if "result" not in obj:
        raise InvalidRequestError("response carries neither result nor error")
    return Response(request_id=obj["id"], result=obj["result"], meta=meta)


def parse_batch(payload: Any) -> Tuple[List[Any], bool]:
    """Split a decoded payload into request objects plus a was-batch flag.

    An empty batch is a spec violation; the caller answers it with a single
    INVALID_REQUEST response.
    """
    if isinstance(payload, list):
        if not payload:
            raise InvalidRequestError("batch must not be empty")
        return list(payload), True
    return [payload], False


def error_response(request_id: RequestId, error: RpcError) -> Response:
    return Response(request_id=request_id, error=error)
