"""Deterministic demo network builders for RPC serving.

The TCP story needs *separate processes* to agree on the world: the
gateway process and each site server process independently boot the same
platform from the same seed (key generation, cohort synthesis, and chain
boot are all seed-deterministic), so a site server holds exactly the data
the gateway's catalog promises — with no shared memory and nothing copied
between processes.  The same builders back the in-process transport, which
is what makes the E15 tcp-vs-inproc hash equivalence check meaningful.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.common.signatures import KeyPair
from repro.core.platform import MedicalBlockchainNetwork, PlatformConfig
from repro.datamgmt.cohort import CohortGenerator, default_site_profiles
from repro.rpc.gateway import InprocGateway
from repro.rpc.methods import SiteService, build_site_registry
from repro.rpc.server import RpcServer

DEFAULT_SEED = 2026


def build_demo_network(
    site_count: int = 3,
    records_per_site: int = 120,
    seed: int = DEFAULT_SEED,
) -> Tuple[MedicalBlockchainNetwork, KeyPair]:
    """Boot a platform with registered datasets and a granted researcher.

    Every byte of state is a pure function of the arguments, so any two
    processes calling this with the same arguments hold identical sites.
    """
    generator = CohortGenerator(seed=seed)
    cohorts = generator.generate_multi_site(
        default_site_profiles(site_count), records_per_site
    )
    platform = MedicalBlockchainNetwork(
        PlatformConfig(
            site_count=site_count, consensus="poa", include_fda=False, seed=seed
        )
    )
    for site, records in sorted(cohorts.items()):
        platform.register_dataset(site, f"emr-{site}", records)
    researcher = KeyPair.generate(f"rpc-demo-researcher-{seed}")
    for site in platform.site_names:
        platform.grant_access(site, f"emr-{site}", researcher.address, "research")
    return platform, researcher


def build_site_server(
    platform: MedicalBlockchainNetwork,
    site_name: str,
    *,
    max_inflight: int = 64,
    default_timeout_s: float = 30.0,
    task_timeout_s: Optional[float] = None,
) -> RpcServer:
    """An :class:`RpcServer` exposing one platform site's method surface."""
    service = SiteService.from_site(platform.sites[site_name])
    registry = build_site_registry(service, task_timeout_s=task_timeout_s)
    return RpcServer(
        registry,
        name=site_name,
        max_inflight=max_inflight,
        default_timeout_s=default_timeout_s,
        metrics=platform.metrics,
    )


def build_inproc_gateway(
    platform: MedicalBlockchainNetwork,
    *,
    max_inflight: int = 64,
) -> InprocGateway:
    """An in-process gateway over every site of a booted platform."""
    servers: Dict[str, RpcServer] = {
        site: build_site_server(platform, site, max_inflight=max_inflight)
        for site in platform.site_names
    }
    return InprocGateway(servers)
