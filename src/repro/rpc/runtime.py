"""A background asyncio event loop usable from synchronous code.

The platform's orchestration layer (`GlobalQueryService`, the benchmarks,
the examples) is synchronous, while the RPC transport is asyncio.
:class:`EventLoopThread` bridges the two: one daemon thread runs a private
event loop; ``run()`` submits a coroutine and blocks for its result.  The
gateway owns one of these so sync callers never touch asyncio directly —
and code already inside a running loop can still use the async API natively.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import Future
from typing import Any, Coroutine, Optional


class EventLoopThread:
    """A dedicated event loop on a daemon thread."""

    def __init__(self, name: str = "repro-rpc-loop"):
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_forever, name=name, daemon=True
        )
        self._started = threading.Event()
        self._thread.start()
        self._started.wait()

    def _run_forever(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.call_soon(self._started.set)
        self._loop.run_forever()

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        return self._loop

    def submit(self, coro: Coroutine[Any, Any, Any]) -> Future:
        """Schedule a coroutine; returns a concurrent future."""
        if not self._loop.is_running():
            raise RuntimeError("event loop thread is stopped")
        return asyncio.run_coroutine_threadsafe(coro, self._loop)

    def run(self, coro: Coroutine[Any, Any, Any], timeout_s: Optional[float] = None) -> Any:
        """Run a coroutine to completion from sync code."""
        return self.submit(coro).result(timeout_s)

    def close(self, timeout_s: float = 5.0) -> None:
        """Stop the loop and join the thread (idempotent)."""
        if self._loop.is_closed():
            return
        if self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout_s)
        if not self._loop.is_running():
            self._loop.close()
