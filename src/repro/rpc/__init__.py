"""repro.rpc — wire-level JSON-RPC serving for sites, oracle, and gateway.

The subsystem that turns the in-process platform into a deployable service
topology: length-prefixed framed TCP transport, a JSON-RPC 2.0 codec on
canonical serialization, an asyncio server with bounded concurrency and
explicit backpressure, a pipelined client with pooling and idempotent
retries, and a query gateway whose ``inproc`` and ``tcp`` transports
produce byte-identical composed results.
"""

from repro.rpc.client import ConnectionPool, RetryPolicy, RpcClient, adopt_remote_spans
from repro.rpc.codec import NO_ID, Request, Response
from repro.rpc.errors import (
    FrameTooLargeError,
    InternalRpcError,
    InvalidParamsError,
    InvalidRequestError,
    MethodNotFoundError,
    OverloadedError,
    ParseError,
    RpcError,
    RpcTimeoutError,
    ServerRpcError,
    ShuttingDownError,
    error_from_wire,
    to_rpc_error,
)
from repro.rpc.framing import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameDecoder,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.rpc.gateway import Gateway, GatewayAnswer, InprocGateway, TcpGateway
from repro.rpc.methods import SiteService, build_site_registry
from repro.rpc.runtime import EventLoopThread
from repro.rpc.server import MethodRegistry, MethodSpec, RpcServer

__all__ = [
    "ConnectionPool",
    "RetryPolicy",
    "RpcClient",
    "adopt_remote_spans",
    "NO_ID",
    "Request",
    "Response",
    "FrameTooLargeError",
    "InternalRpcError",
    "InvalidParamsError",
    "InvalidRequestError",
    "MethodNotFoundError",
    "OverloadedError",
    "ParseError",
    "RpcError",
    "RpcTimeoutError",
    "ServerRpcError",
    "ShuttingDownError",
    "error_from_wire",
    "to_rpc_error",
    "DEFAULT_MAX_FRAME_BYTES",
    "FrameDecoder",
    "encode_frame",
    "read_frame",
    "write_frame",
    "Gateway",
    "GatewayAnswer",
    "InprocGateway",
    "TcpGateway",
    "SiteService",
    "build_site_registry",
    "EventLoopThread",
    "MethodRegistry",
    "MethodSpec",
    "RpcServer",
]
