"""Typed JSON-RPC 2.0 error objects and the domain-error mapping.

The wire protocol needs errors that (a) carry a stable integer code so
clients can branch without string matching, (b) serialize to the JSON-RPC
``{"code", "message", "data"}`` error object, and (c) reconstruct into the
same typed exception on the client side.  Standard spec codes live in
``-32700..-32600``; this platform's server codes live in the reserved
``-32000..-32099`` band and are stable across releases (append, never
renumber).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Type

from repro.common.errors import (
    AccessDeniedError,
    ChainError,
    DataAvailabilityError,
    MedchainError,
    OracleError,
    QueryError,
    ValidationError,
)

# -- JSON-RPC 2.0 spec codes -------------------------------------------------
PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
INTERNAL_ERROR = -32603

# -- platform server codes (-32000..-32099, stable) --------------------------
SERVER_ERROR = -32000
OVERLOADED = -32001        # backpressure: in-flight limit hit, request rejected
TIMEOUT = -32002           # per-method deadline expired server-side
SHUTTING_DOWN = -32003     # server draining; retry against another replica
FRAME_TOO_LARGE = -32004   # request frame exceeded the transport limit
ORACLE_ERROR = -32010
CHAIN_ERROR = -32011
QUERY_ERROR = -32012
ACCESS_DENIED = -32013
INVALID_TX = -32014
TX_UNDERPRICED = -32015   # fee below the mempool's admission floor
RATE_LIMITED = -32016     # sender exceeded its mempool admission budget
STALE_NONCE = -32017      # tx nonce already consumed by committed state
DA_UNAVAILABLE = -32018   # chunk/blob not held or failed availability checks


class RpcError(MedchainError):
    """Base wire error: an integer code plus an optional structured payload."""

    code: int = SERVER_ERROR
    default_message: str = "server error"

    def __init__(self, message: str = "", data: Optional[Dict[str, Any]] = None):
        super().__init__(message or self.default_message)
        self.message = message or self.default_message
        self.data = data

    def to_wire(self) -> Dict[str, Any]:
        """The JSON-RPC error object for a response."""
        obj: Dict[str, Any] = {"code": int(self.code), "message": self.message}
        if self.data is not None:
            obj["data"] = self.data
        return obj

    def __repr__(self) -> str:
        return f"{type(self).__name__}(code={self.code}, message={self.message!r})"


class ParseError(RpcError):
    code = PARSE_ERROR
    default_message = "parse error"


class InvalidRequestError(RpcError):
    code = INVALID_REQUEST
    default_message = "invalid request"


class MethodNotFoundError(RpcError):
    code = METHOD_NOT_FOUND
    default_message = "method not found"


class InvalidParamsError(RpcError):
    code = INVALID_PARAMS
    default_message = "invalid params"


class InternalRpcError(RpcError):
    code = INTERNAL_ERROR
    default_message = "internal error"


class ServerRpcError(RpcError):
    code = SERVER_ERROR
    default_message = "server error"


class OverloadedError(RpcError):
    """Explicit backpressure: the server refused to queue the request."""

    code = OVERLOADED
    default_message = "server overloaded; retry with backoff"


class RpcTimeoutError(RpcError):
    code = TIMEOUT
    default_message = "request timed out"


class ShuttingDownError(RpcError):
    code = SHUTTING_DOWN
    default_message = "server shutting down"


class FrameTooLargeError(RpcError):
    code = FRAME_TOO_LARGE
    default_message = "frame exceeds transport limit"


class RemoteOracleError(RpcError):
    code = ORACLE_ERROR
    default_message = "oracle bridge failure"


class RemoteChainError(RpcError):
    code = CHAIN_ERROR
    default_message = "chain lookup failure"


class RemoteQueryError(RpcError):
    code = QUERY_ERROR
    default_message = "query failure"


class RemoteAccessDenied(RpcError):
    code = ACCESS_DENIED
    default_message = "access denied"


class InvalidTxError(RpcError):
    code = INVALID_TX
    default_message = "invalid transaction"


class TxUnderpricedError(RpcError):
    """Fee below the mempool's current admission floor.

    ``data["fee_floor"]`` (when present) is the minimum effective fee per
    gas a resubmission must bid to be considered right now.
    """

    code = TX_UNDERPRICED
    default_message = "transaction underpriced for current fee floor"


class RateLimitedError(RpcError):
    code = RATE_LIMITED
    default_message = "sender rate limited; retry with backoff"


class StaleNonceError(RpcError):
    code = STALE_NONCE
    default_message = "transaction nonce already consumed"


class DaUnavailableError(RpcError):
    code = DA_UNAVAILABLE
    default_message = "chunk or blob unavailable at this site"


_CODE_TO_CLASS: Dict[int, Type[RpcError]] = {
    cls.code: cls
    for cls in (
        ParseError,
        InvalidRequestError,
        MethodNotFoundError,
        InvalidParamsError,
        InternalRpcError,
        ServerRpcError,
        OverloadedError,
        RpcTimeoutError,
        ShuttingDownError,
        FrameTooLargeError,
        RemoteOracleError,
        RemoteChainError,
        RemoteQueryError,
        RemoteAccessDenied,
        InvalidTxError,
        TxUnderpricedError,
        RateLimitedError,
        StaleNonceError,
        DaUnavailableError,
    )
}


def error_from_wire(obj: Dict[str, Any]) -> RpcError:
    """Reconstruct the typed exception from a JSON-RPC error object."""
    code = int(obj.get("code", SERVER_ERROR))
    cls = _CODE_TO_CLASS.get(code, ServerRpcError)
    error = cls(str(obj.get("message", "")), data=obj.get("data"))
    error.code = code
    return error


def to_rpc_error(exc: BaseException) -> RpcError:
    """Map any handler exception to a typed wire error.

    Domain errors keep their meaning across the wire; anything unexpected
    degrades to ``INTERNAL_ERROR`` carrying only the exception class name
    (no tracebacks leave the process).
    """
    if isinstance(exc, RpcError):
        return exc
    from repro.offchain.oracle import OracleEndpointError

    if isinstance(exc, OracleEndpointError):
        return RemoteOracleError(
            str(exc), data={"endpoint": exc.endpoint, "kind": exc.kind}
        )
    if isinstance(exc, OracleError):
        return RemoteOracleError(str(exc))
    if isinstance(exc, AccessDeniedError):
        return RemoteAccessDenied(str(exc))
    if isinstance(exc, QueryError):
        return RemoteQueryError(str(exc))
    if isinstance(exc, ValidationError):
        return InvalidTxError(str(exc))
    if isinstance(exc, DataAvailabilityError):
        return DaUnavailableError(str(exc))
    if isinstance(exc, ChainError):
        return RemoteChainError(str(exc))
    if isinstance(exc, (KeyError, TypeError, ValueError)):
        return InvalidParamsError(str(exc) or type(exc).__name__)
    if isinstance(exc, MedchainError):
        return ServerRpcError(str(exc))
    return InternalRpcError(
        "unhandled server exception", data={"type": type(exc).__name__}
    )
