"""Asyncio JSON-RPC server with bounded concurrency and graceful drain.

One :class:`RpcServer` serves a :class:`MethodRegistry` over the framed TCP
transport.  Three serving disciplines distinguish it from a toy dispatcher:

- **Explicit backpressure, never unbounded queueing.**  At most
  ``max_inflight`` requests execute at once; a request arriving beyond that
  is *rejected immediately* with the ``OVERLOADED`` (-32001) error rather
  than parked on an invisible queue.  Callers see load and back off; memory
  stays bounded under any traffic.
- **Per-method timeouts.**  Every method has a deadline (its own or the
  server default); an expired handler answers ``TIMEOUT`` (-32002) so one
  stuck analytic cannot pin a connection forever.
- **Graceful, leak-free shutdown.**  ``close()`` stops accepting, lets
  in-flight requests drain up to ``drain_timeout_s``, cancels stragglers,
  and closes every connection — tests assert no lingering tasks or sockets.

Sync handlers run via ``asyncio.to_thread`` so a CPU-heavy tool run does
not stall the event loop; contextvars (ambient metrics, tracer overrides)
propagate into the worker thread.  When the request envelope carries trace
metadata, the handler executes inside an isolated span collector and the
response ships those spans back for client-side re-parenting.
"""

from __future__ import annotations

import asyncio
import inspect
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.obs.tracer import collect_spans, trace_span
from repro.rpc import codec
from repro.rpc.codec import Request, Response
from repro.rpc.errors import (
    InvalidParamsError,
    MethodNotFoundError,
    OverloadedError,
    ParseError,
    RpcError,
    RpcTimeoutError,
    ShuttingDownError,
    to_rpc_error,
)
from repro.rpc.framing import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameTooLargeError,
    read_frame,
    write_frame,
)
from repro.sim.metrics import MetricsRegistry

Handler = Callable[..., Any]


@dataclass
class MethodSpec:
    """One registered method and its serving policy."""

    name: str
    handler: Handler
    timeout_s: Optional[float] = None
    #: Safe to retry on a fresh connection after an ambiguous failure.
    idempotent: bool = False


class MethodRegistry:
    """Name -> handler registry; handlers take one params dict."""

    def __init__(self) -> None:
        self._methods: Dict[str, MethodSpec] = {}

    def register(
        self,
        name: str,
        handler: Handler,
        *,
        timeout_s: Optional[float] = None,
        idempotent: bool = False,
    ) -> None:
        if not name:
            raise ValueError("method name must be non-empty")
        if name in self._methods:
            raise ValueError(f"method {name!r} already registered")
        self._methods[name] = MethodSpec(
            name=name, handler=handler, timeout_s=timeout_s, idempotent=idempotent
        )

    def get(self, name: str) -> MethodSpec:
        spec = self._methods.get(name)
        if spec is None:
            raise MethodNotFoundError(f"unknown method {name!r}")
        return spec

    def names(self) -> List[str]:
        return sorted(self._methods)


class RpcServer:
    """Serves a method registry over framed JSON-RPC."""

    def __init__(
        self,
        registry: MethodRegistry,
        *,
        name: str = "rpc",
        max_inflight: int = 64,
        default_timeout_s: float = 30.0,
        drain_timeout_s: float = 5.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.registry = registry
        self.name = name
        self.max_inflight = max_inflight
        self.default_timeout_s = default_timeout_s
        self.drain_timeout_s = drain_timeout_s
        self.max_frame_bytes = max_frame_bytes
        self.metrics = metrics or MetricsRegistry()
        self._server: Optional[asyncio.base_events.Server] = None
        self._inflight = 0
        self._closing = False
        self._conn_tasks: Set[asyncio.Task] = set()
        self._writers: Set[asyncio.StreamWriter] = set()
        self._idle = asyncio.Event()
        self._idle.set()

    # -- lifecycle ---------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Bind and accept; returns the bound (host, port)."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(self._on_connection, host, port)
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def close(self) -> None:
        """Graceful shutdown: stop accepting, drain, then hard-close."""
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Let in-flight requests finish inside the drain budget.
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=self.drain_timeout_s)
        except asyncio.TimeoutError:
            pass
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        for writer in list(self._writers):
            writer.close()
        for writer in list(self._writers):
            try:
                await writer.wait_closed()
            except Exception:
                pass
        self._writers.clear()
        self._server = None

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def connection_count(self) -> int:
        return len(self._writers)

    # -- connection handling ----------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        self._writers.add(writer)
        write_lock = asyncio.Lock()
        request_tasks: Set[asyncio.Task] = set()
        try:
            while not self._closing:
                try:
                    frame = await read_frame(reader, self.max_frame_bytes)
                except FrameTooLargeError as exc:
                    await self._send(writer, write_lock, [codec.error_response(None, exc)])
                    break
                except (ConnectionError, OSError):
                    break
                if frame is None:
                    break
                # Pipelining: each inbound frame dispatches concurrently so
                # a slow method does not head-of-line-block the connection.
                request_task = asyncio.create_task(
                    self._serve_frame(frame, writer, write_lock)
                )
                request_tasks.add(request_task)
                request_task.add_done_callback(request_tasks.discard)
        except asyncio.CancelledError:
            pass
        finally:
            if request_tasks:
                await asyncio.gather(*request_tasks, return_exceptions=True)
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, Exception):
                pass  # tearing down regardless; nothing left to cancel

    async def _serve_frame(
        self,
        frame: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        responses = await self.dispatch_frame(frame)
        if responses:
            await self._send(writer, write_lock, responses)

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        responses: List[Response],
    ) -> None:
        payload: Any
        if len(responses) == 1 and not getattr(responses[0], "_from_batch", False):
            payload = responses[0].to_wire()
        else:
            payload = [response.to_wire() for response in responses]
        data = codec.encode_payload(payload)
        try:
            async with write_lock:
                await write_frame(writer, data, self.max_frame_bytes)
        except (ConnectionError, OSError):
            pass

    # -- dispatch (shared by TCP and in-process transports) ----------------
    async def dispatch_raw(self, data: bytes) -> Optional[bytes]:
        """Decode one frame payload, dispatch, encode the response payload.

        This is the entire server minus the socket: the in-process transport
        calls it directly, so both transports share one code path and one
        serialization behaviour.  Returns ``None`` when every request in the
        frame was a notification.
        """
        responses = await self.dispatch_frame(data)
        if not responses:
            return None
        if len(responses) == 1 and not getattr(responses[0], "_from_batch", False):
            return codec.encode_payload(responses[0].to_wire())
        return codec.encode_payload([response.to_wire() for response in responses])

    async def dispatch_frame(self, data: bytes) -> List[Response]:
        try:
            payload = codec.decode_payload(data)
        except ParseError as exc:
            return [codec.error_response(None, exc)]
        try:
            requests, was_batch = codec.parse_batch(payload)
        except RpcError as exc:
            return [codec.error_response(None, exc)]
        results = await asyncio.gather(
            *(self._dispatch_object(obj) for obj in requests)
        )
        responses = [response for response in results if response is not None]
        if was_batch:
            for response in responses:
                response._from_batch = True  # type: ignore[attr-defined]
        return responses

    async def _dispatch_object(self, obj: Any) -> Optional[Response]:
        try:
            request = codec.parse_request(obj)
        except RpcError as exc:
            request_id = obj.get("id") if isinstance(obj, dict) else None
            return codec.error_response(request_id, exc)
        response = await self._dispatch_request(request)
        if request.is_notification:
            return None
        return response

    async def _dispatch_request(self, request: Request) -> Response:
        request_id = None if request.is_notification else request.request_id
        if self._closing:
            self._count_error(request.method, "shutting_down")
            return codec.error_response(request_id, ShuttingDownError())
        if self._inflight >= self.max_inflight:
            # Backpressure: reject now, queue never.
            self._count_error(request.method, "overloaded")
            return codec.error_response(
                request_id,
                OverloadedError(data={"inflight": self._inflight,
                                      "limit": self.max_inflight}),
            )
        self._inflight += 1
        self._idle.clear()
        started = perf_counter()
        try:
            return await self._run_handler(request, request_id)
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()
            elapsed = perf_counter() - started
            self.metrics.add(f"rpc_calls[{request.method}]", 1, scope=self.name)
            self.metrics.add(
                f"rpc_latency_s[{request.method}]", elapsed, scope=self.name
            )

    async def _run_handler(self, request: Request, request_id: Any) -> Response:
        try:
            spec = self.registry.get(request.method)
        except MethodNotFoundError as exc:
            self._count_error(request.method, "method_not_found")
            return codec.error_response(request_id, exc)
        params = request.params
        if params is None:
            params = {}
        if not isinstance(params, dict):
            self._count_error(request.method, "invalid_params")
            return codec.error_response(
                request_id,
                InvalidParamsError("this server takes named params (object)"),
            )
        trace_meta = (request.meta or {}).get("trace")
        timeout_s = spec.timeout_s or self.default_timeout_s
        try:
            if trace_meta:
                with collect_spans() as collector:
                    # The serve span is the root the client re-parents under;
                    # any spans the handler opens nest inside it.
                    with trace_span(
                        "rpc.serve", method=request.method, server=self.name
                    ):
                        result = await asyncio.wait_for(
                            self._invoke(spec.handler, params), timeout_s
                        )
                meta = {"spans": collector.export()} if collector.spans else {}
                return Response(request_id=request_id, result=result, meta=meta)
            result = await asyncio.wait_for(
                self._invoke(spec.handler, params), timeout_s
            )
            return Response(request_id=request_id, result=result)
        except asyncio.TimeoutError:
            self._count_error(request.method, "timeout")
            return codec.error_response(
                request_id,
                RpcTimeoutError(
                    f"method {request.method!r} exceeded {timeout_s}s",
                    data={"timeout_s": timeout_s},
                ),
            )
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            error = to_rpc_error(exc)
            self._count_error(request.method, f"code_{error.code}")
            return codec.error_response(request_id, error)

    async def _invoke(self, handler: Handler, params: Dict[str, Any]) -> Any:
        if inspect.iscoroutinefunction(handler):
            return await handler(**params)
        result = await asyncio.to_thread(handler, **params)
        if inspect.isawaitable(result):
            return await result  # handler returned a coroutine from a thread
        return result

    def _count_error(self, method: str, kind: str) -> None:
        self.metrics.add(f"rpc_errors[{method}:{kind}]", 1, scope=self.name)
