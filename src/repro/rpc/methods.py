"""Method surface a site server exposes (Figures 3-5 over a real wire).

``build_site_registry`` binds one hospital site's components — local data
store, analytics tool runner, blockchain node, data oracle — to the JSON-RPC
method names the gateway and external clients call:

- ``health`` / ``rpc.methods`` / ``rpc.echo`` — liveness, discovery, and a
  payload-size probe for load benchmarks;
- ``site.catalog`` — the datasets this site hosts (feeds decomposition);
- ``site.run_task`` — run a registered analytics tool over local records
  ("move compute to the data" as a served endpoint);
- ``site.query`` — execute one decomposed sub-query and return the partial
  result plus its content hash;
- ``oracle.fetch`` — the paper's data-oracle bridge, served;
- ``chain.get_block`` / ``node.submit_tx`` — read blocks and submit signed
  transactions to this site's blockchain node;
- ``da.put_chunk`` / ``da.get_chunk`` / ``da.sample`` — erasure-coded share
  custody and availability audits over this site's chunk store
  (:mod:`repro.da`).

Handlers return plain jsonable dicts and raise domain errors; the server
maps those to typed JSON-RPC error objects.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.common.errors import ChainError
from repro.common.serialize import to_jsonable
from repro.query.vector import QueryVector
from repro.rpc.errors import (
    InvalidParamsError,
    OverloadedError,
    RateLimitedError,
    StaleNonceError,
    TxUnderpricedError,
)
from repro.rpc.server import MethodRegistry

_VECTOR_FIELDS = {field.name for field in dataclasses.fields(QueryVector)}


def vector_from_wire(vector: Dict[str, Any]) -> QueryVector:
    """Rebuild a validated :class:`QueryVector` from its wire dict."""
    if not isinstance(vector, dict):
        raise InvalidParamsError("vector must be an object")
    unknown = set(vector) - _VECTOR_FIELDS
    if unknown:
        raise InvalidParamsError(f"unknown vector fields: {sorted(unknown)}")
    if "intent" not in vector:
        raise InvalidParamsError("vector requires an intent")
    built = QueryVector(**vector)
    built.validate()
    return built


def vector_to_wire(vector: QueryVector) -> Dict[str, Any]:
    return to_jsonable(vector)


def transaction_from_wire(tx: Dict[str, Any]):
    """Rebuild a signed :class:`Transaction` from its wire dict."""
    from repro.chain.transactions import Transaction

    if not isinstance(tx, dict):
        raise InvalidParamsError("tx must be an object")

    def _bytes(value: Any) -> bytes:
        if isinstance(value, str):
            return bytes.fromhex(value[2:] if value.startswith("0x") else value)
        if isinstance(value, (bytes, bytearray)):
            return bytes(value)
        raise InvalidParamsError("byte fields must be hex strings")

    try:
        return Transaction(
            sender=tx["sender"],
            nonce=int(tx["nonce"]),
            kind=tx["kind"],
            payload=dict(tx["payload"]),
            gas_limit=int(tx.get("gas_limit", 2_000_000)),
            max_fee_per_gas=int(tx.get("max_fee_per_gas", 0)),
            priority_fee_per_gas=int(tx.get("priority_fee_per_gas", 0)),
            timestamp_ms=int(tx.get("timestamp_ms", 0)),
            public_key=_bytes(tx.get("public_key", b"")),
            signature=_bytes(tx.get("signature", b"")),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise InvalidParamsError(f"malformed transaction: {exc}") from exc


def admission_to_wire(admission: Any, tx_id: str) -> Dict[str, Any]:
    """Map a mempool :class:`AdmissionResult` onto the RPC error band.

    Accepted/replaced/duplicate outcomes return a result object (duplicate
    is a no-op success: the tx is already pooled, resubmitting changed
    nothing).  Every refusal raises the matching typed error so clients
    branch on stable integer codes, with machine-usable hints — the fee
    floor for underpriced, the outbid price for a full pool — in ``data``.
    """
    from repro.chain.mempool import (
        DUPLICATE,
        POOL_FULL,
        RATE_LIMITED,
        STALE_NONCE,
        UNDERPRICED,
    )

    if admission:
        wire: Dict[str, Any] = {
            "accepted": True,
            "status": admission.code,
            "tx_id": tx_id,
        }
        if admission.replaced_tx_id:
            wire["replaced_tx_id"] = admission.replaced_tx_id
        return wire
    if admission.code == DUPLICATE:
        return {"accepted": False, "status": DUPLICATE, "tx_id": tx_id}
    data: Dict[str, Any] = {"tx_id": tx_id}
    if admission.reason:
        data["reason"] = admission.reason
    if admission.fee_floor is not None:
        data["fee_floor"] = admission.fee_floor
    if admission.code == UNDERPRICED:
        raise TxUnderpricedError(admission.reason, data=data)
    if admission.code == POOL_FULL:
        raise OverloadedError(
            admission.reason or "mempool full; raise fee or retry", data=data
        )
    if admission.code == RATE_LIMITED:
        raise RateLimitedError(admission.reason, data=data)
    if admission.code == STALE_NONCE:
        raise StaleNonceError(admission.reason, data=data)
    raise OverloadedError(admission.reason or admission.code, data=data)


def register_p2p_methods(registry: MethodRegistry, dispatch: Any) -> None:
    """Expose the p2p method surface on an RPC server.

    ``dispatch(method, params)`` is the host's bridge onto its node's
    single-threaded kernel executor (``KernelPump.call`` into
    ``P2PService.dispatch``).  Reads are idempotent; ``p2p.announce`` is
    kept non-retryable — the gossip engine owns redundancy, and an RPC
    retry would inflate the duplicate-announcement counters it measures.
    """
    from repro.p2p.service import P2P_METHODS

    def make_handler(method: str):
        def handler(**params: Any) -> Any:
            return dispatch(method, params)

        return handler

    for method in P2P_METHODS:
        registry.register(
            method,
            make_handler(method),
            idempotent=(method != "p2p.announce"),
            timeout_s=15.0,
        )


@dataclass
class SiteService:
    """The components of one site that the method surface binds to.

    Duck-typed: ``store`` needs ``dataset_ids``/``get_records`` (and
    optionally ``record_count``), ``runner`` a :class:`TaskRunner`,
    ``node``/``oracle`` may be ``None`` for data-only deployments.
    """

    name: str
    store: Any
    runner: Any
    node: Any = None
    oracle: Any = None
    chunks: Any = None  # repro.da.store.ChunkStore for the da.* surface
    schema: str = "patient-canonical-v1"

    @classmethod
    def from_site(cls, site: Any) -> "SiteService":
        """Adapter from :class:`repro.core.platform.Site`."""
        return cls(
            name=site.name,
            store=site.store,
            runner=site.control.runner,
            node=site.node,
            oracle=site.monitor.oracle,
            chunks=getattr(site, "chunks", None),
        )

    # -- local helpers -----------------------------------------------------
    def _records_for(self, dataset_ids: Optional[Sequence[str]]) -> List[Dict[str, Any]]:
        ids = list(dataset_ids) if dataset_ids else self.store.dataset_ids()
        records: List[Dict[str, Any]] = []
        for dataset_id in sorted(ids):
            records.extend(self.store.get_records(dataset_id))
        return records

    def _record_count(self, dataset_id: str) -> int:
        counter = getattr(self.store, "record_count", None)
        if counter is not None:
            return int(counter(dataset_id))
        return len(self.store.get_records(dataset_id))


def build_site_registry(
    service: SiteService,
    *,
    task_timeout_s: Optional[float] = None,
) -> MethodRegistry:
    """The full method registry for one site server."""
    registry = MethodRegistry()

    def health() -> Dict[str, Any]:
        info: Dict[str, Any] = {
            "status": "ok",
            "site": service.name,
            "datasets": service.store.dataset_ids(),
        }
        if service.node is not None:
            info["height"] = service.node.head.height
        return info

    def rpc_methods() -> Dict[str, Any]:
        return {"methods": registry.names()}

    def rpc_echo(payload: Any = None) -> Dict[str, Any]:
        return {"payload": payload}

    def site_catalog() -> Dict[str, Any]:
        return {
            "site": service.name,
            "datasets": [
                {
                    "site": service.name,
                    "dataset_id": dataset_id,
                    "record_count": service._record_count(dataset_id),
                    "schema": service.schema,
                }
                for dataset_id in service.store.dataset_ids()
            ],
        }

    def site_run_task(
        task_id: str,
        tool_id: str,
        dataset_ids: Optional[List[str]] = None,
        params: Optional[Dict[str, Any]] = None,
        purpose: str = "research",
    ) -> Dict[str, Any]:
        records = service._records_for(dataset_ids)
        result = service.runner.run(task_id, tool_id, records, dict(params or {}))
        return {
            "task_id": result.task_id,
            "tool_id": result.tool_id,
            "site": result.site,
            "result": result.result,
            "result_hash": result.result_hash,
            "records_used": result.records_used,
            "flops": result.flops,
            "purpose": purpose,
        }

    def site_query(
        vector: Dict[str, Any],
        dataset_ids: Optional[List[str]] = None,
        task_id: str = "",
    ) -> Dict[str, Any]:
        built = vector_from_wire(vector)
        outcome = site_run_task(
            task_id=task_id or f"{built.query_id}-{service.name}",
            tool_id=built.tool_id(),
            dataset_ids=dataset_ids,
            params=built.tool_params(),
            purpose=built.purpose,
        )
        outcome["query_id"] = built.query_id
        return outcome

    def oracle_fetch(
        endpoint: str, request: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        if service.oracle is None:
            raise InvalidParamsError(f"site {service.name!r} serves no oracle")
        return service.oracle.call(endpoint, request)

    def chain_get_block(
        block_id: Optional[str] = None, height: Optional[int] = None
    ) -> Dict[str, Any]:
        if service.node is None:
            raise InvalidParamsError(f"site {service.name!r} serves no chain node")
        if (block_id is None) == (height is None):
            raise InvalidParamsError("pass exactly one of block_id / height")
        if block_id is not None:
            block = service.node.store.get(block_id)  # raises ChainError
        else:
            block = service.node.store.block_at_height(int(height))
            if block is None:
                raise ChainError(f"no canonical block at height {height}")
        wire = to_jsonable(block)
        wire["block_id"] = block.block_id
        return wire

    def chain_get_headers(
        locator: Optional[List[str]] = None, limit: int = 256, **_extra: Any
    ) -> Dict[str, Any]:
        if service.node is None:
            raise InvalidParamsError(f"site {service.name!r} serves no chain node")
        from repro.p2p.wire import header_to_wire

        blocks = service.node.store.headers_after(
            [b for b in (locator or []) if isinstance(b, str)], limit=limit
        )
        return {"headers": [header_to_wire(b.header, b.block_id) for b in blocks]}

    def chain_get_blocks(
        ids: Optional[List[str]] = None, **_extra: Any
    ) -> Dict[str, Any]:
        if service.node is None:
            raise InvalidParamsError(f"site {service.name!r} serves no chain node")
        from repro.p2p.wire import block_to_wire

        store = service.node.store
        bodies = [
            block_to_wire(store.get(block_id))
            for block_id in (ids or [])[:256]
            if isinstance(block_id, str) and block_id in store
        ]
        return {"blocks": bodies}

    def _chunk_store() -> Any:
        if service.chunks is None:
            raise InvalidParamsError(f"site {service.name!r} serves no chunk store")
        return service.chunks

    def da_put_chunk(
        blob_id: str, root: str, index: int, data: str, proof: Dict[str, Any]
    ) -> Dict[str, Any]:
        from repro.common.errors import IntegrityError
        from repro.da.manifest import proof_from_wire

        store = _chunk_store()
        try:
            payload = bytes.fromhex(data)
        except ValueError as exc:
            raise InvalidParamsError(f"chunk data must be hex: {exc}") from exc
        try:
            stored = store.put_chunk(
                blob_id, root, int(index), payload, proof_from_wire(proof)
            )
        except IntegrityError as exc:
            # A proof/digest mismatch is a malformed request, not a server
            # fault: the disperser shipped bytes it cannot commit to.
            raise InvalidParamsError(str(exc)) from exc
        return {"stored": stored, "site": service.name, "index": int(index)}

    def da_get_chunk(blob_id: str, index: int) -> Dict[str, Any]:
        from repro.da.manifest import proof_to_wire

        chunk = _chunk_store().get_chunk(blob_id, int(index))  # raises -> DA code
        return {
            "blob_id": blob_id,
            "index": chunk.index,
            "data": chunk.data.hex(),
            "proof": proof_to_wire(chunk.proof),
        }

    def da_sample(blob_id: str, indices: List[int]) -> Dict[str, Any]:
        from repro.da.manifest import proof_to_wire

        if not isinstance(indices, list):
            raise InvalidParamsError("indices must be a list of leaf indices")
        results = _chunk_store().sample(blob_id, [int(i) for i in indices])
        return {
            "blob_id": blob_id,
            "site": service.name,
            "chunks": [
                None
                if chunk is None
                else {
                    "index": chunk.index,
                    "data": chunk.data.hex(),
                    "proof": proof_to_wire(chunk.proof),
                }
                for chunk in results
            ],
        }

    def node_submit_tx(tx: Dict[str, Any]) -> Dict[str, Any]:
        if service.node is None:
            raise InvalidParamsError(f"site {service.name!r} serves no chain node")
        transaction = transaction_from_wire(tx)
        transaction.validate()  # raises ValidationError -> INVALID_TX
        admission = service.node.submit_tx(transaction)
        return admission_to_wire(admission, transaction.tx_id)

    def mempool_status() -> Dict[str, Any]:
        if service.node is None:
            raise InvalidParamsError(f"site {service.name!r} serves no chain node")
        return service.node.mempool.status()

    registry.register("health", health, idempotent=True, timeout_s=5.0)
    registry.register("rpc.methods", rpc_methods, idempotent=True, timeout_s=5.0)
    registry.register("rpc.echo", rpc_echo, idempotent=True)
    registry.register("site.catalog", site_catalog, idempotent=True)
    registry.register(
        "site.run_task", site_run_task, idempotent=True, timeout_s=task_timeout_s
    )
    registry.register(
        "site.query", site_query, idempotent=True, timeout_s=task_timeout_s
    )
    registry.register("oracle.fetch", oracle_fetch, idempotent=True)
    registry.register("chain.get_block", chain_get_block, idempotent=True)
    registry.register("chain.get_headers", chain_get_headers, idempotent=True)
    registry.register("chain.get_blocks", chain_get_blocks, idempotent=True)
    registry.register("mempool.status", mempool_status, idempotent=True)
    # Verify-on-ingest makes da.put_chunk naturally idempotent: re-putting
    # an already-held chunk is a no-op answered from the store.
    registry.register("da.put_chunk", da_put_chunk, idempotent=True)
    registry.register("da.get_chunk", da_get_chunk, idempotent=True)
    registry.register("da.sample", da_sample, idempotent=True)
    # Submitting the same *signed* tx twice is deduplicated by the mempool,
    # but a client-side retry could still race a nonce bump — keep it
    # non-idempotent so the pool never auto-retries it.
    registry.register("node.submit_tx", node_submit_tx)
    return registry
