"""Dispersal, retrieval, and repair of erasure-coded blobs across sites.

One share *column* per site: site ``j`` (of the ``n`` chosen) receives chunk
``j`` of every stripe, each with its Merkle proof, so losing up to ``n - k``
whole sites — the premise-failure scenario the paper's custody model must
survive — still leaves every stripe with ``k`` decodable chunks.

- :class:`Disperser` encodes and pushes columns out (``da.put_chunk``);
- :class:`Retriever` pulls the cheapest ``k`` columns back, preferring the
  systematic ones (no decoding on the no-fault path), falling back to
  parity columns for whatever is missing;
- :class:`Repairer` surveys holdings, reconstructs the payload from any
  ``k`` survivors, re-encodes, and re-disperses exactly the missing chunks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import DataAvailabilityError, MedchainError
from repro.da.manifest import (
    BlobManifest,
    DEFAULT_CHUNK_SIZE,
    decode_blob,
    encode_blob,
    records_blob,
)
from repro.da.erasure import default_coder
from repro.obs.tracer import trace_span
from repro.sim.metrics import current_metrics


@dataclass
class DispersalReceipt:
    """What one dispersal actually placed."""

    manifest: BlobManifest
    chunks_put: int
    bytes_put: int
    sites: List[str]


@dataclass
class RepairReport:
    """Outcome of one repair pass."""

    blob_id: str
    missing_before: int
    restored: int
    unreachable_sites: List[str] = field(default_factory=list)
    bytes_moved: int = 0

    @property
    def fully_repaired(self) -> bool:
        return self.restored == self.missing_before


class Disperser:
    """Encodes a blob and spreads its share columns across sites."""

    def __init__(
        self, sites: Sequence[Any], *, coder_kind: Optional[str] = None
    ):
        if not sites:
            raise DataAvailabilityError("disperser needs at least one site")
        self.sites = list(sites)
        self.coder_kind = coder_kind

    def disperse(
        self,
        blob: bytes,
        *,
        k: int,
        n: Optional[int] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> DispersalReceipt:
        n = len(self.sites) if n is None else n
        if n > len(self.sites):
            raise DataAvailabilityError(
                f"n={n} shares need {n} sites, only {len(self.sites)} attached"
            )
        chosen = self.sites[:n]
        coder = default_coder(k, n, self.coder_kind)
        manifest, shares = encode_blob(
            blob,
            chunk_size=chunk_size,
            k=k,
            n=n,
            coder=coder,
            placement=[client.name for client in chosen],
        )
        chunks_put = 0
        bytes_put = 0
        with trace_span(
            "da_disperse", blob_id=manifest.blob_id[:12], k=k, n=n,
            stripes=manifest.stripes,
        ) as span:
            for share, client in enumerate(chosen):
                for stripe in range(manifest.stripes):
                    index = manifest.leaf_index(stripe, share)
                    data = shares[share][stripe]
                    client.put_chunk(
                        manifest.blob_id,
                        manifest.root_hex,
                        index,
                        data,
                        manifest.proof(index),
                    )
                    chunks_put += 1
                    bytes_put += len(data)
            span.set_attrs(chunks_put=chunks_put, bytes_put=bytes_put)
        metrics = current_metrics()
        metrics.add("da_chunks_dispersed", chunks_put)
        metrics.add_bytes(bytes_put, scope="da.disperse")
        return DispersalReceipt(
            manifest=manifest,
            chunks_put=chunks_put,
            bytes_put=bytes_put,
            sites=[client.name for client in chosen],
        )

    def disperse_records(
        self, records: Sequence[Dict[str, Any]], **kwargs: Any
    ) -> DispersalReceipt:
        """Disperse a datamgmt record set (canonically serialized)."""
        return self.disperse(records_blob(records), **kwargs)


def _require_placement(manifest: BlobManifest) -> None:
    if len(manifest.placement) != manifest.n:
        raise DataAvailabilityError(
            f"blob {manifest.blob_id[:12]} has no site placement recorded; "
            "retrieve/repair need the dispersal-time column assignment"
        )


class Retriever:
    """Reconstructs blobs from whichever sites still answer."""

    def __init__(self, clients: Mapping[str, Any], *, coder_kind: Optional[str] = None):
        self.clients = dict(clients)
        self.coder_kind = coder_kind

    def retrieve(self, manifest: BlobManifest) -> bytes:
        """Fetch ``k`` share columns (systematic first) and decode.

        Tolerates missing sites, missing chunks, and corrupt responses —
        anything that fails verification simply counts as unavailable.
        Raises :class:`DataAvailabilityError` when any stripe cannot reach
        ``k`` valid chunks.
        """
        k, n = manifest.k, manifest.n
        _require_placement(manifest)
        needed: Dict[int, int] = {s: k for s in range(manifest.stripes)}
        gathered: Dict[int, bytes] = {}
        fetched = 0
        with trace_span(
            "da_retrieve", blob_id=manifest.blob_id[:12], k=k, n=n
        ) as span:
            for share in list(range(k)) + list(range(k, n)):
                if not any(count > 0 for count in needed.values()):
                    break
                chunks = self._fetch_column(manifest, share, needed)
                for index, data in chunks.items():
                    gathered[index] = data
                    needed[manifest.stripe_of(index)] -= 1
                fetched += len(chunks)
            span.set_attrs(chunks_fetched=fetched)
        current_metrics().add("da_chunks_fetched", fetched)
        return decode_blob(
            manifest,
            gathered,
            coder=default_coder(k, n, self.coder_kind),
            # decode_blob re-verifies digests; we already checked each chunk
            # on receipt, but the final blob-id check is kept.
        )

    def _fetch_column(
        self, manifest: BlobManifest, share: int, needed: Mapping[int, int]
    ) -> Dict[int, bytes]:
        """All still-useful, digest-valid chunks of one share column."""
        client = self.clients.get(manifest.placement[share])
        if client is None:
            return {}
        out: Dict[int, bytes] = {}
        wanted = [
            manifest.leaf_index(stripe, share)
            for stripe, count in needed.items()
            if count > 0
        ]
        try:
            responses = client.sample(manifest.blob_id, wanted)
        except MedchainError:
            return {}  # site down: the next column covers for it
        for index, response in zip(wanted, responses):
            if response is None:
                continue
            data, proof = response
            if manifest.chunk_valid(index, data, proof):
                out[index] = data
        return out


class Repairer:
    """Detects lost shares, reconstructs them, and re-disperses."""

    def __init__(self, clients: Mapping[str, Any], *, coder_kind: Optional[str] = None):
        self.clients = dict(clients)
        self.coder_kind = coder_kind
        self._retriever = Retriever(clients, coder_kind=coder_kind)

    def survey(self, manifest: BlobManifest) -> Tuple[Dict[int, bytes], List[int]]:
        """(held chunks, missing leaf indices) across all placed sites."""
        _require_placement(manifest)
        held: Dict[int, bytes] = {}
        missing: List[int] = []
        for share in range(manifest.n):
            client = self.clients.get(manifest.placement[share])
            indices = [
                manifest.leaf_index(stripe, share)
                for stripe in range(manifest.stripes)
            ]
            responses: List[Any] = [None] * len(indices)
            if client is not None:
                try:
                    responses = client.sample(manifest.blob_id, indices)
                except MedchainError:
                    responses = [None] * len(indices)
            for index, response in zip(indices, responses):
                if response is not None and manifest.chunk_valid(
                    index, response[0], response[1]
                ):
                    held[index] = response[0]
                else:
                    missing.append(index)
        return held, missing

    def repair(self, manifest: BlobManifest) -> RepairReport:
        """Reconstruct the blob and push every missing chunk back out."""
        with trace_span(
            "da_repair", blob_id=manifest.blob_id[:12]
        ) as span:
            held, missing = self.survey(manifest)
            if not missing:
                return RepairReport(
                    blob_id=manifest.blob_id, missing_before=0, restored=0
                )
            blob = decode_blob(
                manifest,
                held,
                coder=default_coder(
                    manifest.k, manifest.n, self.coder_kind
                ),
            )
            # Re-encoding is deterministic, so the rebuilt chunks reproduce
            # the committed leaves exactly — encode_blob's tree confirms it.
            rebuilt, shares = encode_blob(
                blob,
                chunk_size=manifest.chunk_size,
                k=manifest.k,
                n=manifest.n,
                coder=default_coder(manifest.k, manifest.n, self.coder_kind),
                placement=manifest.placement,
            )
            if rebuilt.root_hex != manifest.root_hex:
                raise DataAvailabilityError(
                    f"re-encoded blob {manifest.blob_id[:12]} does not "
                    "reproduce the committed root"
                )
            restored = 0
            bytes_moved = 0
            unreachable: List[str] = []
            for index in missing:
                share = manifest.share_of(index)
                stripe = manifest.stripe_of(index)
                site = manifest.placement[share]
                client = self.clients.get(site)
                if client is None:
                    if site not in unreachable:
                        unreachable.append(site)
                    continue
                data = shares[share][stripe]
                try:
                    client.put_chunk(
                        manifest.blob_id,
                        manifest.root_hex,
                        index,
                        data,
                        rebuilt.proof(index),
                    )
                except MedchainError:
                    if site not in unreachable:
                        unreachable.append(site)
                    continue
                restored += 1
                bytes_moved += len(data)
            span.set_attrs(
                missing=len(missing), restored=restored,
                unreachable=len(unreachable),
            )
        metrics = current_metrics()
        metrics.add("da_chunks_repaired", restored)
        metrics.add_bytes(bytes_moved, scope="da.repair")
        return RepairReport(
            blob_id=manifest.blob_id,
            missing_before=len(missing),
            restored=restored,
            unreachable_sites=unreachable,
            bytes_moved=bytes_moved,
        )
