"""Erasure-coded off-chain data availability for large medical payloads.

Genomic panels and imaging blobs are far too large for blocks — and too
valuable for any single hospital to be their only custodian.  ``repro.da``
keeps the paper's compute-to-data stance (section III.A: payloads stay off
chain, only commitments go on chain) while removing the single point of
failure:

- a blob is split into fixed-size chunks, grouped into stripes of ``k``
  chunks, and each stripe is erasure-coded into ``n`` shares (systematic
  Reed–Solomon over GF(256); :mod:`repro.da.erasure`);
- a :class:`~repro.da.manifest.BlobManifest` commits to every share chunk
  through a Merkle tree (:mod:`repro.common.merkle` — the same E7 anchoring
  path datasets use) whose root is registered on chain in the
  ``blob-registry`` contract;
- the ``n`` shares are spread across sites (one share column per site) via
  the ``da.put_chunk`` / ``da.get_chunk`` / ``da.sample`` RPC methods on
  the PR 4 site surface (:mod:`repro.da.clients`);
- any ``k`` of the ``n`` sites reconstruct the blob bit-exactly
  (:class:`~repro.da.dispersal.Retriever`), a
  :class:`~repro.da.dispersal.Repairer` re-disperses lost shares, and a
  :class:`~repro.da.sampling.Sampler` audits availability by random
  sampling with Merkle-proof-verified responses and the standard
  ``1 - (1 - loss_frac)**s`` detection bound.
"""

from repro.da.clients import LocalSiteClient, RpcSiteClient, SiteClient
from repro.da.dispersal import (
    DispersalReceipt,
    Disperser,
    RepairReport,
    Repairer,
    Retriever,
)
from repro.da.erasure import (
    CodingParams,
    ReferenceCoder,
    VectorCoder,
    default_coder,
    have_numpy,
)
from repro.da.manifest import (
    BlobManifest,
    decode_blob,
    encode_blob,
    proof_from_wire,
    proof_to_wire,
    records_blob,
    records_from_blob,
)
from repro.da.sampling import AuditReport, Sampler, confidence, miss_probability
from repro.da.store import ChunkStore

__all__ = [
    "AuditReport",
    "BlobManifest",
    "ChunkStore",
    "CodingParams",
    "DispersalReceipt",
    "Disperser",
    "LocalSiteClient",
    "ReferenceCoder",
    "RepairReport",
    "Repairer",
    "Retriever",
    "RpcSiteClient",
    "Sampler",
    "SiteClient",
    "VectorCoder",
    "confidence",
    "decode_blob",
    "default_coder",
    "encode_blob",
    "have_numpy",
    "miss_probability",
    "proof_from_wire",
    "proof_to_wire",
    "records_blob",
    "records_from_blob",
]
