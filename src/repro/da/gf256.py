"""GF(2^8) arithmetic for the Reed–Solomon erasure coder.

The field is GF(256) with the conventional Reed–Solomon reduction
polynomial ``x^8 + x^4 + x^3 + x^2 + 1`` (0x11D) and generator 2.  All
products go through exp/log tables built once at import — multiplication is
two lookups and an addition mod 255, which keeps the pure-python reference
coder honest, and the same tables flatten into the 256x256 NumPy product
table the vectorized coder indexes with whole chunk arrays at once.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.common.errors import DataAvailabilityError

try:  # Vectorized path is optional; the reference coder needs nothing.
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None

FIELD_SIZE = 256
_POLY = 0x11D

# exp table is doubled so gf_mul can skip the mod-255 on the exponent sum.
GF_EXP: List[int] = [0] * (2 * FIELD_SIZE)
GF_LOG: List[int] = [0] * FIELD_SIZE


def _build_tables() -> None:
    value = 1
    for power in range(FIELD_SIZE - 1):
        GF_EXP[power] = value
        GF_LOG[value] = power
        value <<= 1
        if value & 0x100:
            value ^= _POLY
    for power in range(FIELD_SIZE - 1, 2 * FIELD_SIZE):
        GF_EXP[power] = GF_EXP[power - (FIELD_SIZE - 1)]


_build_tables()


def gf_mul(a: int, b: int) -> int:
    """Field product of two bytes."""
    if a == 0 or b == 0:
        return 0
    return GF_EXP[GF_LOG[a] + GF_LOG[b]]


def gf_inv(a: int) -> int:
    """Multiplicative inverse; 0 has none."""
    if a == 0:
        raise DataAvailabilityError("0 has no inverse in GF(256)")
    return GF_EXP[(FIELD_SIZE - 1) - GF_LOG[a]]


def gf_div(a: int, b: int) -> int:
    """Field quotient ``a / b``."""
    if b == 0:
        raise DataAvailabilityError("division by zero in GF(256)")
    if a == 0:
        return 0
    return GF_EXP[GF_LOG[a] - GF_LOG[b] + (FIELD_SIZE - 1)]


def gf_mul_bytes(coeff: int, data: bytes) -> bytes:
    """Scale a byte vector by ``coeff`` (pure-python reference path)."""
    if coeff == 0:
        return bytes(len(data))
    if coeff == 1:
        return bytes(data)
    shift = GF_LOG[coeff]
    exp, log = GF_EXP, GF_LOG
    return bytes(0 if b == 0 else exp[shift + log[b]] for b in data)


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """Byte-wise XOR of two equal-length vectors."""
    return bytes(x ^ y for x, y in zip(a, b))


# -- matrices (row-major lists of byte lists) -------------------------------

def gf_mat_vec(matrix: Sequence[Sequence[int]], rows: Sequence[bytes]) -> List[bytes]:
    """Multiply a coefficient matrix by a stack of byte-vector rows."""
    out: List[bytes] = []
    for coeffs in matrix:
        acc = bytes(len(rows[0]) if rows else 0)
        for coeff, row in zip(coeffs, rows):
            if coeff:
                acc = xor_bytes(acc, gf_mul_bytes(coeff, row))
        out.append(acc)
    return out


def gf_mat_inv(matrix: Sequence[Sequence[int]]) -> List[List[int]]:
    """Invert a square matrix over GF(256) by Gauss–Jordan elimination."""
    size = len(matrix)
    work = [list(row) + [1 if i == j else 0 for j in range(size)]
            for i, row in enumerate(matrix)]
    if any(len(row) != 2 * size for row in work):
        raise DataAvailabilityError("matrix must be square")
    for col in range(size):
        pivot = next((r for r in range(col, size) if work[r][col]), None)
        if pivot is None:
            raise DataAvailabilityError("matrix is singular over GF(256)")
        work[col], work[pivot] = work[pivot], work[col]
        inv = gf_inv(work[col][col])
        work[col] = [gf_mul(inv, value) for value in work[col]]
        for row in range(size):
            if row != col and work[row][col]:
                factor = work[row][col]
                work[row] = [
                    value ^ gf_mul(factor, work[col][index])
                    for index, value in enumerate(work[row])
                ]
    return [row[size:] for row in work]


def cauchy_matrix(k: int, m: int) -> List[List[int]]:
    """An ``m x k`` Cauchy matrix whose every square submatrix is invertible.

    Rows use ``x_i = k + i`` and columns ``y_j = j`` (disjoint sets, so the
    GF-sum ``x_i ^ y_j`` is never zero).  Stacked under the identity it
    forms the systematic generator matrix: *any* k rows of ``[I; C]`` are
    invertible, which is exactly the any-k-of-n reconstruction guarantee.
    """
    if k + m > FIELD_SIZE:
        raise DataAvailabilityError(
            f"k + parity rows must stay within GF(256): {k}+{m} > {FIELD_SIZE}"
        )
    return [[gf_inv((k + i) ^ j) for j in range(k)] for i in range(m)]


# -- vectorized tables -------------------------------------------------------

_MUL_TABLE = None


def have_numpy() -> bool:
    """True when the NumPy-vectorized coder can run in this interpreter."""
    return _np is not None


def mul_table():
    """The full 256x256 GF product table as a ``uint8`` ndarray.

    ``mul_table()[coeff][chunk_array]`` scales a whole chunk by one
    coefficient in a single fancy-indexing pass — the inner loop of the
    vectorized encoder.  Built lazily (64 KiB) and cached.
    """
    global _MUL_TABLE
    if _np is None:
        raise DataAvailabilityError("numpy is not available; use the reference coder")
    if _MUL_TABLE is None:
        table = _np.zeros((FIELD_SIZE, FIELD_SIZE), dtype=_np.uint8)
        exp = _np.array(GF_EXP, dtype=_np.uint16)
        log = _np.array(GF_LOG, dtype=_np.uint16)
        nonzero = _np.arange(1, FIELD_SIZE)
        for coeff in range(1, FIELD_SIZE):
            table[coeff, nonzero] = exp[GF_LOG[coeff] + log[nonzero]]
        _MUL_TABLE = table
    return _MUL_TABLE
