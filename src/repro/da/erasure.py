"""Systematic k-of-n Reed–Solomon erasure coding over GF(256).

Both coders implement the same contract: ``encode`` turns ``k`` equal-length
data rows into ``n`` share rows whose first ``k`` are the data itself
(systematic — the common no-fault read path never decodes), and ``decode``
reconstructs the ``k`` data rows from *any* ``k`` of the ``n`` shares.

Two implementations, cross-checked byte-for-byte in tests:

- :class:`ReferenceCoder` — pure python over the exp/log tables; the
  specification.
- :class:`VectorCoder` — NumPy: each coefficient scales an entire row via
  one fancy-indexing pass through the 256x256 product table, so encode cost
  is ``m*k`` table gathers over the full blob regardless of chunk count
  (the arXiv:2301.04725 motivation — availability machinery at hardware
  speed).

Rows are *share columns*, not single chunks: callers concatenate chunk
``j`` of every stripe into row ``j`` (see :mod:`repro.da.manifest`), so one
``encode`` call codes the whole blob.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.common.errors import DataAvailabilityError
from repro.da import gf256
from repro.da.gf256 import (
    cauchy_matrix,
    gf_mat_inv,
    gf_mat_vec,
    have_numpy,
)


@dataclass(frozen=True)
class CodingParams:
    """The (k, n) shape of one erasure-coded blob."""

    k: int
    n: int

    def __post_init__(self) -> None:
        if not 1 <= self.k <= self.n:
            raise DataAvailabilityError(
                f"need 1 <= k <= n, got k={self.k} n={self.n}"
            )
        if self.n > gf256.FIELD_SIZE - 1:
            raise DataAvailabilityError(
                f"n={self.n} exceeds the GF(256) share-index space"
            )

    @property
    def parity(self) -> int:
        return self.n - self.k


class _CoderBase:
    """Shared parameter handling and the generator-matrix view."""

    def __init__(self, params: CodingParams):
        self.params = params
        self._cauchy = cauchy_matrix(params.k, params.parity)

    def generator_row(self, share_index: int) -> List[int]:
        """Row ``share_index`` of the systematic generator matrix [I; C]."""
        k = self.params.k
        if not 0 <= share_index < self.params.n:
            raise DataAvailabilityError(f"share index {share_index} out of range")
        if share_index < k:
            return [1 if j == share_index else 0 for j in range(k)]
        return list(self._cauchy[share_index - k])

    def _check_rows(self, rows: Sequence[bytes], expected: int) -> int:
        if len(rows) != expected:
            raise DataAvailabilityError(
                f"expected {expected} rows, got {len(rows)}"
            )
        lengths = {len(row) for row in rows}
        if len(lengths) > 1:
            raise DataAvailabilityError(f"rows differ in length: {sorted(lengths)}")
        return lengths.pop() if lengths else 0

    def _decode_matrix(
        self, share_indices: Sequence[int]
    ) -> List[List[int]]:
        """Inverse of the k generator rows selected by ``share_indices``."""
        k = self.params.k
        if len(set(share_indices)) != len(share_indices):
            raise DataAvailabilityError("duplicate share indices")
        if len(share_indices) != k:
            raise DataAvailabilityError(
                f"decoding needs exactly k={k} shares, got {len(share_indices)}"
            )
        return gf_mat_inv([self.generator_row(i) for i in share_indices])

    def _select(self, shares: Mapping[int, bytes]) -> List[int]:
        """Pick k share indices, preferring systematic (data) shares."""
        k = self.params.k
        available = sorted(shares)
        if len(available) < k:
            raise DataAvailabilityError(
                f"cannot reconstruct: {len(available)} shares held, "
                f"k={k} required"
            )
        for index in available:
            if not 0 <= index < self.params.n:
                raise DataAvailabilityError(f"share index {index} out of range")
        return available[:k]


class ReferenceCoder(_CoderBase):
    """Pure-python coder: the behavioral specification."""

    name = "reference"

    def encode(self, data_rows: Sequence[bytes]) -> List[bytes]:
        self._check_rows(data_rows, self.params.k)
        parity = gf_mat_vec(self._cauchy, data_rows)
        return [bytes(row) for row in data_rows] + parity

    def decode(self, shares: Mapping[int, bytes]) -> List[bytes]:
        chosen = self._select(shares)
        rows = [shares[i] for i in chosen]
        self._check_rows(rows, self.params.k)
        if chosen == list(range(self.params.k)):
            return [bytes(row) for row in rows]  # all-systematic fast path
        return gf_mat_vec(self._decode_matrix(chosen), rows)


class VectorCoder(_CoderBase):
    """NumPy coder: one table gather per (coefficient, row) pair."""

    name = "numpy"

    def __init__(self, params: CodingParams):
        if not have_numpy():
            raise DataAvailabilityError(
                "numpy is unavailable; use ReferenceCoder"
            )
        super().__init__(params)
        import numpy as np

        self._np = np
        self._table = gf256.mul_table()

    def _combine(
        self, matrix: Sequence[Sequence[int]], rows: Sequence[bytes]
    ) -> List[bytes]:
        np = self._np
        length = len(rows[0]) if rows else 0
        arrays = [np.frombuffer(row, dtype=np.uint8) for row in rows]
        out: List[bytes] = []
        for coeffs in matrix:
            acc = np.zeros(length, dtype=np.uint8)
            for coeff, row in zip(coeffs, arrays):
                if coeff == 1:
                    acc ^= row
                elif coeff:
                    acc ^= self._table[coeff][row]
            out.append(acc.tobytes())
        return out

    def encode(self, data_rows: Sequence[bytes]) -> List[bytes]:
        self._check_rows(data_rows, self.params.k)
        parity = self._combine(self._cauchy, data_rows)
        return [bytes(row) for row in data_rows] + parity

    def decode(self, shares: Mapping[int, bytes]) -> List[bytes]:
        chosen = self._select(shares)
        rows = [shares[i] for i in chosen]
        self._check_rows(rows, self.params.k)
        if chosen == list(range(self.params.k)):
            return [bytes(row) for row in rows]
        return self._combine(self._decode_matrix(chosen), rows)


# Dict-based registry so benchmarks can iterate coder kinds by name.
CODER_KINDS: Dict[str, type] = {
    ReferenceCoder.name: ReferenceCoder,
    VectorCoder.name: VectorCoder,
}


def default_coder(k: int, n: int, kind: Optional[str] = None):
    """Build a coder: NumPy-vectorized when available, reference otherwise."""
    params = CodingParams(k=k, n=n)
    if kind is not None:
        try:
            return CODER_KINDS[kind](params)
        except KeyError:
            raise DataAvailabilityError(
                f"unknown coder kind {kind!r}; have {sorted(CODER_KINDS)}"
            ) from None
    if have_numpy():
        return VectorCoder(params)
    return ReferenceCoder(params)
