"""Per-site share storage with verify-on-ingest.

A :class:`ChunkStore` is the site-local half of the DA subsystem: it holds
the share chunks dispersed to this site, keyed by ``(blob_id, leaf_index)``,
each alongside the Merkle proof the disperser shipped with it.  Ingest is
*verifying*: a chunk whose digest or proof does not reach the blob's
committed root is rejected, so a site never serves bytes it could not later
prove.  Audits (``da.sample``) answer straight from the store — chunk plus
stored proof — and the auditor re-verifies both against the on-chain root.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.common.errors import DataAvailabilityError, IntegrityError
from repro.common.hashing import sha256
from repro.common.merkle import MerkleProof
from repro.sim.metrics import current_metrics


@dataclass
class StoredChunk:
    """One share chunk held at a site."""

    blob_id: str
    index: int
    data: bytes = field(repr=False)
    proof: MerkleProof = field(repr=False)


@dataclass
class BlobHolding:
    """What one site knows about one blob."""

    blob_id: str
    root_hex: str
    chunks: Dict[int, StoredChunk] = field(default_factory=dict)


class ChunkStore:
    """Site-local storage of erasure-coded share chunks."""

    def __init__(self, site: str):
        self.site = site
        self._blobs: Dict[str, BlobHolding] = {}

    # -- ingest ------------------------------------------------------------
    def put_chunk(
        self,
        blob_id: str,
        root_hex: str,
        index: int,
        data: bytes,
        proof: MerkleProof,
    ) -> bool:
        """Store one chunk after verifying it against the blob's root.

        Returns ``True`` when the chunk was newly stored, ``False`` when an
        identical chunk was already held (idempotent re-puts).
        """
        if proof.index != index:
            raise IntegrityError(
                f"proof is for leaf {proof.index}, chunk claims {index}"
            )
        if proof.leaf != sha256(data):
            raise IntegrityError(f"chunk {index} does not hash to its proof leaf")
        if proof.root().hex() != root_hex:
            raise IntegrityError(
                f"chunk {index} proof does not reach root {root_hex[:12]}"
            )
        holding = self._blobs.get(blob_id)
        if holding is None:
            holding = self._blobs[blob_id] = BlobHolding(
                blob_id=blob_id, root_hex=root_hex
            )
        elif holding.root_hex != root_hex:
            raise IntegrityError(
                f"blob {blob_id[:12]} already held under a different root"
            )
        if index in holding.chunks:
            return False
        holding.chunks[index] = StoredChunk(
            blob_id=blob_id, index=index, data=data, proof=proof
        )
        metrics = current_metrics()
        metrics.add("da_chunks_stored", scope=self.site)
        metrics.add_bytes(len(data), scope=f"da.store.{self.site}")
        return True

    # -- reads -------------------------------------------------------------
    def get_chunk(self, blob_id: str, index: int) -> StoredChunk:
        chunk = self._holding(blob_id).chunks.get(index)
        if chunk is None:
            raise DataAvailabilityError(
                f"site {self.site}: chunk {index} of blob {blob_id[:12]} not held"
            )
        return chunk

    def sample(
        self, blob_id: str, indices: Iterable[int]
    ) -> List[Optional[StoredChunk]]:
        """Audit read: the held chunk for each index, ``None`` where missing.

        Missing entries are reported rather than raised so one audit call
        covers every sampled index — the auditor decides what a miss means.
        """
        holding = self._blobs.get(blob_id)
        return [
            holding.chunks.get(index) if holding is not None else None
            for index in indices
        ]

    def has_chunk(self, blob_id: str, index: int) -> bool:
        holding = self._blobs.get(blob_id)
        return holding is not None and index in holding.chunks

    def indices(self, blob_id: str) -> List[int]:
        holding = self._blobs.get(blob_id)
        return sorted(holding.chunks) if holding is not None else []

    def blob_ids(self) -> List[str]:
        return sorted(self._blobs)

    def root_of(self, blob_id: str) -> str:
        return self._holding(blob_id).root_hex

    # -- fault injection / maintenance ------------------------------------
    def drop_chunks(self, blob_id: str, indices: Iterable[int]) -> int:
        """Delete held chunks (site failure / withholding simulation)."""
        holding = self._blobs.get(blob_id)
        if holding is None:
            return 0
        dropped = 0
        for index in indices:
            if holding.chunks.pop(index, None) is not None:
                dropped += 1
        return dropped

    def drop_blob(self, blob_id: str) -> int:
        holding = self._blobs.pop(blob_id, None)
        return len(holding.chunks) if holding is not None else 0

    def stats(self) -> Dict[str, Any]:
        chunk_count = sum(len(h.chunks) for h in self._blobs.values())
        return {
            "site": self.site,
            "blobs": len(self._blobs),
            "chunks": chunk_count,
            "bytes": sum(
                len(c.data) for h in self._blobs.values() for c in h.chunks.values()
            ),
        }

    def _holding(self, blob_id: str) -> BlobHolding:
        holding = self._blobs.get(blob_id)
        if holding is None:
            raise DataAvailabilityError(
                f"site {self.site} holds no chunks of blob {blob_id[:12]}"
            )
        return holding


def stored_chunk_wire(chunk: StoredChunk) -> Tuple[str, Dict[str, Any]]:
    """(hex data, proof wire) pair for shipping a stored chunk over RPC."""
    from repro.da.manifest import proof_to_wire

    return chunk.data.hex(), proof_to_wire(chunk.proof)
