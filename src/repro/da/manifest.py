"""Blob chunking and the on-chain-committable manifest.

A blob is padded to whole stripes of ``k`` chunks, each stripe is coded
into ``n`` share chunks, and every share chunk becomes one Merkle leaf:

    leaf_index = stripe * n + share_index

Share ``j`` of every stripe lives at the same site (one share *column* per
site), so losing a site removes exactly one share per stripe — the k-of-n
guarantee then covers losing up to ``n - k`` whole sites.  The Merkle root
over all leaves is the blob's on-chain commitment (the ``blob-registry``
contract stores root + geometry, never payload bytes), and every chunk a
site holds is verifiable against that root with a standard
:class:`~repro.common.merkle.MerkleProof`.

Only the root and geometry go on chain; the leaf list travels with the
manifest off chain (it is ``32 * stripes * n`` bytes — itself re-derivable
from any full copy of the blob).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import DataAvailabilityError, IntegrityError
from repro.common.hashing import hash_leaves_batch, sha256, sha256_hex
from repro.common.merkle import MerkleProof, MerkleTree
from repro.common.serialize import canonical_bytes, from_json
from repro.da.erasure import default_coder
from repro.obs.tracer import trace_span
from repro.sim.metrics import current_metrics

DEFAULT_CHUNK_SIZE = 64 * 1024


@dataclass
class BlobManifest:
    """Commitment and geometry of one erasure-coded blob."""

    blob_id: str  # sha256 of the original (unpadded) payload
    size: int  # original payload length in bytes
    chunk_size: int
    k: int
    n: int
    stripes: int
    root_hex: str
    leaves: List[bytes] = field(repr=False, default_factory=list)
    placement: List[str] = field(default_factory=list)  # site per share index
    _tree: Optional[MerkleTree] = field(default=None, repr=False, compare=False)

    # -- geometry ----------------------------------------------------------
    @property
    def leaf_count(self) -> int:
        return self.stripes * self.n

    def stripe_of(self, leaf_index: int) -> int:
        return leaf_index // self.n

    def share_of(self, leaf_index: int) -> int:
        return leaf_index % self.n

    def leaf_index(self, stripe: int, share: int) -> int:
        if not (0 <= stripe < self.stripes and 0 <= share < self.n):
            raise DataAvailabilityError(
                f"(stripe={stripe}, share={share}) outside "
                f"{self.stripes}x{self.n} geometry"
            )
        return stripe * self.n + share

    def site_for(self, leaf_index: int) -> str:
        """The site assigned to the share column this leaf belongs to."""
        if not self.placement:
            raise DataAvailabilityError("manifest has no placement recorded")
        return self.placement[self.share_of(leaf_index)]

    # -- commitments -------------------------------------------------------
    def tree(self) -> MerkleTree:
        if self._tree is None:
            if len(self.leaves) != self.leaf_count:
                raise DataAvailabilityError(
                    f"manifest holds {len(self.leaves)} leaves, geometry "
                    f"implies {self.leaf_count}"
                )
            self._tree = MerkleTree(self.leaves)
            if self._tree.root.hex() != self.root_hex:
                raise IntegrityError(
                    f"manifest leaves do not reproduce root {self.root_hex[:12]}"
                )
        return self._tree

    def proof(self, leaf_index: int) -> MerkleProof:
        return self.tree().proof(leaf_index)

    def verify_chunk(self, leaf_index: int, chunk: bytes) -> bool:
        """Does ``chunk`` match the committed digest at ``leaf_index``?

        Needs the leaf list; for a root-only manifest (rebuilt from the
        chain entry) use :meth:`chunk_valid` with the site's proof instead.
        """
        if not 0 <= leaf_index < self.leaf_count:
            return False
        if not self.leaves:
            raise DataAvailabilityError(
                "manifest carries no leaves; verify chunks via chunk_valid()"
            )
        return sha256(chunk) == self.leaves[leaf_index]

    def chunk_valid(
        self, leaf_index: int, chunk: bytes, proof: Optional[MerkleProof] = None
    ) -> bool:
        """Verify a chunk with whatever commitment material is at hand.

        With leaves held, the committed digest decides.  Without them, the
        site-supplied proof must carry the chunk's digest to the on-chain
        root — exactly what an auditor holding only the chain entry checks.
        """
        if not 0 <= leaf_index < self.leaf_count:
            return False
        if self.leaves:
            return sha256(chunk) == self.leaves[leaf_index]
        if proof is None:
            return False
        return (
            proof.index == leaf_index
            and proof.leaf == sha256(chunk)
            and proof.root().hex() == self.root_hex
        )

    # -- wire --------------------------------------------------------------
    def to_wire(self, include_leaves: bool = True) -> Dict[str, Any]:
        wire: Dict[str, Any] = {
            "blob_id": self.blob_id,
            "size": self.size,
            "chunk_size": self.chunk_size,
            "k": self.k,
            "n": self.n,
            "stripes": self.stripes,
            "root": self.root_hex,
            "placement": list(self.placement),
        }
        if include_leaves:
            wire["leaves"] = [leaf.hex() for leaf in self.leaves]
        return wire

    @classmethod
    def from_wire(cls, wire: Mapping[str, Any]) -> "BlobManifest":
        try:
            return cls(
                blob_id=str(wire["blob_id"]),
                size=int(wire["size"]),
                chunk_size=int(wire["chunk_size"]),
                k=int(wire["k"]),
                n=int(wire["n"]),
                stripes=int(wire["stripes"]),
                root_hex=str(wire["root"]),
                leaves=[bytes.fromhex(leaf) for leaf in wire.get("leaves", [])],
                placement=[str(site) for site in wire.get("placement", [])],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DataAvailabilityError(f"malformed manifest wire: {exc}") from exc

    def chain_entry(self) -> Dict[str, Any]:
        """The light-weight commitment registered on chain (no leaves)."""
        return self.to_wire(include_leaves=False)


# -- Merkle proof wire helpers ----------------------------------------------

def proof_to_wire(proof: MerkleProof) -> Dict[str, Any]:
    return {
        "leaf": proof.leaf.hex(),
        "index": proof.index,
        "path": [sibling.hex() for sibling in proof.path],
    }


def proof_from_wire(wire: Mapping[str, Any]) -> MerkleProof:
    try:
        return MerkleProof(
            leaf=bytes.fromhex(wire["leaf"]),
            index=int(wire["index"]),
            path=[bytes.fromhex(sibling) for sibling in wire["path"]],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise DataAvailabilityError(f"malformed proof wire: {exc}") from exc


# -- encode / decode ---------------------------------------------------------

def _padded(blob: bytes, chunk_size: int, k: int) -> Tuple[bytes, int]:
    stripe_bytes = chunk_size * k
    stripes = (len(blob) + stripe_bytes - 1) // stripe_bytes if blob else 0
    padded = blob + bytes(stripes * stripe_bytes - len(blob))
    return padded, stripes


def encode_blob(
    blob: bytes,
    *,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    k: int,
    n: int,
    coder: Any = None,
    placement: Optional[Sequence[str]] = None,
) -> Tuple[BlobManifest, List[List[bytes]]]:
    """Chunk, stripe, and erasure-code ``blob``.

    Returns the manifest and the share columns: ``shares[j]`` is the list of
    ``stripes`` chunks destined for the site holding share index ``j``.
    """
    if chunk_size <= 0:
        raise DataAvailabilityError("chunk_size must be positive")
    coder = coder if coder is not None else default_coder(k, n)
    if (coder.params.k, coder.params.n) != (k, n):
        raise DataAvailabilityError(
            f"coder is shaped {coder.params}, caller asked for (k={k}, n={n})"
        )
    if placement is not None and len(placement) != n:
        raise DataAvailabilityError(
            f"placement names {len(placement)} sites for n={n} shares"
        )
    with trace_span(
        "da_encode", size=len(blob), chunk_size=chunk_size, k=k, n=n
    ) as span:
        padded, stripes = _padded(blob, chunk_size, k)
        data_rows = [
            b"".join(
                padded[(s * k + j) * chunk_size:(s * k + j + 1) * chunk_size]
                for s in range(stripes)
            )
            for j in range(k)
        ]
        share_rows = coder.encode(data_rows)
        shares = [
            [row[s * chunk_size:(s + 1) * chunk_size] for s in range(stripes)]
            for row in share_rows
        ]
        # Leaf order is stripe-major: stripe s contributes its n share
        # chunks before stripe s+1 contributes any.
        leaves = hash_leaves_batch(
            shares[share][stripe]
            for stripe in range(stripes)
            for share in range(n)
        )
        tree = MerkleTree(leaves)
        manifest = BlobManifest(
            blob_id=sha256_hex(blob),
            size=len(blob),
            chunk_size=chunk_size,
            k=k,
            n=n,
            stripes=stripes,
            root_hex=tree.root.hex(),
            leaves=leaves,
            placement=list(placement or []),
            _tree=tree,
        )
        span.set_attrs(stripes=stripes, coder=getattr(coder, "name", "?"))
    metrics = current_metrics()
    metrics.add("da_blobs_encoded")
    metrics.add("da_chunks_encoded", stripes * n)
    metrics.add_bytes(stripes * n * chunk_size, scope="da.encode")
    return manifest, shares


def decode_blob(
    manifest: BlobManifest,
    chunks: Mapping[int, bytes],
    *,
    coder: Any = None,
    verify: bool = True,
) -> bytes:
    """Reconstruct the original payload from share chunks by leaf index.

    Accepts any mix of data and parity chunks; every stripe needs at least
    ``k`` of its ``n`` chunks present (and digest-valid when ``verify``).
    Stripes sharing an availability pattern decode in one vectorized pass.
    """
    k, n, chunk_size = manifest.k, manifest.n, manifest.chunk_size
    coder = coder if coder is not None else default_coder(k, n)
    if verify and manifest.leaves:
        bad = [
            index
            for index, chunk in chunks.items()
            if not manifest.verify_chunk(index, chunk)
        ]
        if bad:
            raise IntegrityError(
                f"blob {manifest.blob_id[:12]}: {len(bad)} chunks fail their "
                f"committed digests (first: leaf {min(bad)})"
            )
    by_stripe: Dict[int, Dict[int, bytes]] = {}
    for index, chunk in chunks.items():
        by_stripe.setdefault(manifest.stripe_of(index), {})[
            manifest.share_of(index)
        ] = chunk
    # Group stripes by their chosen k-share selection so each distinct
    # availability pattern costs one matrix inversion + one row combine.
    groups: Dict[Tuple[int, ...], List[int]] = {}
    for stripe in range(manifest.stripes):
        held = sorted(by_stripe.get(stripe, {}))
        if len(held) < k:
            raise DataAvailabilityError(
                f"blob {manifest.blob_id[:12]} stripe {stripe}: "
                f"{len(held)} of n={n} chunks held, k={k} required"
            )
        groups.setdefault(tuple(held[:k]), []).append(stripe)
    data_chunks: Dict[int, List[bytes]] = {}
    for selection, stripe_list in groups.items():
        rows = {
            share: b"".join(by_stripe[s][share] for s in stripe_list)
            for share in selection
        }
        decoded = coder.decode(rows)
        for offset, stripe in enumerate(stripe_list):
            data_chunks[stripe] = [
                row[offset * chunk_size:(offset + 1) * chunk_size]
                for row in decoded
            ]
    payload = b"".join(
        chunk for stripe in range(manifest.stripes) for chunk in data_chunks[stripe]
    )[: manifest.size]
    if verify and sha256_hex(payload) != manifest.blob_id:
        raise IntegrityError(
            f"reconstructed payload does not hash to blob id "
            f"{manifest.blob_id[:12]}"
        )
    current_metrics().add("da_blobs_decoded")
    return payload


# -- datamgmt integration ----------------------------------------------------

def records_blob(records: Sequence[Dict[str, Any]]) -> bytes:
    """Canonical byte serialization of a record set, ready to disperse."""
    return canonical_bytes(list(records), allow_float=True)


def records_from_blob(blob: bytes) -> List[Dict[str, Any]]:
    """Inverse of :func:`records_blob`."""
    value = from_json(blob.decode("utf-8"))
    if not isinstance(value, list):
        raise DataAvailabilityError("blob does not decode to a record list")
    return value
