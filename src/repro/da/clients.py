"""Transport-interchangeable clients for a site's DA surface.

The dispersal, repair, and sampling engines speak to sites through the
three-method :class:`SiteClient` protocol — ``put_chunk`` / ``get_chunk`` /
``sample`` — mirroring the PR 4 gateway split:

- :class:`LocalSiteClient` binds a :class:`~repro.da.store.ChunkStore`
  in-process (simulation, tests, single-box benchmarks);
- :class:`RpcSiteClient` drives the same surface over any object with a
  ``call(method, params)`` method (an :class:`repro.rpc.client.RpcClient`,
  a :class:`~repro.rpc.client.ConnectionPool`, or an inproc dispatcher), so
  the engines never know which transport carried the chunk.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Protocol, Tuple

from repro.common.errors import DataAvailabilityError
from repro.common.merkle import MerkleProof
from repro.da.manifest import proof_from_wire, proof_to_wire
from repro.da.store import ChunkStore


class SiteClient(Protocol):
    """What the DA engines need from one site."""

    name: str

    def put_chunk(
        self, blob_id: str, root_hex: str, index: int, data: bytes, proof: MerkleProof
    ) -> bool:
        """Store one verified chunk; True when newly stored."""

    def get_chunk(self, blob_id: str, index: int) -> Tuple[bytes, MerkleProof]:
        """Fetch one held chunk with its proof; raises when not held."""

    def sample(
        self, blob_id: str, indices: Iterable[int]
    ) -> List[Optional[Tuple[bytes, MerkleProof]]]:
        """Audit read: (chunk, proof) per index, None where missing."""


class LocalSiteClient:
    """In-process client over a site's own :class:`ChunkStore`."""

    def __init__(self, store: ChunkStore, name: Optional[str] = None):
        self.store = store
        self.name = name or store.site

    def put_chunk(
        self, blob_id: str, root_hex: str, index: int, data: bytes, proof: MerkleProof
    ) -> bool:
        return self.store.put_chunk(blob_id, root_hex, index, data, proof)

    def get_chunk(self, blob_id: str, index: int) -> Tuple[bytes, MerkleProof]:
        chunk = self.store.get_chunk(blob_id, index)
        return chunk.data, chunk.proof

    def sample(
        self, blob_id: str, indices: Iterable[int]
    ) -> List[Optional[Tuple[bytes, MerkleProof]]]:
        return [
            (chunk.data, chunk.proof) if chunk is not None else None
            for chunk in self.store.sample(blob_id, indices)
        ]


class RpcSiteClient:
    """Client over the ``da.*`` JSON-RPC methods of a remote site server."""

    def __init__(self, caller: Any, name: str):
        if not hasattr(caller, "call"):
            raise DataAvailabilityError(
                "RpcSiteClient needs an object with call(method, params)"
            )
        self._caller = caller
        self.name = name

    def put_chunk(
        self, blob_id: str, root_hex: str, index: int, data: bytes, proof: MerkleProof
    ) -> bool:
        result = self._caller.call(
            "da.put_chunk",
            {
                "blob_id": blob_id,
                "root": root_hex,
                "index": index,
                "data": data.hex(),
                "proof": proof_to_wire(proof),
            },
        )
        return bool(result.get("stored"))

    def get_chunk(self, blob_id: str, index: int) -> Tuple[bytes, MerkleProof]:
        result = self._caller.call(
            "da.get_chunk", {"blob_id": blob_id, "index": index}
        )
        return bytes.fromhex(result["data"]), proof_from_wire(result["proof"])

    def sample(
        self, blob_id: str, indices: Iterable[int]
    ) -> List[Optional[Tuple[bytes, MerkleProof]]]:
        result = self._caller.call(
            "da.sample", {"blob_id": blob_id, "indices": list(indices)}
        )
        out: List[Optional[Tuple[bytes, MerkleProof]]] = []
        for entry in result["chunks"]:
            if entry is None:
                out.append(None)
            else:
                out.append(
                    (bytes.fromhex(entry["data"]), proof_from_wire(entry["proof"]))
                )
        return out


def clients_for_stores(stores: Iterable[ChunkStore]) -> Dict[str, LocalSiteClient]:
    """Name-keyed local clients for a fleet of in-process stores."""
    return {store.site: LocalSiteClient(store) for store in stores}
