"""Random-sampling availability audits with Merkle-verified responses.

An auditor holding only the blob's on-chain commitment (root + geometry)
draws ``s`` leaf indices uniformly at random — independently, with
replacement — and challenges the site assigned to each sampled share
column.  A site answers from its :class:`~repro.da.store.ChunkStore` with
chunk + stored proof; the auditor accepts a sample only when the chunk
hashes to the proof's leaf and the proof reaches the committed root.

The detection math is the standard data-availability-sampling bound: if a
fraction ``f`` of the blob's chunks is withheld or corrupt, the probability
that every one of ``s`` independent uniform samples misses the damage is
``(1 - f) ** s`` — so ``confidence(f, s) = 1 - (1 - f) ** s`` of catching
it.  At ``f = 5%``, 64 samples already detect with ~96.3% per audit, and
independently-seeded re-audits compound the bound.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.common.errors import DataAvailabilityError, MedchainError
from repro.da.manifest import BlobManifest
from repro.obs.tracer import trace_span
from repro.sim.metrics import current_metrics


def miss_probability(loss_frac: float, samples: int) -> float:
    """P(an audit of ``samples`` draws sees no damage | ``loss_frac`` lost)."""
    if not 0.0 <= loss_frac <= 1.0:
        raise DataAvailabilityError("loss_frac must be within [0, 1]")
    if samples < 0:
        raise DataAvailabilityError("sample count must be non-negative")
    return (1.0 - loss_frac) ** samples

def confidence(loss_frac: float, samples: int) -> float:
    """P(an audit of ``samples`` draws detects ``loss_frac`` damage)."""
    return 1.0 - miss_probability(loss_frac, samples)


@dataclass
class SampleFailure:
    """One sampled index that did not verify."""

    index: int
    site: str
    reason: str  # "missing" | "invalid" | "site_error" | "unplaced"


@dataclass
class AuditReport:
    """Outcome of one sampling audit."""

    blob_id: str
    samples: int
    verified: int
    failures: List[SampleFailure] = field(default_factory=list)
    per_site: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Every sampled chunk was produced and verified."""
        return not self.failures

    @property
    def flagged_sites(self) -> List[str]:
        """Sites with at least one failed sample."""
        return sorted({failure.site for failure in self.failures})

    def miss_probability(self, loss_frac: float) -> float:
        """Chance this audit's sample count would miss ``loss_frac`` damage."""
        return miss_probability(loss_frac, self.samples)

    def confidence(self, loss_frac: float) -> float:
        """Detection confidence of this audit against ``loss_frac`` damage."""
        return confidence(loss_frac, self.samples)

    def to_wire(self) -> Dict[str, Any]:
        return {
            "blob_id": self.blob_id,
            "samples": self.samples,
            "verified": self.verified,
            "ok": self.ok,
            "flagged_sites": self.flagged_sites,
            "failures": [
                {"index": f.index, "site": f.site, "reason": f.reason}
                for f in self.failures
            ],
            "per_site": {site: dict(stats) for site, stats in self.per_site.items()},
        }


class Sampler:
    """Runs seeded random-sampling audits against a fleet of sites."""

    def __init__(self, clients: Mapping[str, Any], *, seed: int = 0):
        self.clients = dict(clients)
        self.seed = seed

    def draw(
        self, manifest: BlobManifest, samples: int, seed: Optional[int] = None
    ) -> List[int]:
        """The audit's challenge set: uniform, independent, with replacement."""
        if manifest.leaf_count == 0:
            return []
        rng = random.Random(self.seed if seed is None else seed)
        return [rng.randrange(manifest.leaf_count) for _ in range(samples)]

    def audit(
        self,
        manifest: BlobManifest,
        samples: int = 64,
        seed: Optional[int] = None,
    ) -> AuditReport:
        """Challenge ``samples`` random chunks and verify every response."""
        indices = self.draw(manifest, samples, seed)
        report = AuditReport(
            blob_id=manifest.blob_id, samples=len(indices), verified=0
        )
        by_site: Dict[str, List[int]] = {}
        with trace_span(
            "da_sample_audit", blob_id=manifest.blob_id[:12], samples=len(indices)
        ) as span:
            for index in indices:
                by_site.setdefault(manifest.site_for(index), []).append(index)
            for site, site_indices in sorted(by_site.items()):
                stats = report.per_site.setdefault(
                    site, {"sampled": 0, "ok": 0, "missing": 0, "invalid": 0}
                )
                stats["sampled"] += len(site_indices)
                for index, outcome in self._challenge(
                    manifest, site, site_indices
                ):
                    if outcome is None:
                        report.verified += 1
                        stats["ok"] += 1
                    else:
                        report.failures.append(
                            SampleFailure(index=index, site=site, reason=outcome)
                        )
                        stats["invalid" if outcome == "invalid" else "missing"] += 1
            span.set_attrs(
                verified=report.verified, failures=len(report.failures),
                flagged=len(report.flagged_sites),
            )
        metrics = current_metrics()
        metrics.add("da_audit_samples", report.samples)
        metrics.add("da_audit_failures", len(report.failures))
        if not report.ok:
            metrics.add("da_audits_flagged")
        return report

    def _challenge(
        self, manifest: BlobManifest, site: str, indices: List[int]
    ) -> List[Tuple[int, Optional[str]]]:
        """(index, None | failure reason) for one site's challenge batch."""
        client = self.clients.get(site)
        if client is None:
            return [(index, "unplaced") for index in indices]
        try:
            responses = client.sample(manifest.blob_id, indices)
        except MedchainError:
            return [(index, "site_error") for index in indices]
        out: List[Tuple[int, Optional[str]]] = []
        for index, response in zip(indices, responses):
            if response is None:
                out.append((index, "missing"))
            elif manifest.chunk_valid(index, response[0], response[1]):
                out.append((index, None))
            else:
                out.append((index, "invalid"))
        return out
