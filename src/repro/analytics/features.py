"""Feature extraction from canonical records to model matrices.

Standardization uses *fixed reference constants* (population-scale priors)
rather than dataset statistics, so every site featurizes identically without
exchanging any data — a prerequisite for federated training over non-IID
sites (section III.C).
"""

from __future__ import annotations

from typing import Any, Dict, Sequence, Tuple

import numpy as np

from repro.common.errors import LearningError
from repro.datamgmt.schema import VARIANT_PANEL

#: (name, extractor-path description, reference mean, reference scale)
FEATURE_SPECS: Tuple[Tuple[str, float, float], ...] = (
    ("age", 58.0, 15.0),
    ("sex_male", 0.48, 0.5),
    ("sbp", 128.0, 18.0),
    ("dbp", 80.0, 11.0),
    ("bmi", 26.0, 4.5),
    ("heart_rate", 72.0, 10.0),
    ("glucose", 104.0, 22.0),
    ("ldl", 118.0, 30.0),
    ("hdl", 52.0, 13.0),
    ("hba1c", 5.7, 0.9),
    ("smoker", 0.25, 0.43),
    ("alcohol_units_week", 4.0, 3.0),
    ("exercise_hours_week", 2.4, 1.7),
) + tuple((rsid, 0.6, 0.6) for rsid in VARIANT_PANEL)

FEATURE_NAMES: Tuple[str, ...] = tuple(name for name, __, ___ in FEATURE_SPECS)
FEATURE_DIM = len(FEATURE_SPECS)

_CURRENT_YEAR = 2018


def _raw_feature(record: Dict[str, Any], name: str) -> float:
    if name == "age":
        return float(_CURRENT_YEAR - record["birth_year"])
    if name == "sex_male":
        return 1.0 if record["sex"] == "M" else 0.0
    if name in ("sbp", "dbp", "bmi", "heart_rate"):
        return float(record["vitals"][name])
    if name in ("glucose", "ldl", "hdl", "hba1c"):
        return float(record["labs"][name])
    if name in ("smoker", "alcohol_units_week", "exercise_hours_week"):
        return float(record["lifestyle"][name])
    if name in VARIANT_PANEL:
        return float(record["genomics"].get(name, 0))
    raise LearningError(f"unknown feature {name!r}")


def featurize(records: Sequence[Dict[str, Any]]) -> np.ndarray:
    """Standardized (n, FEATURE_DIM) design matrix."""
    if not records:
        return np.zeros((0, FEATURE_DIM))
    rows = np.empty((len(records), FEATURE_DIM), dtype=np.float64)
    for i, record in enumerate(records):
        for j, (name, mean, scale) in enumerate(FEATURE_SPECS):
            rows[i, j] = (_raw_feature(record, name) - mean) / scale
    return rows


def labels_for(records: Sequence[Dict[str, Any]], outcome: str) -> np.ndarray:
    """Binary label vector for an outcome name."""
    try:
        return np.array(
            [float(record["outcomes"][outcome]) for record in records],
            dtype=np.float64,
        )
    except KeyError as exc:
        raise LearningError(f"records lack outcome {outcome!r}") from exc


def dataset_for(
    records: Sequence[Dict[str, Any]], outcome: str
) -> Tuple[np.ndarray, np.ndarray]:
    """(X, y) pair for supervised training."""
    return featurize(records), labels_for(records, outcome)


def multitask_dataset_for(
    records: Sequence[Dict[str, Any]], outcomes: Sequence[str]
) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
    """(X, {outcome: y}) for multi-task core-model pretraining."""
    return featurize(records), {
        outcome: labels_for(records, outcome) for outcome in outcomes
    }
