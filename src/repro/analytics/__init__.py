"""Analytics substrate: features, models, stats, clustering, pipelines, tools."""

from repro.analytics.clustering import KMeansResult, kmeans
from repro.analytics.features import (
    FEATURE_DIM,
    FEATURE_NAMES,
    dataset_for,
    featurize,
    labels_for,
    multitask_dataset_for,
)
from repro.analytics.models import (
    LogisticModel,
    MLPModel,
    MultiTaskMLP,
    SupervisedModel,
    accuracy,
    auc_score,
    average_params,
    log_loss,
    params_size_bytes,
    sigmoid,
)
from repro.analytics.pipeline import AnalyticsPipeline, PipelineStep, StepOutcome
from repro.analytics.stats import (
    KaplanMeier,
    TestResult,
    chi_square_2x2,
    describe,
    log_rank_test,
    normal_sf,
    two_proportion_test,
    welch_t_test,
)
from repro.analytics.tools import STANDARD_TOOLS, standard_registry

__all__ = [
    "AnalyticsPipeline",
    "FEATURE_DIM",
    "FEATURE_NAMES",
    "KMeansResult",
    "KaplanMeier",
    "LogisticModel",
    "MLPModel",
    "MultiTaskMLP",
    "PipelineStep",
    "STANDARD_TOOLS",
    "StepOutcome",
    "SupervisedModel",
    "TestResult",
    "accuracy",
    "auc_score",
    "average_params",
    "chi_square_2x2",
    "dataset_for",
    "describe",
    "featurize",
    "kmeans",
    "labels_for",
    "log_loss",
    "log_rank_test",
    "multitask_dataset_for",
    "normal_sf",
    "params_size_bytes",
    "sigmoid",
    "standard_registry",
    "two_proportion_test",
    "welch_t_test",
]
