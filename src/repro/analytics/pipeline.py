"""Dynamically-established analytics pipelines.

Section IV ("Analytics Services"): *"The analytics decision tree is based on
the resulting data and condition of the results of previous computing step.
The pipeline of these tools need dynamically established."*  A pipeline is a
list of steps; each step has a guard over the accumulated context, so later
steps run (or not) depending on earlier results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.common.errors import MedchainError

StepFn = Callable[[Dict[str, Any]], Any]
Guard = Callable[[Dict[str, Any]], bool]


@dataclass
class PipelineStep:
    """One analytic step with an optional execution guard."""

    name: str
    fn: StepFn
    guard: Optional[Guard] = None
    description: str = ""


@dataclass
class StepOutcome:
    name: str
    ran: bool
    output: Any = None
    error: str = ""


class AnalyticsPipeline:
    """Sequential, condition-gated execution of analytic steps.

    The context dict accumulates each step's output under its name, so
    guards and later steps can branch on previous results.
    """

    def __init__(self, name: str):
        self.name = name
        self._steps: List[PipelineStep] = []

    def add_step(
        self,
        name: str,
        fn: StepFn,
        guard: Optional[Guard] = None,
        description: str = "",
    ) -> "AnalyticsPipeline":
        if any(step.name == name for step in self._steps):
            raise MedchainError(f"duplicate step name {name!r}")
        self._steps.append(PipelineStep(name, fn, guard, description))
        return self

    @property
    def step_names(self) -> List[str]:
        return [step.name for step in self._steps]

    def run(
        self, initial_context: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """Execute; returns the final context with ``__trace__`` outcomes."""
        context: Dict[str, Any] = dict(initial_context or {})
        trace: List[StepOutcome] = []
        for step in self._steps:
            if step.guard is not None and not step.guard(context):
                trace.append(StepOutcome(name=step.name, ran=False))
                continue
            try:
                output = step.fn(context)
            except MedchainError as exc:
                trace.append(StepOutcome(name=step.name, ran=True, error=str(exc)))
                context["__error__"] = f"{step.name}: {exc}"
                break
            context[step.name] = output
            trace.append(StepOutcome(name=step.name, ran=True, output=output))
        context["__trace__"] = trace
        return context
