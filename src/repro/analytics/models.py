"""NumPy learning models with federated-ready parameter access.

Stand-ins for the paper's TensorFlow/Torch/Caffe/Keras analytics stack
(see DESIGN.md substitutions): a logistic-regression classifier and a
one-hidden-layer MLP, both trained with mini-batch SGD, both exposing
``get_params`` / ``set_params`` as flat structures so FedAvg can average
them, and both counting FLOPs for the energy model.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import LearningError

Params = List[np.ndarray]


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically-stable logistic function."""
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


def log_loss(y_true: np.ndarray, y_prob: np.ndarray, eps: float = 1e-12) -> float:
    """Mean binary cross-entropy."""
    p = np.clip(y_prob, eps, 1 - eps)
    return float(-np.mean(y_true * np.log(p) + (1 - y_true) * np.log(1 - p)))


def accuracy(y_true: np.ndarray, y_prob: np.ndarray) -> float:
    """Fraction correct at the 0.5 threshold."""
    if len(y_true) == 0:
        return 0.0
    return float(np.mean((y_prob >= 0.5).astype(float) == y_true))


def auc_score(y_true: np.ndarray, y_prob: np.ndarray) -> float:
    """Rank-based AUROC (Mann–Whitney), with tie correction."""
    y_true = np.asarray(y_true, dtype=float)
    positives = int(np.sum(y_true == 1))
    negatives = int(np.sum(y_true == 0))
    if positives == 0 or negatives == 0:
        return 0.5
    order = np.argsort(y_prob, kind="mergesort")
    ranks = np.empty(len(y_prob), dtype=float)
    sorted_probs = np.asarray(y_prob)[order]
    i = 0
    position = 1
    while i < len(sorted_probs):
        j = i
        while j + 1 < len(sorted_probs) and sorted_probs[j + 1] == sorted_probs[i]:
            j += 1
        average_rank = (position + position + (j - i)) / 2.0
        ranks[order[i : j + 1]] = average_rank
        position += j - i + 1
        i = j + 1
    rank_sum = float(np.sum(ranks[y_true == 1]))
    u_statistic = rank_sum - positives * (positives + 1) / 2.0
    return u_statistic / (positives * negatives)


class SupervisedModel:
    """Interface shared by federated-trainable classifiers."""

    flops: float = 0.0

    def get_params(self) -> Params:
        raise NotImplementedError

    def set_params(self, params: Params) -> None:
        raise NotImplementedError

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def train_epochs(
        self,
        X: np.ndarray,
        y: np.ndarray,
        epochs: int = 1,
        lr: float = 0.1,
        batch_size: int = 32,
        seed: int = 0,
        l2: float = 0.0,
    ) -> float:
        raise NotImplementedError

    def clone(self) -> "SupervisedModel":
        raise NotImplementedError

    # -- shared evaluation -------------------------------------------------
    def evaluate(self, X: np.ndarray, y: np.ndarray) -> Dict[str, float]:
        probs = self.predict_proba(X)
        return {
            "loss": log_loss(y, probs),
            "accuracy": accuracy(y, probs),
            "auc": auc_score(y, probs),
            "n": float(len(y)),
        }


class LogisticModel(SupervisedModel):
    """L2-regularized logistic regression trained by mini-batch SGD."""

    def __init__(self, dim: int, seed: int = 0):
        self.dim = dim
        rng = np.random.default_rng(seed)
        self.weights = rng.normal(0, 0.01, size=dim)
        self.bias = 0.0
        self.flops = 0.0

    def get_params(self) -> Params:
        return [self.weights.copy(), np.array([self.bias])]

    def set_params(self, params: Params) -> None:
        if len(params) != 2 or params[0].shape != (self.dim,):
            raise LearningError("parameter shape mismatch for LogisticModel")
        self.weights = params[0].copy()
        self.bias = float(params[1][0])

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self.flops += 2.0 * X.size
        return sigmoid(X @ self.weights + self.bias)

    def train_epochs(
        self,
        X: np.ndarray,
        y: np.ndarray,
        epochs: int = 1,
        lr: float = 0.1,
        batch_size: int = 32,
        seed: int = 0,
        l2: float = 1e-4,
    ) -> float:
        if len(X) == 0:
            return 0.0
        rng = np.random.default_rng(seed)
        n = len(X)
        for __ in range(epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch_size):
                batch = order[start : start + batch_size]
                xb, yb = X[batch], y[batch]
                probs = sigmoid(xb @ self.weights + self.bias)
                error = probs - yb
                grad_w = xb.T @ error / len(batch) + l2 * self.weights
                grad_b = float(np.mean(error))
                self.weights -= lr * grad_w
                self.bias -= lr * grad_b
                self.flops += 4.0 * xb.size
        return log_loss(y, self.predict_proba(X))

    def clone(self) -> "LogisticModel":
        model = LogisticModel(self.dim)
        model.set_params(self.get_params())
        return model


class MLPModel(SupervisedModel):
    """One-hidden-layer perceptron (tanh) with sigmoid output."""

    def __init__(self, dim: int, hidden: int = 16, seed: int = 0):
        self.dim = dim
        self.hidden = hidden
        rng = np.random.default_rng(seed)
        scale1 = 1.0 / np.sqrt(dim)
        scale2 = 1.0 / np.sqrt(hidden)
        self.w1 = rng.normal(0, scale1, size=(dim, hidden))
        self.b1 = np.zeros(hidden)
        self.w2 = rng.normal(0, scale2, size=hidden)
        self.b2 = 0.0
        self.flops = 0.0

    def get_params(self) -> Params:
        return [self.w1.copy(), self.b1.copy(), self.w2.copy(), np.array([self.b2])]

    def set_params(self, params: Params) -> None:
        if len(params) != 4 or params[0].shape != (self.dim, self.hidden):
            raise LearningError("parameter shape mismatch for MLPModel")
        self.w1 = params[0].copy()
        self.b1 = params[1].copy()
        self.w2 = params[2].copy()
        self.b2 = float(params[3][0])

    def _forward(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        hidden = np.tanh(X @ self.w1 + self.b1)
        probs = sigmoid(hidden @ self.w2 + self.b2)
        self.flops += 2.0 * X.shape[0] * self.dim * self.hidden + 2.0 * hidden.size
        return hidden, probs

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return self._forward(X)[1]

    def train_epochs(
        self,
        X: np.ndarray,
        y: np.ndarray,
        epochs: int = 1,
        lr: float = 0.1,
        batch_size: int = 32,
        seed: int = 0,
        l2: float = 1e-4,
    ) -> float:
        if len(X) == 0:
            return 0.0
        rng = np.random.default_rng(seed)
        n = len(X)
        for __ in range(epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch_size):
                batch = order[start : start + batch_size]
                xb, yb = X[batch], y[batch]
                hidden, probs = self._forward(xb)
                delta_out = probs - yb  # dL/dz2
                grad_w2 = hidden.T @ delta_out / len(batch) + l2 * self.w2
                grad_b2 = float(np.mean(delta_out))
                delta_hidden = np.outer(delta_out, self.w2) * (1 - hidden**2)
                grad_w1 = xb.T @ delta_hidden / len(batch) + l2 * self.w1
                grad_b1 = delta_hidden.mean(axis=0)
                self.w2 -= lr * grad_w2
                self.b2 -= lr * grad_b2
                self.w1 -= lr * grad_w1
                self.b1 -= lr * grad_b1
                self.flops += 6.0 * xb.shape[0] * self.dim * self.hidden
        return log_loss(y, self.predict_proba(X))

    def clone(self) -> "MLPModel":
        model = MLPModel(self.dim, self.hidden)
        model.set_params(self.get_params())
        return model

    # -- transfer learning support ------------------------------------------
    def reset_head(self, seed: int = 0) -> None:
        """Re-initialize the output layer, keeping learned hidden features.

        The distributed-transfer-learning experiments (E9) pretrain the
        hidden layer on the large virtual cohort, then fine-tune a fresh
        head on a small disease-specific task.
        """
        rng = np.random.default_rng(seed)
        self.w2 = rng.normal(0, 1.0 / np.sqrt(self.hidden), size=self.hidden)
        self.b2 = 0.0

    def train_head_only(
        self,
        X: np.ndarray,
        y: np.ndarray,
        epochs: int = 1,
        lr: float = 0.1,
        batch_size: int = 32,
        seed: int = 0,
        l2: float = 1e-4,
    ) -> float:
        """Fine-tune only the output layer (frozen hidden features)."""
        if len(X) == 0:
            return 0.0
        rng = np.random.default_rng(seed)
        n = len(X)
        for __ in range(epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch_size):
                batch = order[start : start + batch_size]
                xb, yb = X[batch], y[batch]
                hidden, probs = self._forward(xb)
                delta_out = probs - yb
                grad_w2 = hidden.T @ delta_out / len(batch) + l2 * self.w2
                grad_b2 = float(np.mean(delta_out))
                self.w2 -= lr * grad_w2
                self.b2 -= lr * grad_b2
        return log_loss(y, self.predict_proba(X))


class MultiTaskMLP(SupervisedModel):
    """Shared hidden layer with one sigmoid head per outcome.

    This is the "core model" of the paper's transfer-learning story
    (section III.A): trained on several diseases at once over the large
    virtual cohort, its hidden layer learns general medical features that a
    fresh head can reuse for a new small-data task.
    """

    def __init__(self, dim: int, outcomes: Sequence[str], hidden: int = 16, seed: int = 0):
        if not outcomes:
            raise LearningError("MultiTaskMLP needs at least one outcome head")
        self.dim = dim
        self.hidden = hidden
        self.outcomes = sorted(outcomes)
        rng = np.random.default_rng(seed)
        self.w1 = rng.normal(0, 1.0 / np.sqrt(dim), size=(dim, hidden))
        self.b1 = np.zeros(hidden)
        self.heads: Dict[str, Tuple[np.ndarray, float]] = {
            outcome: (rng.normal(0, 1.0 / np.sqrt(hidden), size=hidden), 0.0)
            for outcome in self.outcomes
        }
        self.flops = 0.0

    def get_params(self) -> Params:
        params: Params = [self.w1.copy(), self.b1.copy()]
        for outcome in self.outcomes:
            w2, b2 = self.heads[outcome]
            params.append(w2.copy())
            params.append(np.array([b2]))
        return params

    def set_params(self, params: Params) -> None:
        expected = 2 + 2 * len(self.outcomes)
        if len(params) != expected or params[0].shape != (self.dim, self.hidden):
            raise LearningError("parameter shape mismatch for MultiTaskMLP")
        self.w1 = params[0].copy()
        self.b1 = params[1].copy()
        for index, outcome in enumerate(self.outcomes):
            w2 = params[2 + 2 * index].copy()
            b2 = float(params[3 + 2 * index][0])
            self.heads[outcome] = (w2, b2)

    def _hidden(self, X: np.ndarray) -> np.ndarray:
        self.flops += 2.0 * X.shape[0] * self.dim * self.hidden
        return np.tanh(X @ self.w1 + self.b1)

    def predict_proba_for(self, X: np.ndarray, outcome: str) -> np.ndarray:
        w2, b2 = self.heads[outcome]
        return sigmoid(self._hidden(X) @ w2 + b2)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return self.predict_proba_for(X, self.outcomes[0])

    def train_multitask(
        self,
        X: np.ndarray,
        labels: Dict[str, np.ndarray],
        epochs: int = 1,
        lr: float = 0.1,
        batch_size: int = 32,
        seed: int = 0,
        l2: float = 1e-4,
    ) -> float:
        """Joint training: shared layer receives the mean of head gradients."""
        missing = [o for o in self.outcomes if o not in labels]
        if missing:
            raise LearningError(f"labels missing for outcomes {missing}")
        if len(X) == 0:
            return 0.0
        rng = np.random.default_rng(seed)
        n = len(X)
        for __ in range(epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch_size):
                batch = order[start : start + batch_size]
                xb = X[batch]
                hidden = np.tanh(xb @ self.w1 + self.b1)
                grad_w1 = np.zeros_like(self.w1)
                grad_b1 = np.zeros_like(self.b1)
                for outcome in self.outcomes:
                    yb = labels[outcome][batch]
                    w2, b2 = self.heads[outcome]
                    probs = sigmoid(hidden @ w2 + b2)
                    delta_out = probs - yb
                    grad_w2 = hidden.T @ delta_out / len(batch) + l2 * w2
                    grad_b2 = float(np.mean(delta_out))
                    delta_hidden = np.outer(delta_out, w2) * (1 - hidden**2)
                    grad_w1 += xb.T @ delta_hidden / len(batch)
                    grad_b1 += delta_hidden.mean(axis=0)
                    self.heads[outcome] = (w2 - lr * grad_w2, b2 - lr * grad_b2)
                scale = 1.0 / len(self.outcomes)
                self.w1 -= lr * (scale * grad_w1 + l2 * self.w1)
                self.b1 -= lr * scale * grad_b1
                self.flops += 6.0 * xb.shape[0] * self.dim * self.hidden * len(self.outcomes)
        losses = [
            log_loss(labels[o], self.predict_proba_for(X, o)) for o in self.outcomes
        ]
        return float(np.mean(losses))

    def train_epochs(
        self,
        X: np.ndarray,
        y: np.ndarray,
        epochs: int = 1,
        lr: float = 0.1,
        batch_size: int = 32,
        seed: int = 0,
        l2: float = 1e-4,
    ) -> float:
        """SupervisedModel interface: trains the first head only."""
        return self.train_multitask(
            X,
            {self.outcomes[0]: y, **{o: y for o in self.outcomes[1:]}},
            epochs=epochs,
            lr=lr,
            batch_size=batch_size,
            seed=seed,
            l2=l2,
        )

    def to_mlp(self, outcome: Optional[str] = None, seed: int = 0) -> "MLPModel":
        """Export a single-head MLP sharing this model's hidden features.

        With a known ``outcome`` the matching head is copied; otherwise the
        head is freshly initialized (the transfer-to-new-task case).
        """
        model = MLPModel(self.dim, hidden=self.hidden, seed=seed)
        model.w1 = self.w1.copy()
        model.b1 = self.b1.copy()
        if outcome is not None:
            if outcome not in self.heads:
                raise LearningError(f"no head for outcome {outcome!r}")
            w2, b2 = self.heads[outcome]
            model.w2 = w2.copy()
            model.b2 = b2
        return model

    def clone(self) -> "MultiTaskMLP":
        model = MultiTaskMLP(self.dim, self.outcomes, hidden=self.hidden)
        model.set_params(self.get_params())
        return model


def params_size_bytes(params: Params) -> int:
    """Wire size of a parameter set (8 bytes per float64 plus framing)."""
    return sum(array.size * 8 for array in params) + 64 * len(params)


def average_params(param_sets: Sequence[Params], weights: Sequence[float]) -> Params:
    """Weighted average of parameter sets (the FedAvg aggregation step)."""
    if not param_sets:
        raise LearningError("no parameter sets to average")
    total = float(sum(weights))
    if total <= 0:
        raise LearningError("aggregation weights must sum to a positive value")
    shapes = [array.shape for array in param_sets[0]]
    for params in param_sets:
        if [array.shape for array in params] != shapes:
            raise LearningError("cannot average differently-shaped parameters")
    averaged: Params = []
    for index in range(len(shapes)):
        stacked = sum(
            params[index] * (weight / total)
            for params, weight in zip(param_sets, weights)
        )
        averaged.append(np.asarray(stacked))
    return averaged
