"""K-means clustering for patient subtyping.

Precision medicine stratifies patients into subgroups before choosing
treatments; plain Lloyd's algorithm over the standardized feature matrix is
enough to exercise that path (used by the subtype-discovery example and the
query engine's ``cluster`` analytic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.common.errors import LearningError


@dataclass
class KMeansResult:
    centroids: np.ndarray
    labels: np.ndarray
    inertia: float
    iterations: int

    @property
    def cluster_sizes(self) -> List[int]:
        return [int(np.sum(self.labels == k)) for k in range(len(self.centroids))]


def kmeans(
    X: np.ndarray,
    k: int,
    max_iter: int = 100,
    tol: float = 1e-6,
    seed: int = 0,
) -> KMeansResult:
    """Lloyd's algorithm with k-means++ style seeding."""
    if len(X) < k:
        raise LearningError(f"need at least {k} points for {k} clusters")
    rng = np.random.default_rng(seed)
    centroids = _init_plus_plus(X, k, rng)
    labels = np.zeros(len(X), dtype=int)
    inertia = float("inf")
    iteration = 0
    while iteration < max_iter:
        iteration += 1
        distances = ((X[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        labels = distances.argmin(axis=1)
        new_inertia = float(distances[np.arange(len(X)), labels].sum())
        new_centroids = centroids.copy()
        for cluster in range(k):
            members = X[labels == cluster]
            if len(members):
                new_centroids[cluster] = members.mean(axis=0)
        shift = float(np.abs(new_centroids - centroids).max())
        centroids = new_centroids
        if abs(inertia - new_inertia) < tol and shift < tol:
            inertia = new_inertia
            break
        inertia = new_inertia
    return KMeansResult(
        centroids=centroids, labels=labels, inertia=inertia, iterations=iteration
    )


def _init_plus_plus(X: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by squared distance."""
    centroids = [X[rng.integers(0, len(X))]]
    for __ in range(1, k):
        distances = np.min(
            [((X - c) ** 2).sum(axis=1) for c in centroids], axis=0
        )
        total = distances.sum()
        if total == 0:
            centroids.append(X[rng.integers(0, len(X))])
            continue
        probabilities = distances / total
        centroids.append(X[rng.choice(len(X), p=probabilities)])
    return np.array(centroids)
