"""Standard analytics tools deployable at every site.

These are the concrete ``ToolSpec`` implementations the control nodes
register (Figure 1's "task code"): each takes local canonical records plus
parameters and returns a small, mergeable result dict — never raw records.
The federated trainer and the query engine both dispatch onto these.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

import numpy as np

from repro.analytics.clustering import kmeans
from repro.analytics.features import FEATURE_DIM, dataset_for, featurize
from repro.analytics.models import LogisticModel, MLPModel, params_size_bytes
from repro.analytics.stats import describe
from repro.common.errors import OracleError
from repro.datamgmt.virtual import NumericSummary, get_field
from repro.offchain.tasks import ToolRegistry, ToolSpec

Records = Sequence[Dict[str, Any]]


def _matches(record: Dict[str, Any], filters: Dict[str, Any]) -> bool:
    """Simple equality/range filter: ``{"sex": "F", "age_min": 50}``."""
    for key, wanted in filters.items():
        if key == "age_min":
            if 2018 - record["birth_year"] < wanted:
                return False
        elif key == "age_max":
            if 2018 - record["birth_year"] > wanted:
                return False
        elif key == "diagnosis":
            if wanted not in record.get("diagnoses", []):
                return False
        elif key.startswith("has_outcome_"):
            outcome = key[len("has_outcome_"):]
            if bool(record.get("outcomes", {}).get(outcome, 0)) != bool(wanted):
                return False
        else:
            if get_field(record, key) != wanted:
                return False
    return True


def _filtered(records: Records, params: Dict[str, Any]) -> List[Dict[str, Any]]:
    filters = params.get("filters") or {}
    return [record for record in records if _matches(record, filters)]


# ---------------------------------------------------------------------------
# tool implementations
# ---------------------------------------------------------------------------

def tool_count(records: Records, params: Dict[str, Any]) -> Dict[str, Any]:
    """Count records matching the filters."""
    return {"count": len(_filtered(records, params))}


def tool_numeric_summary(records: Records, params: Dict[str, Any]) -> Dict[str, Any]:
    """Mergeable numeric summary of one field over matching records."""
    path = params.get("field")
    if not path:
        raise OracleError("numeric_summary requires params['field']")
    summary = NumericSummary()
    for record in _filtered(records, params):
        summary.add(get_field(record, path))
    return {"field": path, "summary": summary.to_dict()}


def tool_prevalence(records: Records, params: Dict[str, Any]) -> Dict[str, Any]:
    """Outcome prevalence among matching records (count + positives)."""
    outcome = params.get("outcome")
    if not outcome:
        raise OracleError("prevalence requires params['outcome']")
    matching = _filtered(records, params)
    positives = sum(
        1 for record in matching if record.get("outcomes", {}).get(outcome, 0)
    )
    return {"outcome": outcome, "n": len(matching), "positives": positives}


def tool_histogram(records: Records, params: Dict[str, Any]) -> Dict[str, Any]:
    """Fixed-bin histogram of a numeric field (bins merge across sites)."""
    path = params.get("field")
    low = float(params.get("low", 0.0))
    high = float(params.get("high", 1.0))
    bins = int(params.get("bins", 10))
    if not path or bins <= 0 or high <= low:
        raise OracleError("histogram requires field, low < high, bins > 0")
    counts = [0] * bins
    width = (high - low) / bins
    for record in _filtered(records, params):
        value = float(get_field(record, path))
        index = int((value - low) / width)
        counts[min(max(index, 0), bins - 1)] += 1
    return {"field": path, "low": low, "high": high, "counts": counts}


def tool_describe(records: Records, params: Dict[str, Any]) -> Dict[str, Any]:
    """Full descriptive statistics of one field."""
    path = params.get("field")
    if not path:
        raise OracleError("describe requires params['field']")
    values = [get_field(record, path) for record in _filtered(records, params)]
    return {"field": path, "stats": describe(values)}


def tool_local_train(records: Records, params: Dict[str, Any]) -> Dict[str, Any]:
    """One federated round of local training from given global params.

    ``params``: outcome, model ("logistic"|"mlp"), epochs, lr, batch_size,
    seed, and ``global_params`` as nested float lists (wire format).
    Returns updated params (lists), sample count, and local loss.
    """
    outcome = params.get("outcome", "stroke")
    model_kind = params.get("model", "logistic")
    matching = _filtered(records, params)
    X, y = dataset_for(matching, outcome)
    if model_kind == "logistic":
        model: Any = LogisticModel(FEATURE_DIM, seed=int(params.get("seed", 0)))
    elif model_kind == "mlp":
        model = MLPModel(
            FEATURE_DIM,
            hidden=int(params.get("hidden", 16)),
            seed=int(params.get("seed", 0)),
        )
    else:
        raise OracleError(f"unknown model kind {model_kind!r}")
    global_params = params.get("global_params")
    if global_params is not None:
        model.set_params([np.asarray(p, dtype=float) for p in global_params])
    loss = model.train_epochs(
        X,
        y,
        epochs=int(params.get("epochs", 1)),
        lr=float(params.get("lr", 0.1)),
        batch_size=int(params.get("batch_size", 32)),
        seed=int(params.get("seed", 0)),
    )
    new_params = model.get_params()
    return {
        "params": [p.tolist() for p in new_params],
        "n": int(len(X)),
        "loss": float(loss),
        "bytes": params_size_bytes(new_params),
        "flops": float(model.flops),
    }


def tool_evaluate_model(records: Records, params: Dict[str, Any]) -> Dict[str, Any]:
    """Evaluate supplied model parameters on local data (no training)."""
    outcome = params.get("outcome", "stroke")
    model_kind = params.get("model", "logistic")
    matching = _filtered(records, params)
    X, y = dataset_for(matching, outcome)
    if model_kind == "logistic":
        model: Any = LogisticModel(FEATURE_DIM)
    else:
        model = MLPModel(FEATURE_DIM, hidden=int(params.get("hidden", 16)))
    model.set_params(
        [np.asarray(p, dtype=float) for p in params["global_params"]]
    )
    return {k: float(v) for k, v in model.evaluate(X, y).items()}


def tool_compare_groups(records: Records, params: Dict[str, Any]) -> Dict[str, Any]:
    """Mergeable moments for two patient groups (distributed two-sample test).

    ``params``: field (dotted numeric path), group_field (dotted path or a
    top-level key like ``sex``), group_values (exactly two), plus the usual
    filters.  Sites return only the two groups' moment summaries; the
    composer merges them and computes Welch's t — so a cross-site hypothesis
    test runs without any record leaving a site.
    """
    field_path = params.get("field")
    group_field = params.get("group_field")
    group_values = params.get("group_values") or []
    if not field_path or not group_field or len(group_values) != 2:
        raise OracleError("compare_groups requires field, group_field, 2 group_values")
    matching = _filtered(records, params)
    summaries = [NumericSummary(), NumericSummary()]
    for record in matching:
        try:
            group_value = get_field(record, group_field)
        except Exception:
            continue
        for index, wanted in enumerate(group_values):
            if group_value == wanted:
                summaries[index].add(get_field(record, field_path))
    return {
        "field": field_path,
        "group_field": group_field,
        "group_values": list(group_values),
        "groups": [summary.to_dict() for summary in summaries],
    }


def tool_cluster(records: Records, params: Dict[str, Any]) -> Dict[str, Any]:
    """Local k-means subtyping; returns centroids and sizes only."""
    k = int(params.get("k", 3))
    matching = _filtered(records, params)
    X = featurize(matching)
    if len(X) < k:
        return {"k": k, "centroids": [], "sizes": [], "inertia": 0.0}
    result = kmeans(X, k, seed=int(params.get("seed", 0)))
    return {
        "k": k,
        "centroids": result.centroids.tolist(),
        "sizes": result.cluster_sizes,
        "inertia": float(result.inertia),
    }


#: Tool ids and their implementations / flop weights.
STANDARD_TOOLS = (
    ToolSpec("count", tool_count, "count matching records", 5.0),
    ToolSpec("numeric_summary", tool_numeric_summary, "mergeable field summary", 20.0),
    ToolSpec("prevalence", tool_prevalence, "outcome prevalence", 10.0),
    ToolSpec("histogram", tool_histogram, "fixed-bin histogram", 15.0),
    ToolSpec("describe", tool_describe, "descriptive statistics", 25.0),
    ToolSpec("local_train", tool_local_train, "one federated training round", 5_000.0),
    ToolSpec("evaluate_model", tool_evaluate_model, "evaluate global model", 500.0),
    ToolSpec("cluster", tool_cluster, "k-means patient subtyping", 2_000.0),
    ToolSpec("compare_groups", tool_compare_groups, "two-group moment summaries", 25.0),
)


def standard_registry() -> ToolRegistry:
    """A fresh registry holding every standard tool."""
    registry = ToolRegistry()
    for spec in STANDARD_TOOLS:
        registry.register(
            ToolSpec(spec.tool_id, spec.fn, spec.description, spec.flops_per_record)
        )
    return registry
