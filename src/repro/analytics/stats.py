"""Statistical toolkit: descriptive stats, hypothesis tests, survival.

Pure-NumPy implementations of the analyses the real-world-evidence trial
pipeline needs (section II / E11): Welch's t-test, the chi-square test for
2x2 efficacy tables, Kaplan–Meier survival curves, and the log-rank test.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.common.errors import MedchainError


def describe(values: Sequence[float]) -> Dict[str, float]:
    """Count/mean/sd/min/median/max of a sample."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        return {"n": 0, "mean": 0.0, "sd": 0.0, "min": 0.0, "median": 0.0, "max": 0.0}
    return {
        "n": int(array.size),
        "mean": float(array.mean()),
        "sd": float(array.std(ddof=1)) if array.size > 1 else 0.0,
        "min": float(array.min()),
        "median": float(np.median(array)),
        "max": float(array.max()),
    }


# ---------------------------------------------------------------------------
# Normal distribution helpers (no scipy dependency needed at runtime)
# ---------------------------------------------------------------------------

def normal_sf(z: float) -> float:
    """Survival function of the standard normal."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def chi2_sf_1df(x: float) -> float:
    """Survival function of chi-square with 1 degree of freedom."""
    if x <= 0:
        return 1.0
    return 2.0 * normal_sf(math.sqrt(x))


# ---------------------------------------------------------------------------
# Two-sample tests
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TestResult:
    statistic: float
    p_value: float
    detail: str = ""

    @property
    def significant_05(self) -> bool:
        return self.p_value < 0.05


def welch_t_test(a: Sequence[float], b: Sequence[float]) -> TestResult:
    """Welch's unequal-variance t-test (normal approximation for p)."""
    xa = np.asarray(list(a), dtype=float)
    xb = np.asarray(list(b), dtype=float)
    if xa.size < 2 or xb.size < 2:
        raise MedchainError("welch_t_test needs at least 2 samples per group")
    va = xa.var(ddof=1) / xa.size
    vb = xb.var(ddof=1) / xb.size
    if va + vb == 0:
        return TestResult(statistic=0.0, p_value=1.0, detail="zero variance")
    t = float((xa.mean() - xb.mean()) / math.sqrt(va + vb))
    p = 2.0 * normal_sf(abs(t))
    return TestResult(statistic=t, p_value=p, detail="welch-t (normal approx)")


def two_proportion_test(
    successes_a: int, n_a: int, successes_b: int, n_b: int
) -> TestResult:
    """Two-proportion z-test (pooled), e.g. treatment vs control response."""
    if n_a <= 0 or n_b <= 0:
        raise MedchainError("group sizes must be positive")
    pa, pb = successes_a / n_a, successes_b / n_b
    pooled = (successes_a + successes_b) / (n_a + n_b)
    variance = pooled * (1 - pooled) * (1 / n_a + 1 / n_b)
    if variance == 0:
        return TestResult(statistic=0.0, p_value=1.0, detail="degenerate table")
    z = (pa - pb) / math.sqrt(variance)
    return TestResult(statistic=float(z), p_value=2.0 * normal_sf(abs(z)))


def chi_square_2x2(table: Sequence[Sequence[int]]) -> TestResult:
    """Pearson chi-square on a 2x2 contingency table."""
    observed = np.asarray(table, dtype=float)
    if observed.shape != (2, 2):
        raise MedchainError("chi_square_2x2 requires a 2x2 table")
    row = observed.sum(axis=1, keepdims=True)
    col = observed.sum(axis=0, keepdims=True)
    total = observed.sum()
    if total == 0 or (row == 0).any() or (col == 0).any():
        return TestResult(statistic=0.0, p_value=1.0, detail="degenerate table")
    expected = row @ col / total
    statistic = float(((observed - expected) ** 2 / expected).sum())
    return TestResult(statistic=statistic, p_value=chi2_sf_1df(statistic))


# ---------------------------------------------------------------------------
# Survival analysis
# ---------------------------------------------------------------------------

@dataclass
class KaplanMeier:
    """Kaplan–Meier estimate: step function of survival probability."""

    times: List[float]
    survival: List[float]

    @classmethod
    def fit(
        cls, durations: Sequence[float], events: Sequence[int]
    ) -> "KaplanMeier":
        """``events[i]`` = 1 if the event occurred at ``durations[i]``,
        0 if censored then."""
        pairs = sorted(zip(durations, events))
        n_at_risk = len(pairs)
        current = 1.0
        times: List[float] = [0.0]
        survival: List[float] = [1.0]
        index = 0
        while index < len(pairs):
            time = pairs[index][0]
            deaths = 0
            removed = 0
            while index < len(pairs) and pairs[index][0] == time:
                deaths += pairs[index][1]
                removed += 1
                index += 1
            if deaths and n_at_risk > 0:
                current *= 1.0 - deaths / n_at_risk
                times.append(float(time))
                survival.append(current)
            n_at_risk -= removed
        return cls(times=times, survival=survival)

    def at(self, time: float) -> float:
        """Survival probability at ``time``."""
        probability = 1.0
        for t, s in zip(self.times, self.survival):
            if t <= time:
                probability = s
            else:
                break
        return probability


def log_rank_test(
    durations_a: Sequence[float],
    events_a: Sequence[int],
    durations_b: Sequence[float],
    events_b: Sequence[int],
) -> TestResult:
    """Two-group log-rank test for differing survival curves."""
    entries = [(float(t), int(e), 0) for t, e in zip(durations_a, events_a)]
    entries += [(float(t), int(e), 1) for t, e in zip(durations_b, events_b)]
    entries.sort()
    n = [len(durations_a), len(durations_b)]
    observed_minus_expected = 0.0
    variance = 0.0
    index = 0
    at_risk = [n[0], n[1]]
    while index < len(entries):
        time = entries[index][0]
        deaths = [0, 0]
        removed = [0, 0]
        while index < len(entries) and entries[index][0] == time:
            __, event, group = entries[index]
            deaths[group] += event
            removed[group] += 1
            index += 1
        total_at_risk = at_risk[0] + at_risk[1]
        total_deaths = deaths[0] + deaths[1]
        if total_deaths > 0 and total_at_risk > 1 and at_risk[0] > 0 and at_risk[1] > 0:
            expected0 = total_deaths * at_risk[0] / total_at_risk
            observed_minus_expected += deaths[0] - expected0
            variance += (
                total_deaths
                * (at_risk[0] / total_at_risk)
                * (at_risk[1] / total_at_risk)
                * (total_at_risk - total_deaths)
                / (total_at_risk - 1)
            )
        at_risk[0] -= removed[0]
        at_risk[1] -= removed[1]
    if variance <= 0:
        return TestResult(statistic=0.0, p_value=1.0, detail="no comparable events")
    statistic = observed_minus_expected**2 / variance
    return TestResult(statistic=float(statistic), p_value=chi2_sf_1df(statistic))
