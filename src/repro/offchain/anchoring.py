"""Hash-anchoring of off-chain data sets (Irving & Holden, section III.A).

A data set stays at its owner's premise; only the Merkle root of its records
goes on chain (in the data-registry contract).  Any peer can later verify a
record (or the whole set) against the anchored root, so tampering with
off-chain data after registration is always detectable — the integrity
mechanism experiment E7 measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Sequence

from repro.common.errors import IntegrityError
from repro.common.hashing import hash_leaves_batch, hash_value
from repro.common.merkle import MerkleProof, MerkleTree
from repro.common.serialize import canonical_bytes


def record_leaf(record: Dict[str, Any]) -> bytes:
    """Canonical digest of one record (floats allowed in medical values)."""
    return hash_value(record, allow_float=True)


def record_leaves(records: Sequence[Dict[str, Any]]) -> "list[bytes]":
    """Leaf digests for a whole record list in one batched pass."""
    return hash_leaves_batch(
        canonical_bytes(record, allow_float=True) for record in records
    )


@dataclass
class DatasetAnchor:
    """Merkle commitment over an ordered record list."""

    root_hex: str
    record_count: int
    tree: MerkleTree

    @classmethod
    def build(cls, records: Sequence[Dict[str, Any]]) -> "DatasetAnchor":
        tree = MerkleTree(record_leaves(records))
        return cls(root_hex=tree.root.hex(), record_count=len(records), tree=tree)

    def proof_for(self, index: int) -> MerkleProof:
        return self.tree.proof(index)

    def verify_record(self, record: Dict[str, Any], index: int) -> bool:
        """Check one record against the anchor without the full data set."""
        return self.verify_record_with_proof(record, self.tree.proof(index))

    def verify_record_with_proof(
        self, record: Dict[str, Any], proof: MerkleProof
    ) -> bool:
        """Check a record against a proof the caller already holds.

        Avoids rebuilding the proof path when the verifier received one
        alongside the record (the shape ``da`` chunk audits also use).
        """
        return proof.leaf == record_leaf(record) and proof.verify(self.tree.root)


def verify_dataset(
    records: Sequence[Dict[str, Any]], anchored_root_hex: str
) -> bool:
    """Recompute the Merkle root of ``records`` and compare to the anchor."""
    tree = MerkleTree([record_leaf(record) for record in records])
    return tree.root.hex() == anchored_root_hex


def require_dataset_integrity(
    records: Sequence[Dict[str, Any]], anchored_root_hex: str, dataset_id: str = ""
) -> None:
    """Raise :class:`IntegrityError` when the data does not match its anchor."""
    if not verify_dataset(records, anchored_root_hex):
        raise IntegrityError(
            f"dataset {dataset_id or '<unnamed>'} does not match its on-chain anchor"
        )


def verify_record_proof(
    record: Dict[str, Any], proof: MerkleProof, anchored_root_hex: str
) -> bool:
    """Verify a single record with a proof shipped alongside it."""
    if proof.leaf != record_leaf(record):
        return False
    return proof.root().hex() == anchored_root_hex
