"""Per-node off-chain control code (Figure 1).

The on-chain smart contract is identical on every node; what differs per
node is the *control code*, which feeds each contract different local data
and coordinates the local task code.  A :class:`ControlNode` binds one
site's blockchain node to that site's data store and tool registry:

1. the monitor node surfaces a ``TaskRequested`` event;
2. the control node checks that the requested data sets are hosted here;
3. it enforces the on-chain access policy (data contract ``check_access``);
4. it verifies local data integrity against the on-chain Merkle anchor;
5. it runs the analytics tool locally (task runner, flops charged locally);
6. it posts the result hash back on chain (``post_result``) and ships only
   the small result payload — never raw records — to the requester.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.chain.executor import ContractEvent
from repro.chain.transactions import Transaction, make_call
from repro.common.errors import AccessDeniedError, IntegrityError, OracleError
from repro.common.serialize import canonical_bytes
from repro.common.signatures import KeyPair
from repro.consensus.node import BlockchainNode
from repro.offchain.anchoring import require_dataset_integrity
from repro.offchain.oracle import MonitorNode
from repro.offchain.tasks import TaskResult, TaskRunner


@dataclass
class PlatformContracts:
    """Ids of the deployed contract categories (Figure 4 + consent)."""

    data_contract_id: str
    analytics_contract_id: str
    trial_contract_id: str
    consent_contract_id: str = ""  # optional patient-consent extension
    blob_contract_id: str = ""  # optional erasure-coded blob registry (repro.da)


class NonceTracker:
    """Tracks the next usable nonce per address, across pending txs."""

    def __init__(self) -> None:
        self._next: Dict[str, int] = {}

    def next_nonce(self, address: str, chain_nonce: int) -> int:
        nonce = max(chain_nonce, self._next.get(address, 0))
        self._next[address] = nonce + 1
        return nonce


class DatasetHost:
    """Interface the control node uses to reach local data (duck-typed).

    Any object with ``has_dataset(dataset_id) -> bool`` and
    ``get_records(dataset_id) -> list[dict]`` works; ``repro.datamgmt``
    provides the real hospital store.
    """

    def __init__(self, datasets: Optional[Dict[str, List[Dict[str, Any]]]] = None):
        self._datasets = dict(datasets or {})

    def add_dataset(self, dataset_id: str, records: List[Dict[str, Any]]) -> None:
        self._datasets[dataset_id] = list(records)

    def has_dataset(self, dataset_id: str) -> bool:
        return dataset_id in self._datasets

    def get_records(self, dataset_id: str) -> List[Dict[str, Any]]:
        if dataset_id not in self._datasets:
            raise OracleError(f"dataset {dataset_id!r} is not hosted here")
        return self._datasets[dataset_id]

    def dataset_ids(self) -> List[str]:
        return sorted(self._datasets)


ResultDelivery = Callable[[TaskResult], None]


class ControlNode:
    """The off-chain control code of one data-hosted site."""

    def __init__(
        self,
        site: str,
        keypair: KeyPair,
        node: BlockchainNode,
        monitor: MonitorNode,
        contracts: PlatformContracts,
        host: DatasetHost,
        runner: TaskRunner,
        nonces: Optional[NonceTracker] = None,
        verify_integrity: bool = True,
        params_resolver: Optional[Callable[[str], Dict[str, Any]]] = None,
        compute_rate_flops: Optional[float] = None,
    ):
        self.site = site
        self.keypair = keypair
        self.node = node
        self.monitor = monitor
        self.contracts = contracts
        self.host = host
        self.runner = runner
        self.nonces = nonces or NonceTracker()
        self.verify_integrity = verify_integrity
        self.params_resolver = params_resolver
        # When set, posting a result is delayed by flops/rate simulated
        # seconds, so experiment E4 can measure parallel-compute makespan.
        self.compute_rate_flops = compute_rate_flops
        self.completed: Dict[str, TaskResult] = {}
        self.rejected: Dict[str, str] = {}
        self._deliveries: List[ResultDelivery] = []
        monitor.on("TaskRequested", self._on_task_requested)

    # -- wiring ----------------------------------------------------------
    def on_result(self, delivery: ResultDelivery) -> None:
        """Register a callback receiving each completed :class:`TaskResult`."""
        self._deliveries.append(delivery)

    def submit_signed_call(
        self, contract_id: str, method: str, args: Dict[str, Any]
    ) -> Transaction:
        """Sign and submit a contract call from this site's key."""
        nonce = self.nonces.next_nonce(
            self.keypair.address, self.node.state.nonce(self.keypair.address)
        )
        tx = make_call(
            self.keypair,
            contract_id,
            method,
            args,
            nonce=nonce,
            timestamp_ms=int(self.node.now * 1000),
        )
        self.node.submit_tx(tx)
        return tx

    # -- the Figure 1 control path -----------------------------------------
    def _on_task_requested(self, event: ContractEvent) -> None:
        task_id = event.data.get("task_id", "")
        dataset_ids = list(event.data.get("dataset_ids", []))
        local = [ds for ds in dataset_ids if self.host.has_dataset(ds)]
        if not local:
            return  # some other site's control code will pick this up
        try:
            self.execute_task(
                task_id=task_id,
                tool_id=event.data.get("tool_id", ""),
                dataset_ids=local,
                requester=event.data.get("requester", ""),
                purpose=event.data.get("purpose", ""),
                params=self._task_params(task_id),
            )
        except (AccessDeniedError, IntegrityError, OracleError) as exc:
            self.rejected[task_id] = str(exc)
            self.submit_signed_call(
                self.contracts.analytics_contract_id,
                "fail_task",
                {"task_id": task_id, "reason": str(exc)},
            )

    def _task_params(self, task_id: str) -> Dict[str, Any]:
        task = self.node.call_view(
            self.contracts.analytics_contract_id, "get_task", {"task_id": task_id}
        )
        params = dict(task.get("params") or {}) if task else {}
        # Heavy inputs (e.g. model weights) live off chain, referenced by
        # content hash — the contract stays a light-weight policy point.
        ref = params.pop("params_ref", None)
        if ref and self.params_resolver is not None:
            resolved = self.params_resolver(ref)
            resolved.update(params)
            return resolved
        return params

    def execute_task(
        self,
        task_id: str,
        tool_id: str,
        dataset_ids: Sequence[str],
        requester: str,
        purpose: str,
        params: Dict[str, Any],
    ) -> TaskResult:
        """Run one task end to end: policy check, integrity check, execute,
        anchor the result on chain, deliver the payload off chain."""
        records: List[Dict[str, Any]] = []
        for dataset_id in dataset_ids:
            self._enforce_access(dataset_id, requester, purpose)
            dataset_records = self.host.get_records(dataset_id)
            if self.verify_integrity:
                self._enforce_integrity(dataset_id, dataset_records)
            records.extend(dataset_records)
        records = self._apply_consent(records, purpose)
        result = self.runner.run(task_id, tool_id, records, params)
        self.node.metrics.add_flops(result.flops, scope=self.site)
        if self.compute_rate_flops:
            # Model local compute time: finish (post + deliver) after the
            # analytic's simulated duration.
            delay = result.flops / self.compute_rate_flops
            self.node.after(delay, lambda: self._finish_task(task_id, result))
        else:
            self._finish_task(task_id, result)
        return result

    def _finish_task(self, task_id: str, result: TaskResult) -> None:
        self.completed[task_id] = result
        self.submit_signed_call(
            self.contracts.analytics_contract_id,
            "post_result",
            {
                "task_id": task_id,
                "result_hash": result.result_hash,
                "summary": result.summary(),
            },
        )
        for delivery in self._deliveries:
            delivery(result)

    def _apply_consent(
        self, records: List[Dict[str, Any]], purpose: str
    ) -> List[Dict[str, Any]]:
        """Exclude records of patients who opted out of this purpose.

        Consent lives on chain (patient-consent contract); the off-chain
        control code is where it takes effect — no analytic ever sees an
        opted-out patient's record.
        """
        if not self.contracts.consent_contract_id:
            return records
        opted_out = set(
            self.node.call_view(
                self.contracts.consent_contract_id, "opted_out", {"scope": purpose}
            )
            or []
        )
        if not opted_out:
            return records
        return [
            record
            for record in records
            if record.get("patient_id") not in opted_out
        ]

    def _enforce_access(self, dataset_id: str, requester: str, purpose: str) -> None:
        allowed = self.node.call_view(
            self.contracts.data_contract_id,
            "check_access",
            {
                "dataset_id": dataset_id,
                "grantee": requester,
                "purpose": purpose,
                "now_ms": int(self.node.now * 1000),
            },
        )
        if not allowed:
            raise AccessDeniedError(
                f"no on-chain grant for {requester[:12]} on {dataset_id} ({purpose})"
            )

    def _enforce_integrity(
        self, dataset_id: str, records: List[Dict[str, Any]]
    ) -> None:
        entry = self.node.call_view(
            self.contracts.data_contract_id, "get_dataset", {"dataset_id": dataset_id}
        )
        if entry is None:
            raise IntegrityError(f"dataset {dataset_id} has no on-chain registration")
        require_dataset_integrity(records, entry["merkle_root"], dataset_id)

    @staticmethod
    def result_size_bytes(result: TaskResult) -> int:
        """Wire size of a result payload (for data-movement accounting)."""
        return len(canonical_bytes(result.result)) + 128
