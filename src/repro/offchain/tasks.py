"""Off-chain analytics task runner.

Control nodes execute registered tools against *local* records — the
"move computing to data" half of the paper's design strategy.  A tool is a
plain callable ``(records, params) -> result dict``; the runner wraps it
with flop accounting (for the energy model) and result hashing (so the
on-chain ``post_result`` commitment is verifiable).

Batch execution (``run_many`` / ``run_many_across_sites``) fans tasks out
through a pluggable :mod:`repro.parallel` executor — the paper's "sites
compute concurrently" path — while preserving per-task flop accounting and
result hashing, so on-chain commitments are identical no matter which
backend ran the tool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.common.errors import OracleError
from repro.common.hashing import hash_value_hex
from repro.obs.tracer import trace_span
from repro.parallel.executor import (
    Executor,
    RetryPolicy,
    SerialExecutor,
    TaskFailure,
    TaskSpec,
)
from repro.sim.metrics import current_metrics

ToolFn = Callable[[Sequence[Dict[str, Any]], Dict[str, Any]], Dict[str, Any]]


@dataclass
class ToolSpec:
    """A registered analytics tool."""

    tool_id: str
    fn: ToolFn
    description: str = ""
    flops_per_record: float = 100.0

    def code_hash(self) -> str:
        """Anchor for on-chain tool registration (code integrity)."""
        import inspect

        try:
            source = inspect.getsource(self.fn)
        except (OSError, TypeError):
            source = repr(self.fn)
        return hash_value_hex({"tool_id": self.tool_id, "source": source})


@dataclass
class TaskResult:
    """Outcome of a local task execution."""

    task_id: str
    tool_id: str
    site: str
    result: Dict[str, Any]
    result_hash: str
    records_used: int
    flops: float

    def summary(self) -> Dict[str, Any]:
        """Small on-chain-safe summary (ints/strings only)."""
        return {
            "records_used": self.records_used,
            "flops": int(self.flops),
            "keys": sorted(self.result.keys()),
        }


class ToolRegistry:
    """Per-site registry of executable analytics tools."""

    def __init__(self) -> None:
        self._tools: Dict[str, ToolSpec] = {}

    def register(self, spec: ToolSpec) -> None:
        if spec.tool_id in self._tools:
            raise OracleError(f"tool {spec.tool_id!r} already registered")
        self._tools[spec.tool_id] = spec

    def get(self, tool_id: str) -> ToolSpec:
        spec = self._tools.get(tool_id)
        if spec is None:
            raise OracleError(f"tool {tool_id!r} is not available at this site")
        return spec

    def has(self, tool_id: str) -> bool:
        return tool_id in self._tools

    def tool_ids(self) -> List[str]:
        return sorted(self._tools)


@dataclass(frozen=True)
class TaskRequest:
    """One task in a ``run_many`` batch."""

    task_id: str
    tool_id: str
    records: Sequence[Dict[str, Any]]
    params: Dict[str, Any] = field(default_factory=dict)


# A batch slot is either the task's result or a structured failure.
BatchOutcome = Union[TaskResult, TaskFailure]


def _execute_tool_task(
    site: str,
    tool_id: str,
    fn: ToolFn,
    flops_per_record: float,
    task_id: str,
    records: Sequence[Dict[str, Any]],
    params: Dict[str, Any],
) -> TaskResult:
    """Module-level task body so the process backend can pickle it.

    Flop accounting and result hashing happen *inside* the worker, so the
    :class:`TaskResult` a site would commit on chain is the same object no
    matter which executor backend ran the tool.
    """
    with trace_span(
        "tool.run", tool=tool_id, site=site, records=len(records)
    ) as span:
        result = fn(records, dict(params))
        if not isinstance(result, dict):
            raise OracleError(f"tool {tool_id!r} must return a dict")
        flops = flops_per_record * max(1, len(records))
        span.set_attr("flops", flops)
    # Distinct counter names from the sim-side "flops" resource counter:
    # ControlNode already charges result.flops to the platform registry, and
    # these ambient counters must stay identical across executor backends.
    metrics = current_metrics()
    metrics.add("tool_tasks", 1, scope=site)
    metrics.add("tool_flops", flops, scope=site)
    return TaskResult(
        task_id=task_id,
        tool_id=tool_id,
        site=site,
        result=result,
        result_hash=hash_value_hex(result),
        records_used=len(records),
        flops=flops,
    )


class TaskRunner:
    """Executes tools over local records with resource accounting."""

    def __init__(self, site: str, registry: Optional[ToolRegistry] = None):
        self.site = site
        self.registry = registry or ToolRegistry()

    def run(
        self,
        task_id: str,
        tool_id: str,
        records: Sequence[Dict[str, Any]],
        params: Dict[str, Any],
    ) -> TaskResult:
        spec = self.registry.get(tool_id)
        return _execute_tool_task(
            self.site,
            spec.tool_id,
            spec.fn,
            spec.flops_per_record,
            task_id,
            records,
            params,
        )

    def task_spec(self, request: TaskRequest) -> TaskSpec:
        """Lower a :class:`TaskRequest` to an executor :class:`TaskSpec`."""
        spec = self.registry.get(request.tool_id)
        return TaskSpec(
            key=f"{self.site}/{request.task_id}",
            fn=_execute_tool_task,
            args=(
                self.site,
                spec.tool_id,
                spec.fn,
                spec.flops_per_record,
                request.task_id,
                request.records,
                dict(request.params),
            ),
        )

    def run_many(
        self,
        requests: Sequence[TaskRequest],
        executor: Optional[Executor] = None,
        *,
        timeout_s: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> List[BatchOutcome]:
        """Run a batch of tool tasks through a parallel executor.

        Returns one :class:`TaskResult` or :class:`TaskFailure` per request,
        in request order (ordered reduction — deterministic aggregation).
        Unknown tools fail fast with :class:`OracleError` before anything is
        submitted, matching :meth:`run`.
        """
        specs = [self.task_spec(request) for request in requests]
        backend = executor or SerialExecutor()
        with trace_span(
            "offchain.run_many",
            site=self.site,
            tasks=len(specs),
            backend=backend.name,
        ):
            return backend.map_tasks(specs, timeout_s=timeout_s, retry=retry)


def run_many_across_sites(
    runners: Mapping[str, TaskRunner],
    site_requests: Sequence[Tuple[str, TaskRequest]],
    executor: Optional[Executor] = None,
    *,
    timeout_s: Optional[float] = None,
    retry: Optional[RetryPolicy] = None,
) -> List[BatchOutcome]:
    """Fan one batch of tasks out across many sites' runners.

    ``site_requests`` pairs each request with the site that must execute it
    (compute moves to the data, never the reverse).  All tasks go into a
    single executor batch so sites genuinely compute concurrently under the
    thread/process backends; results come back in submission order.
    """
    specs: List[TaskSpec] = []
    for site, request in site_requests:
        runner = runners.get(site)
        if runner is None:
            raise OracleError(f"no task runner registered for site {site!r}")
        specs.append(runner.task_spec(request))
    backend = executor or SerialExecutor()
    with trace_span(
        "offchain.run_many_across_sites",
        sites=len({site for site, __ in site_requests}),
        tasks=len(specs),
        backend=backend.name,
    ):
        return backend.map_tasks(specs, timeout_s=timeout_s, retry=retry)


def batch_flops(outcomes: Sequence[BatchOutcome]) -> float:
    """Total flops across the successful tasks of a batch (energy model)."""
    return sum(o.flops for o in outcomes if isinstance(o, TaskResult))
