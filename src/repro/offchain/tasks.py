"""Off-chain analytics task runner.

Control nodes execute registered tools against *local* records — the
"move computing to data" half of the paper's design strategy.  A tool is a
plain callable ``(records, params) -> result dict``; the runner wraps it
with flop accounting (for the energy model) and result hashing (so the
on-chain ``post_result`` commitment is verifiable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.common.errors import OracleError
from repro.common.hashing import hash_value_hex

ToolFn = Callable[[Sequence[Dict[str, Any]], Dict[str, Any]], Dict[str, Any]]


@dataclass
class ToolSpec:
    """A registered analytics tool."""

    tool_id: str
    fn: ToolFn
    description: str = ""
    flops_per_record: float = 100.0

    def code_hash(self) -> str:
        """Anchor for on-chain tool registration (code integrity)."""
        import inspect

        try:
            source = inspect.getsource(self.fn)
        except (OSError, TypeError):
            source = repr(self.fn)
        return hash_value_hex({"tool_id": self.tool_id, "source": source})


@dataclass
class TaskResult:
    """Outcome of a local task execution."""

    task_id: str
    tool_id: str
    site: str
    result: Dict[str, Any]
    result_hash: str
    records_used: int
    flops: float

    def summary(self) -> Dict[str, Any]:
        """Small on-chain-safe summary (ints/strings only)."""
        return {
            "records_used": self.records_used,
            "flops": int(self.flops),
            "keys": sorted(self.result.keys()),
        }


class ToolRegistry:
    """Per-site registry of executable analytics tools."""

    def __init__(self) -> None:
        self._tools: Dict[str, ToolSpec] = {}

    def register(self, spec: ToolSpec) -> None:
        if spec.tool_id in self._tools:
            raise OracleError(f"tool {spec.tool_id!r} already registered")
        self._tools[spec.tool_id] = spec

    def get(self, tool_id: str) -> ToolSpec:
        spec = self._tools.get(tool_id)
        if spec is None:
            raise OracleError(f"tool {tool_id!r} is not available at this site")
        return spec

    def has(self, tool_id: str) -> bool:
        return tool_id in self._tools

    def tool_ids(self) -> List[str]:
        return sorted(self._tools)


class TaskRunner:
    """Executes tools over local records with resource accounting."""

    def __init__(self, site: str, registry: Optional[ToolRegistry] = None):
        self.site = site
        self.registry = registry or ToolRegistry()

    def run(
        self,
        task_id: str,
        tool_id: str,
        records: Sequence[Dict[str, Any]],
        params: Dict[str, Any],
    ) -> TaskResult:
        spec = self.registry.get(tool_id)
        result = spec.fn(records, dict(params))
        if not isinstance(result, dict):
            raise OracleError(f"tool {tool_id!r} must return a dict")
        flops = spec.flops_per_record * max(1, len(records))
        return TaskResult(
            task_id=task_id,
            tool_id=tool_id,
            site=self.site,
            result=result,
            result_hash=hash_value_hex(result),
            records_used=len(records),
            flops=flops,
        )
