"""Off-chain layer: control nodes, monitor/oracle, task running, anchoring."""

from repro.offchain.anchoring import (
    DatasetAnchor,
    record_leaf,
    require_dataset_integrity,
    verify_dataset,
    verify_record_proof,
)
from repro.offchain.control import (
    ControlNode,
    DatasetHost,
    NonceTracker,
    PlatformContracts,
)
from repro.offchain.oracle import DataOracle, MonitorNode, RpcCallRecord
from repro.offchain.tasks import (
    TaskRequest,
    TaskResult,
    TaskRunner,
    ToolRegistry,
    ToolSpec,
    batch_flops,
    run_many_across_sites,
)

__all__ = [
    "ControlNode",
    "DataOracle",
    "DatasetAnchor",
    "DatasetHost",
    "MonitorNode",
    "NonceTracker",
    "PlatformContracts",
    "RpcCallRecord",
    "TaskRequest",
    "TaskResult",
    "TaskRunner",
    "batch_flops",
    "run_many_across_sites",
    "ToolRegistry",
    "ToolSpec",
    "record_leaf",
    "require_dataset_integrity",
    "verify_dataset",
    "verify_record_proof",
]
