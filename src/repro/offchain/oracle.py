"""Monitor node and data oracle (Figures 3 and 4).

On-chain smart contracts have no external communication capability, so the
paper introduces (a) a *monitor node* that watches contract events and
(b) a *data oracle* that bridges the contract world and the external world
via remote procedure calls returning a standard format.  Here the monitor
subscribes to a blockchain node's event stream and dispatches to registered
handlers; the oracle exposes named RPC endpoints whose responses are
canonical dicts (the "standard format to smart contract access").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.chain.executor import ContractEvent
from repro.common.errors import OracleError
from repro.common.serialize import canonical_bytes, to_jsonable
from repro.consensus.node import BlockchainNode

EventHandler = Callable[[ContractEvent], None]
RpcHandler = Callable[[Dict[str, Any]], Dict[str, Any]]


class OracleEndpointError(OracleError):
    """A typed oracle bridge failure: which endpoint, and how it failed.

    ``kind`` is one of ``unknown_endpoint`` (no such endpoint registered),
    ``handler_error`` (the endpoint's handler raised), or ``bad_response``
    (the handler returned something that is not a canonical dict).  The RPC
    layer forwards both fields in the error object's ``data`` so remote
    callers can distinguish caller bugs from endpoint bugs.
    """

    def __init__(self, endpoint: str, kind: str, detail: str = ""):
        self.endpoint = endpoint
        self.kind = kind
        self.detail = detail
        message = f"oracle endpoint {endpoint!r}: {kind}"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


@dataclass
class RpcCallRecord:
    """Audit record of one oracle bridge call."""

    endpoint: str
    request: Dict[str, Any]
    ok: bool
    error: str = ""


class DataOracle:
    """RPC bridge between the chain and the external world.

    Every response is normalized through canonical serialization so that it
    could be fed back into a contract deterministically; every call is
    recorded for auditability (the paper's "traceable and auditable" smart
    contract property extended off chain).
    """

    def __init__(self, name: str = "oracle"):
        self.name = name
        self._endpoints: Dict[str, RpcHandler] = {}
        self.call_log: List[RpcCallRecord] = []

    def register_endpoint(self, endpoint: str, handler: RpcHandler) -> None:
        if endpoint in self._endpoints:
            raise OracleError(f"endpoint {endpoint!r} already registered")
        self._endpoints[endpoint] = handler

    def endpoints(self) -> List[str]:
        return sorted(self._endpoints)

    def call(self, endpoint: str, request: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Invoke an endpoint; returns a canonicalized response dict.

        Every outcome — success or any failure kind — lands in
        ``call_log``, so the audit trail is complete even when the handler
        itself raises an :class:`OracleError`.
        """
        request = dict(request or {})
        handler = self._endpoints.get(endpoint)
        if handler is None:
            raise self._fail(endpoint, request, "unknown_endpoint",
                             "no such endpoint registered")
        try:
            response = handler(request)
        except Exception as exc:
            raise self._fail(
                endpoint, request, "handler_error", str(exc)
            ) from exc
        normalized = to_jsonable(response)
        if not isinstance(normalized, dict):
            raise self._fail(
                endpoint, request, "bad_response",
                f"must return a dict, got {type(response).__name__}",
            )
        try:
            canonical_bytes(normalized)  # ensure it round-trips
        except Exception as exc:
            raise self._fail(
                endpoint, request, "bad_response",
                f"response does not canonicalize: {exc}",
            ) from exc
        self.call_log.append(RpcCallRecord(endpoint, request, ok=True))
        return normalized

    def _fail(
        self, endpoint: str, request: Dict[str, Any], kind: str, detail: str
    ) -> OracleEndpointError:
        error = OracleEndpointError(endpoint, kind, detail)
        self.call_log.append(
            RpcCallRecord(endpoint, request, ok=False, error=str(error))
        )
        return error


class MonitorNode:
    """Watches smart-contract events and routes them to off-chain handlers.

    One monitor typically runs per site, attached to that site's blockchain
    node (Figure 3); handlers are registered per event name, with ``"*"`` as
    a catch-all.
    """

    def __init__(self, name: str, node: BlockchainNode, oracle: Optional[DataOracle] = None):
        self.name = name
        self.node = node
        self.oracle = oracle or DataOracle(name=f"{name}-oracle")
        self._handlers: Dict[str, List[EventHandler]] = {}
        self.seen_events: List[ContractEvent] = []
        node.subscribe_events(self._on_event)

    def on(self, event_name: str, handler: EventHandler) -> None:
        """Register a handler for a contract event name (``"*"`` = all)."""
        self._handlers.setdefault(event_name, []).append(handler)

    def _on_event(self, event: ContractEvent) -> None:
        self.seen_events.append(event)
        for handler in self._handlers.get(event.name, []):
            handler(event)
        for handler in self._handlers.get("*", []):
            handler(event)

    def events_named(self, name: str) -> List[ContractEvent]:
        return [event for event in self.seen_events if event.name == name]
