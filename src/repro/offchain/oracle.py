"""Monitor node and data oracle (Figures 3 and 4).

On-chain smart contracts have no external communication capability, so the
paper introduces (a) a *monitor node* that watches contract events and
(b) a *data oracle* that bridges the contract world and the external world
via remote procedure calls returning a standard format.  Here the monitor
subscribes to a blockchain node's event stream and dispatches to registered
handlers; the oracle exposes named RPC endpoints whose responses are
canonical dicts (the "standard format to smart contract access").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.chain.executor import ContractEvent
from repro.common.errors import OracleError
from repro.common.serialize import canonical_bytes, to_jsonable
from repro.consensus.node import BlockchainNode

EventHandler = Callable[[ContractEvent], None]
RpcHandler = Callable[[Dict[str, Any]], Dict[str, Any]]


@dataclass
class RpcCallRecord:
    """Audit record of one oracle bridge call."""

    endpoint: str
    request: Dict[str, Any]
    ok: bool
    error: str = ""


class DataOracle:
    """RPC bridge between the chain and the external world.

    Every response is normalized through canonical serialization so that it
    could be fed back into a contract deterministically; every call is
    recorded for auditability (the paper's "traceable and auditable" smart
    contract property extended off chain).
    """

    def __init__(self, name: str = "oracle"):
        self.name = name
        self._endpoints: Dict[str, RpcHandler] = {}
        self.call_log: List[RpcCallRecord] = []

    def register_endpoint(self, endpoint: str, handler: RpcHandler) -> None:
        if endpoint in self._endpoints:
            raise OracleError(f"endpoint {endpoint!r} already registered")
        self._endpoints[endpoint] = handler

    def endpoints(self) -> List[str]:
        return sorted(self._endpoints)

    def call(self, endpoint: str, request: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Invoke an endpoint; returns a canonicalized response dict."""
        request = dict(request or {})
        handler = self._endpoints.get(endpoint)
        if handler is None:
            self.call_log.append(
                RpcCallRecord(endpoint, request, ok=False, error="unknown endpoint")
            )
            raise OracleError(f"unknown oracle endpoint {endpoint!r}")
        try:
            response = handler(request)
            normalized = to_jsonable(response)
            if not isinstance(normalized, dict):
                raise OracleError(f"endpoint {endpoint!r} must return a dict")
            canonical_bytes(normalized)  # ensure it round-trips
            self.call_log.append(RpcCallRecord(endpoint, request, ok=True))
            return normalized
        except OracleError:
            raise
        except Exception as exc:
            self.call_log.append(
                RpcCallRecord(endpoint, request, ok=False, error=str(exc))
            )
            raise OracleError(f"endpoint {endpoint!r} failed: {exc}") from exc


class MonitorNode:
    """Watches smart-contract events and routes them to off-chain handlers.

    One monitor typically runs per site, attached to that site's blockchain
    node (Figure 3); handlers are registered per event name, with ``"*"`` as
    a catch-all.
    """

    def __init__(self, name: str, node: BlockchainNode, oracle: Optional[DataOracle] = None):
        self.name = name
        self.node = node
        self.oracle = oracle or DataOracle(name=f"{name}-oracle")
        self._handlers: Dict[str, List[EventHandler]] = {}
        self.seen_events: List[ContractEvent] = []
        node.subscribe_events(self._on_event)

    def on(self, event_name: str, handler: EventHandler) -> None:
        """Register a handler for a contract event name (``"*"`` = all)."""
        self._handlers.setdefault(event_name, []).append(handler)

    def _on_event(self, event: ContractEvent) -> None:
        self.seen_events.append(event)
        for handler in self._handlers.get(event.name, []):
            handler(event)
        for handler in self._handlers.get("*", []):
            handler(event)

    def events_named(self, name: str) -> List[ContractEvent]:
        return [event for event in self.seen_events if event.name == name]
